//! Workspace-level integration tests: full scenarios spanning the machine
//! model, the OS substrate, the PPC facility, the baselines, and the
//! real-threads runtime — exercised through the umbrella crate's public
//! API exactly as a downstream user would.

use std::rc::Rc;
use std::sync::Arc;

use ppc_ipc::baselines::lrpc::Lrpc;
use ppc_ipc::baselines::msg_rpc::MsgRpc;
use ppc_ipc::hector::{Machine, MachineConfig};
use ppc_ipc::hurricane::Kernel;
use ppc_ipc::ppc::bob::boot_with_bob;
use ppc_ipc::ppc::{PpcSystem, ServiceSpec};
use ppc_ipc::rt::{EntryOptions, Runtime};

/// The complete life of a service, through Frank: register by PPC call,
/// resolve by name, serve calls, get replaced online, retire.
#[test]
fn service_lifecycle_end_to_end() {
    let mut sys = PpcSystem::boot(MachineConfig::hector(4));
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(1, prog);
    let asid = sys.kernel.create_space("calc");

    // Register through Frank (a real PPC call) and publish the name.
    let ep = sys
        .register_service(
            1,
            client,
            ServiceSpec::new(asid).owned_by(prog),
            Rc::new(|_s, ctx| [ctx.args[0] + ctx.args[1], 0, 0, 0, 0, 0, 0, 0]),
        )
        .expect("register");
    sys.ns_register(1, client, "calc", ep).expect("publish");

    // Another client on another CPU resolves and calls.
    let prog2 = sys.kernel.new_program_id();
    let client2 = sys.new_client(3, prog2);
    let resolved = sys.ns_lookup(3, client2, "calc").unwrap().expect("resolve");
    assert_eq!(resolved, ep);
    let r = sys.call(3, client2, resolved, [20, 22, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r[0], 42);

    // Online replacement, then retirement.
    sys.exchange_entry(1, client, ep, Rc::new(|_s, ctx| [ctx.args[0] * ctx.args[1], 0, 0, 0, 0, 0, 0, 0]))
        .expect("exchange");
    let r = sys.call(3, client2, ep, [6, 7, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r[0], 42, "v2 multiplies");
    sys.soft_kill_entry(1, client, ep).expect("retire");
    assert!(sys.call(3, client2, ep, [0; 8]).is_err());
}

/// The Figure-3 workload end-to-end on the simulator: four CPUs hammering
/// Bob, with per-CPU cycle accounting proving locality.
#[test]
fn figure3_workload_accounting() {
    let (mut sys, bob, handles) = boot_with_bob(MachineConfig::hector(4), 4);
    let mut clients = Vec::new();
    for cpu in 0..4 {
        let prog = sys.kernel.new_program_id();
        clients.push((cpu, sys.new_client(cpu, prog)));
    }
    for round in 0..5 {
        for &(cpu, client) in &clients {
            let h = handles[(cpu + round) % handles.len()];
            bob.get_length(&mut sys, cpu, client, h).expect("GetLength");
        }
    }
    assert_eq!(sys.stats.calls, 20);
    // Every CPU did its own work — all clocks advanced.
    for cpu in 0..4 {
        assert!(sys.kernel.machine.cpu(cpu).clock().as_us() > 100.0);
    }
}

/// Simulator vs. real threads: the same logical service graph produces the
/// same results in both worlds.
#[test]
fn simulator_and_runtime_agree_on_semantics() {
    // Simulator.
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    let asid = sys.kernel.create_space("fib");
    let sim_ep = sys
        .bind_entry_boot(
            ServiceSpec::new(asid),
            Rc::new(|_s, ctx| {
                let (mut a, mut b) = (0u64, 1u64);
                for _ in 0..ctx.args[0] {
                    (a, b) = (b, a + b);
                }
                [a, 0, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);

    // Real threads.
    let rt = Runtime::new(1);
    let rt_ep = rt
        .bind(
            "fib",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let (mut a, mut b) = (0u64, 1u64);
                for _ in 0..ctx.args[0] {
                    (a, b) = (b, a + b);
                }
                [a, 0, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let rt_client = rt.client(0, 1);

    for n in 0..20u64 {
        let s = sys.call(0, client, sim_ep, [n, 0, 0, 0, 0, 0, 0, 0]).unwrap()[0];
        let r = rt_client.call(rt_ep, [n, 0, 0, 0, 0, 0, 0, 0]).unwrap()[0];
        assert_eq!(s, r, "fib({n})");
    }
}

/// The three IPC designs ordered by single-client latency on the same
/// machine model: PPC < LRPC < message RPC.
#[test]
fn latency_ordering_across_designs() {
    // PPC warm round trip.
    let ppc = ppc_ipc::ppc::microbench::measure(ppc_ipc::ppc::microbench::Condition {
        kernel_server: false,
        hold_cd: false,
        flushed: false,
    })
    .total();

    // LRPC warm round trip.
    let mut m = Machine::new(MachineConfig::hector(4));
    let lrpc = Lrpc::new(&mut m, 0);
    for _ in 0..3 {
        lrpc.round_trip(&mut m, 0);
    }
    let lrpc_t = lrpc.round_trip(&mut m, 0);

    // Message RPC warm round trip.
    let mut k = Kernel::boot(MachineConfig::hector(4));
    let mut msg = MsgRpc::new(&mut k, 0);
    for _ in 0..3 {
        msg.round_trip(&mut k, 0);
    }
    let msg_t = msg.round_trip(&mut k, 0);

    assert!(ppc < lrpc_t, "ppc {ppc} !< lrpc {lrpc_t}");
    assert!(lrpc_t < msg_t, "lrpc {lrpc_t} !< msg {msg_t}");
}

/// Cross-processor PPC reaches a service whose device lives on another
/// CPU, with identity intact — the §4.3 extension working end to end.
#[test]
fn cross_processor_call_end_to_end() {
    let mut sys = PpcSystem::boot(MachineConfig::hector(8));
    let ep = sys
        .bind_entry_boot(
            ServiceSpec::new(hector_sim::tlb::ASID_KERNEL).name("dev"),
            Rc::new(|_s, ctx| [u64::from(ctx.caller_program), ctx.cpu as u64, 0, 0, 0, 0, 0, 0]),
        )
        .unwrap();
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    let r = sys.call_remote(0, client, 5, ep, [0; 8]).unwrap();
    assert_eq!(r[0], u64::from(prog), "identity crossed CPUs");
    assert_eq!(r[1], 5, "executed on the target CPU");
}

/// Deterministic replay: two identical full scenarios produce identical
/// cycle counts on every CPU.
#[test]
fn whole_scenario_is_deterministic() {
    let run = || {
        let (mut sys, bob, handles) = boot_with_bob(MachineConfig::hector(4), 2);
        let prog = sys.kernel.new_program_id();
        let client = sys.new_client(0, prog);
        for i in 0..10 {
            bob.get_length(&mut sys, 0, client, handles[i % 2]).unwrap();
        }
        (0..4).map(|c| sys.kernel.machine.cpu(c).clock()).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
