//! # ppc-ipc — umbrella crate
//!
//! Reproduction of Gamsa, Krieger & Stumm, *Optimizing IPC Performance for
//! Shared-Memory Multiprocessors* (CSRI-294 / ICPP 1994): a Protected
//! Procedure Call (PPC) IPC facility whose common-case path accesses no
//! shared data and acquires no locks.
//!
//! This crate re-exports the workspace crates under one roof and hosts the
//! top-level examples and integration tests:
//!
//! * [`hector`] — deterministic cost simulator of the Hector multiprocessor
//! * [`hurricane`] — Hurricane OS substrate (address spaces, processes,
//!   per-CPU scheduling, traps, message-passing IPC, file system, disk)
//! * [`ppc`] — the paper's contribution: the PPC facility itself
//! * [`baselines`] — LRPC-style and locked comparison implementations
//! * [`rt`] — real-threads user-level port of the PPC design

pub use hector_sim as hector;
pub use hurricane_os as hurricane;
pub use ipc_baselines as baselines;
pub use ppc_core as ppc;
pub use ppc_rt as rt;
