//! Vendored, dependency-free stand-in for the slice of `criterion` this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace patches `criterion` to this crate.
//!
//! Provided API shape: `Criterion`, `benchmark_group` with
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input` /
//! `finish`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: warm up briefly, then time batches until ~100 ms of
//! wall clock has accumulated and report the mean ns/iteration. Passing
//! `--test` (as `cargo bench -- --test` does in CI) runs each benchmark
//! exactly once — a smoke test, no timing.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark, e.g. `ppc/4`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    /// A bare identifier without a parameter segment.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    /// (total duration, iterations) accumulated by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.measured = Some((Duration::ZERO, 1));
            return;
        }
        // Warmup + batch-size estimation: aim for batches of ~10 ms.
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        while t0.elapsed() < Duration::from_millis(10) {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos().max(1) as u64 / warm_iters.max(1);
        let batch = (10_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < Duration::from_millis(100) {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.measured = Some((total, iters));
    }
}

fn report(group: Option<&str>, id: &str, measured: Option<(Duration, u64)>, test_mode: bool) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match measured {
        Some(_) if test_mode => println!("test {full} ... ok"),
        Some((total, iters)) => {
            let ns = total.as_nanos() as f64 / iters.max(1) as f64;
            println!("{full:<48} {ns:>14.1} ns/iter  ({iters} iterations)");
        }
        None => println!("{full:<48} (no measurement recorded)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness sizes batches
    /// by wall clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { test_mode: self.criterion.test_mode, measured: None };
        f(&mut b);
        report(Some(&self.name), &id.to_string(), b.measured, self.criterion.test_mode);
        self
    }

    /// Benchmark `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { test_mode: self.criterion.test_mode, measured: None };
        f(&mut b, input);
        report(Some(&self.name), &id.to_string(), b.measured, self.criterion.test_mode);
        self
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` turns every benchmark into a one-shot
        // smoke test; all other harness flags are accepted and ignored.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Benchmark `f` as a standalone (ungrouped) benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { test_mode: self.test_mode, measured: None };
        f(&mut b);
        report(None, &id.to_string(), b.measured, self.test_mode);
        self
    }
}

/// `std::hint::black_box`, re-exported under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher { test_mode: false, measured: None };
        let mut count = 0u64;
        b.iter(|| count += 1);
        let (total, iters) = b.measured.unwrap();
        assert!(iters > 0);
        assert!(total > Duration::ZERO);
        assert!(count >= iters);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher { test_mode: true, measured: None };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert_eq!(b.measured.unwrap().1, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("ppc", 4).to_string(), "ppc/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
