//! Vendored, dependency-free stand-in for the parts of `rand` this
//! workspace uses: `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `Rng::gen_range` over integer ranges. The generator is xoshiro256++
//! seeded through splitmix64 — deterministic for a given seed, which is
//! all the simulator's jittered workloads require (they fix their seeds).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry points (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Sample a value of `T` from all bits.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from raw bits via [`Rng::gen`].
pub trait Standard {
    /// Build a value from 64 uniform bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A range a value of `T` can be drawn from.
pub trait SampleRange<T> {
    /// Sample uniformly from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (small, fast, high-quality;
    /// not the real `rand` StdRng's ChaCha12, but this workspace only
    /// needs deterministic jitter, not cryptographic strength).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = r.gen_range(90..=110);
            assert!((90..=110).contains(&y));
            let z: usize = r.gen_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            match r.gen_range(0u64..=1) {
                0 => lo_seen = true,
                1 => hi_seen = true,
                _ => unreachable!(),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
