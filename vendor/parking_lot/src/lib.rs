//! Vendored, dependency-free stand-in for `parking_lot`, backed by
//! `std::sync`. The build environment has no access to crates.io, so the
//! workspace patches `parking_lot` to this crate. Provides the API shape
//! the repository uses: infallible `lock()`, guard types, and a `Condvar`
//! whose `wait` takes the guard by `&mut`.
//!
//! Poisoning is deliberately ignored (as in the real `parking_lot`): a
//! panicking critical section does not wedge every later lock.

use std::fmt;

/// A mutual-exclusion lock with `parking_lot`'s infallible API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` exists so [`Condvar::wait`] can
/// temporarily take the underlying std guard by value; it is `Some` at
/// every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

/// A reader-writer lock with `parking_lot`'s infallible API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring before returning. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake one waiter. Returns whether a thread was woken (always `true`
    /// here; std does not report it — kept for parking_lot API shape).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters. Returns the number woken (unknowable through
    /// std; reported as 0 — callers in this workspace ignore it).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g = true;
            drop(g);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn lock_usable_after_panic_in_critical_section() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }
}
