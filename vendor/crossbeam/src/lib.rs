//! Vendored, dependency-free stand-in for the parts of `crossbeam` this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace patches `crossbeam` to this crate. Only the APIs the
//! repository needs are provided:
//!
//! * [`queue::ArrayQueue`] — a bounded, lock-free MPMC queue (the classic
//!   Vyukov sequence-number ring, the same algorithm the real
//!   `crossbeam-queue` implements);
//! * [`utils::CachePadded`] — cache-line-aligned wrapper used to keep hot
//!   atomics off each other's lines.

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes (two 64-byte lines, covering
    /// adjacent-line prefetchers on x86).
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

pub mod queue {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use crate::utils::CachePadded;

    struct Cell<T> {
        /// Sequence number: `index` when empty and writable by the pusher
        /// of lap `index / cap`, `index + 1` once a value is stored.
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded, lock-free multi-producer multi-consumer queue.
    ///
    /// Vyukov's bounded MPMC ring: each cell carries a sequence number
    /// that encodes which "lap" may read or write it, so producers and
    /// consumers only contend on their own index word plus the target
    /// cell — no locks anywhere.
    pub struct ArrayQueue<T> {
        head: CachePadded<AtomicUsize>,
        tail: CachePadded<AtomicUsize>,
        buf: Box<[Cell<T>]>,
        cap: usize,
    }

    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// A queue with capacity for `cap` elements. Panics if `cap == 0`.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            let buf: Box<[Cell<T>]> = (0..cap)
                .map(|i| Cell {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            ArrayQueue {
                head: CachePadded::new(AtomicUsize::new(0)),
                tail: CachePadded::new(AtomicUsize::new(0)),
                buf,
                cap,
            }
        }

        /// Push `value`, or hand it back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let cell = &self.buf[tail % self.cap];
                let seq = cell.seq.load(Ordering::Acquire);
                if seq == tail {
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // Safety: winning the CAS grants exclusive
                            // write access to this cell for this lap.
                            unsafe { (*cell.value.get()).write(value) };
                            cell.seq.store(tail.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(t) => tail = t,
                    }
                } else if seq < tail {
                    // One full lap behind: the cell still holds an
                    // unconsumed value — the queue is full.
                    return Err(value);
                } else {
                    tail = self.tail.load(Ordering::Relaxed);
                }
                std::hint::spin_loop();
            }
        }

        /// Pop the oldest value, if any.
        pub fn pop(&self) -> Option<T> {
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let cell = &self.buf[head % self.cap];
                let seq = cell.seq.load(Ordering::Acquire);
                let expect = head.wrapping_add(1);
                if seq == expect {
                    match self.head.compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // Safety: winning the CAS grants exclusive
                            // read access to the stored value.
                            let v = unsafe { (*cell.value.get()).assume_init_read() };
                            cell.seq.store(head.wrapping_add(self.cap), Ordering::Release);
                            return Some(v);
                        }
                        Err(h) => head = h,
                    }
                } else if seq < expect {
                    // The producer for this lap has not arrived: empty.
                    return None;
                } else {
                    head = self.head.load(Ordering::Relaxed);
                }
                std::hint::spin_loop();
            }
        }

        /// Number of elements currently queued (approximate under
        /// concurrency, exact when quiescent).
        pub fn len(&self) -> usize {
            loop {
                let tail = self.tail.load(Ordering::SeqCst);
                let head = self.head.load(Ordering::SeqCst);
                if self.tail.load(Ordering::SeqCst) == tail {
                    return tail.wrapping_sub(head);
                }
            }
        }

        /// Whether the queue is empty (approximate under concurrency).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The fixed capacity.
        pub fn capacity(&self) -> usize {
            self.cap
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_and_capacity() {
            let q = ArrayQueue::new(2);
            assert!(q.is_empty());
            q.push(1).unwrap();
            q.push(2).unwrap();
            assert_eq!(q.push(3), Err(3));
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn wraps_many_laps() {
            let q = ArrayQueue::new(3);
            for i in 0..100 {
                q.push(i).unwrap();
                assert_eq!(q.pop(), Some(i));
            }
        }

        #[test]
        fn concurrent_producers_consumers() {
            let q = Arc::new(ArrayQueue::new(8));
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let q = Arc::clone(&q);
                handles.push(std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let mut v = t * 1000 + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                }));
            }
            let mut seen = 0u64;
            while seen < 2000 {
                if q.pop().is_some() {
                    seen += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(q.is_empty());
        }

        #[test]
        fn drops_leftover_values() {
            let v = Arc::new(());
            let q = ArrayQueue::new(4);
            q.push(Arc::clone(&v)).unwrap();
            q.push(Arc::clone(&v)).unwrap();
            drop(q);
            assert_eq!(Arc::strong_count(&v), 1);
        }
    }
}
