//! Vendored, dependency-free stand-in for `core_affinity`. The build
//! environment has no access to crates.io (and no `libc` to issue
//! `sched_setaffinity`), so pinning is a documented no-op: callers in
//! this workspace already treat pin failure as "run unpinned".

/// Identifier of one logical core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CoreId {
    /// Zero-based logical core index.
    pub id: usize,
}

/// Enumerate the logical cores of this machine.
pub fn get_core_ids() -> Option<Vec<CoreId>> {
    let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    Some((0..n).map(|id| CoreId { id }).collect())
}

/// Request that the current thread be pinned to `_core`.
///
/// Always returns `false` in this vendored build (no syscall access):
/// "pin requested but not applied", which every caller in the workspace
/// treats as running unpinned.
pub fn set_for_current(_core: CoreId) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_at_least_one_core() {
        let ids = get_core_ids().unwrap();
        assert!(!ids.is_empty());
        assert_eq!(ids[0], CoreId { id: 0 });
    }

    #[test]
    fn pinning_reports_unpinned() {
        assert!(!set_for_current(CoreId { id: 0 }));
    }
}
