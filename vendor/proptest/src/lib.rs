//! Vendored, dependency-free stand-in for the subset of `proptest` this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace patches `proptest` to this crate.
//!
//! Supported surface (everything the repository's `tests/prop.rs` files
//! exercise):
//!
//! * `proptest! { ... }` with an optional
//!   `#![proptest_config(Config { cases, .. })]` header;
//! * strategies: integer ranges (`a..b`, `a..=b`), `any::<T>()` for the
//!   integer primitives and `bool`, tuples, `prop::collection::vec`,
//!   `prop::array::uniform8`, and simple `"[class]{m,n}"` regex string
//!   literals;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Semantics differ from real proptest in one deliberate way: failures
//! are reported by panicking immediately (no shrinking, no failure
//! persistence). Cases are generated from a deterministic per-test seed
//! (FNV of the test's module path and name), so runs are reproducible.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Runner configuration. Only `cases` is honored; `max_shrink_iters`
    /// exists so `Config { cases, ..Config::default() }` — the idiomatic
    /// real-proptest spelling — stays meaningful against this shim.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for API compatibility; this shim does not shrink.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256 cases; 64 keeps the offline
            // suite quick while still sweeping each strategy broadly.
            Config { cases: 64, max_shrink_iters: 1024 }
        }
    }
}

/// Deterministic generator driving strategy sampling (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary string (the test's name).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A value generator. Unlike real proptest there is no value tree and no
/// shrinking: `generate` yields one sample.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// ---- integer / bool primitives -------------------------------------------

/// Types with a full-range `any::<T>()` strategy.
pub trait Arbitrary {
    /// Sample from the type's whole value space.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

// ---- string regex subset --------------------------------------------------

/// `&str` literals act as regex strategies. Only the form
/// `[class]{min,max}` is supported (character classes with ranges and
/// literals, e.g. `"[a-zA-Z0-9_./-]{0,48}"`); anything else panics with a
/// clear message so unsupported tests fail loudly, not wrongly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_repeat(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_repeat(pat: &str) -> (Vec<char>, usize, usize) {
    let bytes: Vec<char> = pat.chars().collect();
    assert!(
        bytes.first() == Some(&'['),
        "vendored proptest supports only \"[class]{{m,n}}\" string strategies, got {pat:?}"
    );
    let close = bytes
        .iter()
        .position(|c| *c == ']')
        .unwrap_or_else(|| panic!("unterminated class in {pat:?}"));
    let mut alphabet = Vec::new();
    let class = &bytes[1..close];
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "reversed range in class of {pat:?}");
            for c in lo..=hi {
                alphabet.push(char::from_u32(c).unwrap());
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty class in {pat:?}");
    let rest: String = bytes[close + 1..].iter().collect();
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("expected {{m,n}} repetition in {pat:?}"));
    let (m, n) = inner
        .split_once(',')
        .unwrap_or_else(|| panic!("expected {{m,n}} repetition in {pat:?}"));
    let min: usize = m.trim().parse().expect("repeat lower bound");
    let max: usize = n.trim().parse().expect("repeat upper bound");
    assert!(min <= max, "reversed repetition in {pat:?}");
    (alphabet, min, max)
}

// ---- collections ----------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `sizes`.
    pub struct VecStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    /// `Vec` strategy: `sizes` bounds the length (half-open, matching
    /// proptest's `Range<usize>` size parameter).
    pub fn vec<S: Strategy>(elem: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { elem, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; 8]` drawn element-wise from `elem`.
    pub struct Uniform8<S> {
        elem: S,
    }

    /// Eight independent samples of `elem`.
    pub fn uniform8<S: Strategy>(elem: S) -> Uniform8<S> {
        Uniform8 { elem }
    }

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 8] {
            std::array::from_fn(|_| self.elem.generate(rng))
        }
    }
}

// ---- macros ---------------------------------------------------------------

/// The proptest entry macro: wraps each `fn name(arg in strategy, ...)`
/// into a `#[test]` that samples `Config::cases` cases deterministically.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_tests! { cfg = { $cfg }; $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_tests! {
            cfg = { $crate::test_runner::Config::default() };
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    { cfg = { $cfg:expr }; } => {};
    { cfg = { $cfg:expr };
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_tests! { cfg = { $cfg }; $($rest)* }
    };
}

/// Assert a condition inside a proptest body (panics on failure — the
/// vendored runner does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};

    /// Namespace mirror of real proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::Config;

    proptest! {
        #![proptest_config(Config { cases: 32, ..Config::default() })]

        #[test]
        fn ranges_stay_in_bounds(a in 5u64..10, b in 1usize..=3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((1..=3).contains(&b));
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((0u64..4, any::<bool>()), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (x, _) in v {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn uniform8_makes_arrays(a in prop::array::uniform8(any::<u64>())) {
            prop_assert_eq!(a.len(), 8);
        }

        #[test]
        fn string_class_strategy(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn string_class_with_literals_and_bounds() {
        let mut rng = super::TestRng::for_test("literals");
        for _ in 0..200 {
            let s = super::Strategy::generate(&"[a-zA-Z0-9_./-]{0,48}", &mut rng);
            assert!(s.len() <= 48);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_./-".contains(c)));
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = super::TestRng::for_test("same");
        let mut b = super::TestRng::for_test("same");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
