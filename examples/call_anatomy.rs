//! The anatomy of one warm PPC call, operation by operation.
//!
//! The paper produced its Figure 2 "based on a detailed description of the
//! architecture, low-level measurements, and direct inspection of the
//! compiler generated assembly code". This example is that inspection for
//! the reproduction: it enables the simulator's execution trace, runs one
//! warm user-to-user null call, and prints every charged machine
//! operation with its Figure-2 category — then the per-category totals.
//!
//! Run: `cargo run --example call_anatomy`

use ppc_ipc::hector::cpu::CostCategory;
use ppc_ipc::ppc::microbench::{setup, NullCallBench, WARM_CALLS};

fn main() {
    let NullCallBench { mut sys, ep, client } = setup(false, false);
    for _ in 0..WARM_CALLS {
        sys.call(0, client, ep, [0; 8]).expect("warm call");
    }

    let c = sys.kernel.machine.cpu_mut(0);
    c.trace_start();
    c.begin_measure();
    sys.call(0, client, ep, [1, 2, 3, 4, 5, 6, 7, 8]).expect("traced call");
    let bd = sys.kernel.machine.cpu_mut(0).end_measure();
    sys.kernel.machine.cpu_mut(0).trace_stop();

    println!("One warm user-to-user PPC round trip, every charged operation:");
    println!("{:>9} {:<4} [category] operation", "clock", "+cy");
    println!("{}", "-".repeat(72));
    let cpu = sys.kernel.machine.cpu(0);
    let mut last_cat: Option<CostCategory> = None;
    for ev in cpu.trace().events() {
        if last_cat != Some(ev.category) {
            println!("--- {}", ev.category.label());
            last_cat = Some(ev.category);
        }
        println!("{ev}");
    }
    println!("{}", "-".repeat(72));
    println!("{} operations, {} trace-cycles\n", cpu.trace().len(), cpu.trace().total_cycles());
    println!("Figure-2 category totals for this call:");
    println!("{bd}");
    println!("\n(paper: 32.4 us for this condition; \"only 200 instructions and 6");
    println!("cache lines are required to complete most calls\")");
}
