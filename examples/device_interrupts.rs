//! §4.3 + §4.4 together: the disk's shared request queue, interrupt
//! dispatch into a device server, and asynchronous prefetch requests.
//!
//! A client submits disk requests from several processors (the *only*
//! cross-processor interaction, via the shared queue — the paper's
//! deliberate exception); the disk driver drains them on its own CPU; a
//! completion interrupt is dispatched **as a PPC** to the device server;
//! and the client fires an async prefetch it never waits for.
//!
//! Run: `cargo run --example device_interrupts`

use std::cell::RefCell;
use std::rc::Rc;

use ppc_ipc::hector::MachineConfig;
use ppc_ipc::hurricane::disk::{Disk, DiskRequest};
use ppc_ipc::ppc::{PpcSystem, ServiceSpec};

fn main() {
    let mut sys = PpcSystem::boot(MachineConfig::hector(4));

    // The device server: a kernel-space PPC service that logs completions.
    let completions = Rc::new(RefCell::new(Vec::new()));
    let completions2 = Rc::clone(&completions);
    let device_ep = sys
        .bind_entry_boot(
            ServiceSpec::new(hector_sim::tlb::ASID_KERNEL).name("disk-server"),
            Rc::new(move |s: &mut PpcSystem, ctx| {
                // Charged like any service body.
                let c = s.kernel.machine.cpu_mut(ctx.cpu);
                c.with_category(hector_sim::cpu::CostCategory::ServerTime, |c| c.exec(30));
                let vector = (ctx.args[0] >> 32) as u32;
                let block = ctx.args[1];
                completions2.borrow_mut().push((vector, block));
                [0; 8]
            }),
        )
        .expect("bind device server");

    // A driver process on CPU 2 owns the disk.
    let driver = sys.kernel.create_process_boot(hector_sim::tlb::ASID_KERNEL, 2, 0);
    let mut disk = Disk::new(&mut sys.kernel.machine, driver, 2);

    // Clients on CPUs 0, 1, 3 submit requests (cross-processor: shared
    // queue, and the idle disk wakes the driver on ITS cpu).
    let mut submitted = 0;
    for (cpu, block) in [(0usize, 10u64), (1, 20), (3, 30)] {
        let woke = disk.submit(
            &mut sys.kernel,
            cpu,
            DiskRequest { block, requester: 0, write: false },
        );
        submitted += 1;
        println!("cpu{cpu}: submitted block {block} (driver woken: {woke})");
    }
    assert_eq!(disk.depth(), submitted);

    // The driver drains the queue; each completion raises an interrupt on
    // the driver's CPU, dispatched as a PPC to the device server (§4.4:
    // "from the device server's point of view it appears as a normal PPC
    // request").
    while let Some(req) = disk.driver_take(&mut sys.kernel) {
        sys.dispatch_interrupt(2, device_ep, 0x10, [req.block, 0, 0, 0, 0, 0])
            .expect("interrupt dispatch");
        println!("driver: completed block {}, interrupt dispatched", req.block);
    }

    assert_eq!(completions.borrow().len(), 3);
    println!("\ndevice server observed completions: {:?}", completions.borrow());

    // An async prefetch: the caller is re-queued instead of blocking.
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    sys.call_async(0, client, device_ep, [0, 99, 0, 0, 0, 0, 0, 0]).expect("async prefetch");
    println!(
        "async prefetch dispatched; stats: {} interrupts, {} async calls",
        sys.stats.interrupts, sys.stats.async_calls
    );
}
