//! Quickstart: the real-threads PPC runtime in ~40 lines.
//!
//! A counter service is bound to an entry point, resolved by name, and
//! called synchronously and asynchronously — 8 words in, 8 words out,
//! with no locks on the call path.
//!
//! Run: `cargo run --example quickstart`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ppc_ipc::rt::{EntryOptions, Runtime};

fn main() {
    // A "machine" with two virtual processors.
    let rt = Runtime::new(2);

    // Bind a counter service. The handler gets 8 argument words and the
    // caller's program ID; it returns 8 result words (registers, not
    // shared memory).
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&counter);
    let ep = rt
        .bind(
            "counter",
            EntryOptions::default(),
            Arc::new(move |ctx| {
                let n = c2.fetch_add(ctx.args[0], Ordering::Relaxed) + ctx.args[0];
                [n, ctx.caller_program as u64, 0, 0, 0, 0, 0, 0]
            }),
        )
        .expect("bind counter service");

    // Clients resolve the service by name (§4.5.5: naming is separate
    // from authentication — the ID is just a small integer).
    let ep_resolved = rt.ns_lookup("counter").expect("registered at bind");
    assert_eq!(ep, ep_resolved);

    // A client on vCPU 0 with program identity 42.
    let client = rt.client(0, 42);
    for i in 1..=5u64 {
        let rets = client.call(ep, [i, 0, 0, 0, 0, 0, 0, 0]).expect("call");
        println!("add {i}: counter = {}, served for program {}", rets[0], rets[1]);
    }

    // Asynchronous variant (§4.4): the caller continues immediately.
    let pending = client.call_async(ep, [100, 0, 0, 0, 0, 0, 0, 0]).expect("async call");
    println!("async call dispatched; doing other work...");
    let rets = pending.wait();
    println!("async result: counter = {}", rets[0]);

    // Aggregate the per-vCPU counters into one printable snapshot.
    println!("\nfacility stats: {}", rt.stats.snapshot());
}
