//! §4.4 + §4.5.4 together: an exception server receiving upcalls, and the
//! lazy page-fault stack policy feeding it.
//!
//! A debugging/exception server registers for system exceptions. A service
//! with a lazily-grown 2-page stack runs fine at shallow depth, grows a
//! page on demand, and overflows at depth 3 — which arrives at the
//! exception server as an upcall ("essentially software-based interrupts
//! [...] currently used for debugging and exception handling").
//!
//! Run: `cargo run --example exception_handling`

use std::cell::RefCell;
use std::rc::Rc;

use ppc_ipc::hector::MachineConfig;
use ppc_ipc::ppc::variants::exception;
use ppc_ipc::ppc::{PpcError, PpcSystem, ServiceSpec};

fn main() {
    let mut sys = PpcSystem::boot(MachineConfig::hector(2));

    // The exception server (kernel space, like a debugger stub).
    let exceptions = Rc::new(RefCell::new(Vec::new()));
    let exc_log = Rc::clone(&exceptions);
    let exc_ep = sys
        .bind_entry_boot(
            ServiceSpec::new(hector_sim::tlb::ASID_KERNEL).name("exception-server"),
            Rc::new(move |_s, ctx| {
                exc_log.borrow_mut().push((ctx.args[0], ctx.args[1], ctx.args[2]));
                [0; 8]
            }),
        )
        .expect("bind exception server");
    sys.set_exception_server(exc_ep);
    println!("exception server registered at entry {exc_ep}");

    // A recursive-descent style service: 2-page lazy stack, usage from args.
    let asid = sys.kernel.create_space("parser");
    let svc = sys
        .bind_entry_boot(
            ServiceSpec::new(asid).name("parser").stack_pages(2).lazy_stack(),
            Rc::new(|s: &mut PpcSystem, ctx| {
                match s.touch_worker_stack(ctx, ctx.args[0]) {
                    Ok(()) => [ctx.args[0], 0, 0, 0, 0, 0, 0, 0],
                    Err(PpcError::NoResources(_)) => [0, 1, 0, 0, 0, 0, 0, 0],
                    Err(e) => panic!("{e}"),
                }
            }),
        )
        .expect("bind parser");
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);

    for (label, bytes) in
        [("shallow", 600u64), ("one page", 4000), ("grows a page", 6500), ("overflow", 3 * 4096)]
    {
        let t = sys.kernel.machine.cpu(0).clock();
        let r = sys.call(0, client, svc, [bytes, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        let us = (sys.kernel.machine.cpu(0).clock() - t).as_us();
        let outcome = if r[1] == 1 { "STACK OVERFLOW" } else { "ok" };
        println!("{label:<14} {bytes:>6} B  {us:>7.1} us  {outcome}");
    }

    println!("\nexception server observed:");
    for (code, ep, detail) in exceptions.borrow().iter() {
        let name = match *code {
            exception::STACK_OVERFLOW => "STACK_OVERFLOW",
            exception::NO_RESOURCES => "NO_RESOURCES",
            _ => "?",
        };
        println!("  {name} from entry {ep}, detail = {detail} bytes");
    }
    assert_eq!(exceptions.borrow().len(), 1);
    println!("\nstats: {} upcalls, {} spare stack pages created", sys.stats.upcalls, sys.stats.stack_pages_created);
}
