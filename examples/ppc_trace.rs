//! Capture a Perfetto-loadable trace of real PPC traffic.
//!
//! Drives a mixed workload — inline calls, hand-off calls with a Frank
//! worker-pool grow, nested calls from a handler, zero-copy bulk
//! transfers, asynchronous dispatches, and one deliberately slow tail
//! call — then writes the span rings out as Chrome trace-event JSON.
//! Load the file at <https://ui.perfetto.dev> or `chrome://tracing`:
//! each vCPU renders as a process, client and server phases of a chain
//! on adjacent tracks, and the trace/span ids ride in `args`.
//!
//! Run: `cargo run --release --example ppc_trace -- --out trace.json`
//! CI:  `cargo run --example ppc_trace -- --smoke` (small run, validate
//! the document with the in-repo parser, write nothing).

use std::sync::Arc;

use ppc_ipc::rt::export::{load_chrome_trace, Json};
use ppc_ipc::rt::{EntryOptions, Runtime, RuntimeOptions};

fn main() {
    let mut out_path = String::from("ppc-trace.json");
    let mut smoke = false;
    let mut calls: u64 = 200;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--smoke" => {
                smoke = true;
                calls = 25;
            }
            "--out" => out_path = argv.next().expect("--out needs a path"),
            "--calls" => {
                calls = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--calls needs a number")
            }
            other => {
                eprintln!("unknown flag {other}; flags: --smoke | --out <path> | --calls <n>");
                std::process::exit(2);
            }
        }
    }

    // A bigger span ring than the default so a capture of `calls`
    // iterations isn't silently truncated by wraparound.
    let rt = Runtime::with_runtime_options(
        2,
        RuntimeOptions { trace_capacity: 4096, ..Default::default() },
    );
    rt.obs().set_sample_shift(0); // trace every root for the capture

    // Inline fast path: handler on the caller's thread.
    let echo = rt
        .bind("echo", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    // Hand-off path; zero pre-spawned workers, so the first call takes
    // the Frank slow path (pool grow) — visible as an instant span.
    let work = rt
        .bind(
            "work",
            EntryOptions { initial_workers: 0, ..Default::default() },
            Arc::new(|c| [c.args[0].wrapping_mul(3); 8]),
        )
        .unwrap();
    // Nested chain: an inline handler that itself calls `work`, so one
    // trace spans two entry points and both dispatch modes.
    let rt2 = Arc::clone(&rt);
    let chain = rt
        .bind(
            "chain",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(move |ctx| {
                let c = rt2.client(ctx.vcpu, 999);
                c.call(work, [ctx.args[0] + 1; 8]).unwrap()
            }),
        )
        .unwrap();
    // Bulk path: copy the granted span through the copy engine,
    // uppercase it server-side, and copy it back — both transfers land
    // as `bulk_copy` spans inside the handler.
    let upper = rt
        .bind(
            "upper",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().expect("descriptor in args[7]");
                let mut buf = vec![0u8; desc.len as usize];
                ctx.copy_from(desc, &mut buf).expect("granted read");
                buf.make_ascii_uppercase();
                let n = ctx.copy_to(desc, &buf).expect("granted write");
                [n as u64; 8]
            }),
        )
        .unwrap();
    // Tail: sleeps on demand, so the last call promotes an exemplar.
    let tail = rt
        .bind(
            "tail",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|c| {
                if c.args[0] == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                c.args
            }),
        )
        .unwrap();

    let client = rt.client(0, 7);
    let region = client.bulk_register(4096).unwrap();
    region.fill(0, &vec![b'x'; 4096]).unwrap();
    region.grant(upper, true).unwrap();

    for i in 0..calls {
        client.call(echo, [i; 8]).unwrap();
        client.call(chain, [i; 8]).unwrap();
        let pending = client.call_async(work, [i; 8]).unwrap();
        client.call_bulk(upper, [0; 8], region.full_desc(true)).unwrap();
        client.call(tail, [u64::from(i == calls - 1); 8]).unwrap();
        pending.wait();
    }

    let text = rt.export_trace();
    // Validate with the in-repo parser before shipping the file:
    // well-formed JSON, every begin paired with an end.
    let doc = Json::parse(&text).expect("export_trace emits valid JSON");
    let n_events =
        doc.get("traceEvents").and_then(Json::as_arr).map_or(0, <[Json]>::len);
    let spans = load_chrome_trace(&text).expect("begin/end pairs round-trip");

    // The umbrella crate builds `ppc-rt` with `obs` on; a zero-capacity
    // plane is the runtime signature of a compiled-out build (reachable
    // when this file is compiled against a customized dependency graph).
    if rt.spans().capacity() == 0 {
        assert!(spans.is_empty());
        println!("obs feature disabled: empty trace document (still valid JSON)");
        if smoke {
            println!("ppc_trace smoke OK (compiled out)");
        }
        return;
    }

    // The capture must contain every phase the workload exercised, and
    // every span must parent into a tree within its own trace.
    for want in ["call", "handler", "rendezvous", "bulk_copy", "frank", "async"] {
        assert!(
            spans.iter().any(|s| s.name == want),
            "no {want} span in the capture ({n_events} events)"
        );
    }
    for s in &spans {
        assert!(
            s.is_root()
                || spans
                    .iter()
                    .any(|p| p.trace_id == s.trace_id && p.span_id == s.parent_id),
            "orphaned span {s:?}"
        );
    }
    assert!(rt.spans().promoted() >= 1, "the slow tail call promotes an exemplar");

    if smoke {
        println!(
            "ppc_trace smoke OK: {n_events} events, {} spans, {} exemplar(s) promoted",
            spans.len(),
            rt.spans().promoted()
        );
        return;
    }

    std::fs::write(&out_path, &text).expect("write trace file");
    println!(
        "wrote {out_path}: {n_events} trace events ({} spans) from {} vCPU rings",
        spans.len(),
        rt.spans().n_vcpus()
    );
    println!("load it at https://ui.perfetto.dev or chrome://tracing\n");
    println!("{}", rt.diagnostics());
}
