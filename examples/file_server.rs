//! The paper's flagship scenario on the simulated machine: Bob the file
//! server behind the PPC facility on Hurricane/Hector.
//!
//! Boots a 4-processor machine, installs Bob, opens files, and issues
//! GetLength/SetLength calls from clients on different processors —
//! printing the measured cost breakdown of a warm call (the anatomy the
//! paper's Figure 2 aggregates).
//!
//! Run: `cargo run --example file_server`

use ppc_ipc::hector::MachineConfig;
use ppc_ipc::ppc::bob::{boot_with_bob, Bob};
use ppc_ipc::ppc::PpcSystem;

fn main() {
    let (mut sys, bob, handles) = boot_with_bob(MachineConfig::hector(4), 3);
    println!("booted 4-CPU Hector; Bob serves {} open files", handles.len());
    println!("name server resolves 'bob' -> entry {}\n", sys.naming.borrow().lookup("bob").unwrap());

    // One client per processor, each with its own program identity.
    let clients: Vec<_> = (0..4)
        .map(|cpu| {
            let prog = sys.kernel.new_program_id();
            (cpu, sys.new_client(cpu, prog))
        })
        .collect();

    for (cpu, client) in &clients {
        let h = handles[cpu % handles.len()];
        let len = bob.get_length(&mut sys, *cpu, *client, h).expect("GetLength");
        println!("cpu{cpu}: GetLength(file-{}) = {len}", cpu % handles.len());
    }

    // A write path: SetLength takes the same per-file critical section.
    let (cpu0, client0) = clients[0];
    bob.set_length(&mut sys, cpu0, client0, handles[0], 7777).expect("SetLength");
    let len = bob.get_length(&mut sys, cpu0, client0, handles[0]).expect("GetLength");
    assert_eq!(len, 7777);
    println!("\ncpu0: SetLength(file-0, 7777) confirmed by GetLength = {len}");

    // Anatomy of one warm GetLength call, with Figure-2 attribution.
    warm_breakdown(&mut sys, &bob, cpu0, client0, handles[0]);
}

fn warm_breakdown(sys: &mut PpcSystem, bob: &Bob, cpu: usize, client: usize, h: usize) {
    for _ in 0..4 {
        bob.get_length(sys, cpu, client, h).unwrap();
    }
    sys.kernel.machine.cpu_mut(cpu).begin_measure();
    bob.get_length(sys, cpu, client, h).unwrap();
    let stats = sys.kernel.machine.cpu_mut(cpu).path_stats().clone();
    let bd = sys.kernel.machine.cpu_mut(cpu).end_measure();
    println!("\nwarm GetLength breakdown on cpu{cpu} (paper: 66 us total, half IPC):");
    println!("{bd}");
    println!(
        "\npath: {} instructions, {} shared accesses (only the per-file CS), {} lock",
        stats.instructions, stats.shared_accesses, stats.lock_acquires
    );
}
