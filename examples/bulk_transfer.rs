//! §4.2: moving more than 8 words — region grants and CopyTo through the
//! Copy Server.
//!
//! The client grants Bob's entry point write access to a buffer in its
//! address space, then asks Bob to `READ` file contents into it; Bob's
//! worker issues a nested `CopyTo` PPC to the Copy Server, which validates
//! the grant before charging the word-by-word copy. Revocation is
//! demonstrated by a second read failing.
//!
//! Run: `cargo run --example bulk_transfer`

use ppc_ipc::hector::MachineConfig;
use ppc_ipc::ppc::bob::boot_with_bob;
use ppc_ipc::ppc::PpcError;

fn main() {
    let (mut sys, bob, _) = boot_with_bob(MachineConfig::hector(2), 0);
    let h = bob.create_file(&mut sys, "dataset", 4096, 0);

    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);

    // The client's receive buffer (its own address space / local module).
    let buf = sys.kernel.machine.alloc_on(0, 1024, "client-buffer");

    // Without a grant, Bob's nested CopyTo is refused.
    let err = bob.read(&mut sys, 0, client, h, buf.base, 512).unwrap_err();
    assert_eq!(err, PpcError::NoGrant);
    println!("read without grant: correctly refused ({err})");

    // Grant Bob write access to the buffer region, then read.
    sys.copy_grant(0, client, bob.ep, buf, true).expect("grant");
    let copied = bob.read(&mut sys, 0, client, h, buf.base, 512).expect("read");
    println!("granted + read: {copied} bytes copied through the Copy Server");

    // Larger read, measuring the cost of the bulk path.
    sys.kernel.machine.cpu_mut(0).begin_measure();
    let copied = bob.read(&mut sys, 0, client, h, buf.base, 1024).expect("big read");
    let bd = sys.kernel.machine.cpu_mut(0).end_measure();
    println!("read of {copied} bytes cost {:.1} us (two nested PPCs + copy)", bd.total().as_us());

    // Revoke and verify enforcement.
    let n = sys.copy_revoke(0, client, bob.ep).expect("revoke");
    println!("revoked {n} grant(s)");
    let err = bob.read(&mut sys, 0, client, h, buf.base, 64).unwrap_err();
    assert_eq!(err, PpcError::NoGrant);
    println!("read after revoke: correctly refused");
}
