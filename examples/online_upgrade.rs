//! §4.5.2 + §4.5.3 on real threads: worker one-time initialization,
//! on-line server replacement with `Exchange`, and soft-kill draining.
//!
//! Run: `cargo run --example online_upgrade`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ppc_ipc::rt::{EntryOptions, Runtime};

fn main() {
    let rt = Runtime::new(1);

    // v1 of the service uses the worker-initialization pattern: the bound
    // handler IS the init routine; it swaps in the steady-state handler
    // for this worker on first call.
    let inits = Arc::new(AtomicU64::new(0));
    let inits2 = Arc::clone(&inits);
    let ep = rt
        .bind(
            "svc",
            EntryOptions::default(),
            Arc::new(move |ctx| {
                inits2.fetch_add(1, Ordering::SeqCst);
                ctx.set_worker_handler(Arc::new(|ctx| [ctx.args[0] + 1, 1, 0, 0, 0, 0, 0, 0]));
                [ctx.args[0] + 1, 1, 0, 0, 0, 0, 0, 0] // v1: +1
            }),
        )
        .expect("bind v1");

    let client = rt.client(0, 7);
    for i in 0..3u64 {
        let r = client.call(ep, [i, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        println!("v{}: f({i}) = {}", r[1], r[0]);
    }
    println!("worker initialization ran {} time(s)\n", inits.load(Ordering::SeqCst));

    // Exchange: replace the handler on-line — same entry ID, no downtime,
    // callers never see an error.
    rt.exchange(ep, Arc::new(|ctx| [ctx.args[0] * 10, 2, 0, 0, 0, 0, 0, 0]), 0)
        .expect("exchange to v2");
    for i in 0..3u64 {
        let r = client.call(ep, [i, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        println!("v{}: f({i}) = {}", r[1], r[0]);
    }

    // Retirement: soft-kill rejects new calls, drains, then reaps.
    rt.soft_kill(ep, 0).expect("soft kill");
    match client.call(ep, [1; 8]) {
        Err(e) => println!("\nafter soft-kill, new call rejected: {e}"),
        Ok(_) => unreachable!("soft-killed entry must not accept calls"),
    }
    rt.wait_drained(ep).expect("drain");
    println!("drained and reaped; entry {ep} can be reclaimed and rebound");
    rt.reclaim_slot(ep, 0).expect("reclaim");
    let ep2 = rt
        .bind("svc-v3", EntryOptions { want_ep: Some(ep), ..Default::default() }, Arc::new(|_| [3; 8]))
        .expect("rebind at the same id");
    assert_eq!(ep2, ep);
    println!("rebound v3 at entry {ep2}: f(_) = {}", client.call(ep2, [0; 8]).unwrap()[0]);
}
