//! Property-based tests of the machine substrate.

use proptest::prelude::*;

use hector_sim::cache::{Cache, CacheOutcome};
use hector_sim::des::{Des, Segment, SegmentLoopActor};
use hector_sim::sym::{PAddr, SymHeap};
use hector_sim::time::Cycles;
use hector_sim::tlb::{Space, Tlb};
use hector_sim::topology::Topology;
use hector_sim::MachineConfig;

proptest! {
    // ---- Cycles arithmetic ---------------------------------------------

    #[test]
    fn cycles_add_sub_roundtrip(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let (ca, cb) = (Cycles::new(a), Cycles::new(b));
        prop_assert_eq!(ca + cb, Cycles::new(a + b));
        prop_assert_eq!((ca + cb) - cb, ca);
        // Subtraction saturates.
        if a < b {
            prop_assert_eq!(ca - cb, Cycles::ZERO);
        }
    }

    #[test]
    fn cycles_us_conversion_monotonic(a in 0u64..1 << 30, b in 0u64..1 << 30) {
        let (ca, cb) = (Cycles::new(a), Cycles::new(b));
        if a <= b {
            prop_assert!(ca.as_us() <= cb.as_us());
        }
        // from_us(as_us) round-trips exactly (60 ns/cycle is representable).
        prop_assert_eq!(Cycles::from_us(ca.as_us()), ca);
    }

    // ---- symbolic heap ----------------------------------------------------

    #[test]
    fn heap_allocations_never_overlap(sizes in prop::collection::vec(1u64..4096, 1..40)) {
        let mut h = SymHeap::new(3);
        let mut regions = Vec::new();
        for s in sizes {
            regions.push(h.alloc(s));
        }
        for (i, a) in regions.iter().enumerate() {
            prop_assert_eq!(a.base.module(), 3);
            for b in regions.iter().skip(i + 1) {
                let a_end = a.base.0 + a.len;
                let b_end = b.base.0 + b.len;
                prop_assert!(a_end <= b.base.0 || b_end <= a.base.0, "overlap");
            }
        }
    }

    // ---- cache model -------------------------------------------------------

    #[test]
    fn cache_access_hits_iff_contained(
        ops in prop::collection::vec((0u64..2048, any::<bool>()), 1..200),
        ways in 1usize..=4,
    ) {
        let mut c = Cache::new_assoc(256 * ways, 16, ways);
        for (off, is_write) in ops {
            let addr = PAddr::compose(0, off);
            let was_in = c.contains(addr);
            let outcome = c.access(addr, is_write);
            match outcome {
                CacheOutcome::Hit { .. } => prop_assert!(was_in),
                CacheOutcome::Miss { .. } => prop_assert!(!was_in),
            }
            prop_assert!(c.contains(addr), "line resident after access");
        }
    }

    #[test]
    fn cache_stats_partition_accesses(
        ops in prop::collection::vec((0u64..4096, any::<bool>()), 1..300),
    ) {
        let mut c = Cache::new(16 * 1024, 16);
        let n = ops.len() as u64;
        for (off, w) in ops {
            c.access(PAddr::compose(0, off), w);
        }
        let (h, m, wb) = c.stats();
        prop_assert_eq!(h + m, n);
        prop_assert!(wb <= m, "writebacks only on misses");
    }

    #[test]
    fn cache_flush_forgets_everything(offs in prop::collection::vec(0u64..4096, 1..100)) {
        let mut c = Cache::new(16 * 1024, 16);
        for off in &offs {
            c.access(PAddr::compose(0, *off), true);
        }
        c.flush_all();
        for off in &offs {
            prop_assert!(!c.contains(PAddr::compose(0, *off)));
        }
    }

    // ---- TLB ---------------------------------------------------------------

    #[test]
    fn tlb_capacity_respected(pages in prop::collection::vec(0u64..10_000, 1..300)) {
        let entries = 56;
        let mut t = Tlb::new(entries);
        for p in &pages {
            t.touch(Space::User, *p);
            prop_assert!(t.is_resident(Space::User, *p));
        }
        // No more than `entries` distinct pages can be resident.
        let resident = (0..10_000u64).filter(|p| t.is_resident(Space::User, *p)).count();
        prop_assert!(resident <= entries);
    }

    #[test]
    fn tlb_user_flush_never_touches_supervisor(
        spages in prop::collection::vec(0u64..100, 1..30),
        asid in 1u32..50,
    ) {
        let mut t = Tlb::new(56);
        for p in &spages {
            t.touch(Space::Supervisor, *p);
        }
        t.switch_user_as(asid);
        for p in &spages {
            prop_assert!(t.is_resident(Space::Supervisor, *p));
        }
    }

    // ---- topology -----------------------------------------------------------

    #[test]
    fn hops_symmetric_and_zero_iff_local(n in 1usize..=16) {
        let topo = Topology::new(&MachineConfig::hector(n));
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
                prop_assert_eq!(topo.hops(a, b) == 0, a == b);
                prop_assert!(topo.hops(a, b) <= 1 + n / 2);
            }
        }
    }

    // ---- discrete-event engine ------------------------------------------------

    #[test]
    fn des_is_deterministic_and_work_conserving(
        busys in prop::collection::vec(50u64..2000, 1..8),
        with_lock in any::<bool>(),
    ) {
        let run = || {
            let mut des = Des::new(MachineConfig::hector(16));
            let lock = des.add_lock(0);
            let deadline = Cycles::new(500_000);
            for (i, b) in busys.iter().enumerate() {
                let segs = if with_lock {
                    vec![
                        Segment::Busy(Cycles::new(*b)),
                        Segment::Acquire(lock),
                        Segment::Busy(Cycles::new(b / 4 + 1)),
                        Segment::Release(lock),
                    ]
                } else {
                    vec![Segment::Busy(Cycles::new(*b))]
                };
                des.add_actor(i, SegmentLoopActor::new(segs, deadline), Cycles::new(i as u64));
            }
            des.run_until(Cycles::new(1_000_000));
            des.actors().iter().map(|a| a.completed).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b, "bit-identical reruns");
        // Each actor completed roughly deadline/iteration_cost iterations
        // at most (can never exceed the lock-free bound).
        for (i, b_i) in busys.iter().enumerate() {
            let upper = 500_000 / *b_i + 2;
            prop_assert!(a[i] <= upper, "actor {i}: {} > {upper}", a[i]);
        }
    }

    #[test]
    fn des_lock_wait_accounting_consistent(
        n in 2usize..6,
        cs in 100u64..1000,
    ) {
        let mut des = Des::new(MachineConfig::hector(16));
        let lock = des.add_lock(0);
        let deadline = Cycles::new(200_000);
        for c in 0..n {
            des.add_actor(
                c,
                SegmentLoopActor::new(
                    vec![Segment::Acquire(lock), Segment::Busy(Cycles::new(cs)), Segment::Release(lock)],
                    deadline,
                ),
                Cycles::new(c as u64),
            );
        }
        des.run_until(Cycles::new(400_000));
        let ls = des.lock_stats(lock);
        let total_actor_acquires: u64 = (0..n).map(|a| des.actor_stats(a).acquires).sum();
        prop_assert_eq!(ls.acquires, total_actor_acquires);
        prop_assert!(ls.contended <= ls.acquires);
        let total_actor_wait: u64 =
            (0..n).map(|a| des.actor_stats(a).wait.as_u64()).sum();
        prop_assert_eq!(ls.total_wait.as_u64(), total_actor_wait);
    }
}
