//! The cost-charging processor model.
//!
//! Simulated kernel code executes real Rust, but narrates its machine-level
//! behaviour to a [`Cpu`]: `exec(n)` for n ALU/branch instructions,
//! [`Cpu::load`]/[`Cpu::store`] for memory accesses (which flow through the
//! cache, TLB and NUMA models), [`Cpu::trap_enter`]/[`Cpu::trap_exit`] for
//! privilege crossings, and the TLB-manipulation operations used when
//! mapping worker stacks. Each charge lands in the [`CostCategory`] on top
//! of the category stack — the categories are exactly the legend of the
//! paper's Figure 2, so the breakdown figure is measured, not asserted.

use std::collections::HashSet;
use std::fmt;

use crate::cache::{Cache, CacheOutcome};
use crate::config::MachineConfig;
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::sym::{MemAttrs, PAddr, Region, Sharing};
use crate::time::Cycles;
use crate::tlb::{Asid, Space, Tlb};
use crate::topology::Topology;

/// Processor identifier.
pub type CpuId = usize;

/// The cost categories of the paper's Figure 2, plus `Other` for work that
/// is not part of the PPC round trip (e.g. file-server service code in the
/// Figure 3 workload).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostCategory {
    /// Operations required to modify the current virtual-to-physical
    /// mappings (stack map/unmap, user-context switch).
    TlbSetup,
    /// Time spent in the worker executing the server code.
    ServerTime,
    /// Saving/restoring the minimum processor state for a process switch.
    KernelSaveRestore,
    /// Saving/restoring user-level registers that the call may clobber.
    UserSaveRestore,
    /// Call-descriptor manipulation: free-list and stack management.
    CdManip,
    /// All remaining kernel work implementing the PPC call model.
    PpcKernel,
    /// Hardware TLB miss table walks.
    TlbMiss,
    /// Two traps and the corresponding returns-from-interrupt.
    TrapOverhead,
    /// Pipeline stalls and interference the straight-line model cannot
    /// attribute elsewhere.
    Unaccounted,
    /// Work outside the PPC round trip.
    Other,
}

impl CostCategory {
    /// All categories, in the paper's legend order.
    pub const ALL: [CostCategory; 10] = [
        CostCategory::TlbSetup,
        CostCategory::ServerTime,
        CostCategory::KernelSaveRestore,
        CostCategory::UserSaveRestore,
        CostCategory::CdManip,
        CostCategory::PpcKernel,
        CostCategory::TlbMiss,
        CostCategory::TrapOverhead,
        CostCategory::Unaccounted,
        CostCategory::Other,
    ];

    /// The label used in the paper's figure legend.
    pub fn label(self) -> &'static str {
        match self {
            CostCategory::TlbSetup => "TLB setup",
            CostCategory::ServerTime => "server time",
            CostCategory::KernelSaveRestore => "kernel save/restore",
            CostCategory::UserSaveRestore => "user save/restore",
            CostCategory::CdManip => "CD manipulation",
            CostCategory::PpcKernel => "PPC kernel",
            CostCategory::TlbMiss => "TLB miss",
            CostCategory::TrapOverhead => "trap overhead",
            CostCategory::Unaccounted => "unaccounted",
            CostCategory::Other => "other",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).unwrap()
    }
}

/// Cycles charged per category over a measured interval.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostBreakdown {
    cycles: [Cycles; 10],
}

impl CostBreakdown {
    /// Cycles charged to `cat`.
    pub fn get(&self, cat: CostCategory) -> Cycles {
        self.cycles[cat.index()]
    }

    fn add(&mut self, cat: CostCategory, c: Cycles) {
        self.cycles[cat.index()] += c;
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> Cycles {
        self.cycles.iter().copied().sum()
    }

    /// Iterate `(category, cycles)` in legend order.
    pub fn iter(&self) -> impl Iterator<Item = (CostCategory, Cycles)> + '_ {
        CostCategory::ALL.iter().map(move |c| (*c, self.get(*c)))
    }

    /// Component-wise difference (saturating), for condition deltas.
    pub fn delta(&self, baseline: &CostBreakdown) -> CostBreakdown {
        let mut out = CostBreakdown::default();
        for (i, c) in out.cycles.iter_mut().enumerate() {
            *c = self.cycles[i].saturating_sub(baseline.cycles[i]);
        }
        out
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (cat, cy) in self.iter() {
            if !cy.is_zero() {
                writeln!(f, "{:<20} {:>8.2} us", cat.label(), cy.as_us())?;
            }
        }
        write!(f, "{:<20} {:>8.2} us", "TOTAL", self.total().as_us())
    }
}

/// Execution-path statistics collected while measuring, used for the
/// paper's "~200 instructions and 6 cache lines" fastpath-footprint claim
/// and for the no-shared-data/no-locks invariant tests.
#[derive(Clone, Debug, Default)]
pub struct PathStats {
    /// Instructions executed (ALU + memory).
    pub instructions: u64,
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// Data cache hits / misses.
    pub dcache_hits: u64,
    /// Data cache misses.
    pub dcache_misses: u64,
    /// Hardware TLB misses.
    pub tlb_misses: u64,
    /// Accesses to uncached-shared memory (must be 0 on the PPC fastpath).
    pub shared_accesses: u64,
    /// Lock acquisitions noted via [`Cpu::note_lock_acquire`] (must be 0 on
    /// the PPC fastpath).
    pub lock_acquires: u64,
    /// Addresses of data cache misses during the measurement (diagnosis of
    /// warm-path residual misses).
    pub miss_trace: Vec<PAddr>,
    distinct_dlines: HashSet<u64>,
}

impl PathStats {
    /// Number of distinct data cache lines touched.
    pub fn distinct_data_lines(&self) -> usize {
        self.distinct_dlines.len()
    }
}

/// A simulated Hector processor with private caches, TLB, clock, and
/// Figure-2 cost attribution.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// This processor's id (== its local memory module id).
    pub id: CpuId,
    cfg: MachineConfig,
    topo: Topology,
    clock: Cycles,
    dcache: Cache,
    icache: Cache,
    tlb: Tlb,
    mode: Space,
    cat_stack: Vec<CostCategory>,
    measuring: bool,
    breakdown: CostBreakdown,
    stats: PathStats,
    /// Fractional pipeline-stall accumulator, in units of 1/100 cycle.
    stall_acc: u64,
    trace: Trace,
}

impl Cpu {
    /// A fresh processor `id` for machine `cfg`.
    pub fn new(id: CpuId, cfg: &MachineConfig) -> Self {
        Cpu {
            id,
            cfg: cfg.clone(),
            topo: Topology::new(cfg),
            clock: Cycles::ZERO,
            dcache: Cache::new_assoc(cfg.cache_bytes, cfg.line_bytes, cfg.cache_ways),
            icache: Cache::new_assoc(cfg.cache_bytes, cfg.line_bytes, cfg.cache_ways),
            tlb: Tlb::new(cfg.tlb_entries),
            mode: Space::User,
            cat_stack: Vec::new(),
            measuring: false,
            breakdown: CostBreakdown::default(),
            stats: PathStats::default(),
            stall_acc: 0,
            trace: Trace::new(4096),
        }
    }

    /// Start recording an operation-level trace (see [`crate::trace`]).
    pub fn trace_start(&mut self) {
        self.trace.start();
    }

    /// Stop recording.
    pub fn trace_stop(&mut self) {
        self.trace.stop();
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    #[inline]
    fn trace_event(&mut self, kind: TraceKind, cost: Cycles) {
        if self.trace.is_enabled() {
            let category = self.current_cat();
            self.trace.push(TraceEvent { clock: self.clock, category, kind, cost });
        }
    }

    /// The machine configuration this CPU was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time on this processor.
    pub fn clock(&self) -> Cycles {
        self.clock
    }

    /// Current privilege mode / translation context.
    pub fn mode(&self) -> Space {
        self.mode
    }

    // ---- category plumbing ---------------------------------------------

    #[inline]
    fn current_cat(&self) -> CostCategory {
        *self.cat_stack.last().unwrap_or(&CostCategory::Other)
    }

    #[inline]
    fn charge(&mut self, cat: CostCategory, c: Cycles) {
        self.clock += c;
        if self.measuring {
            self.breakdown.add(cat, c);
        }
    }

    #[inline]
    fn charge_here(&mut self, c: Cycles) {
        let cat = self.current_cat();
        self.charge(cat, c);
    }

    /// Run `f` with charges attributed to `cat` (nestable).
    pub fn with_category<R>(&mut self, cat: CostCategory, f: impl FnOnce(&mut Cpu) -> R) -> R {
        self.cat_stack.push(cat);
        let r = f(self);
        self.cat_stack.pop();
        r
    }

    // ---- measurement ----------------------------------------------------

    /// Start attributing charges to a fresh breakdown and path statistics.
    pub fn begin_measure(&mut self) {
        self.measuring = true;
        self.breakdown = CostBreakdown::default();
        self.stats = PathStats::default();
    }

    /// Stop measuring and return the breakdown since [`Cpu::begin_measure`].
    pub fn end_measure(&mut self) -> CostBreakdown {
        self.measuring = false;
        std::mem::take(&mut self.breakdown)
    }

    /// Path statistics of the current/most recent measurement.
    pub fn path_stats(&self) -> &PathStats {
        &self.stats
    }

    // ---- instruction execution ------------------------------------------

    /// Execute `n` non-memory instructions (single-cycle issue each, plus
    /// the pipeline-stall model charged to `Unaccounted`).
    pub fn exec(&mut self, n: u64) {
        self.charge_here(Cycles(n));
        self.trace_event(TraceKind::Exec(n), Cycles(n));
        self.account_instructions(n);
    }

    fn account_instructions(&mut self, n: u64) {
        self.stats.instructions += n;
        // Pipeline stalls: `stall_per_100_inst` cycles per 100 instructions,
        // accumulated in 1/100ths to stay integer and deterministic.
        self.stall_acc += n * self.cfg.stall_per_100_inst.as_u64();
        let whole = self.stall_acc / 100;
        if whole > 0 {
            self.stall_acc %= 100;
            self.charge(CostCategory::Unaccounted, Cycles(whole));
        }
    }

    /// Fetch the instructions of `code` through the instruction cache
    /// (charges line fills for cold code). Call when control enters a
    /// simulated code body.
    pub fn fetch_code(&mut self, code: Region) {
        let line_bytes = self.cfg.line_bytes;
        let lines: Vec<u64> = code.lines(line_bytes).collect();
        for l in lines {
            let addr = PAddr(l * line_bytes as u64);
            if let CacheOutcome::Miss { .. } = self.icache.access(addr, false) {
                let fill = self.cfg.icache_fill;
                self.charge_here(fill);
                self.trace_event(TraceKind::IcacheFill(addr), fill);
            }
        }
    }

    // ---- memory access ----------------------------------------------------

    /// A load from `addr` with attributes `attrs` in the current mode.
    pub fn load(&mut self, addr: PAddr, attrs: MemAttrs) {
        self.mem_access(addr, attrs, false);
    }

    /// A store to `addr` with attributes `attrs` in the current mode.
    pub fn store(&mut self, addr: PAddr, attrs: MemAttrs) {
        self.mem_access(addr, attrs, true);
    }

    /// `n` consecutive word loads starting at `addr` (e.g. restoring a
    /// register block).
    pub fn load_words(&mut self, addr: PAddr, n: u64, attrs: MemAttrs) {
        for i in 0..n {
            self.load(addr.offset(i * 4), attrs);
        }
    }

    /// `n` consecutive word stores starting at `addr` (e.g. saving a
    /// register block).
    pub fn store_words(&mut self, addr: PAddr, n: u64, attrs: MemAttrs) {
        for i in 0..n {
            self.store(addr.offset(i * 4), attrs);
        }
    }

    fn mem_access(&mut self, addr: PAddr, attrs: MemAttrs, is_write: bool) {
        // Issue cost: one cycle, one instruction.
        self.charge_here(Cycles(1));
        self.account_instructions(1);
        if is_write {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }

        // Translation.
        let mode = self.mode;
        if !self.tlb.touch(mode, addr.page()) {
            self.stats.tlb_misses += 1;
            let miss = self.cfg.tlb_miss;
            self.charge(CostCategory::TlbMiss, miss);
            if self.trace.is_enabled() {
                self.trace.push(TraceEvent {
                    clock: self.clock,
                    category: CostCategory::TlbMiss,
                    kind: TraceKind::TlbMiss(addr),
                    cost: miss,
                });
            }
        }

        // Memory system.
        match attrs.sharing {
            Sharing::CachedPrivate => {
                if self.measuring {
                    self.stats.distinct_dlines.insert(addr.line(self.cfg.line_bytes));
                }
                match self.dcache.access(addr, is_write) {
                    CacheOutcome::Hit { was_clean_store } => {
                        self.stats.dcache_hits += 1;
                        let mut c = self.cfg.cache_hit;
                        if was_clean_store {
                            c += self.cfg.first_dirty_store;
                        }
                        self.charge_here(c);
                        let kind = if is_write {
                            TraceKind::Store(addr, true)
                        } else {
                            TraceKind::Load(addr, true)
                        };
                        self.trace_event(kind, c + Cycles(1)); // + issue
                    }
                    CacheOutcome::Miss { writeback } => {
                        self.stats.dcache_misses += 1;
                        if self.measuring {
                            self.stats.miss_trace.push(addr);
                        }
                        let mut c = self.cfg.cache_line_fill;
                        if writeback {
                            c += self.cfg.cache_line_fill;
                        }
                        if is_write {
                            c += self.cfg.first_dirty_store;
                        }
                        // Remote fills pay the interconnect distance.
                        c += self.numa_extra(attrs.home);
                        self.charge_here(c);
                        let kind = if is_write {
                            TraceKind::Store(addr, false)
                        } else {
                            TraceKind::Load(addr, false)
                        };
                        self.trace_event(kind, c + Cycles(1)); // + issue
                    }
                }
            }
            Sharing::UncachedShared => {
                self.stats.shared_accesses += 1;
                let c = self.cfg.uncached_local + self.numa_extra(attrs.home);
                self.charge_here(c);
                self.trace_event(TraceKind::SharedAccess(addr, is_write), c + Cycles(1));
            }
        }
    }

    fn numa_extra(&self, home: usize) -> Cycles {
        let hops = self.topo.hops(self.id, home) as u64;
        self.cfg.hop_extra * hops
    }

    // ---- privilege and translation management ---------------------------

    /// Trap into supervisor mode (charged to `TrapOverhead`).
    pub fn trap_enter(&mut self) {
        let c = self.cfg.trap_edge;
        self.charge(CostCategory::TrapOverhead, c);
        if self.trace.is_enabled() {
            self.trace.push(TraceEvent {
                clock: self.clock,
                category: CostCategory::TrapOverhead,
                kind: TraceKind::TrapEnter,
                cost: c,
            });
        }
        self.mode = Space::Supervisor;
    }

    /// Return from trap to user mode (charged to `TrapOverhead`).
    pub fn trap_exit(&mut self) {
        let c = self.cfg.trap_edge;
        self.charge(CostCategory::TrapOverhead, c);
        if self.trace.is_enabled() {
            self.trace.push(TraceEvent {
                clock: self.clock,
                category: CostCategory::TrapOverhead,
                kind: TraceKind::TrapExit,
                cost: c,
            });
        }
        self.mode = Space::User;
    }

    /// Force the privilege mode (used when parking/resuming processes).
    pub fn set_mode(&mut self, mode: Space) {
        self.mode = mode;
    }

    /// Install user address space `asid`; flushes and charges `TlbSetup`
    /// only when it actually changes.
    pub fn switch_user_as(&mut self, asid: Asid) {
        if self.tlb.switch_user_as(asid) {
            let c = self.cfg.tlb_user_flush;
            self.charge(CostCategory::TlbSetup, c);
            if self.trace.is_enabled() {
                self.trace.push(TraceEvent {
                    clock: self.clock,
                    category: CostCategory::TlbSetup,
                    kind: TraceKind::UserTlbFlush,
                    cost: c,
                });
            }
        }
    }

    /// The user address space currently installed.
    pub fn current_user_as(&self) -> Asid {
        self.tlb.user_asid()
    }

    /// Insert a translation for `page` in `space` (CMMU update; charged to
    /// the current category — wrap in `TlbSetup` on the map path).
    pub fn tlb_insert(&mut self, space: Space, page: u64) {
        let c = self.cfg.tlb_insert;
        self.charge_here(c);
        self.trace_event(TraceKind::TlbInsert(page), c);
        self.tlb.preload(space, page);
    }

    /// Invalidate the translation for `page` in `space`.
    pub fn tlb_invalidate(&mut self, space: Space, page: u64) {
        let c = self.cfg.tlb_insert;
        self.charge_here(c);
        self.trace_event(TraceKind::TlbInvalidate(page), c);
        self.tlb.invalidate(space, page);
    }

    /// Direct access to the TLB model (tests, condition setup).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// Direct access to the TLB model.
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    // ---- condition setup (uncharged) -------------------------------------

    /// Empty the data cache without charging (measurement condition prep:
    /// the paper's "cache flushed" bars flush the D-cache before each call).
    pub fn prep_flush_dcache(&mut self) {
        self.dcache.flush_all();
    }

    /// Fill the data cache with unrelated dirty lines so every miss also
    /// pays a victim writeback (the paper's "dirtying the cache" remark).
    pub fn prep_pollute_dcache_dirty(&mut self, salt: u64) {
        self.dcache.pollute_dirty(salt);
    }

    /// Empty the instruction cache without charging.
    pub fn prep_flush_icache(&mut self) {
        self.icache.flush_all();
    }

    /// Data cache inspection (tests).
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    // ---- synchronization bookkeeping -------------------------------------

    /// Note a lock acquisition for the invariant statistics. The cycle cost
    /// of the lock operation itself must be charged separately by the
    /// caller (spin loads are shared accesses; see the DES for contention).
    pub fn note_lock_acquire(&mut self) {
        self.stats.lock_acquires += 1;
    }

    /// Advance this CPU's clock without attribution (e.g. DES wait time).
    pub fn advance(&mut self, c: Cycles) {
        self.clock += c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::SymHeap;

    fn cpu() -> Cpu {
        Cpu::new(0, &MachineConfig::hector(4))
    }

    #[test]
    fn exec_charges_current_category() {
        let mut c = cpu();
        c.begin_measure();
        c.with_category(CostCategory::PpcKernel, |c| c.exec(50));
        let bd = c.end_measure();
        assert_eq!(bd.get(CostCategory::PpcKernel), Cycles(50));
        // 50 instructions => 6 stall cycles at 12/100.
        assert_eq!(bd.get(CostCategory::Unaccounted), Cycles(6));
    }

    #[test]
    fn load_miss_then_hit_costs() {
        let mut c = cpu();
        let mut h = SymHeap::new(0);
        let r = h.alloc(64);
        let attrs = MemAttrs::cached_private(0);
        // Pre-touch the page so the TLB is warm and we see pure cache cost.
        c.load(r.base, attrs);
        c.begin_measure();
        c.with_category(CostCategory::CdManip, |c| {
            c.load(r.base.offset(4), attrs); // hit: 1 issue + 1 hit
        });
        let bd = c.end_measure();
        assert_eq!(bd.get(CostCategory::CdManip), Cycles(2));
    }

    #[test]
    fn cold_load_pays_fill_and_tlb_walk() {
        let mut c = cpu();
        let mut h = SymHeap::new(0);
        let r = h.alloc(64);
        c.begin_measure();
        c.with_category(CostCategory::PpcKernel, |c| c.load(r.base, MemAttrs::cached_private(0)));
        let bd = c.end_measure();
        assert_eq!(bd.get(CostCategory::TlbMiss), Cycles(27));
        // 1 issue + 20 fill
        assert_eq!(bd.get(CostCategory::PpcKernel), Cycles(21));
    }

    #[test]
    fn store_to_clean_line_pays_extra() {
        let mut c = cpu();
        let mut h = SymHeap::new(0);
        let r = h.alloc(64);
        let attrs = MemAttrs::cached_private(0);
        c.load(r.base, attrs); // warm clean line + TLB
        c.begin_measure();
        c.store(r.base, attrs);
        let bd = c.end_measure();
        // 1 issue + 1 hit + 10 first-dirty-store
        assert_eq!(bd.get(CostCategory::Other), Cycles(12));
    }

    #[test]
    fn uncached_remote_pays_numa_distance() {
        let mut c = cpu();
        let mut far = SymHeap::new(3); // same station on hector(4): 1 hop
        let r = far.alloc(16);
        c.tlb_mut().preload(Space::User, r.base.page());
        c.begin_measure();
        c.load(r.base, MemAttrs::uncached_shared(3));
        let bd = c.end_measure();
        // 1 issue + 10 uncached + 6 (1 hop)
        assert_eq!(bd.total() - Cycles(0), Cycles(17));
        assert_eq!(c.path_stats().shared_accesses, 1);
    }

    #[test]
    fn traps_to_trap_overhead_and_mode_switch() {
        let mut c = cpu();
        c.begin_measure();
        c.trap_enter();
        assert_eq!(c.mode(), Space::Supervisor);
        c.trap_exit();
        assert_eq!(c.mode(), Space::User);
        let bd = c.end_measure();
        assert_eq!(bd.get(CostCategory::TrapOverhead), Cycles(28));
        assert!((bd.get(CostCategory::TrapOverhead).as_us() - 1.68).abs() < 0.1);
    }

    #[test]
    fn as_switch_only_charges_when_changing() {
        let mut c = cpu();
        c.switch_user_as(5);
        c.begin_measure();
        c.switch_user_as(5);
        assert!(c.end_measure().total().is_zero());
        c.begin_measure();
        c.switch_user_as(6);
        let bd = c.end_measure();
        assert_eq!(bd.get(CostCategory::TlbSetup), Cycles(12));
    }

    #[test]
    fn path_stats_capture_footprint() {
        let mut c = cpu();
        let mut h = SymHeap::new(0);
        let r = h.alloc(64);
        let attrs = MemAttrs::cached_private(0);
        c.begin_measure();
        c.store_words(r.base, 8, attrs); // 8 words = 32 bytes = 2 lines
        assert_eq!(c.path_stats().stores, 8);
        assert_eq!(c.path_stats().distinct_data_lines(), 2);
        assert_eq!(c.path_stats().instructions, 8);
    }

    #[test]
    fn code_fetch_charges_only_cold_lines() {
        let mut c = cpu();
        let mut h = SymHeap::new(0);
        let code = h.alloc(64); // 4 lines
        c.begin_measure();
        c.with_category(CostCategory::PpcKernel, |c| c.fetch_code(code));
        let first = c.end_measure().total();
        assert_eq!(first, Cycles(32)); // 4 streamed instruction fills
        c.begin_measure();
        c.with_category(CostCategory::PpcKernel, |c| c.fetch_code(code));
        assert!(c.end_measure().total().is_zero(), "warm code is free");
    }

    #[test]
    fn breakdown_display_and_delta() {
        let mut c = cpu();
        c.begin_measure();
        c.with_category(CostCategory::PpcKernel, |c| c.exec(100));
        let a = c.end_measure();
        c.begin_measure();
        c.with_category(CostCategory::PpcKernel, |c| c.exec(150));
        let b = c.end_measure();
        let d = b.delta(&a);
        assert_eq!(d.get(CostCategory::PpcKernel), Cycles(50));
        assert!(format!("{a}").contains("TOTAL"));
    }
}
