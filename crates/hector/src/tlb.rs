//! Dual-context TLB model (MC88200 PATC).
//!
//! The MC88200 keeps separate translation contexts for user and supervisor
//! mode, selected by a bit — so a trap into the kernel does **not** disturb
//! user translations, and a call to a *kernel-space* server needs no TLB
//! flush at all. Switching the user context to a *different* address space,
//! however, invalidates every user entry: this is the mechanism behind the
//! paper's 10 µs gap between user-to-user and user-to-kernel PPC calls.
//!
//! A miss triggers the hardware table walk: 27 cycles on Hector.

use std::collections::HashSet;
use std::collections::VecDeque;

/// Address-space identifier. `ASID_KERNEL` is the supervisor space.
pub type Asid = u32;

/// The supervisor address space id.
pub const ASID_KERNEL: Asid = 0;

/// Which translation context an access uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Space {
    /// User context (current user address space).
    User,
    /// Supervisor context (kernel mappings, never flushed by AS switches).
    Supervisor,
}

/// One translation context: a FIFO-replacement set of resident page numbers.
#[derive(Clone, Debug)]
struct Context {
    resident: HashSet<u64>,
    fifo: VecDeque<u64>,
    capacity: usize,
}

impl Context {
    fn new(capacity: usize) -> Self {
        Context { resident: HashSet::new(), fifo: VecDeque::new(), capacity }
    }

    /// Returns `true` on hit; on miss, inserts the page (evicting FIFO-oldest).
    fn touch(&mut self, page: u64) -> bool {
        if self.resident.contains(&page) {
            return true;
        }
        if self.fifo.len() == self.capacity {
            if let Some(old) = self.fifo.pop_front() {
                self.resident.remove(&old);
            }
        }
        self.fifo.push_back(page);
        self.resident.insert(page);
        false
    }

    fn invalidate(&mut self, page: u64) {
        if self.resident.remove(&page) {
            self.fifo.retain(|p| *p != page);
        }
    }

    fn flush(&mut self) {
        self.resident.clear();
        self.fifo.clear();
    }

    fn preload(&mut self, page: u64) {
        self.touch(page);
    }
}

/// The dual-context TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    user: Context,
    supervisor: Context,
    user_asid: Asid,
    misses: u64,
    user_flushes: u64,
}

impl Tlb {
    /// A TLB with `entries` slots per context.
    pub fn new(entries: usize) -> Self {
        Tlb {
            user: Context::new(entries),
            supervisor: Context::new(entries),
            user_asid: ASID_KERNEL,
            misses: 0,
            user_flushes: 0,
        }
    }

    /// The address space currently installed in the user context.
    pub fn user_asid(&self) -> Asid {
        self.user_asid
    }

    /// Translate `page` in `space`. Returns `true` on hit. On a miss the
    /// entry is installed (hardware table walk) and `false` is returned so
    /// the CPU layer can charge the 27-cycle walk.
    pub fn touch(&mut self, space: Space, page: u64) -> bool {
        let hit = match space {
            Space::User => self.user.touch(page),
            Space::Supervisor => self.supervisor.touch(page),
        };
        if !hit {
            self.misses += 1;
        }
        hit
    }

    /// Is a translation resident (without touching)?
    pub fn is_resident(&self, space: Space, page: u64) -> bool {
        match space {
            Space::User => self.user.resident.contains(&page),
            Space::Supervisor => self.supervisor.resident.contains(&page),
        }
    }

    /// Install the user context for `asid`. If it differs from the resident
    /// one, the user context is flushed; returns `true` in that case (the
    /// CPU layer charges the CMMU flush cost and the caller will see the
    /// subsequent refill misses).
    pub fn switch_user_as(&mut self, asid: Asid) -> bool {
        if asid == self.user_asid {
            return false;
        }
        self.user.flush();
        self.user_asid = asid;
        self.user_flushes += 1;
        true
    }

    /// Invalidate one translation (used on unmap — the paper's stack
    /// recycling unmaps the worker stack from the server space on return).
    pub fn invalidate(&mut self, space: Space, page: u64) {
        match space {
            Space::User => self.user.invalidate(page),
            Space::Supervisor => self.supervisor.invalidate(page),
        }
    }

    /// Pre-install a translation without charging a miss (e.g. the mapping
    /// inserted by the kernel while setting up a worker stack).
    pub fn preload(&mut self, space: Space, page: u64) {
        match space {
            Space::User => self.user.preload(page),
            Space::Supervisor => self.supervisor.preload(page),
        }
    }

    /// Total hardware misses so far.
    pub fn miss_count(&self) -> u64 {
        self.misses
    }

    /// Number of user-context flushes (address space switches).
    pub fn user_flush_count(&self) -> u64 {
        self.user_flushes
    }

    /// Empty both contexts (e.g. between measurement conditions).
    pub fn flush_all(&mut self) {
        self.user.flush();
        self.supervisor.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert!(!t.touch(Space::User, 10));
        assert!(t.touch(Space::User, 10));
        assert_eq!(t.miss_count(), 1);
    }

    #[test]
    fn contexts_are_independent() {
        let mut t = Tlb::new(4);
        t.touch(Space::Supervisor, 7);
        assert!(!t.is_resident(Space::User, 7));
        assert!(t.is_resident(Space::Supervisor, 7));
    }

    #[test]
    fn user_as_switch_flushes_only_user_context() {
        let mut t = Tlb::new(4);
        t.touch(Space::User, 1);
        t.touch(Space::Supervisor, 2);
        assert!(t.switch_user_as(5));
        assert!(!t.is_resident(Space::User, 1), "user entries gone");
        assert!(t.is_resident(Space::Supervisor, 2), "supervisor survives");
        assert_eq!(t.user_flush_count(), 1);
    }

    #[test]
    fn same_as_switch_is_free() {
        let mut t = Tlb::new(4);
        t.switch_user_as(5);
        t.touch(Space::User, 1);
        assert!(!t.switch_user_as(5));
        assert!(t.is_resident(Space::User, 1));
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut t = Tlb::new(2);
        t.touch(Space::User, 1);
        t.touch(Space::User, 2);
        t.touch(Space::User, 3); // evicts 1
        assert!(!t.is_resident(Space::User, 1));
        assert!(t.is_resident(Space::User, 2));
        assert!(t.is_resident(Space::User, 3));
    }

    #[test]
    fn invalidate_removes_single_entry() {
        let mut t = Tlb::new(4);
        t.touch(Space::User, 1);
        t.touch(Space::User, 2);
        t.invalidate(Space::User, 1);
        assert!(!t.is_resident(Space::User, 1));
        assert!(t.is_resident(Space::User, 2));
    }

    #[test]
    fn preload_does_not_count_as_miss() {
        let mut t = Tlb::new(4);
        t.preload(Space::User, 9);
        // preload internally uses touch, so the miss counter moves; what
        // matters is the *subsequent* access hits.
        let before = t.miss_count();
        assert!(t.touch(Space::User, 9));
        assert_eq!(t.miss_count(), before);
    }
}
