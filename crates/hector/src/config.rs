//! Machine configuration: sizes and primitive costs.
//!
//! Every cost constant here is taken from the hardware description in §3 of
//! the paper (or from the Hector/88200 literature where the paper is
//! silent). The Figure 2 totals are *not* inputs — they emerge from running
//! the modelled fastpath against these primitive costs.

use crate::time::Cycles;

/// Full parameterization of the simulated machine.
///
/// Construct via [`MachineConfig::hector`] for the paper's platform, then
/// adjust fields for ablations (e.g. `cache_line_fill = 40` to model a
/// slower memory system).
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processors (the paper's machine: 16).
    pub n_cpus: usize,
    /// Processors per Hector station (locality cluster on one bus).
    pub station_size: usize,

    // ---- Cache geometry (MC88200 CMMU) ----
    /// Data/instruction cache size in bytes (16 KB each on Hector).
    pub cache_bytes: usize,
    /// Cache line size in bytes (16 B).
    pub line_bytes: usize,
    /// Cache associativity (the MC88200 is 4-way set-associative).
    pub cache_ways: usize,

    // ---- Primitive costs, §3 of the paper ----
    /// Uncached access to *local* memory: 10 cycles.
    pub uncached_local: Cycles,
    /// Cache line fill (load miss) or writeback: 20 cycles.
    pub cache_line_fill: Cycles,
    /// Extra cost of the first store to a clean cache line: 10 cycles.
    pub first_dirty_store: Cycles,
    /// Cache hit cost (pipelined single-cycle access).
    pub cache_hit: Cycles,
    /// Hardware TLB miss (table walk): 27 cycles.
    pub tlb_miss: Cycles,
    /// TLB entries per context (MC88200 PATC).
    pub tlb_entries: usize,
    /// One trap *or* one return-from-interrupt. The paper reports
    /// "a trap to (and return from) supervisor mode requires ~1.7 usec",
    /// i.e. ~28 cycles for the pair; we charge half to each edge.
    pub trap_edge: Cycles,
    /// Extra interconnect cycles per ring hop for a remote memory access
    /// (NUMA distance). On-station remote: one hop.
    pub hop_extra: Cycles,
    /// Cost of invalidating/flushing the user TLB context on an address
    /// space switch (write to CMMU control register, per CMMU pair).
    pub tlb_user_flush: Cycles,
    /// Cost of inserting/overwriting a single PTE mapping (page-table store
    /// is charged separately; this is the CMMU probe/update overhead).
    pub tlb_insert: Cycles,
    /// Instruction-cache line fill. Cheaper than a data fill because the
    /// 88200 streams sequential code and overlaps the fill with execution.
    pub icache_fill: Cycles,

    // ---- Modelling knobs (documented deviations) ----
    /// Pipeline-stall overhead charged per 100 executed instructions,
    /// attributed to the `Unaccounted` category. The paper attributes its
    /// unaccounted time to "pipeline stalls, extra TLB misses, and cache
    /// misses caused by cache interference"; the M88100 stalls on
    /// load-use hazards and branches, which a straight-line cost model
    /// cannot see. 12 cycles/100 instructions reproduces the paper's
    /// unaccounted share without affecting any *relative* result.
    pub stall_per_100_inst: Cycles,
    /// When a contended lock changes owner, the line must be re-fetched
    /// across the interconnect (uncached shared access + hop costs are
    /// charged separately); this adds the arbitration overhead.
    pub lock_handover: Cycles,
    /// Interference added to a critical section per concurrently-spinning
    /// waiter (memory/interconnect contention from the spin traffic).
    pub spin_interference: Cycles,
}

impl MachineConfig {
    /// The paper's evaluation platform: a 16-processor Hector, truncated to
    /// `n_cpus` processors (1..=16 in the experiments).
    pub fn hector(n_cpus: usize) -> Self {
        assert!(n_cpus >= 1, "a machine needs at least one processor");
        MachineConfig {
            n_cpus,
            station_size: 4,
            cache_bytes: 16 * 1024,
            line_bytes: 16,
            cache_ways: 4,
            uncached_local: Cycles(10),
            cache_line_fill: Cycles(20),
            first_dirty_store: Cycles(10),
            cache_hit: Cycles(1),
            tlb_miss: Cycles(27),
            tlb_entries: 56,
            trap_edge: Cycles(14),
            hop_extra: Cycles(6),
            tlb_user_flush: Cycles(12),
            tlb_insert: Cycles(4),
            icache_fill: Cycles(8),
            stall_per_100_inst: Cycles(12),
            lock_handover: Cycles(12),
            spin_interference: Cycles(4),
        }
    }

    /// Number of lines in each cache.
    pub fn cache_lines(&self) -> usize {
        self.cache_bytes / self.line_bytes
    }

    /// The paper's full 16-processor machine.
    pub fn hector16() -> Self {
        Self::hector(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hector_defaults_match_paper() {
        let c = MachineConfig::hector16();
        assert_eq!(c.n_cpus, 16);
        assert_eq!(c.cache_bytes, 16 * 1024);
        assert_eq!(c.line_bytes, 16);
        assert_eq!(c.cache_lines(), 1024);
        assert_eq!(c.uncached_local, Cycles(10));
        assert_eq!(c.cache_line_fill, Cycles(20));
        assert_eq!(c.first_dirty_store, Cycles(10));
        assert_eq!(c.tlb_miss, Cycles(27));
        // trap + return-from-trap pair ~1.7us = ~28 cycles.
        let pair = c.trap_edge * 2;
        assert!((pair.as_us() - 1.7).abs() < 0.1, "{}", pair);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_cpus_rejected() {
        MachineConfig::hector(0);
    }
}
