//! The assembled machine: processors plus per-module symbolic heaps.

use crate::config::MachineConfig;
use crate::cpu::{Cpu, CpuId};
use crate::sym::{Region, SymHeap};
use crate::topology::Topology;

/// A simulated Hector machine.
///
/// Owns one [`Cpu`] and one [`SymHeap`] per processor module. Simulated
/// kernel objects allocate symbolic memory from the heap of the module they
/// should be homed on ([`Machine::alloc_on`]) — per-processor PPC resources
/// are homed locally, which is exactly what makes the fastpath NUMA-neutral.
#[derive(Clone, Debug)]
pub struct Machine {
    cfg: MachineConfig,
    topo: Topology,
    cpus: Vec<Cpu>,
    heaps: Vec<SymHeap>,
}

impl Machine {
    /// Build a machine with `cfg.n_cpus` processors.
    pub fn new(cfg: MachineConfig) -> Self {
        let cpus = (0..cfg.n_cpus).map(|i| Cpu::new(i, &cfg)).collect();
        let heaps = (0..cfg.n_cpus).map(SymHeap::new).collect();
        let topo = Topology::new(&cfg);
        Machine { cfg, topo, cpus, heaps }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The interconnect topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of processors.
    pub fn n_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Immutable access to processor `id`.
    pub fn cpu(&self, id: CpuId) -> &Cpu {
        &self.cpus[id]
    }

    /// Mutable access to processor `id`.
    pub fn cpu_mut(&mut self, id: CpuId) -> &mut Cpu {
        &mut self.cpus[id]
    }

    /// Allocate `bytes` of symbolic memory homed on `cpu`'s local module.
    /// `what` documents the allocation (kept for debugging symmetry with a
    /// real kernel's named pools; not stored).
    pub fn alloc_on(&mut self, cpu: CpuId, bytes: u64, what: &str) -> Region {
        let _ = what;
        self.heaps[cpu].alloc(bytes)
    }

    /// Allocate one page-aligned page homed on `cpu`'s local module.
    pub fn alloc_page_on(&mut self, cpu: CpuId, what: &str) -> Region {
        let _ = what;
        self.heaps[cpu].alloc_page()
    }

    /// Allocate globally-shared memory. Homed on module 0, as a central
    /// kernel would place boot-time shared structures.
    pub fn alloc_shared(&mut self, bytes: u64, what: &str) -> Region {
        self.alloc_on(0, bytes, what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_has_per_cpu_heaps() {
        let mut m = Machine::new(MachineConfig::hector(4));
        assert_eq!(m.n_cpus(), 4);
        let a = m.alloc_on(2, 64, "x");
        assert_eq!(a.base.module(), 2);
        let p = m.alloc_page_on(3, "stack");
        assert_eq!(p.base.module(), 3);
        assert_eq!(p.len, 4096);
    }

    #[test]
    fn cpus_have_matching_ids() {
        let m = Machine::new(MachineConfig::hector(3));
        for i in 0..3 {
            assert_eq!(m.cpu(i).id, i);
        }
    }
}
