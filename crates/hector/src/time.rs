//! Simulated time: processor cycles and their conversion to wall-clock time.
//!
//! Hector's Motorola 88100 processors run at 16.67 MHz, i.e. one cycle every
//! 60 ns. All simulator accounting is in integer [`Cycles`]; conversion to
//! microseconds happens only at reporting time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds per processor cycle at 16.67 MHz.
pub const CYCLE_NS: f64 = 60.0;

/// A duration (or point in time) measured in processor cycles.
///
/// `Cycles` is a transparent `u64` newtype with saturating subtraction —
/// simulated clocks never go negative — and checked addition in debug
/// builds via the standard integer overflow checks.
///
/// ```
/// use hector_sim::Cycles;
/// // The paper's warm user-to-user round trip: 32.4 us at 16.67 MHz.
/// assert!((Cycles::new(540).as_us() - 32.4).abs() < 1e-9);
/// assert_eq!(Cycles::new(10) - Cycles::new(30), Cycles::ZERO); // saturates
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Construct from a raw cycle count.
    #[inline]
    pub const fn new(c: u64) -> Self {
        Cycles(c)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This duration expressed in nanoseconds at the Hector clock rate.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 * CYCLE_NS
    }

    /// This duration expressed in microseconds at the Hector clock rate.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.as_ns() / 1000.0
    }

    /// This duration expressed in seconds at the Hector clock rate.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.as_ns() / 1e9
    }

    /// Construct the number of whole cycles closest to `us` microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Cycles((us * 1000.0 / CYCLE_NS).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// `true` when zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles ({:.2} us)", self.0, self.as_us())
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl From<u64> for Cycles {
    fn from(c: u64) -> Self {
        Cycles(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_to_us_matches_clock_rate() {
        // 16.67 MHz => 60 ns/cycle; 540 cycles = 32.4 us (the paper's
        // warm user-to-user round trip).
        let c = Cycles::new(540);
        assert!((c.as_us() - 32.4).abs() < 1e-9);
    }

    #[test]
    fn from_us_round_trips() {
        for us in [0.0, 1.7, 32.4, 66.0, 100.0] {
            let c = Cycles::from_us(us);
            assert!((c.as_us() - us).abs() < CYCLE_NS / 1000.0);
        }
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Cycles::new(100);
        let b = Cycles::new(40);
        assert_eq!(a + b, Cycles::new(140));
        assert_eq!(a - b, Cycles::new(60));
        assert_eq!(b - a, Cycles::ZERO, "subtraction saturates");
        assert_eq!(a * 3, Cycles::new(300));
        assert_eq!(a / 4, Cycles::new(25));
        let mut c = a;
        c += b;
        assert_eq!(c, Cycles::new(140));
        c -= Cycles::new(1000);
        assert_eq!(c, Cycles::ZERO);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
    }

    #[test]
    fn display_includes_us() {
        let s = format!("{}", Cycles::new(540));
        assert!(s.contains("32.40 us"), "{s}");
    }
}
