//! Hector's NUMA interconnect topology.
//!
//! Hector (Vranesic et al., IEEE Computer 1991) groups processor+memory
//! modules into *stations* connected by a hierarchy of rings. An access to
//! memory on the same module is local; an access to another module on the
//! same station crosses the station bus (one hop); an access to another
//! station additionally traverses the ring (more hops with distance).
//!
//! The simulator charges [`MachineConfig::hop_extra`](crate::MachineConfig)
//! extra cycles per hop for uncached remote accesses, making NUMA distance
//! visible to workloads that share data — while the PPC fastpath, which by
//! design touches only CPU-local memory, pays nothing.

use crate::config::MachineConfig;

/// Identifies the memory module co-located with a processor.
pub type ModuleId = usize;

/// Ring-of-stations distance model.
#[derive(Clone, Debug)]
pub struct Topology {
    n_cpus: usize,
    station_size: usize,
}

impl Topology {
    /// Build the topology described by `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        assert!(cfg.station_size >= 1);
        Topology {
            n_cpus: cfg.n_cpus,
            station_size: cfg.station_size,
        }
    }

    /// Number of processors (== number of memory modules).
    pub fn n_cpus(&self) -> usize {
        self.n_cpus
    }

    /// The station a processor belongs to.
    pub fn station_of(&self, cpu: usize) -> usize {
        cpu / self.station_size
    }

    /// Number of interconnect hops between a processor and a memory module.
    ///
    /// 0 = local module; 1 = same station, different module; otherwise
    /// 1 + the ring distance between the stations (shortest way around).
    pub fn hops(&self, cpu: usize, module: ModuleId) -> usize {
        assert!(cpu < self.n_cpus, "cpu {cpu} out of range");
        assert!(module < self.n_cpus, "module {module} out of range");
        if cpu == module {
            return 0;
        }
        let (sa, sb) = (self.station_of(cpu), self.station_of(module));
        if sa == sb {
            return 1;
        }
        let n_stations = self.n_cpus.div_ceil(self.station_size);
        let d = sa.abs_diff(sb);
        let ring = d.min(n_stations - d);
        1 + ring
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(n: usize) -> Topology {
        Topology::new(&MachineConfig::hector(n))
    }

    #[test]
    fn local_access_is_zero_hops() {
        let t = topo(16);
        for cpu in 0..16 {
            assert_eq!(t.hops(cpu, cpu), 0);
        }
    }

    #[test]
    fn same_station_is_one_hop() {
        let t = topo(16);
        assert_eq!(t.hops(0, 1), 1);
        assert_eq!(t.hops(2, 3), 1);
        assert_eq!(t.station_of(3), 0);
        assert_eq!(t.station_of(4), 1);
    }

    #[test]
    fn cross_station_adds_ring_distance() {
        let t = topo(16); // 4 stations on the ring
        assert_eq!(t.hops(0, 4), 2); // adjacent stations
        assert_eq!(t.hops(0, 8), 3); // opposite side of the ring
        assert_eq!(t.hops(0, 12), 2); // ring wraps: distance 1 the short way
    }

    #[test]
    fn hops_symmetric_in_station_distance() {
        let t = topo(16);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn small_machine_single_station() {
        let t = topo(3);
        assert_eq!(t.hops(0, 2), 1);
        assert_eq!(t.hops(1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cpu_panics() {
        topo(4).hops(4, 0);
    }
}
