//! Set-associative write-back cache model (MC88200 CMMU).
//!
//! Hector's MC88200 cache/MMU chips provide 16 KB, **4-way set-associative**
//! caches with 16-byte lines and write-back policy — and, crucially for the
//! paper, **no hardware coherence**. The model tracks tag and dirty state
//! per way and reports the *outcome* of each access; the CPU layer
//! translates outcomes into cycle charges. Replacement within a set is
//! FIFO (the 88200 used a pseudo-random/FIFO scheme; FIFO keeps the
//! simulator deterministic).

use crate::sym::PAddr;

/// Outcome of a cache access, used by the CPU layer for cycle accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present; for stores, says whether the line was already dirty.
    Hit {
        /// Store hit a line that was still clean (first dirty store costs extra).
        was_clean_store: bool,
    },
    /// Line absent; line fill required, possibly after writing back a victim.
    Miss {
        /// The victim line was dirty and must be written back first.
        writeback: bool,
    },
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: Option<u64>,
    dirty: bool,
}

/// A set-associative, write-back cache.
///
/// ```
/// use hector_sim::cache::{Cache, CacheOutcome};
/// use hector_sim::PAddr;
/// let mut c = Cache::new(16 * 1024, 16); // the MC88200: 4-way
/// let a = PAddr::compose(0, 0x1000);
/// assert!(matches!(c.access(a, false), CacheOutcome::Miss { .. }));
/// assert!(matches!(c.access(a, true), CacheOutcome::Hit { was_clean_store: true }));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    line_bytes: usize,
    n_sets: usize,
    ways: usize,
    /// `n_sets * ways` entries, set-major.
    lines: Vec<Way>,
    /// FIFO replacement pointer per set.
    next_victim: Vec<u8>,
    // statistics
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// A cache of `cache_bytes` with `line_bytes` lines and `ways`-way
    /// associativity (`ways = 1` models a direct-mapped cache).
    pub fn new_assoc(cache_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(line_bytes.is_power_of_two() && cache_bytes.is_multiple_of(line_bytes));
        assert!(ways >= 1 && (cache_bytes / line_bytes).is_multiple_of(ways));
        let n_sets = cache_bytes / line_bytes / ways;
        Cache {
            line_bytes,
            n_sets,
            ways,
            lines: vec![Way::default(); n_sets * ways],
            next_victim: vec![0; n_sets],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The MC88200 configuration: 4-way set-associative.
    pub fn new(cache_bytes: usize, line_bytes: usize) -> Self {
        Self::new_assoc(cache_bytes, line_bytes, 4)
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line % self.n_sets as u64) as usize
    }

    #[inline]
    fn set_slice(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// The global line number an address maps to.
    #[inline]
    pub fn line_of(&self, addr: PAddr) -> u64 {
        addr.line(self.line_bytes)
    }

    /// Access `addr`; updates tag/dirty state and returns the outcome.
    pub fn access(&mut self, addr: PAddr, is_write: bool) -> CacheOutcome {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let range = self.set_slice(set);
        // Hit check.
        for i in range.clone() {
            if self.lines[i].tag == Some(line) {
                self.hits += 1;
                let was_clean_store = is_write && !self.lines[i].dirty;
                if is_write {
                    self.lines[i].dirty = true;
                }
                return CacheOutcome::Hit { was_clean_store };
            }
        }
        // Miss: prefer an invalid way, else FIFO victim.
        self.misses += 1;
        let victim = range
            .clone()
            .find(|i| self.lines[*i].tag.is_none())
            .unwrap_or_else(|| {
                let v = range.start + self.next_victim[set] as usize;
                self.next_victim[set] = ((self.next_victim[set] as usize + 1) % self.ways) as u8;
                v
            });
        let writeback = self.lines[victim].tag.is_some() && self.lines[victim].dirty;
        if writeback {
            self.writebacks += 1;
        }
        self.lines[victim] = Way { tag: Some(line), dirty: is_write };
        CacheOutcome::Miss { writeback }
    }

    /// Is the line containing `addr` currently resident?
    pub fn contains(&self, addr: PAddr) -> bool {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.set_slice(set).any(|i| self.lines[i].tag == Some(line))
    }

    /// Invalidate everything without writeback (simulating a cache that has
    /// been flushed and invalidated between measurements). Returns the
    /// number of lines that were dirty (a real flush would write them back;
    /// callers charging for the flush can use this count).
    pub fn flush_all(&mut self) -> usize {
        let dirty = self.lines.iter().filter(|w| w.tag.is_some() && w.dirty).count();
        self.lines.fill(Way::default());
        self.next_victim.fill(0);
        dirty
    }

    /// Invalidate the single line containing `addr` (no writeback charge).
    pub fn invalidate_line(&mut self, addr: PAddr) {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        for i in self.set_slice(set) {
            if self.lines[i].tag == Some(line) {
                self.lines[i] = Way::default();
            }
        }
    }

    /// Mark every currently-resident line dirty — used to set up the
    /// "dirty cache" condition of the paper's Figure 2 discussion, where
    /// misses additionally pay victim writebacks.
    pub fn dirty_all(&mut self) {
        for w in &mut self.lines {
            if w.tag.is_some() {
                w.dirty = true;
            }
        }
    }

    /// Fill the whole cache with unrelated dirty lines, so that every
    /// subsequent miss also pays a victim writeback. `salt` selects a
    /// disjoint address universe.
    pub fn pollute_dirty(&mut self, salt: u64) {
        for set in 0..self.n_sets {
            for w in 0..self.ways {
                // A line congruent to `set` modulo n_sets, from a foreign
                // universe so it can never match a real address.
                let line = (1u64 << 40)
                    + (salt * self.ways as u64 + w as u64 + 1) * self.n_sets as u64
                    + set as u64;
                debug_assert_eq!(self.set_of(line), set);
                self.lines[set * self.ways + w] = Way { tag: Some(line), dirty: true };
            }
        }
    }

    /// (hits, misses, writebacks) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.writebacks)
    }

    /// Reset statistics counters (state is untouched).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Associativity of this cache.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::PAddr;

    /// 4 sets x 2 ways of 16-byte lines for easy conflict construction.
    fn small() -> Cache {
        Cache::new_assoc(128, 16, 2)
    }

    fn a(off: u64) -> PAddr {
        PAddr::compose(0, off)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(matches!(c.access(a(0), false), CacheOutcome::Miss { writeback: false }));
        assert!(matches!(c.access(a(4), false), CacheOutcome::Hit { .. }));
        assert!(matches!(c.access(a(15), false), CacheOutcome::Hit { .. }));
        assert!(matches!(c.access(a(16), false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn first_store_to_clean_line_flagged() {
        let mut c = small();
        c.access(a(0), false); // fill clean
        match c.access(a(0), true) {
            CacheOutcome::Hit { was_clean_store } => assert!(was_clean_store),
            o => panic!("expected hit, got {o:?}"),
        }
        match c.access(a(8), true) {
            CacheOutcome::Hit { was_clean_store } => assert!(!was_clean_store, "already dirty"),
            o => panic!("expected hit, got {o:?}"),
        }
    }

    #[test]
    fn associativity_absorbs_one_conflict() {
        let mut c = small(); // 4 sets, 2 ways: set stride = 64 bytes
        c.access(a(0), false);
        c.access(a(64), false); // same set, second way
        assert!(c.contains(a(0)), "two-way set holds both lines");
        assert!(c.contains(a(64)));
        c.access(a(128), false); // third line: evicts FIFO victim (line 0)
        assert!(!c.contains(a(0)));
        assert!(c.contains(a(64)));
        assert!(c.contains(a(128)));
    }

    #[test]
    fn conflict_eviction_writes_back_dirty_victim() {
        let mut c = small();
        c.access(a(0), true); // set 0, way 0, dirty
        c.access(a(64), false); // set 0, way 1, clean
        match c.access(a(128), false) {
            // FIFO victim is the dirty line 0.
            CacheOutcome::Miss { writeback } => assert!(writeback),
            o => panic!("{o:?}"),
        }
        match c.access(a(192), false) {
            // Next victim is the clean line 64.
            CacheOutcome::Miss { writeback } => assert!(!writeback),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn direct_mapped_mode_conflicts_immediately() {
        let mut c = Cache::new_assoc(64, 16, 1);
        c.access(a(0), true);
        match c.access(a(64), false) {
            CacheOutcome::Miss { writeback } => assert!(writeback),
            o => panic!("{o:?}"),
        }
        assert!(!c.contains(a(0)));
    }

    #[test]
    fn flush_reports_dirty_count_and_empties() {
        let mut c = small();
        c.access(a(0), true);
        c.access(a(16), false);
        c.access(a(32), true);
        assert_eq!(c.flush_all(), 2);
        assert!(!c.contains(a(0)));
        assert!(matches!(c.access(a(0), false), CacheOutcome::Miss { writeback: false }));
    }

    #[test]
    fn pollute_dirty_makes_every_miss_pay_writeback() {
        let mut c = small();
        c.pollute_dirty(1);
        for off in [0u64, 16, 32, 48, 64] {
            match c.access(a(off), false) {
                CacheOutcome::Miss { writeback } => assert!(writeback),
                o => panic!("{o:?}"),
            }
        }
    }

    #[test]
    fn stats_track_accesses() {
        let mut c = small();
        c.access(a(0), false);
        c.access(a(0), false);
        c.access(a(0), true);
        let (h, m, w) = c.stats();
        assert_eq!((h, m, w), (2, 1, 0));
        c.reset_stats();
        assert_eq!(c.stats(), (0, 0, 0));
    }

    #[test]
    fn different_modules_do_not_alias() {
        let mut c = small();
        c.access(PAddr::compose(0, 0), false);
        // Same module offset on another module is a different global line.
        assert!(matches!(
            c.access(PAddr::compose(1, 0), false),
            CacheOutcome::Miss { .. }
        ));
    }

    #[test]
    fn invalidate_line_removes_only_that_line() {
        let mut c = small();
        c.access(a(0), true);
        c.access(a(16), true);
        c.invalidate_line(a(0));
        assert!(!c.contains(a(0)));
        assert!(c.contains(a(16)));
    }

    #[test]
    fn default_is_4way() {
        assert_eq!(Cache::new(16 * 1024, 16).ways(), 4);
    }
}
