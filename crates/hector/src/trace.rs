//! Execution tracing: the simulator's answer to "direct inspection of the
//! compiler generated assembly code".
//!
//! The paper's Figure 2 was produced from "a detailed description of the
//! architecture, low-level measurements, and direct inspection of the
//! compiler generated assembly code". When tracing is enabled on a
//! [`Cpu`](crate::cpu::Cpu), every charged operation is appended to a
//! bounded trace buffer with its cost category, kind, address and cycle
//! cost — so a user can read the anatomy of a PPC call operation by
//! operation (see the `call_anatomy` example).
//!
//! This format is deliberately **not** unified with the real-threads
//! runtime's observability plane (`ppc-rt`'s sampled latency histograms
//! and packed 16-byte flight-recorder events). The two answer different
//! questions in different domains: the runtime plane summarizes
//! *wall-clock nanoseconds* statistically, sampling 1-in-N calls and
//! retaining a bounded ring of recent events, because on the hot path
//! measurement itself is a tax to be minimized. The simulator operates
//! in the *cycle* domain where observation is free — tracing here must
//! be **lossless and exhaustively attributed** (every charged cycle
//! tagged with a [`CostCategory`]), since Figure 2's breakdown and the
//! §5 instruction/cache-line counts are exact accountings, not
//! percentile summaries. Collapsing either format into the other would
//! forfeit what that side exists to provide.

use std::fmt;

use crate::cpu::CostCategory;
use crate::sym::PAddr;
use crate::time::Cycles;

/// What kind of machine operation a trace event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// `n` ALU/branch instructions.
    Exec(u64),
    /// A load (address, whether it hit the data cache).
    Load(PAddr, bool),
    /// A store (address, whether it hit the data cache).
    Store(PAddr, bool),
    /// An uncached shared-memory access (address, is_write).
    SharedAccess(PAddr, bool),
    /// A hardware TLB miss walk for the page containing the address.
    TlbMiss(PAddr),
    /// A trap edge into supervisor mode.
    TrapEnter,
    /// A return-from-trap edge to user mode.
    TrapExit,
    /// The user TLB context was flushed (address-space switch).
    UserTlbFlush,
    /// An instruction-cache line fill.
    IcacheFill(PAddr),
    /// A TLB entry was installed (stack-window map).
    TlbInsert(u64),
    /// A TLB entry was invalidated (stack-window unmap).
    TlbInvalidate(u64),
}

/// One charged operation.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Simulated time at which the operation completed.
    pub clock: Cycles,
    /// Cost category the charge was attributed to.
    pub category: CostCategory,
    /// The operation.
    pub kind: TraceKind,
    /// Cycles charged.
    pub cost: Cycles,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            TraceKind::Exec(n) => format!("exec x{n}"),
            TraceKind::Load(a, hit) => {
                format!("load  {a:?} {}", if hit { "(hit)" } else { "(MISS)" })
            }
            TraceKind::Store(a, hit) => {
                format!("store {a:?} {}", if hit { "(hit)" } else { "(MISS)" })
            }
            TraceKind::SharedAccess(a, w) => {
                format!("{} {a:?} UNCACHED-SHARED", if w { "store" } else { "load " })
            }
            TraceKind::TlbMiss(a) => format!("tlb-miss page of {a:?}"),
            TraceKind::TrapEnter => "trap enter".to_string(),
            TraceKind::TrapExit => "trap exit (rfi)".to_string(),
            TraceKind::UserTlbFlush => "user TLB context flush".to_string(),
            TraceKind::IcacheFill(a) => format!("icache fill {a:?}"),
            TraceKind::TlbInsert(p) => format!("tlb insert page {p:#x}"),
            TraceKind::TlbInvalidate(p) => format!("tlb invalidate page {p:#x}"),
        };
        write!(
            f,
            "{:>9} +{:<3} [{}] {}",
            self.clock.as_u64(),
            self.cost.as_u64(),
            self.category.label(),
            kind
        )
    }
}

/// A bounded trace buffer (drops the oldest events when full).
#[derive(Clone, Debug)]
pub struct Trace {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// A disabled trace with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            enabled: false,
            dropped: 0,
        }
    }

    /// Start recording (clears previous events).
    pub fn start(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.enabled = true;
    }

    /// Stop recording.
    pub fn stop(&mut self) {
        self.enabled = false;
    }

    /// Is the trace recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (no-op when disabled).
    pub fn push(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total cycles across recorded events.
    pub fn total_cycles(&self) -> Cycles {
        self.events.iter().map(|e| e.cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(clock: u64, cost: u64) -> TraceEvent {
        TraceEvent {
            clock: Cycles(clock),
            category: CostCategory::PpcKernel,
            kind: TraceKind::Exec(1),
            cost: Cycles(cost),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(8);
        t.push(ev(1, 1));
        assert!(t.is_empty());
    }

    #[test]
    fn bounded_capacity_drops_oldest() {
        let mut t = Trace::new(2);
        t.start();
        t.push(ev(1, 1));
        t.push(ev(2, 2));
        t.push(ev(3, 3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let clocks: Vec<u64> = t.events().map(|e| e.clock.as_u64()).collect();
        assert_eq!(clocks, vec![2, 3]);
        assert_eq!(t.total_cycles(), Cycles(5));
    }

    #[test]
    fn start_clears_previous_recording() {
        let mut t = Trace::new(8);
        t.start();
        t.push(ev(1, 1));
        t.stop();
        t.start();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn display_is_readable() {
        let s = format!("{}", ev(100, 7));
        assert!(s.contains("PPC kernel"), "{s}");
        assert!(s.contains("exec x1"), "{s}");
    }
}
