//! Discrete-event engine for multiprocessor experiments.
//!
//! The paper's Figure 3 runs up to 16 clients against one server and shows
//! (a) perfect linear speedup when the IPC path shares nothing, and (b)
//! saturation at ~4 processors as soon as a single per-file lock enters the
//! path. This engine reproduces that mechanism rather than its curve:
//! actors (one per simulated processor) execute segment sequences whose
//! costs were *measured* on the [`crate::cpu::Cpu`] model, and locks are
//! contended resources with FIFO queueing, cache-line handover costs, and
//! interference from spinning waiters.
//!
//! Everything is deterministic: ties break on insertion sequence numbers.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::config::MachineConfig;
use crate::cpu::CpuId;
use crate::time::Cycles;
use crate::topology::{ModuleId, Topology};

/// Identifies an actor within one [`Des`] run.
pub type ActorId = usize;

/// Identifies a lock within one [`Des`] run.
pub type LockId = usize;

/// What an actor does next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Compute for the given number of cycles.
    Busy(Cycles),
    /// Acquire a lock (the engine blocks the actor until granted and
    /// charges the atomic-operation and contention costs).
    Acquire(LockId),
    /// Release a lock the actor holds.
    Release(LockId),
    /// The actor has finished.
    Done,
}

/// An actor is a deterministic state machine: each call to `step` returns
/// the next action; the engine performs it (including any blocking) and
/// calls `step` again when the action completes.
pub trait Actor {
    /// Produce the next action. `now` is this actor's local time.
    fn step(&mut self, now: Cycles) -> Step;
}

#[derive(Debug)]
struct Lock {
    home: ModuleId,
    owner: Option<ActorId>,
    waiters: VecDeque<(ActorId, Cycles)>,
    acquires: u64,
    contended: u64,
    total_wait: Cycles,
}

/// Per-actor accounting maintained by the engine.
#[derive(Clone, Debug, Default)]
pub struct ActorStats {
    /// Cycles spent blocked waiting for locks.
    pub wait: Cycles,
    /// Number of lock acquisitions.
    pub acquires: u64,
    /// Local completion time if the actor returned [`Step::Done`].
    pub done_at: Option<Cycles>,
}

/// Statistics for one lock after a run.
#[derive(Clone, Debug, Default)]
pub struct LockStats {
    /// Total acquisitions.
    pub acquires: u64,
    /// Acquisitions that had to queue.
    pub contended: u64,
    /// Total cycles actors spent queued on this lock.
    pub total_wait: Cycles,
}

/// The discrete-event simulation engine.
///
/// ```
/// use hector_sim::des::{Des, Segment, SegmentLoopActor};
/// use hector_sim::{Cycles, MachineConfig};
/// let mut des = Des::new(MachineConfig::hector(2));
/// let deadline = Cycles::new(10_000);
/// des.add_actor(0, SegmentLoopActor::new(vec![Segment::Busy(Cycles::new(100))], deadline), Cycles::ZERO);
/// des.run_until(Cycles::new(20_000));
/// assert_eq!(des.actors()[0].completed, 100);
/// ```
pub struct Des<A: Actor> {
    cfg: MachineConfig,
    topo: Topology,
    actors: Vec<A>,
    actor_cpu: Vec<CpuId>,
    stats: Vec<ActorStats>,
    locks: Vec<Lock>,
    queue: BinaryHeap<Reverse<(u64, u64, ActorId)>>,
    seq: u64,
    now: Cycles,
}

impl<A: Actor> Des<A> {
    /// A new engine over machine configuration `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        let topo = Topology::new(&cfg);
        Des {
            cfg,
            topo,
            actors: Vec::new(),
            actor_cpu: Vec::new(),
            stats: Vec::new(),
            locks: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: Cycles::ZERO,
        }
    }

    /// Create a lock whose cache line is homed on module `home`.
    pub fn add_lock(&mut self, home: ModuleId) -> LockId {
        self.locks.push(Lock {
            home,
            owner: None,
            waiters: VecDeque::new(),
            acquires: 0,
            contended: 0,
            total_wait: Cycles::ZERO,
        });
        self.locks.len() - 1
    }

    /// Add an actor bound to `cpu`, first stepping at time `start`.
    pub fn add_actor(&mut self, cpu: CpuId, actor: A, start: Cycles) -> ActorId {
        assert!(cpu < self.cfg.n_cpus, "actor bound to nonexistent cpu {cpu}");
        let id = self.actors.len();
        self.actors.push(actor);
        self.actor_cpu.push(cpu);
        self.stats.push(ActorStats::default());
        self.schedule(id, start);
        id
    }

    fn schedule(&mut self, actor: ActorId, at: Cycles) {
        self.seq += 1;
        self.queue.push(Reverse((at.as_u64(), self.seq, actor)));
    }

    /// Cost of one atomic access to a lock line from `cpu` (`xmem` on the
    /// M88100: an uncached read-modify-write at the line's home module).
    fn atomic_cost(&self, cpu: CpuId, home: ModuleId) -> Cycles {
        self.cfg.uncached_local + self.cfg.hop_extra * self.topo.hops(cpu, home) as u64
    }

    /// Run until the event queue is empty or simulated time exceeds `until`.
    pub fn run_until(&mut self, until: Cycles) {
        while let Some(&Reverse((t, _, _))) = self.queue.peek() {
            if t > until.as_u64() {
                break;
            }
            let Reverse((t, _, actor)) = self.queue.pop().unwrap();
            self.now = Cycles(t);
            self.dispatch(actor);
        }
    }

    fn dispatch(&mut self, id: ActorId) {
        let now = self.now;
        match self.actors[id].step(now) {
            Step::Busy(c) => self.schedule(id, now + c),
            Step::Acquire(l) => self.acquire(id, l),
            Step::Release(l) => self.release(id, l),
            Step::Done => self.stats[id].done_at = Some(now),
        }
    }

    fn acquire(&mut self, id: ActorId, l: LockId) {
        let cpu = self.actor_cpu[id];
        let home = self.locks[l].home;
        let atomic = self.atomic_cost(cpu, home);
        let lock = &mut self.locks[l];
        if lock.owner.is_none() {
            lock.owner = Some(id);
            lock.acquires += 1;
            self.stats[id].acquires += 1;
            // Uncontended: one test-and-set (read + set in one xmem) plus
            // the line access cost.
            let grant = self.now + atomic * 2;
            self.schedule(id, grant);
        } else {
            lock.contended += 1;
            lock.waiters.push_back((id, self.now));
        }
    }

    fn release(&mut self, id: ActorId, l: LockId) {
        let releaser_cpu = self.actor_cpu[id];
        let home = self.locks[l].home;
        debug_assert_eq!(self.locks[l].owner, Some(id), "release by non-owner");
        let release_cost = self.atomic_cost(releaser_cpu, home);

        // The releaser continues after its release store.
        self.schedule(id, self.now + release_cost);

        let next = self.locks[l].waiters.pop_front();
        match next {
            None => {
                self.locks[l].owner = None;
            }
            Some((w, enq)) => {
                let n_spinning = self.locks[l].waiters.len() as u64;
                let w_cpu = self.actor_cpu[w];
                let handover = self.cfg.lock_handover
                    + self.atomic_cost(w_cpu, home) * 2
                    + self.cfg.spin_interference * n_spinning;
                let grant = self.now + release_cost + handover;
                let waited = grant.saturating_sub(enq);
                self.stats[w].wait += waited;
                self.stats[w].acquires += 1;
                let lock = &mut self.locks[l];
                lock.owner = Some(w);
                lock.acquires += 1;
                lock.total_wait += waited;
                self.schedule(w, grant);
            }
        }
    }

    /// The actors, for reading workload-specific results after a run.
    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    /// Engine-side statistics for `actor`.
    pub fn actor_stats(&self, actor: ActorId) -> &ActorStats {
        &self.stats[actor]
    }

    /// Statistics for `lock`.
    pub fn lock_stats(&self, lock: LockId) -> LockStats {
        let l = &self.locks[lock];
        LockStats { acquires: l.acquires, contended: l.contended, total_wait: l.total_wait }
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.now
    }
}

/// One iteration segment of a [`SegmentLoopActor`].
#[derive(Clone, Copy, Debug)]
pub enum Segment {
    /// Compute for the given cycles.
    Busy(Cycles),
    /// Acquire the lock.
    Acquire(LockId),
    /// Release the lock.
    Release(LockId),
}

/// An actor that repeats a fixed segment sequence until a deadline,
/// counting completed iterations — the shape of every client in the
/// paper's throughput experiments.
#[derive(Clone, Debug)]
pub struct SegmentLoopActor {
    segments: Vec<Segment>,
    idx: usize,
    deadline: Cycles,
    /// Completed iterations.
    pub completed: u64,
}

impl SegmentLoopActor {
    /// Repeat `segments` until `deadline`.
    pub fn new(segments: Vec<Segment>, deadline: Cycles) -> Self {
        assert!(!segments.is_empty());
        SegmentLoopActor { segments, idx: 0, deadline, completed: 0 }
    }
}

impl Actor for SegmentLoopActor {
    fn step(&mut self, now: Cycles) -> Step {
        if self.idx == 0
            && now >= self.deadline {
                return Step::Done;
            }
        let seg = self.segments[self.idx];
        self.idx += 1;
        if self.idx == self.segments.len() {
            self.idx = 0;
            self.completed += 1;
        }
        match seg {
            Segment::Busy(c) => Step::Busy(c),
            Segment::Acquire(l) => Step::Acquire(l),
            Segment::Release(l) => Step::Release(l),
        }
    }
}

/// A [`SegmentLoopActor`] variant whose `Busy` segments are jittered by a
/// seeded RNG: each iteration scales its compute segments by a factor
/// drawn uniformly from `[1 - jitter, 1 + jitter]`. Deterministic for a
/// given seed. Used to show that throughput conclusions (linear vs
/// saturating) are robust to non-lockstep arrival patterns.
#[derive(Clone, Debug)]
pub struct JitterLoopActor {
    segments: Vec<Segment>,
    idx: usize,
    deadline: Cycles,
    rng: rand::rngs::StdRng,
    jitter_pct: u64,
    scale_num: u64,
    /// Completed iterations.
    pub completed: u64,
}

impl JitterLoopActor {
    /// Repeat `segments` until `deadline`, jittering compute by
    /// `jitter_pct` percent (0..=90) with the given `seed`.
    pub fn new(segments: Vec<Segment>, deadline: Cycles, jitter_pct: u64, seed: u64) -> Self {
        use rand::SeedableRng;
        assert!(jitter_pct <= 90);
        assert!(!segments.is_empty());
        JitterLoopActor {
            segments,
            idx: 0,
            deadline,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            jitter_pct,
            scale_num: 100,
            completed: 0,
        }
    }
}

impl Actor for JitterLoopActor {
    fn step(&mut self, now: Cycles) -> Step {
        use rand::Rng;
        if self.idx == 0 {
            if now >= self.deadline {
                return Step::Done;
            }
            // One jitter factor per iteration.
            let lo = 100 - self.jitter_pct;
            let hi = 100 + self.jitter_pct;
            self.scale_num = self.rng.gen_range(lo..=hi);
        }
        let seg = self.segments[self.idx];
        self.idx += 1;
        if self.idx == self.segments.len() {
            self.idx = 0;
            self.completed += 1;
        }
        match seg {
            Segment::Busy(c) => Step::Busy(Cycles(c.as_u64() * self.scale_num / 100)),
            Segment::Acquire(l) => Step::Acquire(l),
            Segment::Release(l) => Step::Release(l),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> MachineConfig {
        MachineConfig::hector(n)
    }

    #[test]
    fn jitter_actor_is_deterministic_per_seed() {
        let run = |seed| {
            let mut des = Des::new(cfg(4));
            let deadline = Cycles(100_000);
            des.add_actor(
                0,
                JitterLoopActor::new(vec![Segment::Busy(Cycles(500))], deadline, 30, seed),
                Cycles::ZERO,
            );
            des.run_until(Cycles(200_000));
            des.actors()[0].completed
        };
        assert_eq!(run(7), run(7), "same seed, same result");
        // Mean stays near the unjittered rate.
        let unjittered = 100_000 / 500;
        let got = run(7);
        assert!((got as i64 - unjittered as i64).unsigned_abs() < unjittered / 5);
    }

    #[test]
    fn independent_actors_scale_linearly() {
        // No shared lock: N actors complete N times the work of one.
        let deadline = Cycles::from_us(10_000.0);
        let per_iter = Cycles(1000);
        let mut totals = Vec::new();
        for n in [1usize, 4, 8] {
            let mut des = Des::new(cfg(16));
            for cpu in 0..n {
                des.add_actor(
                    cpu,
                    SegmentLoopActor::new(vec![Segment::Busy(per_iter)], deadline),
                    Cycles(cpu as u64 * 13),
                );
            }
            des.run_until(deadline + Cycles(10_000));
            let total: u64 = des.actors().iter().map(|a| a.completed).sum();
            totals.push(total);
        }
        let per1 = totals[0] as f64;
        assert!((totals[1] as f64 / per1 - 4.0).abs() < 0.05, "{totals:?}");
        assert!((totals[2] as f64 / per1 - 8.0).abs() < 0.05, "{totals:?}");
    }

    #[test]
    fn fully_serialized_actors_saturate() {
        // Everything inside one lock: total throughput must be flat in N.
        let deadline = Cycles::from_us(5_000.0);
        let cs = Cycles(1000);
        let mut totals = Vec::new();
        for n in [1usize, 4, 8] {
            let mut des = Des::new(cfg(16));
            let lock = des.add_lock(0);
            for cpu in 0..n {
                des.add_actor(
                    cpu,
                    SegmentLoopActor::new(
                        vec![Segment::Acquire(lock), Segment::Busy(cs), Segment::Release(lock)],
                        deadline,
                    ),
                    Cycles(cpu as u64 * 7),
                );
            }
            des.run_until(deadline + Cycles(100_000));
            totals.push(des.actors().iter().map(|a| a.completed).sum::<u64>());
        }
        let t1 = totals[0] as f64;
        assert!(totals[1] as f64 <= t1 * 1.05, "serialized: {totals:?}");
        assert!(totals[2] as f64 <= t1 * 1.05, "serialized: {totals:?}");
        // And contention never *helps* (small boundary jitter allowed).
        assert!(totals[2] <= totals[0] + totals[0] / 10, "{totals:?}");
    }

    #[test]
    fn partial_serialization_saturates_at_ratio() {
        // 3/4 local work, 1/4 critical section => saturation near 4 CPUs.
        let deadline = Cycles::from_us(20_000.0);
        let local = Cycles(1500);
        let cs = Cycles(500);
        let mut totals = Vec::new();
        for n in [1usize, 4, 12] {
            let mut des = Des::new(cfg(16));
            let lock = des.add_lock(0);
            for cpu in 0..n {
                des.add_actor(
                    cpu,
                    SegmentLoopActor::new(
                        vec![
                            Segment::Busy(local),
                            Segment::Acquire(lock),
                            Segment::Busy(cs),
                            Segment::Release(lock),
                        ],
                        deadline,
                    ),
                    Cycles(cpu as u64 * 11),
                );
            }
            des.run_until(deadline + Cycles(100_000));
            totals.push(des.actors().iter().map(|a| a.completed).sum::<u64>());
        }
        let t1 = totals[0] as f64;
        let s4 = totals[1] as f64 / t1;
        let s12 = totals[2] as f64 / t1;
        assert!(s4 > 2.5, "4 CPUs should still scale ({s4:.2}x): {totals:?}");
        assert!(s12 < 4.5, "must saturate near 1/serial-fraction ({s12:.2}x)");
    }

    #[test]
    fn lock_stats_and_wait_accounting() {
        let deadline = Cycles(50_000);
        let mut des = Des::new(cfg(4));
        let lock = des.add_lock(0);
        for cpu in 0..2 {
            des.add_actor(
                cpu,
                SegmentLoopActor::new(
                    vec![Segment::Acquire(lock), Segment::Busy(Cycles(400)), Segment::Release(lock)],
                    deadline,
                ),
                Cycles::ZERO,
            );
        }
        des.run_until(Cycles(200_000));
        let ls = des.lock_stats(lock);
        assert!(ls.acquires > 0);
        assert!(ls.contended > 0, "two hot actors must contend");
        assert!(ls.total_wait > Cycles::ZERO);
        let w0 = des.actor_stats(0);
        assert!(w0.done_at.is_some());
    }

    #[test]
    fn determinism() {
        let run = || {
            let deadline = Cycles(100_000);
            let mut des = Des::new(cfg(8));
            let lock = des.add_lock(3);
            for cpu in 0..8 {
                des.add_actor(
                    cpu,
                    SegmentLoopActor::new(
                        vec![
                            Segment::Busy(Cycles(300 + cpu as u64)),
                            Segment::Acquire(lock),
                            Segment::Busy(Cycles(100)),
                            Segment::Release(lock),
                        ],
                        deadline,
                    ),
                    Cycles(cpu as u64),
                );
            }
            des.run_until(Cycles(300_000));
            des.actors().iter().map(|a| a.completed).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn remote_lock_costs_more_than_local() {
        // One actor on cpu0 with the lock homed locally vs homed far away:
        // the far case completes fewer iterations in the same time.
        let deadline = Cycles(200_000);
        let run = |home: usize| {
            let mut des = Des::new(cfg(16));
            let lock = des.add_lock(home);
            des.add_actor(
                0,
                SegmentLoopActor::new(
                    vec![Segment::Acquire(lock), Segment::Busy(Cycles(50)), Segment::Release(lock)],
                    deadline,
                ),
                Cycles::ZERO,
            );
            des.run_until(Cycles(400_000));
            des.actors()[0].completed
        };
        let local = run(0);
        let remote = run(8);
        assert!(remote < local, "remote {remote} !< local {local}");
    }
}
