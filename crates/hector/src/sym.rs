//! Symbolic physical memory.
//!
//! The simulated kernel keeps its real state in ordinary Rust structures;
//! what the machine model needs is only *which memory* each operation
//! touches, so that the cache, TLB, and NUMA models behave faithfully.
//! Every simulated kernel object is therefore assigned a symbolic physical
//! address range from the per-module bump allocators in [`SymHeap`].
//!
//! A [`PAddr`] encodes the owning memory module in its high bits, giving the
//! NUMA model the home node of every access for free.

use std::fmt;

use crate::topology::ModuleId;

/// Bits of offset within one memory module (4 GiB symbolic space each).
pub const MODULE_SHIFT: u32 = 32;

/// Page size (4 KB, as on the MC88200 and in the paper's stack discussion).
pub const PAGE_BYTES: u64 = 4096;

/// A symbolic physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PAddr(pub u64);

impl PAddr {
    /// Compose an address from a module id and an offset within it.
    #[inline]
    pub fn compose(module: ModuleId, offset: u64) -> Self {
        debug_assert!(offset < (1u64 << MODULE_SHIFT));
        PAddr(((module as u64) << MODULE_SHIFT) | offset)
    }

    /// The memory module this address lives on.
    #[inline]
    pub fn module(self) -> ModuleId {
        (self.0 >> MODULE_SHIFT) as ModuleId
    }

    /// Byte offset within the module.
    #[inline]
    pub fn module_offset(self) -> u64 {
        self.0 & ((1u64 << MODULE_SHIFT) - 1)
    }

    /// Address `bytes` further on.
    #[inline]
    pub fn offset(self, bytes: u64) -> PAddr {
        PAddr(self.0 + bytes)
    }

    /// The cache-line index of this address for a given line size.
    #[inline]
    pub fn line(self, line_bytes: usize) -> u64 {
        self.0 / line_bytes as u64
    }

    /// The page number of this address.
    #[inline]
    pub fn page(self) -> u64 {
        self.0 / PAGE_BYTES
    }
}

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:x}@m{}", self.module_offset(), self.module())
    }
}

/// A contiguous symbolic region (e.g. one kernel object, one code body).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First byte.
    pub base: PAddr,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// Address `off` bytes into the region (checked in debug builds).
    #[inline]
    pub fn at(&self, off: u64) -> PAddr {
        debug_assert!(off < self.len, "offset {off} outside region of {} bytes", self.len);
        self.base.offset(off)
    }

    /// Iterate over the cache lines the region spans.
    pub fn lines(&self, line_bytes: usize) -> impl Iterator<Item = u64> {
        let first = self.base.line(line_bytes);
        let last = self.base.offset(self.len.max(1) - 1).line(line_bytes);
        first..=last
    }
}

/// Whether an access can legally be cached on Hector.
///
/// Hector has **no hardware cache coherence**: memory that is written by
/// more than one processor must be mapped uncached (the operating system
/// enforces this), while processor-private data is cached. This is exactly
/// the property the PPC design exploits — its fastpath touches only
/// `CachedPrivate` memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sharing {
    /// Private to one processor: cacheable.
    CachedPrivate,
    /// Shared and writable: uncached, every access goes to the home module.
    UncachedShared,
}

/// Attributes of a memory access: sharing class and home module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAttrs {
    /// Cacheability / sharing class.
    pub sharing: Sharing,
    /// Memory module holding the data.
    pub home: ModuleId,
}

impl MemAttrs {
    /// Cacheable, processor-private memory homed on `module`.
    #[inline]
    pub fn cached_private(module: ModuleId) -> Self {
        MemAttrs { sharing: Sharing::CachedPrivate, home: module }
    }

    /// Uncached shared memory homed on `module`.
    #[inline]
    pub fn uncached_shared(module: ModuleId) -> Self {
        MemAttrs { sharing: Sharing::UncachedShared, home: module }
    }

    /// Attributes appropriate for `addr` given its sharing class.
    #[inline]
    pub fn for_addr(addr: PAddr, sharing: Sharing) -> Self {
        MemAttrs { sharing, home: addr.module() }
    }
}

/// Per-module bump allocator handing out symbolic addresses.
#[derive(Clone, Debug)]
pub struct SymHeap {
    module: ModuleId,
    next: u64,
}

impl SymHeap {
    /// A fresh heap for `module`. The first page is kept unused so that a
    /// null-ish address is never handed out.
    pub fn new(module: ModuleId) -> Self {
        SymHeap { module, next: PAGE_BYTES }
    }

    /// Allocate `bytes` with the given alignment (must be a power of two).
    pub fn alloc_aligned(&mut self, bytes: u64, align: u64) -> Region {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(bytes > 0, "zero-sized symbolic allocations are not useful");
        self.next = (self.next + align - 1) & !(align - 1);
        let base = PAddr::compose(self.module, self.next);
        self.next += bytes;
        Region { base, len: bytes }
    }

    /// Allocate `bytes` aligned to a cache line (16 B).
    pub fn alloc(&mut self, bytes: u64) -> Region {
        self.alloc_aligned(bytes, 16)
    }

    /// Allocate one whole page, page-aligned.
    pub fn alloc_page(&mut self) -> Region {
        self.alloc_aligned(PAGE_BYTES, PAGE_BYTES)
    }

    /// Bytes handed out so far (diagnostics).
    pub fn used(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paddr_module_roundtrip() {
        let p = PAddr::compose(7, 0x1234);
        assert_eq!(p.module(), 7);
        assert_eq!(p.module_offset(), 0x1234);
        assert_eq!(p.offset(0x10).module_offset(), 0x1244);
    }

    #[test]
    fn line_and_page_math() {
        let p = PAddr::compose(0, 4096 + 40);
        assert_eq!(p.line(16), (4096 + 40) / 16);
        assert_eq!(p.page(), 1);
    }

    #[test]
    fn heap_alignment_and_disjointness() {
        let mut h = SymHeap::new(3);
        let a = h.alloc_aligned(24, 16);
        let b = h.alloc_aligned(8, 16);
        assert_eq!(a.base.module(), 3);
        assert_eq!(a.base.module_offset() % 16, 0);
        assert_eq!(b.base.module_offset() % 16, 0);
        assert!(b.base.0 >= a.base.0 + a.len, "allocations must not overlap");
    }

    #[test]
    fn page_alloc_is_page_aligned() {
        let mut h = SymHeap::new(0);
        h.alloc(40);
        let p = h.alloc_page();
        assert_eq!(p.base.module_offset() % PAGE_BYTES, 0);
        assert_eq!(p.len, PAGE_BYTES);
    }

    #[test]
    fn region_lines_span() {
        let r = Region { base: PAddr::compose(0, 4096), len: 40 };
        let lines: Vec<u64> = r.lines(16).collect();
        assert_eq!(lines.len(), 3); // 40 bytes over 16-byte lines from aligned base
    }

    #[test]
    fn region_at_checks_bounds() {
        let r = Region { base: PAddr::compose(0, 4096), len: 16 };
        assert_eq!(r.at(8).module_offset(), 4104);
    }

    #[test]
    #[should_panic]
    fn zero_alloc_rejected() {
        SymHeap::new(0).alloc(0);
    }
}
