//! # hector-sim — a deterministic cost simulator of the Hector multiprocessor
//!
//! The evaluation platform of Gamsa, Krieger & Stumm, *Optimizing IPC
//! Performance for Shared-Memory Multiprocessors* (CSRI-294, 1994) is the
//! Hector shared-memory NUMA machine: 16 Motorola 88100 processors at
//! 16.67 MHz with 16 KB direct-mapped instruction and data caches (16-byte
//! lines), **no hardware cache coherence**, a dual-context (user/supervisor)
//! TLB with a 27-cycle miss penalty, and ring-connected stations of
//! processor+memory modules.
//!
//! This crate reproduces that machine as a *cost* simulator: simulated
//! kernel code executes ordinary Rust, but every instruction, load, store,
//! trap and TLB operation is charged to a per-CPU cycle clock through a
//! [`cpu::Cpu`], flowing through faithful cache ([`cache`]) and TLB
//! ([`tlb`]) models and a NUMA distance model ([`topology`]). Charges are
//! attributed to the cost categories of the paper's Figure 2
//! ([`cpu::CostCategory`]), so the breakdown figure is *measured from the
//! simulated implementation*, not hard-coded.
//!
//! Multi-processor experiments (the paper's Figure 3) run on the
//! discrete-event engine in [`des`], which models contended locks with FIFO
//! queueing plus the cache-invalidation/interconnect interference that makes
//! contended critical sections grow — the mechanism that saturates the
//! "single shared file" curve in the paper.
//!
//! Everything is single-threaded and fully deterministic: simulations
//! regenerate bit-identical results on every run.
//!
//! ## Quick example
//!
//! ```
//! use hector_sim::{Machine, MachineConfig, MemAttrs, cpu::CostCategory};
//!
//! let mut m = Machine::new(MachineConfig::hector(4));
//! let buf = m.alloc_on(0, 64, "buffer");
//! let attrs = MemAttrs::cached_private(0);
//! let cpu = m.cpu_mut(0);
//! cpu.begin_measure();
//! cpu.with_category(CostCategory::PpcKernel, |cpu| {
//!     for i in 0..4 {
//!         cpu.store(buf.base.offset(i * 8), attrs);
//!     }
//! });
//! let bd = cpu.end_measure();
//! assert!(bd.total().as_u64() > 0);
//! ```

pub mod cache;
pub mod config;
pub mod cpu;
pub mod des;
pub mod machine;
pub mod sym;
pub mod time;
pub mod tlb;
pub mod trace;
pub mod topology;

pub use config::MachineConfig;
pub use cpu::{CostBreakdown, CostCategory, Cpu, CpuId};
pub use machine::Machine;
pub use sym::{MemAttrs, PAddr, Region, Sharing};
pub use time::{Cycles, CYCLE_NS};
