//! Tail-latency probe: exact (unsampled) per-call timing across wait
//! policies, plus a no-IPC control that measures the host's own jitter
//! floor.
//!
//! The control experiment is the important part. On the 1-core hosts
//! these benches run on, the kernel timer tick plus hypervisor
//! preemption produce wall-clock excursions at a fixed *rate per unit
//! time* (~1.5 events/ms of exposure, 8–32 µs each). A null call with a
//! ~1.3 µs round trip is therefore hit on ~0.2 % of calls — which pins
//! its exact p999 at the excursion magnitude (~16–18 µs) for *any*
//! wait policy, spin or park. Run this before chasing a p999 number:
//! if the control's excursion rate times your p50 exceeds 0.1 %, the
//! p999 you are staring at belongs to the host, not the runtime.
//! What the wait policy *does* own is the far tail: bounded-spin
//! escalation (timeslice donation) caps the convoy class, pulling max
//! from multi-ms to sub-ms. See EXPERIMENTS.md § TAIL-MODES.

use ppc_rt::{EntryOptions, Runtime, SpinPolicy};
use std::sync::Arc;
use std::time::Instant;

fn quantiles(mut v: Vec<u64>) -> (u64, u64, u64, u64, u64) {
    v.sort_unstable();
    let q = |p: f64| v[((v.len() as f64 - 1.0) * p) as usize];
    (q(0.5), q(0.99), q(0.999), q(0.9999), v[v.len() - 1])
}

fn host_floor(iters: u64) {
    // Back-to-back busy intervals, no threads, no syscalls: every
    // excursion here is the host (tick, steal), an absolute floor no
    // IPC design can get under.
    let mut v = Vec::with_capacity(iters as usize);
    let mut acc = 0u64;
    for _ in 0..iters {
        let t0 = Instant::now();
        for i in 0..330 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        v.push(t0.elapsed().as_nanos() as u64);
    }
    std::hint::black_box(acc);
    let over = v.iter().filter(|&&x| x > 8_000).count();
    let (p50, p99, p999, p9999, max) = quantiles(v);
    println!(
        "control  p50={p50} p99={p99} p999={p999} p9999={p9999} max={max} | \
         >8us: {over}/{iters} ({:.3}%) => ~{:.2} excursions/ms",
        100.0 * over as f64 / iters as f64,
        over as f64 / (iters as f64 * p50 as f64 / 1.0e6),
    );
}

fn policy(label: &str, policy: SpinPolicy, calls: u64) {
    let rt = Runtime::new(1);
    rt.set_spin_policy(policy);
    let ep = rt
        .bind("probe", EntryOptions::default(), Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);
    for _ in 0..500 {
        client.call(ep, [0; 8]).unwrap();
    }
    let mut v = Vec::with_capacity(calls as usize);
    for i in 0..calls {
        let t0 = Instant::now();
        std::hint::black_box(client.call(ep, std::hint::black_box([i; 8])).unwrap());
        v.push(t0.elapsed().as_nanos() as u64);
    }
    let s = rt.stats.snapshot();
    let (p50, p99, p999, p9999, max) = quantiles(v);
    println!(
        "{label:8} p50={p50} p99={p99} p999={p999} p9999={p9999} max={max} | \
         spin={} park={} esc={}",
        s.spin_waits, s.park_waits, s.spin_escalations
    );
}

fn main() {
    let calls = 200_000;
    host_floor(calls);
    policy("adaptive", SpinPolicy::Adaptive, calls);
    policy("park", SpinPolicy::ParkOnly, calls);
    policy("fixed0", SpinPolicy::Fixed(0), calls);
}
