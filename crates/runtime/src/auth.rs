//! Program-ID authentication helpers (§4.1).
//!
//! The runtime, like the paper's kernel facility, never checks
//! permissions — it only *identifies* the caller (`CallCtx::caller_program`).
//! Servers enforce whatever policy they like; this module provides the
//! common one: an ACL keyed by program ID, usable from handlers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::ProgramId;

/// Per-client record (a snapshot; see [`Acl::record`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientRecord {
    /// Whether calls are allowed.
    pub allowed: bool,
    /// Server-defined rights bits.
    pub rights: u32,
    /// Calls observed.
    pub calls: u64,
}

/// The stored form: the call count is atomic so [`Acl::check`] — which
/// handlers may run on every call — takes only the *shared* lock and
/// never serializes concurrent checks behind a write lock.
#[derive(Debug, Default)]
struct StoredRecord {
    allowed: bool,
    rights: u32,
    calls: AtomicU64,
}

/// A server-side ACL. Checks take a shared lock plus one `Relaxed`
/// increment (server state, not the IPC fastpath; the facility itself
/// stays lock-free); only grants/denials take the write lock.
#[derive(Debug)]
pub struct Acl {
    clients: RwLock<HashMap<ProgramId, StoredRecord>>,
    /// Policy for unknown programs.
    pub default_allow: bool,
}

impl Acl {
    /// An ACL with the given default policy.
    pub fn new(default_allow: bool) -> Self {
        Acl { clients: RwLock::new(HashMap::new()), default_allow }
    }

    /// Grant `program` access with `rights`.
    pub fn allow(&self, program: ProgramId, rights: u32) {
        self.clients
            .write()
            .insert(program, StoredRecord { allowed: true, rights, calls: AtomicU64::new(0) });
    }

    /// Explicitly deny `program`.
    pub fn deny(&self, program: ProgramId) {
        self.clients.write().insert(program, StoredRecord::default());
    }

    /// Check and account a call from `program`. Read-lock only:
    /// concurrent handler checks never contend on a writer.
    pub fn check(&self, program: ProgramId) -> bool {
        match self.clients.read().get(&program) {
            Some(r) => {
                r.calls.fetch_add(1, Ordering::Relaxed);
                r.allowed
            }
            None => self.default_allow,
        }
    }

    /// The record for `program`, if any.
    pub fn record(&self, program: ProgramId) -> Option<ClientRecord> {
        self.clients.read().get(&program).map(|r| ClientRecord {
            allowed: r.allowed,
            rights: r.rights,
            calls: r.calls.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_deny_default() {
        let acl = Acl::new(false);
        acl.allow(1, 0xF);
        acl.deny(2);
        assert!(acl.check(1));
        assert!(!acl.check(2));
        assert!(!acl.check(3));
        let open = Acl::new(true);
        assert!(open.check(3));
    }

    #[test]
    fn counts_calls() {
        let acl = Acl::new(false);
        acl.allow(5, 0);
        acl.check(5);
        acl.check(5);
        assert_eq!(acl.record(5).unwrap().calls, 2);
        assert_eq!(acl.record(5).unwrap().rights, 0);
    }
}
