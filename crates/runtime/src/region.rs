//! Grant-backed shared regions — the paper's V-style region permissions
//! (§4.2) rebuilt for the real-threads runtime.
//!
//! The simulator's Copy Server keeps one global `ppc-core` grant table
//! behind shared mutable state; that is exactly what the runtime's "a PPC
//! accesses no shared data" discipline forbids on a hot path. Here every
//! virtual processor owns a [`RegionRegistry`]: a fixed array of region
//! slots whose *read* path (the per-transfer authorization check) is
//! lock-free and epoch-stamped, while the *write* path (register, grant,
//! revoke, unregister — all cold) serializes on a per-registry mutex.
//!
//! Each slot is a writer-preference seqlock with an access-presence word:
//!
//! 1. an accessor announces itself in the slot's `access` word — *read*
//!    accesses share (a counter), *write* accesses are **exclusive**
//!    against every other access to the slot, because the in-place APIs
//!    ([`crate::CallCtx::with_bulk_mut`], [`crate::BulkRegion::with_bytes`])
//!    materialize `&mut [u8]` over the span and two overlapping writers
//!    (or a writer racing a reader) would be undefined behavior, not just
//!    a torn transfer;
//! 2. it checks the epoch is even (no registry writer), dereferences the
//!    published `RegionState`, and performs its copy; afterwards it
//!    re-reads the epoch: unchanged ⇒ the authorization it validated held
//!    for the whole transfer, changed ⇒ the access fails (a
//!    grant/revoke/unregister landed mid-copy);
//! 3. a registry writer bumps the epoch to odd *first*, waits for
//!    announced accesses to drain (new ones see the odd epoch and back
//!    off), swaps the state, frees the old one, and bumps the epoch back
//!    to even.
//!
//! The drain means a revoke **blocks until in-flight transfers finish**,
//! and no transfer can report success once the revoke has returned — the
//! property the revocation stress test pins. State boxes are freed eagerly
//! (the drain guarantees no reader holds them); the region's backing
//! buffer returns to its vCPU's pool only at unregister.
//!
//! Because drains and write exclusivity block, a thread that already
//! holds an `Access` on a slot must not begin a conflicting access or a
//! registry write on the *same* slot — that is a self-deadlock. A
//! per-thread ledger of live accesses turns those cycles into
//! [`RtError::BulkReentrant`] instead of an infinite spin.

use std::cell::RefCell;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::bulk::PoolBuf;
use crate::{EntryId, ProgramId, RtError};

/// Region identifier, small and per-vCPU (< [`MAX_REGIONS`]).
pub type RegionId = u16;

/// Regions per virtual processor.
pub const MAX_REGIONS: usize = 256;

/// Largest single bulk transfer (mirrors `ppc-core`'s `MAX_COPY`).
pub const MAX_BULK: usize = 1 << 20;

/// A bulk-transfer descriptor: which region, which span, and whether the
/// server may write. Packs into **one argument word**, so it rides in the
/// existing 8-word frame (`args[7]` by convention, see
/// [`crate::Client::call_bulk`]) and every dispatch mode from the hand-off
/// fast path — inline, spin-then-park, park — carries it unchanged.
///
/// Layout (LSB first): `len:24 | offset:24 | region:12 | write:1 | tag:3`.
/// The tag distinguishes a descriptor from an arbitrary argument word;
/// [`BulkDesc::decode`] returns `None` for non-descriptor words (zero
/// included).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BulkDesc {
    /// The region being shared.
    pub region: RegionId,
    /// Byte offset of the span within the region.
    pub offset: u32,
    /// Span length in bytes.
    pub len: u32,
    /// Whether the server side may write the span.
    pub write: bool,
}

/// Tag in the top 3 bits marking a word as an encoded descriptor.
const DESC_TAG: u64 = 0b101;
/// 24-bit field mask (offset and length).
const FIELD24: u64 = (1 << 24) - 1;
/// 12-bit region-id mask.
const REGION12: u64 = (1 << 12) - 1;

impl BulkDesc {
    /// A read-only descriptor covering `[offset, offset + len)`.
    pub fn read(region: RegionId, offset: u32, len: u32) -> BulkDesc {
        BulkDesc { region, offset, len, write: false }
    }

    /// A read-write descriptor covering `[offset, offset + len)`.
    pub fn write(region: RegionId, offset: u32, len: u32) -> BulkDesc {
        BulkDesc { region, offset, len, write: true }
    }

    /// Pack into one argument word. `None` when a field exceeds its bit
    /// budget (offset or length ≥ 2²⁴, region ≥ 2¹²) — rejected in
    /// release builds too, so an oversized descriptor can never silently
    /// encode a different, smaller span.
    pub fn encode(self) -> Option<u64> {
        if u64::from(self.offset) > FIELD24
            || u64::from(self.len) > FIELD24
            || u64::from(self.region) > REGION12
        {
            return None;
        }
        Some(
            (DESC_TAG << 61)
                | ((self.write as u64) << 60)
                | (u64::from(self.region) << 48)
                | (u64::from(self.offset) << 24)
                | u64::from(self.len),
        )
    }

    /// Unpack an argument word; `None` when the word is not a descriptor.
    pub fn decode(w: u64) -> Option<BulkDesc> {
        if w >> 61 != DESC_TAG {
            return None;
        }
        Some(BulkDesc {
            region: ((w >> 48) & REGION12) as RegionId,
            offset: ((w >> 24) & FIELD24) as u32,
            len: (w & FIELD24) as u32,
            write: (w >> 60) & 1 == 1,
        })
    }
}

/// One permission: `grantee` (bound by `grantee_program` at grant time)
/// may access the region, writing if `write` — the runtime restatement of
/// `ppc-core`'s `Grant`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct GrantSpec {
    grantee: EntryId,
    grantee_program: ProgramId,
    write: bool,
}

/// Published, immutable-after-publish view of one region. Replaced
/// wholesale (copy-on-write) by the cold write path; readers only ever
/// dereference it between epoch validations.
struct RegionState {
    mem: *mut u8,
    len: usize,
    owner: ProgramId,
    grants: Vec<GrantSpec>,
}

/// Bit of [`RegionSlot::access`] held by an exclusive (write) access.
const WRITE_ACCESS: u32 = 1 << 31;

/// One region slot: epoch + access word + published state.
struct RegionSlot {
    /// Epoch (seqlock word): even = stable, odd = writer in progress.
    /// Padded: readers on the hot path re-read only this line.
    seq: CachePadded<AtomicU64>,
    /// Announced in-flight accesses: low bits count shared (read)
    /// accesses, [`WRITE_ACCESS`] is set while an exclusive (write)
    /// access holds the slot. Registry writers drain this word to zero.
    access: AtomicU32,
    state: AtomicPtr<RegionState>,
}

impl RegionSlot {
    fn new() -> RegionSlot {
        RegionSlot {
            seq: CachePadded::new(AtomicU64::new(0)),
            access: AtomicU32::new(0),
            state: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// Per-thread ledger of live [`Access`]es, keyed by slot address with the
/// access's write-ness in bit 0 (slots are cache-line aligned, the bit is
/// free). Fixed-size — no allocation ever, so begin/drop stay legal on
/// the allocation-free warm path; nesting deeper than the window falls
/// back to an untracked count so the books still balance (conflict checks
/// then miss those entries, which only weakens deadlock *detection*,
/// never soundness — the slot's access word still enforces exclusion).
const MAX_TRACKED_ACCESSES: usize = 16;

struct AccessLedger {
    slots: [usize; MAX_TRACKED_ACCESSES],
    n: usize,
    untracked: usize,
}

thread_local! {
    static LIVE_ACCESSES: RefCell<AccessLedger> = const {
        RefCell::new(AccessLedger { slots: [0; MAX_TRACKED_ACCESSES], n: 0, untracked: 0 })
    };
}

fn ledger_key(slot: &RegionSlot, write: bool) -> usize {
    (slot as *const RegionSlot as usize) | usize::from(write)
}

fn ledger_push(slot: &RegionSlot, write: bool) {
    LIVE_ACCESSES.with(|l| {
        let mut l = l.borrow_mut();
        if l.n < MAX_TRACKED_ACCESSES {
            let n = l.n;
            l.slots[n] = ledger_key(slot, write);
            l.n = n + 1;
        } else {
            l.untracked += 1;
        }
    });
}

fn ledger_pop(slot: &RegionSlot, write: bool) {
    LIVE_ACCESSES.with(|l| {
        let mut l = l.borrow_mut();
        let key = ledger_key(slot, write);
        if let Some(i) = l.slots[..l.n].iter().rposition(|s| *s == key) {
            l.slots[i] = l.slots[l.n - 1];
            l.n -= 1;
        } else {
            l.untracked -= 1;
        }
    });
}

/// Whether this thread already holds an access on `slot` that a new
/// operation would deadlock against: any access blocks a registry write
/// or a write access (`write_wanted`), only a write access blocks a read.
fn ledger_conflicts(slot: &RegionSlot, write_wanted: bool) -> bool {
    let addr = slot as *const RegionSlot as usize;
    LIVE_ACCESSES.with(|l| {
        let l = l.borrow();
        l.slots[..l.n]
            .iter()
            .any(|s| (s & !1) == addr && (write_wanted || s & 1 == 1))
    })
}

/// Cold-path registry state, serialized behind the writer mutex.
struct RegistryCold {
    /// Free region IDs.
    free: Vec<RegionId>,
    /// Backing buffers, indexed by region ID (owned here until
    /// unregister hands them back to the vCPU's pool).
    bufs: Vec<Option<PoolBuf>>,
}

/// The per-vCPU region registry: lock-free epoch-stamped reads, mutexed
/// cold writes.
pub struct RegionRegistry {
    slots: Box<[RegionSlot]>,
    cold: Mutex<RegistryCold>,
}

/// An in-flight authorized access to a region span. Holding it keeps the
/// backing memory alive (writers drain accesses before freeing anything);
/// [`Access::finish`] re-validates the epoch so a transfer that raced a
/// grant change reports failure instead of silently succeeding. A write
/// access additionally holds the slot's [`WRITE_ACCESS`] bit, excluding
/// every other access for its duration.
pub(crate) struct Access<'a> {
    slot: &'a RegionSlot,
    seq: u64,
    region: RegionId,
    /// Whether this access holds the slot exclusively.
    write: bool,
    /// Start of the authorized span.
    pub(crate) ptr: *mut u8,
    /// Length of the authorized span.
    pub(crate) len: usize,
}

impl Access<'_> {
    /// End the access, reporting whether the authorization held for its
    /// whole duration (no grant/revoke/unregister landed).
    pub(crate) fn finish(self) -> Result<(), RtError> {
        let ok = self.slot.seq.load(Ordering::SeqCst) == self.seq;
        let region = self.region;
        drop(self); // release the reader announcement
        if ok {
            Ok(())
        } else {
            Err(RtError::BulkRevoked(region))
        }
    }
}

impl Drop for Access<'_> {
    fn drop(&mut self) {
        ledger_pop(self.slot, self.write);
        // Release: orders the transfer's memory operations before a
        // writer's observation of the drained word (and any free that
        // follows it).
        let held = if self.write { WRITE_ACCESS } else { 1 };
        self.slot.access.fetch_sub(held, Ordering::Release);
    }
}

impl RegionRegistry {
    /// An empty registry with [`MAX_REGIONS`] slots.
    pub(crate) fn new() -> RegionRegistry {
        RegionRegistry {
            slots: (0..MAX_REGIONS).map(|_| RegionSlot::new()).collect(),
            cold: Mutex::new(RegistryCold {
                free: (0..MAX_REGIONS as RegionId).rev().collect(),
                bufs: (0..MAX_REGIONS).map(|_| None).collect(),
            }),
        }
    }

    /// Register `buf` as a region of `len` bytes owned by `owner`.
    /// Cold path (mutex). Errors with [`RtError::TableFull`] when all
    /// [`MAX_REGIONS`] slots are taken.
    pub(crate) fn register(
        &self,
        buf: PoolBuf,
        len: usize,
        owner: ProgramId,
    ) -> Result<RegionId, RtError> {
        debug_assert!(len <= buf.cap());
        let mut cold = self.cold.lock();
        let id = cold.free.pop().ok_or(RtError::TableFull)?;
        let state = Box::new(RegionState {
            mem: buf.as_mut_ptr(),
            len,
            owner,
            grants: Vec::new(),
        });
        cold.bufs[id as usize] = Some(buf);
        let slot = &self.slots[id as usize];
        // The slot was free: no state pointer, no readers can get past the
        // null check. Publish state then bump the epoch once (by 2, staying
        // even) so descriptors forged for the previous tenancy fail their
        // finish() validation rather than touching the new region.
        let prev = slot.state.swap(Box::into_raw(state), Ordering::Release);
        debug_assert!(prev.is_null());
        slot.seq.fetch_add(2, Ordering::SeqCst);
        Ok(id)
    }

    /// Replace `id`'s published state via `f`. Cold path: epoch goes odd,
    /// announced accesses drain, the state is swapped and the old box
    /// freed (safe — no reader can hold it past the drain), epoch returns
    /// even. Errors with [`RtError::BulkReentrant`] when the calling
    /// thread itself holds an in-flight access on the slot — the drain
    /// would never finish.
    fn mutate(
        &self,
        id: RegionId,
        by: ProgramId,
        f: impl FnOnce(&RegionState) -> RegionState,
    ) -> Result<(), RtError> {
        let slot = self.slots.get(id as usize).ok_or(RtError::BadBulk)?;
        if ledger_conflicts(slot, true) {
            return Err(RtError::BulkReentrant(id));
        }
        let _cold = self.cold.lock();
        let cur = slot.state.load(Ordering::Acquire);
        if cur.is_null() {
            return Err(RtError::BadBulk);
        }
        // Safety: non-null states are only freed under this mutex, after
        // an epoch-odd drain; we hold the mutex.
        let cur_ref = unsafe { &*cur };
        if cur_ref.owner != by {
            return Err(RtError::NotOwner);
        }
        let next = Box::into_raw(Box::new(f(cur_ref)));
        slot.seq.fetch_add(1, Ordering::SeqCst); // odd: writer present
        while slot.access.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
        }
        let old = slot.state.swap(next, Ordering::Release);
        // Safety: drained — no reader holds `old`.
        unsafe { drop(Box::from_raw(old)) };
        slot.seq.fetch_add(1, Ordering::SeqCst); // even: stable again
        Ok(())
    }

    /// Grant `grantee` (currently owned by `grantee_program`) access to
    /// the whole region; `write` allows the server to modify it.
    pub(crate) fn grant(
        &self,
        id: RegionId,
        by: ProgramId,
        grantee: EntryId,
        grantee_program: ProgramId,
        write: bool,
    ) -> Result<(), RtError> {
        self.mutate(id, by, |cur| {
            let mut grants = cur.grants.clone();
            grants.retain(|g| g.grantee != grantee);
            grants.push(GrantSpec { grantee, grantee_program, write });
            RegionState { mem: cur.mem, len: cur.len, owner: cur.owner, grants }
        })
    }

    /// Revoke every grant `id → grantee`. Returns how many were removed.
    /// Blocks until in-flight transfers drain; once this returns, no
    /// transfer under the revoked grant can report success.
    pub(crate) fn revoke(
        &self,
        id: RegionId,
        by: ProgramId,
        grantee: EntryId,
    ) -> Result<usize, RtError> {
        let mut removed = 0;
        self.mutate(id, by, |cur| {
            let mut grants = cur.grants.clone();
            let before = grants.len();
            grants.retain(|g| g.grantee != grantee);
            removed = before - grants.len();
            RegionState { mem: cur.mem, len: cur.len, owner: cur.owner, grants }
        })?;
        Ok(removed)
    }

    /// Unregister the region, returning its backing buffer for pooling.
    /// Cold path; drains in-flight transfers like any other write.
    pub(crate) fn unregister(&self, id: RegionId, by: ProgramId) -> Result<PoolBuf, RtError> {
        let slot = self.slots.get(id as usize).ok_or(RtError::BadBulk)?;
        if ledger_conflicts(slot, true) {
            return Err(RtError::BulkReentrant(id));
        }
        let mut cold = self.cold.lock();
        let cur = slot.state.load(Ordering::Acquire);
        if cur.is_null() {
            return Err(RtError::BadBulk);
        }
        // Safety: as in `mutate`.
        if unsafe { &*cur }.owner != by {
            return Err(RtError::NotOwner);
        }
        slot.seq.fetch_add(1, Ordering::SeqCst);
        while slot.access.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
        }
        let old = slot.state.swap(std::ptr::null_mut(), Ordering::Release);
        // Safety: drained.
        unsafe { drop(Box::from_raw(old)) };
        slot.seq.fetch_add(1, Ordering::SeqCst);
        let buf = cold.bufs[id as usize].take().expect("registered region has a buffer");
        cold.free.push(id);
        Ok(buf)
    }

    /// Begin a lock-free access to `desc`'s span, authorizing `accessor`
    /// (an entry bound by `accessor_program`) against the grants of the
    /// region owned by `granter` — the exact check `ppc-core`'s
    /// `GrantTable::authorizes` performs, minus its lock.
    ///
    /// `owner_access` short-circuits the grant check for the region owner
    /// itself (client-side fill/drain of its own buffer).
    ///
    /// A `write` access is **exclusive** for the whole slot: it waits for
    /// every in-flight access to the region to finish and blocks new ones
    /// until it drops, because write accesses hand out `&mut [u8]` views
    /// (or perform non-atomic stores) that must never alias a concurrent
    /// access to the same bytes. Read accesses share. Exclusivity is
    /// per-slot, not per-span — coarser than strictly necessary, but the
    /// conflict window is one transfer. Beginning an access that
    /// conflicts with one this thread already holds returns
    /// [`RtError::BulkReentrant`] instead of deadlocking.
    pub(crate) fn begin(
        &self,
        desc: BulkDesc,
        accessor: EntryId,
        accessor_program: ProgramId,
        granter: ProgramId,
        write: bool,
        owner_access: bool,
    ) -> Result<Access<'_>, RtError> {
        let slot = self.slots.get(desc.region as usize).ok_or(RtError::BadBulk)?;
        if write && !desc.write && !owner_access {
            // The descriptor itself caps the server at read-only.
            return Err(RtError::BulkDenied(desc.region));
        }
        if ledger_conflicts(slot, write) {
            // Our own thread holds a conflicting access: waiting for it
            // to drop would wait forever.
            return Err(RtError::BulkReentrant(desc.region));
        }
        loop {
            // Cheap pre-check keeps backed-off accessors from hammering
            // the access word while a registry writer drains.
            if slot.seq.load(Ordering::SeqCst) & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // Announce. Writes take the slot exclusively (the word must
            // be idle); reads bounce off only a held write access.
            if write {
                if slot
                    .access
                    .compare_exchange(0, WRITE_ACCESS, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    std::hint::spin_loop();
                    continue;
                }
            } else {
                let prev = slot.access.fetch_add(1, Ordering::SeqCst);
                if prev & WRITE_ACCESS != 0 {
                    slot.access.fetch_sub(1, Ordering::Release);
                    std::hint::spin_loop();
                    continue;
                }
            }
            let held = if write { WRITE_ACCESS } else { 1 };
            let seq = slot.seq.load(Ordering::SeqCst);
            if seq & 1 == 1 {
                slot.access.fetch_sub(held, Ordering::Release);
                std::hint::spin_loop();
                continue;
            }
            let p = slot.state.load(Ordering::Acquire);
            if p.is_null() {
                slot.access.fetch_sub(held, Ordering::Release);
                return Err(RtError::BadBulk);
            }
            // Safety: our announced presence precedes the even-epoch
            // observation, so a writer cannot free `p` until we drop.
            let st = unsafe { &*p };
            let authorized = if owner_access {
                st.owner == accessor_program
            } else {
                st.owner == granter
                    && st.grants.iter().any(|g| {
                        g.grantee == accessor
                            && g.grantee_program == accessor_program
                            && (!write || g.write)
                    })
            };
            if !authorized {
                slot.access.fetch_sub(held, Ordering::Release);
                return Err(RtError::BulkDenied(desc.region));
            }
            // Overflow-proof span check (checked_add: a forged descriptor
            // must fail, not wrap).
            let len = desc.len as usize;
            let off = desc.offset as usize;
            let end = match off.checked_add(len) {
                Some(e) if e <= st.len && len <= MAX_BULK => e,
                _ => {
                    slot.access.fetch_sub(held, Ordering::Release);
                    return Err(RtError::BadBulk);
                }
            };
            let _ = end;
            ledger_push(slot, write);
            // Safety: off is within the live allocation just validated.
            let ptr = unsafe { st.mem.add(off) };
            return Ok(Access { slot, seq, region: desc.region, write, ptr, len });
        }
    }

    /// Number of live regions (diagnostics; takes the cold mutex).
    pub fn live(&self) -> usize {
        let cold = self.cold.lock();
        cold.bufs.iter().filter(|b| b.is_some()).count()
    }
}

// Safety: RegionState pointers are managed under the documented
// seqlock-plus-drain protocol; PoolBuf memory is plain bytes.
unsafe impl Send for RegionRegistry {}
unsafe impl Sync for RegionRegistry {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk::BufferPool;
    use crate::stats::StatsCell;

    fn buf(pool: &BufferPool, len: usize) -> PoolBuf {
        pool.take(len, &StatsCell::default()).unwrap()
    }

    #[test]
    fn desc_encode_decode_roundtrip() {
        let d = BulkDesc { region: 0xabc, offset: 0x12_3456, len: 0x65_4321, write: true };
        assert_eq!(BulkDesc::decode(d.encode().unwrap()), Some(d));
        let r = BulkDesc::read(3, 64, 4096);
        assert_eq!(BulkDesc::decode(r.encode().unwrap()), Some(r));
        // Ordinary argument words are not descriptors.
        assert_eq!(BulkDesc::decode(0), None);
        assert_eq!(BulkDesc::decode(42), None);
        assert_eq!(BulkDesc::decode(u64::MAX >> 3), None);
        // Fields past their bit budget are rejected, not truncated —
        // release builds included.
        assert_eq!(BulkDesc::read(0, 1 << 24, 4).encode(), None);
        assert_eq!(BulkDesc::read(0, 4, 1 << 24).encode(), None);
        assert_eq!(BulkDesc { region: 1 << 12, offset: 0, len: 4, write: false }.encode(), None);
    }

    #[test]
    fn register_grant_authorize_revoke() {
        let pool = BufferPool::new();
        let reg = RegionRegistry::new();
        let id = reg.register(buf(&pool, 4096), 4096, 10).unwrap();
        assert_eq!(reg.live(), 1);
        let d = BulkDesc::read(id, 0, 4096);

        // No grant yet: server access denied, owner access allowed.
        assert!(matches!(
            reg.begin(d, 5, 20, 10, false, false),
            Err(RtError::BulkDenied(_))
        ));
        reg.begin(d, 0, 10, 10, true, true).unwrap().finish().unwrap();

        reg.grant(id, 10, 5, 20, false).unwrap();
        reg.begin(d, 5, 20, 10, false, false).unwrap().finish().unwrap();
        // Write against a read grant: denied.
        let dw = BulkDesc::write(id, 0, 4096);
        assert!(matches!(
            reg.begin(dw, 5, 20, 10, true, false),
            Err(RtError::BulkDenied(_))
        ));
        // Wrong entry, wrong program, wrong granter: denied.
        assert!(reg.begin(d, 6, 20, 10, false, false).is_err());
        assert!(reg.begin(d, 5, 21, 10, false, false).is_err());
        assert!(reg.begin(d, 5, 20, 11, false, false).is_err());

        assert_eq!(reg.revoke(id, 10, 5).unwrap(), 1);
        assert!(reg.begin(d, 5, 20, 10, false, false).is_err());

        // Only the owner may mutate or unregister.
        assert_eq!(reg.grant(id, 99, 5, 20, false), Err(RtError::NotOwner));
        assert_eq!(reg.unregister(id, 99).err(), Some(RtError::NotOwner));
        let b = reg.unregister(id, 10).unwrap();
        assert_eq!(reg.live(), 0);
        assert!(b.cap() >= 4096);
    }

    #[test]
    fn bounds_are_checked_without_overflow() {
        let pool = BufferPool::new();
        let reg = RegionRegistry::new();
        let id = reg.register(buf(&pool, 256), 256, 1).unwrap();
        reg.grant(id, 1, 2, 3, true).unwrap();
        // End-of-region zero-length span: allowed.
        reg.begin(BulkDesc::read(id, 256, 0), 2, 3, 1, false, false)
            .unwrap()
            .finish()
            .unwrap();
        // One past the end: rejected.
        assert_eq!(
            reg.begin(BulkDesc::read(id, 256, 1), 2, 3, 1, false, false).err(),
            Some(RtError::BadBulk)
        );
        // Offset+len overflowing u32/usize arithmetic: rejected, no wrap.
        let forged = BulkDesc::read(id, FIELD24 as u32, FIELD24 as u32);
        assert_eq!(
            reg.begin(forged, 2, 3, 1, false, false).err(),
            Some(RtError::BadBulk)
        );
        reg.unregister(id, 1).unwrap();
    }

    /// Regression for the aliasing-`&mut` soundness hole: two write
    /// accesses (or a write and a read) to the same slot must never be
    /// live at once, across threads.
    #[test]
    fn write_accesses_are_exclusive_per_slot() {
        use std::sync::atomic::AtomicBool;

        let pool = BufferPool::new();
        let reg = RegionRegistry::new();
        let id = reg.register(buf(&pool, 4096), 4096, 1).unwrap();
        reg.grant(id, 1, 2, 3, true).unwrap();
        let d = BulkDesc::write(id, 0, 4096);
        let writer_live = AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        let acc = reg.begin(d, 2, 3, 1, true, false).unwrap();
                        assert!(
                            !writer_live.swap(true, Ordering::SeqCst),
                            "two write accesses overlapped"
                        );
                        // Safety: the exclusivity under test is exactly
                        // what makes this &mut unique.
                        let bytes = unsafe { std::slice::from_raw_parts_mut(acc.ptr, acc.len) };
                        bytes[0] = bytes[0].wrapping_add(1);
                        writer_live.store(false, Ordering::SeqCst);
                        acc.finish().unwrap();
                    }
                });
                s.spawn(|| {
                    for _ in 0..200 {
                        let acc = reg.begin(d, 2, 3, 1, false, false).unwrap();
                        assert!(
                            !writer_live.load(Ordering::SeqCst),
                            "read access overlapped a write access"
                        );
                        acc.finish().unwrap();
                    }
                });
            }
        });
        reg.unregister(id, 1).unwrap();
    }

    /// A thread holding an access must get an error — not a deadlock —
    /// from conflicting operations on the same slot.
    #[test]
    fn reentrant_conflicts_error_instead_of_deadlocking() {
        let pool = BufferPool::new();
        let reg = RegionRegistry::new();
        let id = reg.register(buf(&pool, 256), 256, 1).unwrap();
        reg.grant(id, 1, 2, 3, true).unwrap();
        let d = BulkDesc::write(id, 0, 256);

        // Holding a read access: another read is fine, a write or any
        // registry mutation on the same slot is a reentrancy error.
        let r1 = reg.begin(d, 2, 3, 1, false, false).unwrap();
        let r2 = reg.begin(d, 2, 3, 1, false, false).unwrap();
        assert_eq!(
            reg.begin(d, 2, 3, 1, true, false).err(),
            Some(RtError::BulkReentrant(id))
        );
        assert_eq!(reg.revoke(id, 1, 2).err(), Some(RtError::BulkReentrant(id)));
        assert_eq!(reg.unregister(id, 1).err(), Some(RtError::BulkReentrant(id)));
        r2.finish().unwrap();
        r1.finish().unwrap();

        // Holding a write access: even a read on the same slot errors.
        let w = reg.begin(d, 2, 3, 1, true, false).unwrap();
        assert_eq!(
            reg.begin(d, 2, 3, 1, false, false).err(),
            Some(RtError::BulkReentrant(id))
        );
        w.finish().unwrap();

        // Ledger fully drained: everything works again.
        reg.begin(d, 2, 3, 1, true, false).unwrap().finish().unwrap();
        assert_eq!(reg.revoke(id, 1, 2).unwrap(), 1);
        reg.unregister(id, 1).unwrap();
    }

    #[test]
    fn epoch_invalidates_in_flight_access() {
        let pool = BufferPool::new();
        let reg = RegionRegistry::new();
        let id = reg.register(buf(&pool, 64), 64, 1).unwrap();
        reg.grant(id, 1, 2, 3, false).unwrap();
        let acc = reg.begin(BulkDesc::read(id, 0, 64), 2, 3, 1, false, false).unwrap();
        // A writer cannot start until `acc` drops, so run it concurrently.
        let t = std::thread::spawn({
            let reg: &RegionRegistry = &reg;
            // Safety: joined before `reg` drops (scoped-thread stand-in).
            let reg = unsafe { std::mem::transmute::<&RegionRegistry, &'static RegionRegistry>(reg) };
            move || reg.revoke(id, 1, 2).unwrap()
        });
        // Give the revoker time to set the epoch odd and start draining.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(acc.finish(), Err(RtError::BulkRevoked(_))));
        assert_eq!(t.join().unwrap(), 1);
    }
}
