//! Worker threads and their per-vCPU pools.
//!
//! A worker is the runtime's analogue of the paper's worker *process*: it
//! belongs to one (entry point, vCPU) pair, idles parked in a lock-free
//! LIFO pool, is handed one call at a time through an atomic mailbox, and
//! re-pools itself after completing. Pools "most commonly contain only a
//! single worker, but can grow and shrink dynamically as needed".

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{JoinHandle, Thread};

use crossbeam::queue::ArrayQueue;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::slot::CallSlot;
use crate::{CallCtx, Handler};

/// Maximum pooled workers per (entry, vCPU).
pub const MAX_POOLED: usize = 64;

/// Shared handle to one worker thread.
///
/// The hot fields (`thread`, `mailbox`) are lock-free: posting a call is
/// one atomic swap plus an `unpark` against a `OnceLock`-published thread
/// handle — no mutex anywhere on the dispatch path. Overrides and
/// shutdown are cold; the fast path only crosses them via the `Relaxed`
/// `has_override` gate and an `Acquire` shutdown load.
pub struct WorkerHandle {
    /// The worker thread, for unparking. Written exactly once by the
    /// spawner before the worker becomes visible to any client, then read
    /// without synchronization cost on every post.
    thread: OnceLock<Thread>,
    /// Mailbox: the posted call slot (`Arc::into_raw` transferred).
    /// Padded: the mailbox ping-pongs between client and worker every
    /// call and must not share a line with the cold fields below.
    mailbox: CachePadded<AtomicPtr<CallSlot>>,
    /// Held CD in hold-CD mode (`Arc::into_raw`, owned by the worker until
    /// shutdown).
    held: AtomicPtr<CallSlot>,
    /// Per-worker handler override (worker initialization, §4.5.3).
    override_handler: Mutex<Option<Handler>>,
    /// Whether an override is installed — the fast-path gate that keeps
    /// `override_handler`'s mutex off the common case entirely.
    has_override: AtomicBool,
    /// Shutdown request.
    shutdown: AtomicBool,
    /// Calls completed by this worker (diagnostics).
    pub calls: AtomicU64,
}

impl WorkerHandle {
    fn new() -> Arc<Self> {
        Arc::new(WorkerHandle {
            thread: OnceLock::new(),
            mailbox: CachePadded::new(AtomicPtr::new(std::ptr::null_mut())),
            held: AtomicPtr::new(std::ptr::null_mut()),
            override_handler: Mutex::new(None),
            has_override: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            calls: AtomicU64::new(0),
        })
    }

    /// Post `slot` to this worker and wake it. Transfers one strong
    /// reference through the mailbox. Lock-free: one swap, one unpark.
    pub fn post(&self, slot: Arc<CallSlot>) {
        let raw = Arc::into_raw(slot) as *mut CallSlot;
        let prev = self.mailbox.swap(raw, Ordering::AcqRel);
        debug_assert!(prev.is_null(), "worker double-posted");
        if let Some(t) = self.thread.get() {
            t.unpark();
        }
    }

    /// The worker's thread handle, once spawned (for the rendezvous's
    /// donation escalation: the client priority-unparks this thread when
    /// its spin budget runs dry).
    pub(crate) fn thread(&self) -> Option<&Thread> {
        self.thread.get()
    }

    pub(crate) fn take_mail(&self) -> Option<Arc<CallSlot>> {
        let raw = self.mailbox.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if raw.is_null() {
            None
        } else {
            // Safety: `post` transferred exactly one strong reference.
            Some(unsafe { Arc::from_raw(raw) })
        }
    }

    /// The worker's held CD, if pinned (hold-CD mode).
    pub fn held_slot(&self) -> Option<Arc<CallSlot>> {
        let raw = self.held.load(Ordering::Acquire);
        if raw.is_null() {
            None
        } else {
            // Safety: `pin_slot` leaked one strong reference that stays in
            // the `held` field until `release_held`; we clone from it.
            unsafe {
                Arc::increment_strong_count(raw);
                Some(Arc::from_raw(raw))
            }
        }
    }

    /// Pin `slot` as this worker's permanent CD.
    pub fn pin_slot(&self, slot: Arc<CallSlot>) {
        let raw = Arc::into_raw(slot) as *mut CallSlot;
        let prev = self.held.swap(raw, Ordering::AcqRel);
        if !prev.is_null() {
            // Safety: we owned the previous pinned reference.
            unsafe { drop(Arc::from_raw(prev)) };
        }
    }

    /// Unpin the held CD, surrendering it to the caller. Teardown paths
    /// hand the slot back to a vCPU CD pool rather than dropping it:
    /// each pool is a fixed-capacity reservoir, so a slot dropped here
    /// would shrink the warm-CD supply by one for the rest of the
    /// process — hold-CD entry churn would bleed the pool dry.
    fn release_held(&self) -> Option<Arc<CallSlot>> {
        let raw = self.held.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if raw.is_null() {
            None
        } else {
            // Safety: symmetric with pin_slot.
            Some(unsafe { Arc::from_raw(raw) })
        }
    }

    /// Install a per-worker handler override. The content is published
    /// before the gate flips, so a worker that observes the gate with
    /// `Acquire` always finds the override behind the lock.
    pub fn set_override(&self, h: Handler) {
        *self.override_handler.lock() = Some(h);
        self.has_override.store(true, Ordering::Release);
    }

    /// Remove the override (used by Exchange so new code takes effect).
    pub fn clear_override(&self) {
        self.has_override.store(false, Ordering::Release);
        *self.override_handler.lock() = None;
    }

    /// Has this worker been asked to shut down? `Acquire` pairs with the
    /// `Release` in [`WorkerHandle::request_shutdown`]; the dispatch fast
    /// path performs this load, so it must not be (and is not) SeqCst.
    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Request shutdown and wake the worker.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.thread.get() {
            t.unpark();
        }
    }
}

/// A worker plus its join handle (taken when reaped).
type WorkerRecord = (Arc<WorkerHandle>, Option<JoinHandle<()>>);

/// The per-(entry, vCPU) worker pool.
pub struct WorkerPool {
    idle: ArrayQueue<Arc<WorkerHandle>>,
    /// All workers ever created here (for reaping).
    all: Mutex<Vec<WorkerRecord>>,
    /// Workers created (diagnostics).
    pub created: AtomicU64,
}

impl WorkerPool {
    /// An empty pool.
    pub fn new() -> Self {
        WorkerPool {
            idle: ArrayQueue::new(MAX_POOLED),
            all: Mutex::new(Vec::new()),
            created: AtomicU64::new(0),
        }
    }

    /// Pop an idle worker (lock-free fastpath).
    pub fn pop(&self) -> Option<Arc<WorkerHandle>> {
        self.idle.pop()
    }

    /// Return a worker to the pool.
    pub fn push(&self, w: Arc<WorkerHandle>) {
        let _ = self.idle.push(w);
    }

    /// Idle count (diagnostics).
    pub fn idle_len(&self) -> usize {
        self.idle.len()
    }

    /// Create a worker thread bound to `entry`'s dispatch loop on `vcpu`.
    /// `pin_core` optionally pins the thread; `pool_it` leaves the worker
    /// idle in the pool (bind-time pre-spawn), otherwise it is handed
    /// directly to the caller (the Frank grow-on-demand path).
    ///
    /// The thread handle is installed by the *spawner* before the worker
    /// becomes visible, so a post can never miss its unpark target.
    pub fn grow(
        &self,
        entry: &Arc<crate::entry::EntryShared>,
        vcpu: usize,
        pin_core: bool,
        pool_it: bool,
    ) -> Arc<WorkerHandle> {
        let w = WorkerHandle::new();
        let entry2 = Arc::clone(entry);
        let w2 = Arc::clone(&w);
        let name = format!("ppc-worker-e{}-v{}", entry.id, vcpu);
        let jh = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                if pin_core {
                    pin_to_vcpu_core(vcpu);
                }
                worker_loop(entry2, w2, vcpu);
            })
            .expect("spawn worker thread");
        w.thread.set(jh.thread().clone()).expect("thread handle set once");
        self.created.fetch_add(1, Ordering::Relaxed);
        self.all.lock().push((Arc::clone(&w), Some(jh)));
        if pool_it {
            self.push(Arc::clone(&w));
        }
        w
    }

    /// Visit every worker ever created in this pool (cold path).
    pub fn for_each_worker(&self, mut f: impl FnMut(&WorkerHandle)) {
        for (w, _) in self.all.lock().iter() {
            f(w);
        }
    }

    /// Shut down every worker and join the threads. Returns the CDs the
    /// workers had pinned (hold-CD mode) so the caller can recycle them
    /// into a vCPU pool.
    pub fn reap(&self) -> Vec<Arc<CallSlot>> {
        let mut freed = Vec::new();
        let mut all = self.all.lock();
        for (w, _) in all.iter() {
            w.request_shutdown();
        }
        for (w, jh) in all.iter_mut() {
            if let Some(jh) = jh.take() {
                let _ = jh.join();
            }
            freed.extend(w.release_held());
        }
        while self.idle.pop().is_some() {}
        freed
    }

    /// Shut down surplus idle workers beyond `keep` ("pools can grow and
    /// shrink dynamically"). Returns how many were reaped, plus the CDs
    /// they had pinned (hold-CD mode) for the caller to recycle — a
    /// shrunk worker never runs again, so a slot left in its `held`
    /// field would leak and stay invisible to the vCPU pool forever.
    pub fn shrink_to(&self, keep: usize) -> (usize, Vec<Arc<CallSlot>>) {
        let mut reaped = 0;
        while self.idle.len() > keep {
            match self.idle.pop() {
                Some(w) => {
                    w.request_shutdown();
                    reaped += 1;
                }
                None => break,
            }
        }
        // Join the reaped threads and collect any pinned CDs.
        let mut freed = Vec::new();
        let mut all = self.all.lock();
        for (w, jh) in all.iter_mut() {
            if w.shutdown.load(Ordering::Acquire) {
                if let Some(jh) = jh.take() {
                    let _ = jh.join();
                }
                freed.extend(w.release_held());
            }
        }
        (reaped, freed)
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

/// Pin the calling thread to `vcpu`'s core (modulo the host's core
/// count) — the placement discipline every facility thread follows, so
/// a vCPU's entry workers and its ring worker land on the same core as
/// the clients they serve.
pub(crate) fn pin_to_vcpu_core(vcpu: usize) {
    if let Some(cores) = core_affinity::get_core_ids() {
        if !cores.is_empty() {
            let core = cores[vcpu % cores.len()];
            let _ = core_affinity::set_for_current(core);
        }
    }
}

/// Idle rendezvous, worker side: bounded spin on the mailbox before
/// parking — the mirror of the client's `CallSlot::wait_done_spin`. In a
/// stream of back-to-back calls neither side ever reaches a futex: the
/// client posts while we are still spinning (its `unpark` then only sets
/// the token, no syscall), and we pick the call up at the next mailbox
/// check. Budget 0 (`SpinPolicy::ParkOnly`) parks immediately, keeping
/// that baseline a pure park/unpark pair. The spin yields up front and
/// every 64 iterations so the client (or anyone else) can run on an
/// oversubscribed host.
fn idle_wait(
    entry: &crate::entry::EntryShared,
    me: &WorkerHandle,
    timer: &mut crate::stats::StateTimer<'_>,
) {
    let budget = entry.idle_spin.load(Ordering::Relaxed);
    let mut spins = 0u32;
    while spins < budget {
        if spins & 63 == 0 {
            std::thread::yield_now();
        }
        std::hint::spin_loop();
        if !me.mailbox.load(Ordering::Relaxed).is_null()
            || me.shutdown.load(Ordering::Relaxed)
        {
            return;
        }
        spins += 1;
    }
    // Budget exhausted (or zero): park. A post or shutdown request that
    // raced the spin already set our park token, so this cannot hang.
    // The spin above was Idle time; the park interval is Park time.
    timer.transition(crate::stats::TimeState::Park);
    std::thread::park();
    timer.transition(crate::stats::TimeState::Idle);
}

/// The worker thread body: park → take call → run handler → complete →
/// re-pool → park. (The spawner installed our thread handle and pooled us
/// before we became visible.)
fn worker_loop(entry: Arc<crate::entry::EntryShared>, me: Arc<WorkerHandle>, vcpu: usize) {
    // This thread's wall-time classifier: Idle on the mailbox spin, Park
    // across the futex wait (both inside `idle_wait`), Handler from call
    // pickup to completion. One timer per thread keeps the states
    // exclusive; the drop on return charges the tail interval.
    let mut timer =
        crate::stats::StateTimer::new(entry.stats.cell(vcpu), crate::stats::TimeState::Idle);
    loop {
        if me.shutdown.load(Ordering::Acquire) {
            // A client may have posted a call in the window between
            // popping this worker and our shutdown: complete it with the
            // abort marker so the caller is never left parked forever
            // (it will observe the entry's Dead state and report
            // `Aborted`). A waiting client owns the claim release (its
            // guard drops after it reads the entry state); for async
            // calls nobody else will, so release it here.
            if let Some(slot) = me.take_mail() {
                if !slot.has_client() {
                    entry.finish_call(vcpu, slot.parity());
                }
                slot.complete(crate::slot::ABORT_RETS);
            }
            return;
        }
        let Some(slot) = me.take_mail() else {
            idle_wait(&entry, &me, &mut timer);
            continue;
        };
        timer.transition(crate::stats::TimeState::Handler);

        let args = slot.read_args();
        let program = slot.caller_program();
        // The override mutex is only ever taken when the gate says an
        // override exists — workers with no initialization routine never
        // touch a lock here.
        let handler = if me.has_override.load(Ordering::Acquire) {
            me.override_handler.lock().clone().unwrap_or_else(|| entry.handler())
        } else {
            entry.handler()
        };
        // A faulting (panicking) handler must not take the worker — or the
        // parked client — down with it: the paper chose worker processes
        // precisely so failure modes "more closely follow those of a
        // message exchange" (§2).
        // Handler-run timing samples on *this* worker thread's tick —
        // per-thread sampling needs no coordination with the client side.
        let th0 = entry.obs.try_sample().then(std::time::Instant::now);
        // Handler span under the context that rode the slot across the
        // hand-off (active only when the client traced this call). The
        // scope installs it, so nested calls the handler makes from this
        // thread parent here; the drop below — before `complete` — ends
        // it, and the DONE Release/Acquire edge orders our ring write
        // before any client-side scan of the trace.
        let h_scope = entry.spans.handler_scope(slot.trace_word(), vcpu, entry.id);
        let rets = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slot.with_scratch(|scratch| {
                let mut ctx = CallCtx {
                    args,
                    caller_program: program,
                    vcpu,
                    ep: entry.id,
                    scratch: crate::ScratchRef::Ready(scratch),
                    worker: Some(&me),
                    entry: &entry,
                };
                handler(&mut ctx)
            })
        })) {
            Ok(rets) => rets,
            Err(_) => {
                slot.mark_faulted();
                // Contained faults are rare: always in the flight ring,
                // and always dumped — a panic that something upstream
                // swallows still leaves its context on stderr.
                entry.flight.record(vcpu, crate::flight::FlightKind::Fault, entry.id, program);
                entry.dump_fault(vcpu);
                // Postmortem hook: freeze the whole facility state, not
                // just this entry's stderr dump (rate-limited; a no-op
                // without a capture directory).
                entry.blackbox.event("handler-panic");
                [u64::MAX; 8]
            }
        };
        drop(h_scope);
        if let Some(th0) = th0 {
            entry.obs.record(
                crate::obs::LatencyKind::Handler,
                vcpu,
                th0.elapsed().as_nanos() as u64,
            );
        }
        timer.transition(crate::stats::TimeState::Idle);
        me.calls.fetch_add(1, Ordering::Relaxed);
        // The completion count lands on this vCPU's lifecycle shard —
        // the worker is bound to the caller's vCPU, so this is the same
        // cache line the caller's own accounting uses, never a remote
        // one. Claim release is ownership-split: a synchronous caller's
        // guard releases after it finishes reading the entry (releasing
        // here would let a reclaim free the entry under the caller);
        // async calls have no one else to do it.
        entry.record_completion(vcpu);
        if !slot.has_client() {
            entry.finish_call(vcpu, slot.parity());
        }
        // Re-pool *before* waking the client: a client that immediately
        // re-dispatches must find this worker idle again, not grow the
        // pool (the paper's single pooled worker handles back-to-back
        // calls).
        entry.pool(vcpu).push(Arc::clone(&me));
        slot.complete(rets);
        drop(slot);
    }
}
