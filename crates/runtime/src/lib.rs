//! # ppc-rt — a real-threads, user-level port of the PPC design
//!
//! The simulator crates reproduce the paper's *numbers*; this crate makes
//! the paper's *design* executable on a modern machine. It maps the
//! kernel-level mechanism onto user-level primitives:
//!
//! | paper (Hurricane kernel) | this crate |
//! |---|---|
//! | processor | [`Runtime`] virtual processor (optionally pinned via `core_affinity`) |
//! | worker process | worker OS thread, parked in a per-vCPU lock-free pool |
//! | call descriptor + stack page | [`slot::CallSlot`] with a 4 KB scratch page, per-vCPU lock-free pool |
//! | hand-off scheduling | `thread::park` / `Thread::unpark` direct switch |
//! | 8 registers each way | `[u64; 8]` argument/result frames, never touching shared queues |
//! | service table (1024, per CPU) | `AtomicPtr` entry table, wait-free reads |
//! | Frank (slow-path resource manager) | the grow path: pool-empty events create workers/slots |
//! | program-ID authentication | `caller_program` in [`CallCtx`] + [`auth::Acl`] |
//! | soft-/hard-kill, Exchange | [`Runtime::soft_kill`], [`Runtime::hard_kill`], [`Runtime::exchange`] |
//! | worker initialization (§4.5.3) | per-worker handler override via [`CallCtx::set_worker_handler`] |
//! | async / interrupt / upcall variants | [`Client::call_async`], [`Runtime::upcall`] |
//! | CopyTo/CopyFrom bulk data (§4.2) | [`Client::call_with_payload`] through the scratch page |
//! | worker-process fault isolation (§2) | handler panics become [`RtError::ServerFault`]; the pool survives |
//! | "handled on the same processor as the client" (§3) | [`EntryOptions::inline_ok`]: caller-thread inline dispatch, zero park/unpark |
//! | temporary-then-block waiting (hand-off latency) | [`SpinPolicy`]: adaptive spin-then-park rendezvous, per-vCPU EWMA-tuned budget |
//! | "a PPC accesses no shared data" (§3) | per-vCPU `#[repr(align(64))]` [`stats::StatsCell`]s, aggregated only on read |
//!
//! The common-case call path performs **no lock acquisitions and no
//! SeqCst atomics**: pools are lock-free queues (`crossbeam`), the entry
//! table is read with a single atomic load, the client↔worker rendezvous
//! is an atomic mailbox plus an adaptive spin-then-park wait, and every
//! fast-path counter is a `Relaxed` increment on the calling vCPU's own
//! cache line. Locks appear only on cold paths (registration, kill,
//! exchange, worker-override installation) — exactly the paper's
//! discipline.
//!
//! Three dispatch modes cover the latency spectrum (measured by the
//! `rt_modes` bench; see `EXPERIMENTS.md`):
//!
//! 1. **inline** ([`EntryOptions::inline_ok`]) — the handler runs on the
//!    caller's thread in a borrowed CD; nothing parks, nothing wakes.
//! 2. **spin-then-park** (default, [`SpinPolicy::Adaptive`]) — the caller
//!    hands off to a worker and spins on the padded slot-state word for a
//!    budget tuned from an EWMA of recent call latency, parking only when
//!    handlers are slow enough that spinning would waste the processor.
//! 3. **park** ([`SpinPolicy::ParkOnly`]) — the pre-optimization
//!    behavior; one park/unpark round trip per call.
//!
//! ```
//! use ppc_rt::{Runtime, EntryOptions};
//! use std::sync::Arc;
//!
//! let rt = Runtime::new(2);
//! let ep = rt
//!     .bind("echo", EntryOptions::default(), Arc::new(|ctx| ctx.args))
//!     .unwrap();
//! let client = rt.client(0, 42);
//! assert_eq!(client.call(ep, [1, 2, 3, 4, 5, 6, 7, 8]).unwrap(), [1, 2, 3, 4, 5, 6, 7, 8]);
//! ```

pub mod auth;
pub mod baseline;
pub mod call;
pub mod entry;
pub mod naming;
pub mod slot;
pub mod stats;
pub mod worker;

use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU8, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

pub use entry::{EntryOptions, EntryState};
pub use stats::{RuntimeStats, Snapshot, StatsCell};

use entry::EntryShared;
use slot::CallSlot;
use worker::WorkerHandle;

/// Entry-point identifier (small integer, < [`MAX_ENTRIES`]).
pub type EntryId = usize;

/// The paper's cap on simultaneously-bound entry points.
pub const MAX_ENTRIES: usize = 1024;

/// Program identity used for server-side authentication (§4.1).
pub type ProgramId = u32;

/// Errors reported by runtime operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtError {
    /// Entry-point ID out of range or unbound.
    UnknownEntry(EntryId),
    /// The entry point is soft- or hard-killed.
    EntryDead(EntryId),
    /// The call ran while the entry point was hard-killed.
    Aborted(EntryId),
    /// The entry table is full, or the requested slot is taken.
    TableFull,
    /// Operation requires ownership of the entry point.
    NotOwner,
    /// vCPU index out of range.
    BadVcpu(usize),
    /// The server's handler panicked while servicing the call. Per the
    /// paper's §2 rationale for worker processes, the failure "follows
    /// those of a message exchange": the caller gets an error, the server
    /// (and its other workers) keep running.
    ServerFault(EntryId),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::UnknownEntry(ep) => write!(f, "unknown entry point {ep}"),
            RtError::EntryDead(ep) => write!(f, "entry point {ep} is dead"),
            RtError::Aborted(ep) => write!(f, "call aborted by hard kill of {ep}"),
            RtError::TableFull => write!(f, "entry table full or slot taken"),
            RtError::NotOwner => write!(f, "caller does not own this entry point"),
            RtError::BadVcpu(v) => write!(f, "virtual processor {v} does not exist"),
            RtError::ServerFault(ep) => {
                write!(f, "server handler for entry {ep} faulted during the call")
            }
        }
    }
}

impl std::error::Error for RtError {}

/// How a synchronous caller waits out the hand-off rendezvous. Set per
/// runtime with [`Runtime::set_spin_policy`]; read on every sync call
/// with a `Relaxed` load.
///
/// The policy is paired: it also sets the *worker-side* idle-mailbox spin
/// budget, so under `Adaptive`/`Fixed` a stream of back-to-back calls
/// resolves both waits in user space without either thread reaching a
/// futex, while `ParkOnly` keeps both sides on the pure park/unpark pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpinPolicy {
    /// Spin on the slot-state word with a per-vCPU budget tuned from an
    /// EWMA of observed call latency, then park. Fast handlers keep their
    /// vCPU spinning (no park/unpark round trip); slow handlers push the
    /// EWMA past [`spin::PARK_THRESHOLD_NS`] and the vCPU stops spinning
    /// altogether. The default.
    Adaptive,
    /// Spin a fixed number of iterations before parking.
    Fixed(u32),
    /// Park immediately — the pre-optimization rendezvous. One
    /// park/unpark round trip per call regardless of handler latency.
    ParkOnly,
}

/// Tuning constants for the adaptive spin-then-park rendezvous.
pub mod spin {
    /// Spin budget (iterations) before the first latency observation.
    pub const DEFAULT_BUDGET: u32 = 1 << 10;
    /// Floor of the adaptive budget while spinning is still worthwhile.
    pub const MIN_BUDGET: u32 = 1 << 8;
    /// Ceiling of the adaptive budget — past this, parking is cheaper
    /// than the burned cycles even if the handler eventually finishes.
    pub const MAX_BUDGET: u32 = 1 << 14;
    /// EWMA latency (ns) above which the adaptive policy stops spinning
    /// entirely: a 100 µs handler dwarfs any park/unpark saving.
    pub const PARK_THRESHOLD_NS: u64 = 100_000;
}

/// Context a service handler receives for one call.
pub struct CallCtx<'a> {
    /// The 8 argument words.
    pub args: [u64; 8],
    /// Caller's program identity (0 for interrupt/upcall variants).
    pub caller_program: ProgramId,
    /// Virtual processor the call executes on (== the caller's vCPU).
    pub vcpu: usize,
    /// The entry point being invoked.
    pub ep: EntryId,
    pub(crate) scratch: &'a mut [u8],
    /// `None` when the call executes inline on the caller's thread
    /// ([`EntryOptions::inline_ok`]) — there is no worker to configure.
    pub(crate) worker: Option<&'a WorkerHandle>,
    pub(crate) entry: &'a EntryShared,
}

impl<'a> CallCtx<'a> {
    /// The 4 KB per-call scratch page (the CD's "stack page"). Recycled
    /// across calls and, by default, across services — exactly the paper's
    /// serially-shared stacks, with the same caveat that secrets should
    /// not be left behind (use trust groups or hold-CD mode for that).
    pub fn scratch(&mut self) -> &mut [u8] {
        self.scratch
    }

    /// Replace **this worker's** handling routine for subsequent calls —
    /// the §4.5.3 one-time-initialization pattern: bind the init routine,
    /// and have it call `set_worker_handler(main_handler)` on first call.
    ///
    /// No-op when the call executes inline on the caller's thread
    /// ([`EntryOptions::inline_ok`]): inline dispatch has no worker, so
    /// per-worker initialization does not apply.
    pub fn set_worker_handler(&self, h: Handler) {
        if let Some(w) = self.worker {
            w.set_override(h);
        }
    }

    /// Number of calls this entry point has completed (diagnostics).
    pub fn entry_calls(&self) -> u64 {
        self.entry.calls.load(Ordering::Relaxed)
    }
}

/// A service handler: receives the call context, returns 8 result words.
pub type Handler = Arc<dyn Fn(&mut CallCtx<'_>) -> [u64; 8] + Send + Sync>;

/// Per-virtual-processor state: the CD pool (all services on this vCPU
/// share it) — the direct analogue of the paper's per-processor pools.
pub struct VcpuState {
    /// Lock-free pool of idle call slots.
    pub(crate) cd_pool: crossbeam::queue::ArrayQueue<Arc<CallSlot>>,
    /// Slots ever created on this vCPU (diagnostics).
    pub(crate) cds_created: AtomicU64,
    /// EWMA of observed synchronous hand-off latency on this vCPU, in
    /// nanoseconds. Written only by callers on this vCPU (`Relaxed`);
    /// feeds [`VcpuState::spin_budget`].
    pub(crate) ewma_ns: AtomicU64,
    /// Index of this vCPU.
    pub id: usize,
}

impl VcpuState {
    fn new(id: usize, initial_cds: usize) -> Arc<Self> {
        let v = Arc::new(VcpuState {
            cd_pool: crossbeam::queue::ArrayQueue::new(256),
            cds_created: AtomicU64::new(0),
            ewma_ns: AtomicU64::new(0),
            id,
        });
        for _ in 0..initial_cds {
            let _ = v.cd_pool.push(CallSlot::new());
            v.cds_created.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Fold one observed call latency into the EWMA (weight 1/8: old
    /// enough to smooth scheduler noise, fresh enough to track a phase
    /// change within a few calls). A lost update under a racy
    /// read-modify-write is harmless — the next call re-observes.
    pub(crate) fn observe_latency(&self, ns: u64) {
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 { ns } else { old - old / 8 + ns / 8 };
        self.ewma_ns.store(new, Ordering::Relaxed);
    }

    /// The adaptive spin budget for the next rendezvous on this vCPU:
    /// roughly "spin about as long as a typical call takes", clamped to
    /// [`spin::MIN_BUDGET`]..=[`spin::MAX_BUDGET`], and zero (park
    /// immediately) once typical latency exceeds
    /// [`spin::PARK_THRESHOLD_NS`].
    pub(crate) fn spin_budget(&self) -> u32 {
        let ewma = self.ewma_ns.load(Ordering::Relaxed);
        if ewma == 0 {
            return spin::DEFAULT_BUDGET;
        }
        if ewma > spin::PARK_THRESHOLD_NS {
            return 0;
        }
        (ewma as u32).clamp(spin::MIN_BUDGET, spin::MAX_BUDGET)
    }

    /// Take a slot, growing the pool if dry (the Frank slow path).
    /// `cell` is the calling vCPU's stats cell.
    pub(crate) fn take_slot(&self, cell: &StatsCell) -> Arc<CallSlot> {
        match self.cd_pool.pop() {
            Some(s) => s,
            None => {
                cell.frank_redirects.fetch_add(1, Ordering::Relaxed);
                cell.cds_created.fetch_add(1, Ordering::Relaxed);
                self.cds_created.fetch_add(1, Ordering::Relaxed);
                CallSlot::new()
            }
        }
    }

    /// Return a slot to the pool (dropped if the pool is full — surplus
    /// reclamation, §2's "extra stacks can easily be reclaimed").
    pub(crate) fn put_slot(&self, slot: Arc<CallSlot>) {
        slot.reset();
        let _ = self.cd_pool.push(slot);
    }
}

/// The PPC runtime: virtual processors, the entry table, and the cold-path
/// registries.
pub struct Runtime {
    vcpus: Vec<Arc<VcpuState>>,
    /// Wait-free entry table: one atomic pointer per entry ID, per the
    /// paper's "simple array with direct indexing".
    table: Vec<AtomicPtr<EntryShared>>,
    /// Cold-path registry holding strong references for the table's raw
    /// pointers (and for unbound entries until shutdown, so readers racing
    /// a kill never observe a dangling pointer).
    registry: Mutex<Vec<Arc<EntryShared>>>,
    /// Name table (cold path).
    pub(crate) names: Mutex<std::collections::HashMap<String, EntryId>>,
    /// Facility counters, sharded per vCPU.
    pub stats: RuntimeStats,
    /// Pin worker threads to cores.
    pin: bool,
    /// Encoded [`SpinPolicy`] discriminant (see `SPIN_*` constants).
    spin_mode: AtomicU8,
    /// Budget operand for [`SpinPolicy::Fixed`].
    spin_fixed: AtomicU32,
    shutdown: AtomicU8,
}

const SPIN_ADAPTIVE: u8 = 0;
const SPIN_FIXED: u8 = 1;
const SPIN_PARK_ONLY: u8 = 2;

/// Worker-side idle-mailbox spin budget implied by a client wait policy.
/// The rendezvous is spin-paired: when clients spin out the hand-off, the
/// worker also spins briefly on its mailbox between calls, so a stream of
/// back-to-back calls never reaches a futex on either side (the client's
/// post finds the worker unparked and its `unpark` stays token-only).
/// `ParkOnly` maps to 0 so that baseline stays a pure park/unpark pair.
pub(crate) fn worker_idle_budget(p: SpinPolicy) -> u32 {
    match p {
        SpinPolicy::Adaptive => spin::DEFAULT_BUDGET,
        SpinPolicy::Fixed(n) => n,
        SpinPolicy::ParkOnly => 0,
    }
}

impl Runtime {
    /// A runtime with `n_vcpus` virtual processors, unpinned, one CD
    /// pre-pooled per vCPU (like the worker pools, the CD pool "most
    /// commonly contains only" what back-to-back calls recycle; bursts
    /// grow it on demand).
    pub fn new(n_vcpus: usize) -> Arc<Self> {
        Self::with_options(n_vcpus, false, 1)
    }

    /// A runtime with explicit options: `pin` requests `core_affinity`
    /// pinning of worker threads (vCPU *i* to core *i mod n_cores*;
    /// silently unpinned where pinning fails), `initial_cds` pre-populates
    /// each vCPU's CD pool.
    pub fn with_options(n_vcpus: usize, pin: bool, initial_cds: usize) -> Arc<Self> {
        assert!(n_vcpus >= 1, "at least one virtual processor");
        Arc::new(Runtime {
            vcpus: (0..n_vcpus).map(|i| VcpuState::new(i, initial_cds)).collect(),
            table: (0..MAX_ENTRIES).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
            registry: Mutex::new(Vec::new()),
            names: Mutex::new(std::collections::HashMap::new()),
            stats: RuntimeStats::new(n_vcpus),
            pin,
            spin_mode: AtomicU8::new(SPIN_ADAPTIVE),
            spin_fixed: AtomicU32::new(spin::DEFAULT_BUDGET),
            shutdown: AtomicU8::new(0),
        })
    }

    /// Change the synchronous-rendezvous wait policy. Takes effect for
    /// subsequent calls; safe to call concurrently with dispatch (the
    /// fast path reads it with one `Relaxed` load).
    pub fn set_spin_policy(&self, p: SpinPolicy) {
        match p {
            SpinPolicy::Adaptive => self.spin_mode.store(SPIN_ADAPTIVE, Ordering::Relaxed),
            SpinPolicy::ParkOnly => self.spin_mode.store(SPIN_PARK_ONLY, Ordering::Relaxed),
            SpinPolicy::Fixed(n) => {
                self.spin_fixed.store(n, Ordering::Relaxed);
                self.spin_mode.store(SPIN_FIXED, Ordering::Relaxed);
            }
        }
        // Propagate the paired worker-side idle spin budget to every bound
        // entry (cold path; new binds pick it up from the policy directly).
        let budget = worker_idle_budget(p);
        for e in self.registry_lock().iter() {
            e.idle_spin.store(budget, Ordering::Relaxed);
        }
    }

    /// The current synchronous-rendezvous wait policy.
    pub fn spin_policy(&self) -> SpinPolicy {
        match self.spin_mode.load(Ordering::Relaxed) {
            SPIN_PARK_ONLY => SpinPolicy::ParkOnly,
            SPIN_FIXED => SpinPolicy::Fixed(self.spin_fixed.load(Ordering::Relaxed)),
            _ => SpinPolicy::Adaptive,
        }
    }

    /// Number of virtual processors.
    pub fn n_vcpus(&self) -> usize {
        self.vcpus.len()
    }

    pub(crate) fn vcpu(&self, v: usize) -> Result<&Arc<VcpuState>, RtError> {
        self.vcpus.get(v).ok_or(RtError::BadVcpu(v))
    }

    pub(crate) fn registry_lock(
        &self,
    ) -> parking_lot::MutexGuard<'_, Vec<Arc<EntryShared>>> {
        self.registry.lock()
    }

    pub(crate) fn table(&self) -> &[AtomicPtr<EntryShared>] {
        &self.table
    }

    /// Whether worker pinning was requested.
    pub fn pinned(&self) -> bool {
        self.pin
    }

    /// A client bound to vCPU `vcpu` with program identity `program`.
    /// Calls made through the client use that vCPU's pools, mirroring
    /// "requests are always handled on the same processor as the client".
    pub fn client(self: &Arc<Self>, vcpu: usize, program: ProgramId) -> Client {
        assert!(vcpu < self.vcpus.len(), "vcpu {vcpu} out of range");
        Client { rt: Arc::clone(self), vcpu, program }
    }

    /// Wait-free entry lookup (the fastpath's single atomic load).
    pub(crate) fn entry(&self, ep: EntryId) -> Result<&EntryShared, RtError> {
        if ep >= MAX_ENTRIES {
            return Err(RtError::UnknownEntry(ep));
        }
        let p = self.table[ep].load(Ordering::Acquire);
        if p.is_null() {
            return Err(RtError::UnknownEntry(ep));
        }
        // Safety: the registry holds a strong reference for every pointer
        // ever published in the table until Runtime shutdown, so the
        // pointee outlives any reader.
        Ok(unsafe { &*p })
    }
}

/// A client handle: the caller's (vCPU, program) identity.
#[derive(Clone)]
pub struct Client {
    rt: Arc<Runtime>,
    /// The vCPU this client runs on.
    pub vcpu: usize,
    /// The client's program identity.
    pub program: ProgramId,
}

impl Client {
    /// The runtime this client belongs to.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// Synchronous PPC: 8 words in, 8 words out, hand-off to a worker on
    /// this client's vCPU. No locks, no shared queues.
    pub fn call(&self, ep: EntryId, args: [u64; 8]) -> Result<[u64; 8], RtError> {
        self.rt.dispatch(self.vcpu, ep, args, self.program, true).map(|r| r.expect("sync result"))
    }

    /// Asynchronous PPC (§4.4): the caller continues immediately; the
    /// result can be awaited (or dropped, as the paper's prefetch does).
    pub fn call_async(&self, ep: EntryId, args: [u64; 8]) -> Result<AsyncCall, RtError> {
        self.rt.dispatch_async(self.vcpu, ep, args, self.program)
    }

    /// Synchronous PPC with a bulk payload (§4.2's CopyFrom/CopyTo rolled
    /// into the call): up to 4 KB of request data travels in the call
    /// slot's scratch page, the handler rewrites it in place, and the
    /// first `rets[7]` bytes come back as the response payload. Panics if
    /// `payload` exceeds the scratch page.
    pub fn call_with_payload(
        &self,
        ep: EntryId,
        args: [u64; 8],
        payload: &[u8],
    ) -> Result<([u64; 8], Vec<u8>), RtError> {
        self.rt.dispatch_payload(self.vcpu, ep, args, self.program, payload)
    }
}

/// A pending asynchronous call.
pub struct AsyncCall {
    pub(crate) slot: Arc<CallSlot>,
    pub(crate) vcpu: Arc<VcpuState>,
    pub(crate) ep: EntryId,
    /// The slot is a worker's pinned CD (hold-CD mode): it must be reset
    /// but never returned to the vCPU pool — it already has an owner, and
    /// pooling it would let two calls fill the same slot concurrently.
    pub(crate) held: bool,
}

impl AsyncCall {
    /// Block until the worker completes and return the result words.
    pub fn wait(&self) -> [u64; 8] {
        self.slot.wait_done();
        self.slot.read_rets()
    }

    /// Non-blocking completion check.
    pub fn is_done(&self) -> bool {
        self.slot.is_done()
    }

    /// The entry point this call targets.
    pub fn entry(&self) -> EntryId {
        self.ep
    }
}

impl Drop for AsyncCall {
    fn drop(&mut self) {
        // Recycle the slot only once the worker is finished with it. A
        // held CD stays pinned to its worker: reset it in place.
        self.slot.wait_done();
        if self.held {
            self.slot.reset();
        } else {
            self.vcpu.put_slot(Arc::clone(&self.slot));
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown.store(1, Ordering::SeqCst);
        // Reap every live entry: signal workers and join them, then let
        // the registry drop the shared state.
        let entries: Vec<Arc<EntryShared>> = self.registry.lock().clone();
        for e in &entries {
            e.state.store(EntryState::Dead as u8, Ordering::SeqCst);
            e.reap_workers();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_and_echo() {
        let rt = Runtime::new(1);
        let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|ctx| ctx.args)).unwrap();
        let c = rt.client(0, 7);
        assert_eq!(c.call(ep, [9; 8]).unwrap(), [9; 8]);
        assert_eq!(rt.stats.calls(), 1);
    }

    #[test]
    fn unknown_entry_rejected() {
        let rt = Runtime::new(1);
        let c = rt.client(0, 7);
        assert_eq!(c.call(5, [0; 8]), Err(RtError::UnknownEntry(5)));
        assert_eq!(c.call(MAX_ENTRIES + 1, [0; 8]), Err(RtError::UnknownEntry(MAX_ENTRIES + 1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_vcpu_client_panics() {
        let rt = Runtime::new(1);
        let _ = rt.client(3, 1);
    }
}
