//! # ppc-rt — a real-threads, user-level port of the PPC design
//!
//! The simulator crates reproduce the paper's *numbers*; this crate makes
//! the paper's *design* executable on a modern machine. It maps the
//! kernel-level mechanism onto user-level primitives:
//!
//! | paper (Hurricane kernel) | this crate |
//! |---|---|
//! | processor | [`Runtime`] virtual processor (optionally pinned via `core_affinity`) |
//! | worker process | worker OS thread, parked in a per-vCPU lock-free pool |
//! | call descriptor + stack page | [`slot::CallSlot`] with a 4 KB scratch page, per-vCPU lock-free pool |
//! | hand-off scheduling | `thread::park` / `Thread::unpark` direct switch |
//! | 8 registers each way | `[u64; 8]` argument/result frames, never touching shared queues |
//! | service table (1024, per CPU) | per-vCPU `AtomicPtr` table **replicas**, wait-free reads, cold-path publish broadcast |
//! | Frank (slow-path resource manager) | [`frank`]: bind/kill/exchange/reclaim + the grow/shrink paths, epoch-based reclamation |
//! | program-ID authentication | `caller_program` in [`CallCtx`] + [`auth::Acl`] |
//! | soft-/hard-kill, Exchange | [`Runtime::soft_kill`], [`Runtime::hard_kill`], [`Runtime::exchange`] |
//! | worker initialization (§4.5.3) | per-worker handler override via [`CallCtx::set_worker_handler`] |
//! | async / interrupt / upcall variants | [`Client::call_async`], [`Runtime::upcall`] |
//! | CopyTo/CopyFrom bulk data (§4.2) | [`Client::call_with_payload`] through the scratch page |
//! | worker-process fault isolation (§2) | handler panics become [`RtError::ServerFault`]; the pool survives |
//! | "handled on the same processor as the client" (§3) | [`EntryOptions::inline_ok`]: caller-thread inline dispatch, zero park/unpark |
//! | temporary-then-block waiting (hand-off latency) | [`SpinPolicy`]: adaptive spin-then-park rendezvous, per-vCPU EWMA-tuned budget |
//! | "a PPC accesses no shared data" (§3) | per-vCPU `#[repr(align(64))]` [`stats::StatsCell`]s, aggregated only on read |
//!
//! The common-case call path performs **no lock acquisitions and no
//! writes to a cache line any other vCPU's fast path writes**: pools are
//! lock-free queues (`crossbeam`), the entry lookup is a single atomic
//! load of the calling vCPU's own table replica, the client↔worker
//! rendezvous is an atomic mailbox plus an adaptive spin-then-park wait,
//! and every fast-path counter — including the entry's in-flight and
//! completion accounting — is an increment on the calling vCPU's own
//! cache line. The handful of `SeqCst` operations the epoch-reclamation
//! protocol adds are all vCPU-local RMWs or loads of read-mostly shared
//! words (the era counters, the table replica), which stay resident in
//! every cache until a cold-path exchange or reclaim actually flips
//! them. Locks appear only on cold paths (registration, kill, exchange,
//! worker-override installation) — exactly the paper's discipline.
//!
//! Three dispatch modes cover the latency spectrum (measured by the
//! `rt_modes` bench; see `EXPERIMENTS.md`):
//!
//! 1. **inline** ([`EntryOptions::inline_ok`]) — the handler runs on the
//!    caller's thread in a borrowed CD; nothing parks, nothing wakes.
//! 2. **spin-then-park** (default, [`SpinPolicy::Adaptive`]) — the caller
//!    hands off to a worker and spins on the padded slot-state word for a
//!    budget tuned from an EWMA of recent call latency, parking only when
//!    handlers are slow enough that spinning would waste the processor.
//! 3. **park** ([`SpinPolicy::ParkOnly`]) — the pre-optimization
//!    behavior; one park/unpark round trip per call.
//!
//! ```
//! use ppc_rt::{Runtime, EntryOptions};
//! use std::sync::Arc;
//!
//! let rt = Runtime::new(2);
//! let ep = rt
//!     .bind("echo", EntryOptions::default(), Arc::new(|ctx| ctx.args))
//!     .unwrap();
//! let client = rt.client(0, 42);
//! assert_eq!(client.call(ep, [1, 2, 3, 4, 5, 6, 7, 8]).unwrap(), [1, 2, 3, 4, 5, 6, 7, 8]);
//! ```

pub mod auth;
pub mod baseline;
pub mod blackbox;
pub mod bulk;
pub mod call;
pub mod entry;
pub mod export;
pub mod flight;
pub mod frank;
pub mod http;
pub mod naming;
pub mod obs;
pub mod profile;
pub mod region;
pub mod ring;
pub mod shm;
pub mod slot;
pub mod span;
pub mod stats;
pub mod telemetry;
pub mod worker;
pub mod xproc;

use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU8, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use bulk::{BufferPool, BulkState, PoolBuf};
pub use entry::{EntryOptions, EntryState, QosClass};
pub use flight::{FlightEvent, FlightKind, FlightPlane};
pub use obs::{Histogram, LatencyKind, ObsState};
pub use region::{BulkDesc, RegionId, MAX_BULK, MAX_REGIONS};
pub use ring::{ClientRing, Completion, RingOptions};
pub use shm::{SegOffset, SegRef, Segment};
pub use span::{Exemplar, SpanPhase, SpanPlane, SpanRecord, TraceCtx};
pub use stats::{RuntimeStats, Snapshot, StatsCell};
pub use telemetry::{AlertState, SloMetric, SloRule, Telemetry, TickDelta, WindowStats};
pub use xproc::{
    ForkedServer, XClient, XSegOptions, XServer, XprocStats, XPROC_LAYOUT_VERSION, XPROC_MAGIC,
};

use entry::EntryShared;
use slot::CallSlot;
use worker::WorkerHandle;

/// Entry-point identifier (small integer, < [`MAX_ENTRIES`]).
pub type EntryId = usize;

/// The paper's cap on simultaneously-bound entry points.
pub const MAX_ENTRIES: usize = 1024;

/// Program identity used for server-side authentication (§4.1).
pub type ProgramId = u32;

/// Errors reported by runtime operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtError {
    /// Entry-point ID out of range or unbound.
    UnknownEntry(EntryId),
    /// The entry point is soft- or hard-killed.
    EntryDead(EntryId),
    /// The call ran while the entry point was hard-killed.
    Aborted(EntryId),
    /// Bulk descriptor malformed, region unknown, span out of bounds, or
    /// the region table is exhausted for this vCPU.
    BadBulk,
    /// Bulk access denied: no matching grant, wrong owner, or the
    /// descriptor does not permit the requested direction.
    BulkDenied(RegionId),
    /// The region's permissions changed (grant/revoke/unregister) while
    /// the transfer was in flight; the transfer is not acknowledged.
    BulkRevoked(RegionId),
    /// The calling thread already holds an in-flight access to the region
    /// that this operation would have to wait out — a self-deadlock,
    /// reported instead of spinning forever. E.g. beginning a write
    /// access, revoking, or unregistering from inside a
    /// [`CallCtx::with_bulk`]-family closure over the same region.
    BulkReentrant(RegionId),
    /// The entry table is full, or the requested slot is taken.
    TableFull,
    /// Operation requires ownership of the entry point.
    NotOwner,
    /// vCPU index out of range.
    BadVcpu(usize),
    /// The server's handler panicked while servicing the call. Per the
    /// paper's §2 rationale for worker processes, the failure "follows
    /// those of a message exchange": the caller gets an error, the server
    /// (and its other workers) keep running.
    ServerFault(EntryId),
    /// A ring submission was refused by admission control: the
    /// submission queue is full or the client's in-flight credits are
    /// exhausted. Open-loop backpressure — reap completions (or shed
    /// the request) and retry.
    RingFull,
    /// The cross-process peer (server or client) died or detached while
    /// an operation was outstanding; the operation did not complete.
    /// Reported instead of hanging — [`crate::xproc`] pairs futex waits
    /// with PID/heartbeat liveness checks.
    PeerGone,
    /// A shared segment failed validation: bad magic, layout-version
    /// mismatch, truncated file, or inconsistent geometry. Nothing in
    /// the segment was trusted or dereferenced past the header check.
    BadSegment,
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::UnknownEntry(ep) => write!(f, "unknown entry point {ep}"),
            RtError::EntryDead(ep) => write!(f, "entry point {ep} is dead"),
            RtError::Aborted(ep) => write!(f, "call aborted by hard kill of {ep}"),
            RtError::BadBulk => write!(f, "bulk descriptor malformed or out of bounds"),
            RtError::BulkDenied(r) => write!(f, "bulk access to region {r} denied"),
            RtError::BulkRevoked(r) => {
                write!(f, "bulk region {r} permissions changed mid-transfer")
            }
            RtError::BulkReentrant(r) => {
                write!(f, "reentrant access to bulk region {r} would deadlock")
            }
            RtError::TableFull => write!(f, "entry table full or slot taken"),
            RtError::NotOwner => write!(f, "caller does not own this entry point"),
            RtError::BadVcpu(v) => write!(f, "virtual processor {v} does not exist"),
            RtError::ServerFault(ep) => {
                write!(f, "server handler for entry {ep} faulted during the call")
            }
            RtError::RingFull => {
                write!(f, "submission ring full or in-flight credits exhausted")
            }
            RtError::PeerGone => {
                write!(f, "cross-process peer died or detached mid-operation")
            }
            RtError::BadSegment => {
                write!(f, "shared segment failed validation (magic/version/geometry)")
            }
        }
    }
}

impl std::error::Error for RtError {}

/// How a synchronous caller waits out the hand-off rendezvous. Set per
/// runtime with [`Runtime::set_spin_policy`]; read on every sync call
/// with a `Relaxed` load.
///
/// The policy is paired: it also sets the *worker-side* idle-mailbox spin
/// budget, so under `Adaptive`/`Fixed` a stream of back-to-back calls
/// resolves both waits in user space without either thread reaching a
/// futex, while `ParkOnly` keeps both sides on the pure park/unpark pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpinPolicy {
    /// Spin on the slot-state word with a per-vCPU budget tuned from an
    /// EWMA of observed call latency, then park. Fast handlers keep their
    /// vCPU spinning (no park/unpark round trip); slow handlers push the
    /// EWMA past [`spin::PARK_THRESHOLD_NS`] and the vCPU stops spinning
    /// altogether. The default.
    Adaptive,
    /// Spin a fixed number of iterations before parking. `Fixed(0)` is
    /// the pure park/unpark rendezvous with no spin and no escalation —
    /// the measurement baseline for the pre-optimization behavior.
    Fixed(u32),
    /// Skip the spin budget: go straight to the bounded escalation
    /// (donate the timeslice to the worker for up to
    /// [`spin::ESCALATE_YIELDS`] yields, see [`slot::CallSlot`]), then
    /// park. Historically this was a pure park/unpark pair; the
    /// escalation was folded in because the park convoy — client parks,
    /// worker finishes, futex wake straggles — produced the exact same
    /// 50–80µs tail here as in the spun-out adaptive case, and a yield
    /// to the worker costs strictly less than a futex sleep/wake when
    /// the handler is already done or about to be. Use `Fixed(0)` for
    /// the un-escalated baseline.
    ParkOnly,
}

/// Tuning constants for the adaptive spin-then-park rendezvous.
pub mod spin {
    /// Spin budget (iterations) before the first latency observation.
    pub const DEFAULT_BUDGET: u32 = 1 << 10;
    /// Floor of the adaptive budget while spinning is still worthwhile.
    pub const MIN_BUDGET: u32 = 1 << 8;
    /// Ceiling of the adaptive budget — past this, parking is cheaper
    /// than the burned cycles even if the handler eventually finishes.
    pub const MAX_BUDGET: u32 = 1 << 14;
    /// EWMA latency (ns) above which the adaptive policy stops spinning
    /// entirely: a 100 µs handler dwarfs any park/unpark saving.
    pub const PARK_THRESHOLD_NS: u64 = 100_000;
    /// Escalation rounds after the spin budget runs dry and before the
    /// client finally parks: each round donates the client's timeslice
    /// (priority-unpark the worker, then `yield_now`) so a worker that
    /// lost the processor mid-handler gets it back *now* instead of
    /// whenever the scheduler's futex wake path runs. This is what caps
    /// the park-convoy tail — a park/unpark round trip under contention
    /// costs tens of µs; a yield-to-the-worker round costs two context
    /// switches.
    pub const ESCALATE_YIELDS: u32 = 64;
    /// Hard cap on the *donating* wait's spin phase, in iterations
    /// (~2–4 µs of wall clock). The adaptive EWMA budget may grow to
    /// [`MAX_BUDGET`] (~30 µs of spinning) after a latency spike
    /// inflates the average — exactly the head-of-line stall that
    /// shows up as the null-call p999. Past this cap the client stops
    /// burning cycles *hoping* the worker gets scheduled and instead
    /// donates its timeslice to make it happen; the EWMA keeps its
    /// full range for deciding *whether* to spin at all
    /// ([`PARK_THRESHOLD_NS`]).
    pub const SPIN_HARD_CAP: u32 = 2_048;
}

/// Where a handler's scratch page comes from.
pub(crate) enum ScratchRef<'a> {
    /// Materialized by the dispatcher: hand-off workers and payload calls
    /// own a CD before the handler runs.
    Ready(&'a mut [u8]),
    /// Inline dispatch without a payload: no CD is borrowed unless the
    /// handler actually asks for [`CallCtx::scratch`]. Descriptor-only
    /// bulk calls never touch the CD pool at all — their payload lives in
    /// the granted region, so charging them two pool operations for a
    /// page they never read would violate the fast path's "touch nothing
    /// you don't need" discipline.
    Lazy {
        vc: &'a VcpuState,
        cell: &'a stats::StatsCell,
        slot: Option<Arc<slot::CallSlot>>,
    },
}

/// Context a service handler receives for one call.
pub struct CallCtx<'a> {
    /// The 8 argument words.
    pub args: [u64; 8],
    /// Caller's program identity (0 for interrupt/upcall variants).
    pub caller_program: ProgramId,
    /// Virtual processor the call executes on (== the caller's vCPU).
    pub vcpu: usize,
    /// The entry point being invoked.
    pub ep: EntryId,
    pub(crate) scratch: ScratchRef<'a>,
    /// `None` when the call executes inline on the caller's thread
    /// ([`EntryOptions::inline_ok`]) — there is no worker to configure.
    pub(crate) worker: Option<&'a WorkerHandle>,
    pub(crate) entry: &'a EntryShared,
}

impl<'a> CallCtx<'a> {
    /// The 4 KB per-call scratch page (the CD's "stack page"). Recycled
    /// across calls and, by default, across services — exactly the paper's
    /// serially-shared stacks, with the same caveat that secrets should
    /// not be left behind (use trust groups or hold-CD mode for that).
    ///
    /// Inline calls without a payload borrow the page lazily on first
    /// use; handlers that never ask for it cost the CD pool nothing.
    pub fn scratch(&mut self) -> &mut [u8] {
        match &mut self.scratch {
            ScratchRef::Ready(s) => s,
            ScratchRef::Lazy { vc, cell, slot } => {
                let flight = &self.entry.flight;
                let spans = &self.entry.spans;
                let s =
                    slot.get_or_insert_with(|| vc.take_slot(self.entry.opts.qos, cell, flight, spans));
                // Safety: the slot was popped from the pool, so this
                // context owns it exclusively until dispatch recycles it;
                // the borrow is tied to `&mut self`.
                unsafe {
                    std::slice::from_raw_parts_mut(s.scratch_raw(), slot::SCRATCH_BYTES)
                }
            }
        }
    }

    /// Reclaim a lazily-borrowed CD so the dispatcher can repool it.
    pub(crate) fn take_lazy_slot(&mut self) -> Option<Arc<slot::CallSlot>> {
        match &mut self.scratch {
            ScratchRef::Lazy { slot, .. } => slot.take(),
            ScratchRef::Ready(_) => None,
        }
    }

    /// Replace **this worker's** handling routine for subsequent calls —
    /// the §4.5.3 one-time-initialization pattern: bind the init routine,
    /// and have it call `set_worker_handler(main_handler)` on first call.
    ///
    /// No-op when the call executes inline on the caller's thread
    /// ([`EntryOptions::inline_ok`]): inline dispatch has no worker, so
    /// per-worker initialization does not apply.
    pub fn set_worker_handler(&self, h: Handler) {
        if let Some(w) = self.worker {
            w.set_override(h);
        }
    }

    /// Number of calls this entry point has completed (diagnostics; a
    /// sum over the per-vCPU lifecycle shards).
    pub fn entry_calls(&self) -> u64 {
        self.entry.completions()
    }

    // ---- bulk data: the handler side of the payload plane (§4.2) ----
    //
    // Every accessor below is warm-path legal: authorization is a
    // lock-free epoch-stamped registry read on this vCPU, transfers go
    // through the vectored copy engine, and accounting is a Relaxed
    // increment on this vCPU's own stats cell. The server's identity for
    // the grant check is (entry, entry owner) — the same pair
    // `ppc-core`'s Copy Server validates.
    //
    // Concurrency contract: *writing* accessors (`copy_to`,
    // `exchange_bulk`, `with_bulk_mut`, and the owner-side
    // `BulkRegion::fill`/`with_bytes`) hold their region **exclusively**
    // for the duration of the transfer or closure — concurrent accesses
    // to the same region wait, and grant/revoke/unregister block until
    // the access finishes. Keep closures short: a long-running closure
    // stalls every conflicting access and all registry writes for its
    // region. Beginning a conflicting access — or revoking/dropping the
    // region — from the thread that already holds one returns
    // `RtError::BulkReentrant` rather than deadlocking.

    /// The bulk descriptor riding in `args[7]`, if the caller sent one
    /// (see [`Client::call_bulk`]).
    pub fn bulk_desc(&self) -> Option<BulkDesc> {
        BulkDesc::decode(self.args[7])
    }

    /// Begin an authorized access to `desc`'s span on behalf of this
    /// entry, counting denials.
    fn bulk_access(&self, desc: BulkDesc, write: bool) -> Result<region::Access<'_>, RtError> {
        let r = self.entry.bulk.registry(self.vcpu).begin(
            desc,
            self.ep,
            self.entry.opts.owner,
            self.caller_program,
            write,
            false,
        );
        if r.is_err() {
            self.entry.bulk.stats.cell(self.vcpu).bulk_denied.fetch_add(1, Ordering::Relaxed);
            self.entry.flight.record(
                self.vcpu,
                flight::FlightKind::BulkDenied,
                self.ep,
                desc.region as u32,
            );
        }
        r
    }

    /// Settle a finished access: count the moved bytes on success, a
    /// denial when the authorization lapsed mid-transfer.
    fn bulk_settle(&self, acc: region::Access<'_>, n: usize) -> Result<usize, RtError> {
        let cell = self.entry.bulk.stats.cell(self.vcpu);
        match acc.finish() {
            Ok(()) => {
                cell.bulk_bytes.fetch_add(n as u64, Ordering::Relaxed);
                Ok(n)
            }
            Err(e) => {
                cell.bulk_denied.fetch_add(1, Ordering::Relaxed);
                // The revoke race is exactly what a post-mortem needs to
                // see: always in the flight ring.
                if let RtError::BulkRevoked(r) = &e {
                    self.entry.flight.record(
                        self.vcpu,
                        flight::FlightKind::BulkRevoked,
                        self.ep,
                        *r as u32,
                    );
                }
                Err(e)
            }
        }
    }

    /// CopyFrom (§4.2): copy up to `dst.len()` bytes of the granted span
    /// into server memory. Returns the bytes copied. Requires a read
    /// grant.
    pub fn copy_from(&self, desc: BulkDesc, dst: &mut [u8]) -> Result<usize, RtError> {
        let _span = self.entry.spans.leaf_scope(self.vcpu, self.ep, SpanPhase::BulkCopy);
        let t0 = self.entry.obs.try_sample().then(std::time::Instant::now);
        let acc = self.bulk_access(desc, false)?;
        let n = acc.len.min(dst.len());
        // Safety: `acc` authorizes [ptr, ptr+n); `dst` is a live unique
        // borrow and cannot alias registry memory.
        unsafe { bulk::copy_span(dst.as_mut_ptr(), acc.ptr, n) };
        if let Some(t0) = t0 {
            self.entry.obs.record(
                obs::LatencyKind::BulkCopy,
                self.vcpu,
                t0.elapsed().as_nanos() as u64,
            );
        }
        self.bulk_settle(acc, n)
    }

    /// CopyTo (§4.2): copy up to the span length from server memory into
    /// the granted span. Returns the bytes copied. Requires a write grant
    /// and a writable descriptor.
    pub fn copy_to(&self, desc: BulkDesc, src: &[u8]) -> Result<usize, RtError> {
        let _span = self.entry.spans.leaf_scope(self.vcpu, self.ep, SpanPhase::BulkCopy);
        let t0 = self.entry.obs.try_sample().then(std::time::Instant::now);
        let acc = self.bulk_access(desc, true)?;
        let n = acc.len.min(src.len());
        // Safety: as in `copy_from`, directions reversed.
        unsafe { bulk::copy_span(acc.ptr, src.as_ptr(), n) };
        if let Some(t0) = t0 {
            self.entry.obs.record(
                obs::LatencyKind::BulkCopy,
                self.vcpu,
                t0.elapsed().as_nanos() as u64,
            );
        }
        self.bulk_settle(acc, n)
    }

    /// Exchange for payloads: swap bytes between the granted span and
    /// `buf` (both directions in one pass, no allocation). Returns the
    /// bytes swapped. Requires a write grant.
    pub fn exchange_bulk(&self, desc: BulkDesc, buf: &mut [u8]) -> Result<usize, RtError> {
        let _span = self.entry.spans.leaf_scope(self.vcpu, self.ep, SpanPhase::BulkCopy);
        let t0 = self.entry.obs.try_sample().then(std::time::Instant::now);
        let acc = self.bulk_access(desc, true)?;
        let n = acc.len.min(buf.len());
        // Safety: as in `copy_to`; `exchange_span` reads and writes both.
        unsafe { bulk::exchange_span(acc.ptr, buf.as_mut_ptr(), n) };
        if let Some(t0) = t0 {
            self.entry.obs.record(
                obs::LatencyKind::BulkCopy,
                self.vcpu,
                t0.elapsed().as_nanos() as u64,
            );
        }
        self.bulk_settle(acc, n)
    }

    /// Zero-copy read: run `f` over the granted span **in place** — no
    /// bytes move at all. If the authorization lapses while `f` runs the
    /// result is discarded and [`RtError::BulkRevoked`] is returned, so a
    /// revoked access is never acknowledged.
    ///
    /// A shared access: concurrent reads proceed in parallel, write
    /// accesses to the region wait for `f` to return. Keep `f` short —
    /// it stalls the region's writers and grant/revoke traffic — and do
    /// not revoke or unregister the region from inside `f` (that returns
    /// [`RtError::BulkReentrant`]).
    pub fn with_bulk<R>(&self, desc: BulkDesc, f: impl FnOnce(&[u8]) -> R) -> Result<R, RtError> {
        let acc = self.bulk_access(desc, false)?;
        // Safety: span authorized; shared read view for the closure's
        // duration, protected from unmapping by the reader announcement.
        let r = f(unsafe { std::slice::from_raw_parts(acc.ptr, acc.len) });
        // No bytes moved: settle directly, skipping the byte-counter RMW
        // (`bulk_bytes += 0` would cost a locked add on the warm path).
        match acc.finish() {
            Ok(()) => Ok(r),
            Err(e) => {
                self.entry.bulk.stats.cell(self.vcpu).bulk_denied.fetch_add(1, Ordering::Relaxed);
                if let RtError::BulkRevoked(rid) = &e {
                    self.entry.flight.record(
                        self.vcpu,
                        flight::FlightKind::BulkRevoked,
                        self.ep,
                        *rid as u32,
                    );
                }
                Err(e)
            }
        }
    }

    /// Zero-copy write: run `f` over the granted span in place with
    /// mutable access. Requires a write grant. The revocation caveat of
    /// [`CallCtx::with_bulk`] applies — plus, since `f` mutates client
    /// memory directly, a revoked access may still have written bytes
    /// (the client revoked mid-flight; the transfer is unacknowledged).
    ///
    /// The access is **exclusive**: while `f` runs, every other access
    /// to the region waits, and any bulk operation on the same region
    /// from inside `f` returns [`RtError::BulkReentrant`].
    pub fn with_bulk_mut<R>(
        &self,
        desc: BulkDesc,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, RtError> {
        let acc = self.bulk_access(desc, true)?;
        // Safety: span authorized for write; the registry protocol keeps
        // the memory mapped while the reader announcement is held.
        let r = f(unsafe { std::slice::from_raw_parts_mut(acc.ptr, acc.len) });
        // As in `with_bulk`: no byte counter to bump for in-place access.
        match acc.finish() {
            Ok(()) => Ok(r),
            Err(e) => {
                self.entry.bulk.stats.cell(self.vcpu).bulk_denied.fetch_add(1, Ordering::Relaxed);
                if let RtError::BulkRevoked(rid) = &e {
                    self.entry.flight.record(
                        self.vcpu,
                        flight::FlightKind::BulkRevoked,
                        self.ep,
                        *rid as u32,
                    );
                }
                Err(e)
            }
        }
    }
}

/// A service handler: receives the call context, returns 8 result words.
pub type Handler = Arc<dyn Fn(&mut CallCtx<'_>) -> [u64; 8] + Send + Sync>;

/// Per-virtual-processor state: the CD pool (all services on this vCPU
/// share it) and this vCPU's replica of the service table — the direct
/// analogue of the paper's per-processor pools and per-processor table.
pub struct VcpuState {
    /// This vCPU's service-table replica: one atomic pointer per entry
    /// ID, read only by callers on this vCPU (a single cache-local load
    /// per call), written only by Frank's publish/unpublish broadcasts.
    pub(crate) table: Box<[AtomicPtr<EntryShared>]>,
    /// This vCPU's pin cell for the epoch-reclamation protocol (see
    /// [`frank`]).
    pub(crate) epoch: frank::EpochCell,
    /// Lock-free pools of idle call slots, one per [`QosClass`]
    /// (indexed by [`QosClass::index`]). Segregated so a burst of `Bulk`
    /// traffic that drains its pool grows *its* pool — a `Latency`
    /// caller arriving mid-burst still finds a warm CD instead of
    /// eating the Frank slow path behind the bulk work.
    pub(crate) cd_pools: [crossbeam::queue::ArrayQueue<Arc<CallSlot>>; 2],
    /// Slots ever created on this vCPU (diagnostics).
    pub(crate) cds_created: AtomicU64,
    /// EWMA of observed synchronous hand-off latency on this vCPU, in
    /// nanoseconds. Written only by callers on this vCPU (`Relaxed`);
    /// feeds [`VcpuState::spin_budget`].
    pub(crate) ewma_ns: AtomicU64,
    /// Index of this vCPU.
    pub id: usize,
}

impl VcpuState {
    fn new(id: usize, initial_cds: usize) -> Arc<Self> {
        let v = Arc::new(VcpuState {
            table: (0..MAX_ENTRIES).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
            epoch: frank::EpochCell::default(),
            cd_pools: [
                crossbeam::queue::ArrayQueue::new(256),
                crossbeam::queue::ArrayQueue::new(256),
            ],
            cds_created: AtomicU64::new(0),
            ewma_ns: AtomicU64::new(0),
            id,
        });
        // Pre-pooled CDs go to the Latency class — it is the default
        // class and the one whose first call must not eat a Frank
        // allocation; the Bulk pool warms up on first use.
        for _ in 0..initial_cds {
            let _ = v.cd_pools[QosClass::Latency.index()].push(CallSlot::new());
            v.cds_created.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Fold one observed call latency into the EWMA (weight 1/8: old
    /// enough to smooth scheduler noise, fresh enough to track a phase
    /// change within a few calls). A lost update under a racy
    /// read-modify-write is harmless — the next call re-observes.
    pub(crate) fn observe_latency(&self, ns: u64) {
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 { ns } else { old - old / 8 + ns / 8 };
        self.ewma_ns.store(new, Ordering::Relaxed);
    }

    /// The adaptive spin budget for the next rendezvous on this vCPU:
    /// roughly "spin about as long as a typical call takes", clamped to
    /// [`spin::MIN_BUDGET`]..=[`spin::MAX_BUDGET`], and zero (park
    /// immediately) once typical latency exceeds
    /// [`spin::PARK_THRESHOLD_NS`].
    pub(crate) fn spin_budget(&self) -> u32 {
        let ewma = self.ewma_ns.load(Ordering::Relaxed);
        if ewma == 0 {
            return spin::DEFAULT_BUDGET;
        }
        if ewma > spin::PARK_THRESHOLD_NS {
            return 0;
        }
        (ewma as u32).clamp(spin::MIN_BUDGET, spin::MAX_BUDGET)
    }

    /// Take a slot from `class`'s pool, growing it if dry (the Frank
    /// slow path). `cell` is the calling vCPU's stats cell; `flight`
    /// records the Frank event (slow path by definition, so
    /// unconditionally) and `spans` stamps it into a live trace, if one
    /// encloses the take.
    pub(crate) fn take_slot(
        &self,
        class: QosClass,
        cell: &StatsCell,
        flight: &FlightPlane,
        spans: &SpanPlane,
    ) -> Arc<CallSlot> {
        match self.cd_pools[class.index()].pop() {
            Some(s) => s,
            None => {
                let tf0 = std::time::Instant::now();
                cell.frank_redirects.fetch_add(1, Ordering::Relaxed);
                cell.cds_created.fetch_add(1, Ordering::Relaxed);
                self.cds_created.fetch_add(1, Ordering::Relaxed);
                // data 1 = CD pool (the entry is unknown this deep).
                flight.record(self.id, flight::FlightKind::Frank, 0, 1);
                spans.record_instant(self.id, 0, SpanPhase::Frank);
                let s = CallSlot::new();
                // Cold path: the CD allocation is Frank time.
                cell.add_time(
                    stats::TimeState::Frank,
                    tf0.elapsed().as_nanos() as u64,
                );
                s
            }
        }
    }

    /// Return a slot to `class`'s pool (dropped if the pool is full —
    /// surplus reclamation, §2's "extra stacks can easily be reclaimed").
    pub(crate) fn put_slot(&self, class: QosClass, slot: Arc<CallSlot>) {
        slot.reset();
        let _ = self.cd_pools[class.index()].push(slot);
    }
}

/// The PPC runtime: virtual processors (each with its own service-table
/// replica) and the Frank cold-path resource manager.
pub struct Runtime {
    pub(crate) vcpus: Vec<Arc<VcpuState>>,
    /// The cold-path resource manager: entry registry (the strong
    /// references behind every published table pointer), name table, and
    /// the pin-era grace machinery (see [`frank`]).
    pub(crate) frank: frank::Frank,
    /// Facility counters, sharded per vCPU. (`Arc` so the bulk engine can
    /// account from handler context without a back reference.)
    pub stats: Arc<RuntimeStats>,
    /// The payload plane: per-vCPU region registries and buffer pools.
    bulk: Arc<bulk::BulkState>,
    /// Latency-histogram plane, sharded per vCPU (`Arc` for the same
    /// reason as `stats`: handler-context instrumentation without a back
    /// reference).
    obs: Arc<ObsState>,
    /// Flight-recorder event rings, sharded per vCPU.
    flight: Arc<FlightPlane>,
    /// Causal-tracing plane: per-vCPU span rings + tail exemplars.
    spans: Arc<SpanPlane>,
    /// Pin worker threads to cores.
    pin: bool,
    /// Encoded [`SpinPolicy`] discriminant (see `SPIN_*` constants).
    spin_mode: AtomicU8,
    /// Budget operand for [`SpinPolicy::Fixed`].
    spin_fixed: AtomicU32,
    /// Trust-group registry for hold-CD gating: program → group (absent
    /// = group 0 = untrusted-by-default). Writes are cold
    /// ([`Runtime::set_trust_group`]); the dispatch path reads it only
    /// for entries that set a non-zero [`EntryOptions::trust_group`].
    trust: parking_lot::RwLock<HashMap<ProgramId, u32>>,
    /// The telemetry plane (windowed sampler + SLO watchdog), present
    /// once started via [`RuntimeOptions::telemetry_tick`] or
    /// [`Runtime::start_telemetry`]. Cold-path mutex: touched only at
    /// start/stop/read, never by dispatch.
    telemetry: parking_lot::Mutex<Option<Arc<telemetry::Telemetry>>>,
    /// The postmortem capture sink, shared with every bound entry so the
    /// worker panic path can trigger a capture without a runtime back
    /// reference (see [`blackbox::Sink`]).
    blackbox: Arc<blackbox::Sink>,
    /// The cross-process transport segment, when this runtime is serving
    /// one (see [`Runtime::serve_xproc`]). Weak: the [`xproc::XServer`]
    /// owns the mapping; the exporters only peek.
    xproc_seg: parking_lot::Mutex<Option<std::sync::Weak<shm::Segment>>>,
    shutdown: AtomicU8,
}

const SPIN_ADAPTIVE: u8 = 0;
const SPIN_FIXED: u8 = 1;
const SPIN_PARK_ONLY: u8 = 2;

/// Worker-side idle-mailbox spin budget implied by a client wait policy.
/// The rendezvous is spin-paired: when clients spin out the hand-off, the
/// worker also spins briefly on its mailbox between calls, so a stream of
/// back-to-back calls never reaches a futex on either side (the client's
/// post finds the worker unparked and its `unpark` stays token-only).
/// `ParkOnly` maps to 0 so that baseline stays a pure park/unpark pair.
pub(crate) fn worker_idle_budget(p: SpinPolicy) -> u32 {
    match p {
        SpinPolicy::Adaptive => spin::DEFAULT_BUDGET,
        SpinPolicy::Fixed(n) => n,
        SpinPolicy::ParkOnly => 0,
    }
}

/// Construction-time knobs for [`Runtime::with_runtime_options`].
/// (`Clone` but no longer `Copy`: the SLO rule list is heap-backed.)
#[derive(Clone, Debug)]
pub struct RuntimeOptions {
    /// Pin worker threads with `core_affinity` (vCPU *i* to core
    /// *i mod n_cores*; silently unpinned where pinning fails).
    pub pin: bool,
    /// CDs pre-pooled per vCPU.
    pub initial_cds: usize,
    /// Flight-recorder ring slots per vCPU (power of two). The
    /// [`flight::RING_CAPACITY`] default retains ~the last 256 events;
    /// raise it for long captures so the ring doesn't silently wrap.
    pub flight_capacity: usize,
    /// Span-ring slots per vCPU for the tracing plane (power of two).
    pub trace_capacity: usize,
    /// Start the telemetry sampler with this tick (`None`, the default,
    /// spawns no thread; [`telemetry::DEFAULT_TICK`] is the conventional
    /// choice). Also startable later via [`Runtime::start_telemetry`].
    pub telemetry_tick: Option<Duration>,
    /// Telemetry time-series ring depth in ticks (power of two).
    pub telemetry_depth: usize,
    /// SLO watchdog rules evaluated every telemetry tick (ignored until
    /// the sampler starts).
    pub slo_rules: Vec<telemetry::SloRule>,
    /// Directory for automatic postmortem black-box captures (handler
    /// panics, SLO alert rising edges). `None` — the default — leaves
    /// automatic capture off unless the `PPC_BLACKBOX_DIR` environment
    /// variable names a directory. See [`blackbox`].
    pub blackbox_dir: Option<std::path::PathBuf>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            pin: false,
            initial_cds: 1,
            flight_capacity: flight::RING_CAPACITY,
            trace_capacity: span::DEFAULT_TRACE_CAPACITY,
            telemetry_tick: None,
            telemetry_depth: telemetry::DEFAULT_SERIES_DEPTH,
            slo_rules: Vec::new(),
            blackbox_dir: None,
        }
    }
}

impl Runtime {
    /// A runtime with `n_vcpus` virtual processors, unpinned, one CD
    /// pre-pooled per vCPU (like the worker pools, the CD pool "most
    /// commonly contains only" what back-to-back calls recycle; bursts
    /// grow it on demand).
    pub fn new(n_vcpus: usize) -> Arc<Self> {
        Self::with_options(n_vcpus, false, 1)
    }

    /// A runtime with the historical option pair; see
    /// [`Runtime::with_runtime_options`] for the full knob set.
    pub fn with_options(n_vcpus: usize, pin: bool, initial_cds: usize) -> Arc<Self> {
        Self::with_runtime_options(
            n_vcpus,
            RuntimeOptions { pin, initial_cds, ..RuntimeOptions::default() },
        )
    }

    /// A runtime with explicit [`RuntimeOptions`]. Panics if a ring
    /// capacity is not a power of two (the rings mask with a single AND).
    pub fn with_runtime_options(n_vcpus: usize, opts: RuntimeOptions) -> Arc<Self> {
        assert!(n_vcpus >= 1, "at least one virtual processor");
        let stats = Arc::new(RuntimeStats::new(n_vcpus));
        let rt = Arc::new(Runtime {
            vcpus: (0..n_vcpus).map(|i| VcpuState::new(i, opts.initial_cds)).collect(),
            frank: frank::Frank::new(),
            bulk: bulk::BulkState::new(n_vcpus, Arc::clone(&stats)),
            obs: Arc::new(ObsState::new(n_vcpus)),
            flight: Arc::new(FlightPlane::new(n_vcpus, opts.flight_capacity)),
            spans: Arc::new(SpanPlane::new(n_vcpus, opts.trace_capacity)),
            stats,
            pin: opts.pin,
            spin_mode: AtomicU8::new(SPIN_ADAPTIVE),
            spin_fixed: AtomicU32::new(spin::DEFAULT_BUDGET),
            trust: parking_lot::RwLock::new(HashMap::new()),
            telemetry: parking_lot::Mutex::new(None),
            blackbox: Arc::new(blackbox::Sink::new()),
            xproc_seg: parking_lot::Mutex::new(None),
            shutdown: AtomicU8::new(0),
        });
        rt.blackbox.attach(Arc::downgrade(&rt));
        let bb_dir = opts
            .blackbox_dir
            .clone()
            .or_else(|| std::env::var_os("PPC_BLACKBOX_DIR").map(std::path::PathBuf::from));
        if bb_dir.is_some() {
            rt.blackbox.set_dir(bb_dir);
        }
        if let Some(tick) = opts.telemetry_tick {
            rt.start_telemetry(tick, opts.telemetry_depth, opts.slo_rules);
        }
        rt
    }

    /// Start the telemetry sampler (tick period, time-series ring depth
    /// in ticks — a power of two — and the SLO watchdog rules). Idempotent:
    /// if a sampler is already running, it is returned unchanged and the
    /// arguments are ignored. See [`telemetry::Telemetry`].
    pub fn start_telemetry(
        self: &Arc<Self>,
        tick: Duration,
        depth: usize,
        rules: Vec<telemetry::SloRule>,
    ) -> Arc<telemetry::Telemetry> {
        let mut guard = self.telemetry.lock();
        if let Some(t) = guard.as_ref() {
            return Arc::clone(t);
        }
        let t = telemetry::Telemetry::start(
            tick,
            depth,
            rules,
            Arc::clone(&self.stats),
            Arc::clone(&self.obs),
            Arc::clone(&self.flight),
            Arc::downgrade(self),
            self.vcpus.len(),
        );
        *guard = Some(Arc::clone(&t));
        t
    }

    /// The telemetry plane, if the sampler has been started.
    pub fn telemetry(&self) -> Option<Arc<telemetry::Telemetry>> {
        self.telemetry.lock().clone()
    }

    /// Record the serving cross-process segment (exporter hook; see
    /// [`Runtime::serve_xproc`]).
    pub(crate) fn set_xproc_segment(&self, seg: std::sync::Weak<shm::Segment>) {
        *self.xproc_seg.lock() = Some(seg);
    }

    /// The serving cross-process segment, if any.
    pub(crate) fn xproc_segment(&self) -> Option<std::sync::Weak<shm::Segment>> {
        self.xproc_seg.lock().clone()
    }

    /// Stop and join the telemetry sampler (idempotent; also runs on
    /// drop).
    pub fn stop_telemetry(&self) {
        let t = self.telemetry.lock().take();
        if let Some(t) = t {
            t.stop();
        }
    }

    /// Change the synchronous-rendezvous wait policy. Takes effect for
    /// subsequent calls; safe to call concurrently with dispatch (the
    /// fast path reads it with one `Relaxed` load).
    pub fn set_spin_policy(&self, p: SpinPolicy) {
        match p {
            SpinPolicy::Adaptive => self.spin_mode.store(SPIN_ADAPTIVE, Ordering::Relaxed),
            SpinPolicy::ParkOnly => self.spin_mode.store(SPIN_PARK_ONLY, Ordering::Relaxed),
            SpinPolicy::Fixed(n) => {
                self.spin_fixed.store(n, Ordering::Relaxed);
                self.spin_mode.store(SPIN_FIXED, Ordering::Relaxed);
            }
        }
        // Propagate the paired worker-side idle spin budget to every bound
        // entry and live client ring (cold path; new binds and rings pick
        // it up from the policy directly).
        let budget = worker_idle_budget(p);
        let inner = self.frank.inner.lock();
        for e in inner.entries.iter().flatten() {
            e.idle_spin.store(budget, Ordering::Relaxed);
        }
        for r in inner.rings.iter().filter_map(|w| w.upgrade()) {
            r.set_idle_spin(budget);
        }
    }

    /// Register `program` in hold-CD trust group `group` (0 removes it
    /// from every group). An entry bound with [`EntryOptions::hold_cd`]
    /// and a non-zero [`EntryOptions::trust_group`] extends its pinned
    /// CD/scratch fast path only to programs registered under the same
    /// group; calls from any other program borrow from the per-call CD
    /// pool instead, so they never touch the trusted callers' scratch
    /// page. Cold path (write lock); safe concurrently with dispatch.
    pub fn set_trust_group(&self, program: ProgramId, group: u32) {
        if group == 0 {
            self.trust.write().remove(&program);
        } else {
            self.trust.write().insert(program, group);
        }
    }

    /// The trust group `program` is registered under (0 if none).
    pub fn program_trust(&self, program: ProgramId) -> u32 {
        self.trust.read().get(&program).copied().unwrap_or(0)
    }

    /// The QoS class of entry `ep` as seen from `vcpu`'s table replica
    /// (`None` if unbound or dead). Used by rings to pick a lane at
    /// submit time; a dead entry's class is irrelevant — its SQE
    /// completes with an error either way.
    pub(crate) fn entry_qos(&self, vcpu: usize, ep: EntryId) -> Option<QosClass> {
        self.claim(vcpu, ep).ok().map(|c| c.opts.qos)
    }

    /// The current synchronous-rendezvous wait policy.
    pub fn spin_policy(&self) -> SpinPolicy {
        match self.spin_mode.load(Ordering::Relaxed) {
            SPIN_PARK_ONLY => SpinPolicy::ParkOnly,
            SPIN_FIXED => SpinPolicy::Fixed(self.spin_fixed.load(Ordering::Relaxed)),
            _ => SpinPolicy::Adaptive,
        }
    }

    /// Number of virtual processors.
    pub fn n_vcpus(&self) -> usize {
        self.vcpus.len()
    }

    pub(crate) fn vcpu(&self, v: usize) -> Result<&Arc<VcpuState>, RtError> {
        self.vcpus.get(v).ok_or(RtError::BadVcpu(v))
    }

    /// Whether worker pinning was requested.
    pub fn pinned(&self) -> bool {
        self.pin
    }

    /// The bulk-data state (per-vCPU region registries and buffer pools).
    pub fn bulk(&self) -> &Arc<bulk::BulkState> {
        &self.bulk
    }

    /// The latency-histogram plane (enable bit, sampling shift, merged
    /// percentile reads).
    pub fn obs(&self) -> &Arc<ObsState> {
        &self.obs
    }

    /// The flight-recorder plane (per-vCPU event rings).
    pub fn flight(&self) -> &Arc<FlightPlane> {
        &self.flight
    }

    /// The causal-tracing plane (per-vCPU span rings, tail exemplars).
    pub fn spans(&self) -> &Arc<SpanPlane> {
        &self.spans
    }

    /// Counters + histograms in Prometheus text exposition format (cold
    /// path). With the telemetry sampler running, the `ppc_rate_*`
    /// windowed gauges are appended.
    pub fn export_prometheus(&self) -> String {
        let mut out = export::prometheus(&self.stats.snapshot(), &self.obs);
        if let Some(tel) = self.telemetry() {
            out.push_str(&export::prometheus_rates(&tel));
        }
        out.push_str(&export::prometheus_transport(self.xproc_stats().as_ref()));
        out
    }

    /// Counters + histograms as a JSON document (cold path). Parse it
    /// back with [`export::Json::parse`]. With the telemetry sampler
    /// running, a `"telemetry"` member carries the windowed rates,
    /// quantiles and alert states ([`export::telemetry_json`]).
    pub fn export_json(&self) -> export::Json {
        let mut doc = export::json_snapshot(&self.stats.snapshot(), &self.obs);
        if let export::Json::Obj(fields) = &mut doc {
            if let Some(tel) = self.telemetry() {
                fields.push(("telemetry".into(), export::telemetry_json(&tel)));
            }
            fields.push(("transport".into(), export::transport_json(self.xproc_stats().as_ref())));
        }
        doc
    }

    /// The raw telemetry time-series ring as JSON (the `/series`
    /// endpoint); an empty series when the sampler isn't running.
    pub fn export_series(&self) -> export::Json {
        match self.telemetry() {
            Some(tel) => export::series_json(&tel.series(usize::MAX)),
            None => export::series_json(&[]),
        }
    }

    /// Every retained span record as a Chrome/Perfetto trace-event JSON
    /// document (cold path). Load the file in `ui.perfetto.dev` or
    /// `chrome://tracing`; parse it back with
    /// [`export::load_chrome_trace`]. Empty (but valid) with the `obs`
    /// feature off or tracing disabled.
    pub fn export_trace(&self) -> String {
        export::chrome_trace(&self.spans.all_records())
    }

    /// The full diagnostics dump: final counter [`Snapshot`], per-kind
    /// latency percentiles, and every vCPU's retained flight-recorder
    /// events (oldest first). This is what a wedged stress/kill test
    /// prints before aborting, so failures come with the facility's last
    /// seconds attached.
    pub fn diagnostics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== ppc-rt diagnostics ===");
        let _ = writeln!(out, "stats: {}", self.stats.snapshot());
        if let Some(tel) = self.telemetry() {
            let alerts = tel.alerts();
            let _ = writeln!(
                out,
                "alerts: {} rule(s), {} firing ({} ticks sampled, tick {:?})",
                alerts.len(),
                alerts.iter().filter(|a| a.firing).count(),
                tel.ticks(),
                tel.tick(),
            );
            for a in &alerts {
                let _ = writeln!(
                    out,
                    "  [{}] {}: {:.3}{} over {:?} (threshold {}, burn \
                     {:.2}x slow / {:.2}x fast, fired {} rising edge(s))",
                    if a.firing { "FIRING" } else { "ok" },
                    a.rule.name,
                    a.measured_slow,
                    a.rule.metric.unit(),
                    a.rule.window,
                    a.rule.threshold,
                    a.measured_slow / a.rule.threshold.max(f64::MIN_POSITIVE),
                    a.measured_fast / a.rule.threshold.max(f64::MIN_POSITIVE),
                    a.fired,
                );
            }
        }
        for kind in obs::KINDS {
            let h = self.obs.merged(kind);
            if h.count() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "latency[{}]: n={} p50={} p90={} p99={} max={} (ns, sampled 1/{})",
                kind.label(),
                h.count(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max_ns,
                1u64 << self.obs.sample_shift(),
            );
        }
        for v in 0..self.flight.n_vcpus() {
            let events = self.flight.snapshot(v);
            let _ = writeln!(
                out,
                "vcpu {v}: {} flight events retained ({} recorded)",
                events.len(),
                self.flight.recorded(v),
            );
            for ev in events {
                let _ = writeln!(out, "  {ev}");
            }
        }
        let mut any_exemplar = false;
        for v in 0..self.spans.n_vcpus() {
            for ex in self.spans.exemplars(v) {
                if !any_exemplar {
                    let _ = writeln!(
                        out,
                        "slowest recent calls ({} promoted, > {}x entry EWMA):",
                        self.spans.promoted(),
                        span::EXEMPLAR_FACTOR,
                    );
                    any_exemplar = true;
                }
                let _ = writeln!(out, "  {}", ex.summary());
                for s in &ex.spans {
                    let _ = writeln!(out, "    {s}");
                }
            }
        }
        let _ = writeln!(out, "=== end diagnostics ===");
        out
    }

    /// Print [`Runtime::diagnostics`] to stderr (failure-path hook for
    /// watchdogs and panic containment).
    pub fn dump_diagnostics(&self) {
        eprintln!("{}", self.diagnostics());
    }

    /// The postmortem black-box document for this runtime (see
    /// [`blackbox::capture`]): counters, histograms, per-vCPU occupancy,
    /// interference tally, telemetry windows + tick series, flight
    /// events, and span exemplars, under one schema-versioned object.
    pub fn blackbox_json(&self, reason: &str) -> export::Json {
        blackbox::capture(self, reason)
    }

    /// Write the black-box document for `reason` to `path`,
    /// unconditionally (no rate limit, no directory configuration
    /// needed) — the hook for gate failures and explicit captures.
    pub fn write_blackbox(
        &self,
        reason: &str,
        path: &std::path::Path,
    ) -> std::io::Result<()> {
        let mut text = self.blackbox_json(reason).to_string();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Configure (or clear) the automatic-capture directory at runtime.
    /// Equivalent to [`RuntimeOptions::blackbox_dir`] / the
    /// `PPC_BLACKBOX_DIR` environment variable, but switchable live.
    pub fn set_blackbox_dir(&self, dir: Option<std::path::PathBuf>) {
        self.blackbox.set_dir(dir);
    }

    /// The capture sink (automatic-capture state: directory, count).
    pub fn blackbox(&self) -> &Arc<blackbox::Sink> {
        &self.blackbox
    }

    /// Automatic capture hook: rate-limited, a no-op unless a capture
    /// directory is configured. Returns the artifact path when one was
    /// written. Failure paths call this — it must never panic or block
    /// on anything hot.
    pub fn blackbox_event(&self, reason: &str) -> Option<std::path::PathBuf> {
        self.blackbox.event(reason)
    }

    /// A client bound to vCPU `vcpu` with program identity `program`.
    /// Calls made through the client use that vCPU's pools, mirroring
    /// "requests are always handled on the same processor as the client".
    pub fn client(self: &Arc<Self>, vcpu: usize, program: ProgramId) -> Client {
        assert!(vcpu < self.vcpus.len(), "vcpu {vcpu} out of range");
        Client { rt: Arc::clone(self), vcpu, program }
    }
}

/// A client handle: the caller's (vCPU, program) identity.
#[derive(Clone)]
pub struct Client {
    rt: Arc<Runtime>,
    /// The vCPU this client runs on.
    pub vcpu: usize,
    /// The client's program identity.
    pub program: ProgramId,
}

impl Client {
    /// The runtime this client belongs to.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// Synchronous PPC: 8 words in, 8 words out, hand-off to a worker on
    /// this client's vCPU. No locks, no shared queues.
    pub fn call(&self, ep: EntryId, args: [u64; 8]) -> Result<[u64; 8], RtError> {
        self.rt.dispatch(self.vcpu, ep, args, self.program, true).map(|r| r.expect("sync result"))
    }

    /// Asynchronous PPC (§4.4): the caller continues immediately; the
    /// result can be awaited (or dropped, as the paper's prefetch does).
    pub fn call_async(&self, ep: EntryId, args: [u64; 8]) -> Result<AsyncCall, RtError> {
        self.rt.dispatch_async(self.vcpu, ep, args, self.program)
    }

    /// Synchronous PPC with a bulk payload (§4.2's CopyFrom/CopyTo rolled
    /// into the call): up to 4 KB of request data travels in the call
    /// slot's scratch page, the handler rewrites it in place, and the
    /// first `rets[7]` bytes come back as the response payload. Panics if
    /// `payload` exceeds the scratch page.
    ///
    /// This is the **memcpy-through-mailbox** path: the payload is copied
    /// into the slot, and the response copied back out. For transfers
    /// where the copies matter, use a registered region and
    /// [`Client::call_bulk`] instead.
    pub fn call_with_payload(
        &self,
        ep: EntryId,
        args: [u64; 8],
        payload: &[u8],
    ) -> Result<([u64; 8], Vec<u8>), RtError> {
        self.rt.dispatch_payload(self.vcpu, ep, args, self.program, payload)
    }

    /// Synchronous PPC carrying a bulk-region descriptor: `desc` is
    /// packed into `args[7]` and rides the ordinary 8-word frame, so
    /// every dispatch mode (inline, spin-then-park, park) works
    /// unchanged and nothing is copied at dispatch time. The handler
    /// recovers the descriptor with [`CallCtx::bulk_desc`] and accesses
    /// the granted span through [`CallCtx::copy_from`] /
    /// [`CallCtx::copy_to`] / [`CallCtx::with_bulk_mut`].
    ///
    /// The warm path performs no lock acquisitions and no allocations on
    /// top of [`Client::call`]'s — encoding a descriptor is pure bit
    /// packing. A descriptor whose fields exceed the word's bit budget
    /// is rejected with [`RtError::BadBulk`] up front (it could not be
    /// transmitted faithfully).
    pub fn call_bulk(
        &self,
        ep: EntryId,
        mut args: [u64; 8],
        desc: BulkDesc,
    ) -> Result<[u64; 8], RtError> {
        args[7] = desc.encode().ok_or(RtError::BadBulk)?;
        let r = self.call(ep, args)?;
        self.rt.stats.cell(self.vcpu).bulk_calls.fetch_add(1, Ordering::Relaxed);
        Ok(r)
    }

    /// Register a `len`-byte shared region backed by this vCPU's buffer
    /// pool (lock-free pool hit when warm; a counted Frank allocation
    /// otherwise). The region is owned by this client's program; grant
    /// entry points access with [`BulkRegion::grant`], then pass
    /// descriptors to [`Client::call_bulk`]. Dropping the handle revokes
    /// everything and recycles the buffer.
    ///
    /// Errors with [`RtError::BadBulk`] when `len` exceeds [`MAX_BULK`],
    /// or [`RtError::TableFull`] when this vCPU's [`MAX_REGIONS`] region
    /// slots are all taken.
    pub fn bulk_register(&self, len: usize) -> Result<BulkRegion, RtError> {
        let bulk = self.rt.bulk();
        let mut buf = bulk
            .pool(self.vcpu)
            .take(len, self.rt.stats.cell(self.vcpu))
            .ok_or(RtError::BadBulk)?;
        // A buffer recycled from another program (or dirtied outside the
        // region machinery) is scrubbed here, so a new region can never
        // read a previous tenant's payload bytes across the program
        // boundary the grant model enforces.
        buf.bind_owner(self.program);
        let id = bulk.registry(self.vcpu).register(buf, len, self.program)?;
        Ok(BulkRegion {
            rt: Arc::clone(&self.rt),
            vcpu: self.vcpu,
            program: self.program,
            id,
            len,
        })
    }
}

/// A registered shared region: the client-side handle to one entry in
/// its vCPU's region registry. The owner fills and drains it in place
/// ([`BulkRegion::fill`], [`BulkRegion::read_into`],
/// [`BulkRegion::with_bytes`]), grants servers access, and mints
/// descriptors for [`Client::call_bulk`]. Dropped ⇒ unregistered, buffer
/// recycled to the vCPU pool (after in-flight transfers drain).
pub struct BulkRegion {
    rt: Arc<Runtime>,
    vcpu: usize,
    program: ProgramId,
    id: RegionId,
    len: usize,
}

impl BulkRegion {
    /// The region's ID within its vCPU registry.
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// Registered length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A descriptor for `[offset, offset + len)`; `write` lets the
    /// server modify the span (still subject to its grant).
    pub fn desc(&self, offset: u32, len: u32, write: bool) -> BulkDesc {
        BulkDesc { region: self.id, offset, len, write }
    }

    /// A descriptor covering the whole region.
    pub fn full_desc(&self, write: bool) -> BulkDesc {
        self.desc(0, self.len as u32, write)
    }

    /// Grant entry `ep` access (write access if `write`), bound to the
    /// program owning `ep` right now — `ppc-core`'s grant semantics: a
    /// later re-bind of the same entry ID under a different owner does
    /// not inherit the grant. Cold path.
    pub fn grant(&self, ep: EntryId, write: bool) -> Result<(), RtError> {
        let e = self.rt.frank_entry(ep)?;
        if e.entry_state() != EntryState::Active {
            return Err(RtError::EntryDead(ep));
        }
        self.rt.bulk().registry(self.vcpu).grant(self.id, self.program, ep, e.opts.owner, write)
    }

    /// Revoke every grant to `ep`. Blocks until in-flight transfers
    /// drain; once this returns, no transfer under the revoked grant can
    /// report success. Returns the number of grants removed. Calling
    /// this from a thread holding an in-flight access to the region
    /// (e.g. inside a `with_*` closure) returns
    /// [`RtError::BulkReentrant`] instead of deadlocking.
    pub fn revoke(&self, ep: EntryId) -> Result<usize, RtError> {
        self.rt.bulk().registry(self.vcpu).revoke(self.id, self.program, ep)
    }

    /// Owner access: run `f` over `[offset, offset+len)` of the region.
    /// A `write` access excludes every concurrent access to the region
    /// (in-place mutation must never alias another access); a read
    /// access shares with other reads.
    fn with_span<R>(
        &self,
        offset: u32,
        len: u32,
        write: bool,
        f: impl FnOnce(*mut u8, usize) -> R,
    ) -> Result<R, RtError> {
        let desc = self.desc(offset, len, write);
        let acc = self.rt.bulk().registry(self.vcpu).begin(
            desc, 0, self.program, self.program, write, true,
        )?;
        let r = f(acc.ptr, acc.len);
        acc.finish()?;
        Ok(r)
    }

    /// Owner write: copy `data` into the region at `offset` (the fill
    /// before a call). Lock-free; uses the vectored copy engine. Holds
    /// the region exclusively while the copy runs — a concurrent
    /// server-side access to the same region waits.
    pub fn fill(&self, offset: u32, data: &[u8]) -> Result<(), RtError> {
        let _span = self.rt.spans.leaf_scope(self.vcpu, 0, SpanPhase::BulkCopy);
        let t0 = self.rt.obs.try_sample().then(std::time::Instant::now);
        let r = self.with_span(offset, data.len() as u32, true, |ptr, n| {
            // Safety: span validated by the registry, held exclusively;
            // `data` cannot alias registry memory.
            unsafe { bulk::copy_span(ptr, data.as_ptr(), n) };
        });
        if let Some(t0) = t0 {
            self.rt.obs.record(obs::LatencyKind::BulkCopy, self.vcpu, t0.elapsed().as_nanos() as u64);
        }
        r
    }

    /// Owner read: copy `[offset, offset+dst.len())` out of the region
    /// (the drain after a call). A shared read access — concurrent reads
    /// of the region proceed in parallel.
    pub fn read_into(&self, offset: u32, dst: &mut [u8]) -> Result<(), RtError> {
        let _span = self.rt.spans.leaf_scope(self.vcpu, 0, SpanPhase::BulkCopy);
        let t0 = self.rt.obs.try_sample().then(std::time::Instant::now);
        let r = self.with_span(offset, dst.len() as u32, false, |ptr, n| {
            // Safety: as in `fill`, directions reversed; writers are
            // excluded while this read access is announced.
            unsafe { bulk::copy_span(dst.as_mut_ptr(), ptr, n) };
        });
        if let Some(t0) = t0 {
            self.rt.obs.record(obs::LatencyKind::BulkCopy, self.vcpu, t0.elapsed().as_nanos() as u64);
        }
        r
    }

    /// Owner zero-copy access: run `f` over the whole region in place.
    ///
    /// The access is **exclusive** while `f` runs: concurrent accesses
    /// to the region (e.g. a handler's [`CallCtx::with_bulk_mut`] from
    /// an async call) wait, and any bulk operation on the same region
    /// from inside `f` — including dropping the region — returns
    /// [`RtError::BulkReentrant`]. Keep `f` short; it stalls the
    /// region's grant/revoke traffic for its duration.
    pub fn with_bytes<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> Result<R, RtError> {
        self.with_span(0, self.len as u32, true, |ptr, n| {
            // Safety: owner-validated span, held exclusively and kept
            // mapped by the access announcement for the closure's
            // duration — no other &mut (or &) view of these bytes can
            // exist concurrently.
            f(unsafe { std::slice::from_raw_parts_mut(ptr, n) })
        })
    }
}

impl Drop for BulkRegion {
    fn drop(&mut self) {
        // Unregister drains in-flight transfers, then the buffer goes
        // back to this vCPU's pool for the next region.
        if let Ok(buf) = self.rt.bulk().registry(self.vcpu).unregister(self.id, self.program) {
            self.rt.bulk().pool(self.vcpu).put(buf);
        }
    }
}

/// A pending asynchronous call.
pub struct AsyncCall {
    pub(crate) slot: Arc<CallSlot>,
    pub(crate) vcpu: Arc<VcpuState>,
    pub(crate) ep: EntryId,
    /// The slot is a worker's pinned CD (hold-CD mode): it must be reset
    /// but never returned to the vCPU pool — it already has an owner, and
    /// pooling it would let two calls fill the same slot concurrently.
    pub(crate) held: bool,
    /// QoS class the slot was borrowed under — a pooled slot must return
    /// to the same class's pool.
    pub(crate) qos: QosClass,
    /// The async span, if the dispatch was traced; closed when the
    /// completion is observed (first of [`AsyncCall::wait`] / drop) —
    /// the span covers dispatch → completion-observed, the async
    /// analogue of the sync call span.
    pub(crate) trace: std::cell::Cell<Option<span::SpanToken>>,
    pub(crate) spans: Arc<SpanPlane>,
}

impl AsyncCall {
    fn finish_trace(&self) {
        if let Some(tok) = self.trace.take() {
            self.spans.end_token(tok, None);
        }
    }

    /// Block until the worker completes and return the result words.
    pub fn wait(&self) -> [u64; 8] {
        self.slot.wait_done();
        self.finish_trace();
        self.slot.read_rets()
    }

    /// Non-blocking completion check.
    pub fn is_done(&self) -> bool {
        self.slot.is_done()
    }

    /// The entry point this call targets.
    pub fn entry(&self) -> EntryId {
        self.ep
    }
}

impl Drop for AsyncCall {
    fn drop(&mut self) {
        // Recycle the slot only once the worker is finished with it. A
        // held CD stays pinned to its worker: reset it in place.
        self.slot.wait_done();
        self.finish_trace();
        if self.held {
            self.slot.reset();
        } else {
            self.vcpu.put_slot(self.qos, Arc::clone(&self.slot));
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown.store(1, Ordering::SeqCst);
        // Stop and join the telemetry sampler before tearing down the
        // planes it reads.
        let tel = self.telemetry.lock().take();
        if let Some(t) = tel {
            t.stop();
        }
        // Reap every live entry: signal workers and join them, then let
        // the registry drop the shared state.
        let entries: Vec<Arc<EntryShared>> =
            self.frank.inner.lock().entries.iter().flatten().cloned().collect();
        for e in &entries {
            e.state.store(EntryState::Dead as u8, Ordering::SeqCst);
            // Final teardown: pinned CDs drop with everything else.
            let _ = e.reap_workers();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_and_echo() {
        let rt = Runtime::new(1);
        let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|ctx| ctx.args)).unwrap();
        let c = rt.client(0, 7);
        assert_eq!(c.call(ep, [9; 8]).unwrap(), [9; 8]);
        assert_eq!(rt.stats.calls(), 1);
    }

    #[test]
    fn unknown_entry_rejected() {
        let rt = Runtime::new(1);
        let c = rt.client(0, 7);
        assert_eq!(c.call(5, [0; 8]), Err(RtError::UnknownEntry(5)));
        assert_eq!(c.call(MAX_ENTRIES + 1, [0; 8]), Err(RtError::UnknownEntry(MAX_ENTRIES + 1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_vcpu_client_panics() {
        let rt = Runtime::new(1);
        let _ = rt.client(3, 1);
    }
}
