//! The cross-process PPC transport: the runtime over a **real**
//! protection boundary.
//!
//! Everything before this module ran the paper's protected procedure
//! call inside one address space — fast, but the protection was an
//! honor system. Here the client and server are separate processes that
//! share exactly one thing: a mapped segment ([`crate::shm::Segment`])
//! whose contents are **position-independent** (`#[repr(C)]`, offsets
//! instead of pointers — see [`crate::shm::SegOffset`]) and whose
//! rendezvous words double as futexes. The API mirrors the in-process
//! one: [`XClient::call`], [`XClient::call_async`],
//! [`XClient::call_with_payload`], [`XClient::call_bulk`], and ring
//! [`XClient::submit`]/[`XClient::reap`] behave like their
//! [`crate::Client`]/[`crate::ClientRing`] counterparts, returning the
//! same [`RtError`]s — plus [`RtError::PeerGone`], the one failure mode
//! a process boundary adds.
//!
//! # Segment layout (version [`XPROC_LAYOUT_VERSION`])
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────┐
//! │ XSegHeader     magic, layout version, geometry, server pid/state │
//! │                doorbell (futex), claim mask, high-water          │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ XClientSlot×N  SlotCore (call rendezvous) + control words        │
//! │                + 4 KiB payload page                              │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ ring×N         XRingHdr (SQ/CQ cursors) + XSqe[depth]            │
//! │                + XCqe[depth]                                     │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ stage×N        depth × 4 KiB pages for ring payload staging      │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ bulk×N         per-client bulk share, registered server-side as  │
//! │                a foreign-backed region (grant-checked access)    │
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Offset-reference rules: segment structures never contain addresses.
//! Cross-references are [`crate::shm::SegOffset`]s (e.g. an
//! [`XSqe`]'s staged-payload location) resolved against the local
//! mapping base at the point of use. All segment-resident structs are
//! layout-asserted at compile time; a layout change without a
//! [`XPROC_LAYOUT_VERSION`] bump fails the build on the offsets and the
//! byte-dump round-trip test, not at a process boundary.
//!
//! # Claim handshake
//!
//! A connector owns a slot **before** touching it: it CASes a free bit
//! into the header's claim mask, then writes the slot's control words
//! (pid, program, ack), then publishes them with a Release store of the
//! slot's `attach_req` word. The server attaches only after
//! Acquire-reading `attach_req == 1`, so it can never pair a claimed
//! bit with half-written (or another racer's) identity words. Whichever
//! side releases a claim retracts `attach_req` before clearing the bit.
//!
//! # Futex protocol
//!
//! Two shared words sleep, everything else polls:
//!
//! * **Doorbell** (header): clients bump + `FUTEX_WAKE` after posting a
//!   slot call or ringing a ring doorbell; the server loop re-checks all
//!   work sources, then `FUTEX_WAIT`s on the doorbell value it last
//!   saw with a short timeout (the timeout doubles as the peer-liveness
//!   sweep tick). A bump between the server's read and its wait makes
//!   the wait return immediately — no lost wakeups.
//! * **Slot state word** ([`crate::slot::SlotCore`]): a synchronous
//!   caller spins briefly, then `FUTEX_WAIT`s on `POSTED`; the server
//!   completes with a `Release` store of `DONE` + `FUTEX_WAKE`. Waits
//!   are chunked (~25 ms) and each timeout re-checks server liveness
//!   (state word + `pid_alive` + heartbeat), so a dead server yields
//!   [`RtError::PeerGone`] in tens of milliseconds instead of a hang.
//!
//! # Trust model at the boundary
//!
//! The segment is the trust boundary, and it is asymmetric. The
//! *server* treats segment contents as untrusted input: geometry is
//! validated once against the header before anything is dereferenced,
//! offsets derived from client words (`ep`, descriptors, payload
//! lengths) are clamped/validated per use, and bulk access from
//! handlers still goes through the grant-checked region registry — a
//! client can corrupt *its own* calls and bulk share, never another
//! client's region or the server's heap. The *client* trusts the server
//! (it mapped a segment the server created) — the same direction of
//! trust as any syscall boundary. Payload pages and bulk shares are
//! per-client, so clients cannot read each other's payloads through the
//! transport; the OS-level file mode on the segment path is the
//! admission control for who may connect at all.

use std::cell::UnsafeCell;
use std::path::{Path, PathBuf};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::flight::FlightKind;
use crate::region::BulkDesc;
use crate::ring::Completion;
use crate::shm::{self, SegOffset, SegRef, Segment};
use crate::slot::{state, waiter, SlotCore, SCRATCH_BYTES};
use crate::{EntryId, EntryState, ProgramId, RegionId, RtError, Runtime};

/// Magic word at segment offset 0 (`"PPC_SEG1"`).
pub const XPROC_MAGIC: u64 = 0x5050_435f_5345_4731;

/// Version of the segment layout described in the module docs. Bump on
/// any layout change; openers refuse other versions with
/// [`RtError::BadSegment`].
pub const XPROC_LAYOUT_VERSION: u32 = 1;

/// Hard cap on clients per segment (the claim mask is one `u64`).
pub const MAX_XCLIENTS: usize = 64;

/// Server lifecycle values in [`XSegHeader`]'s state word.
mod srv {
    pub const STARTING: u32 = 0;
    pub const SERVING: u32 = 1;
    pub const SHUTDOWN: u32 = 2;
}

/// Slot-call operations (the client-slot `xop` word).
mod op {
    /// Plain / bulk-descriptor call (`args` only).
    pub const CALL: u32 = 1;
    /// Call carrying a payload in the slot's payload page.
    pub const PAYLOAD: u32 = 2;
    /// Grant the client's region to entry `ep` (`args[0]` = write).
    pub const GRANT: u32 = 3;
    /// Revoke the client's region grants to entry `ep`.
    pub const REVOKE: u32 = 4;
    /// Detach: unregister the region and release the claim bit.
    pub const DETACH: u32 = 5;
}

/// [`XSqe`] flag bits.
mod sqe_flags {
    /// `payload_off`/`payload_len` name a staged payload page that
    /// becomes the handler's scratch.
    pub const PAYLOAD: u32 = 1;
    /// `args[7]` carries a [`BulkDesc`] the client pre-filled.
    pub const BULK: u32 = 2;
}

// ---------------------------------------------------------------------
// Wire error codes
// ---------------------------------------------------------------------

/// Encode an [`RtError`] as `(code, aux)` words for a completion
/// (status 0 is reserved for success).
fn err_to_wire(e: &RtError) -> (u32, u32) {
    match e {
        RtError::UnknownEntry(ep) => (1, *ep as u32),
        RtError::EntryDead(ep) => (2, *ep as u32),
        RtError::Aborted(ep) => (3, *ep as u32),
        RtError::BadBulk => (4, 0),
        RtError::BulkDenied(r) => (5, u32::from(*r)),
        RtError::BulkRevoked(r) => (6, u32::from(*r)),
        RtError::BulkReentrant(r) => (7, u32::from(*r)),
        RtError::TableFull => (8, 0),
        RtError::NotOwner => (9, 0),
        RtError::BadVcpu(v) => (10, *v as u32),
        RtError::ServerFault(ep) => (11, *ep as u32),
        RtError::RingFull => (12, 0),
        RtError::PeerGone => (13, 0),
        RtError::BadSegment => (14, 0),
    }
}

/// Decode a completion's `(code, aux)` back into the [`RtError`] the
/// server-side dispatch produced. Unknown codes (a newer server) fold
/// to [`RtError::BadSegment`] — the one error that says "do not trust
/// this segment's words".
fn wire_to_err(code: u32, aux: u32) -> RtError {
    match code {
        1 => RtError::UnknownEntry(aux as EntryId),
        2 => RtError::EntryDead(aux as EntryId),
        3 => RtError::Aborted(aux as EntryId),
        4 => RtError::BadBulk,
        5 => RtError::BulkDenied(aux as RegionId),
        6 => RtError::BulkRevoked(aux as RegionId),
        7 => RtError::BulkReentrant(aux as RegionId),
        8 => RtError::TableFull,
        9 => RtError::NotOwner,
        10 => RtError::BadVcpu(aux as usize),
        11 => RtError::ServerFault(aux as EntryId),
        12 => RtError::RingFull,
        13 => RtError::PeerGone,
        _ => RtError::BadSegment,
    }
}

// ---------------------------------------------------------------------
// Segment-resident structures (repr(C), layout-asserted)
// ---------------------------------------------------------------------

/// The versioned segment header at offset 0. Geometry fields are
/// written once by the creator and validated (recomputed and compared)
/// by every opener; only the atomics mutate afterwards.
#[repr(C, align(64))]
pub struct XSegHeader {
    magic: u64,
    layout_version: u32,
    n_clients: u32,
    ring_depth: u32,
    bulk_bytes: u32,
    total_len: u64,
    slots_off: u32,
    rings_off: u32,
    ring_stride: u32,
    stage_off: u32,
    bulk_off: u32,
    /// Serving process's PID (liveness anchor for clients).
    server_pid: AtomicU32,
    /// [`srv`] lifecycle word.
    server_state: AtomicU32,
    /// The shared doorbell futex word.
    doorbell: AtomicU32,
    /// Server loop heartbeat (monotone while serving).
    server_beat: AtomicU32,
    _pad1: u32,
    /// One bit per claimed client slot.
    claim_mask: AtomicU64,
    /// Highest segment byte offset any bulk descriptor or staged
    /// payload has reached — the capacity early-warning the exporters
    /// publish.
    high_water: AtomicU64,
    _pad_end: [u8; 40],
}

crate::assert_segment_layout!(XSegHeader {
    size: 128,
    align: 64,
    magic: 0,
    layout_version: 8,
    n_clients: 12,
    ring_depth: 16,
    bulk_bytes: 20,
    total_len: 24,
    slots_off: 32,
    rings_off: 36,
    ring_stride: 40,
    stage_off: 44,
    bulk_off: 48,
    server_pid: 52,
    server_state: 56,
    doorbell: 60,
    server_beat: 64,
    claim_mask: 72,
    high_water: 80,
});

/// One client's slot: the [`SlotCore`] rendezvous, connection control
/// words, and the 4 KiB payload page (the cross-process scratch).
#[repr(C, align(64))]
pub struct XClientSlot {
    core: SlotCore,
    /// Client PID (liveness anchor for the server's sweep).
    pid: AtomicU32,
    /// Entry point for the posted operation.
    ep: AtomicU32,
    /// Operation selector ([`op`]).
    xop: AtomicU32,
    /// Server-assigned region id over this client's bulk share
    /// (`u32::MAX` until attached).
    region_id: AtomicU32,
    /// Attach handshake futex word: 0 pending, 1 attached, 2 refused.
    attach_ack: AtomicU32,
    /// The client's program identity (region owner).
    client_program: AtomicU32,
    /// Slot-words-valid gate: the claimer stores 1 (Release) only
    /// *after* owning the claim bit and writing pid/program/ack words;
    /// the server attaches only after Acquire-reading 1, so it never
    /// reads a half-written identity. Reset to 0 by whichever side
    /// releases the claim, *before* the claim bit clears.
    attach_req: AtomicU32,
    _pad0: [u8; 36],
    payload: UnsafeCell<[u8; SCRATCH_BYTES]>,
}

crate::assert_segment_layout!(XClientSlot {
    size: 4352,
    align: 64,
    core: 0,
    pid: 192,
    ep: 196,
    xop: 200,
    region_id: 204,
    attach_ack: 208,
    client_program: 212,
    attach_req: 216,
    payload: 256,
});

/// Ring cursors, one cache line each (the SPSC monotonic-cursor
/// protocol from [`crate::ring`], relocated into the segment).
#[repr(C, align(64))]
pub struct XRingHdr {
    /// Producer cursor, submission queue (client-owned).
    sq_tail: AtomicU64,
    _p0: [u8; 56],
    /// Consumer cursor, submission queue (server-owned).
    sq_head: AtomicU64,
    _p1: [u8; 56],
    /// Producer cursor, completion queue (server-owned).
    cq_tail: AtomicU64,
    _p2: [u8; 56],
    /// Consumer cursor, completion queue (client-owned).
    cq_head: AtomicU64,
    _p3: [u8; 56],
}

crate::assert_segment_layout!(XRingHdr {
    size: 256,
    align: 64,
    sq_tail: 0,
    sq_head: 64,
    cq_tail: 128,
    cq_head: 192,
});

/// One submission-queue entry — the offset-based analogue of the
/// in-process ring's `Sqe`: staged payloads are named by segment
/// offset, not pointer.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct XSqe {
    /// Entry point.
    pub ep: u32,
    /// `sqe_flags` bits.
    pub flags: u32,
    /// Argument frame.
    pub args: [u64; 8],
    /// Client tag, returned verbatim in the matching [`XCqe`].
    pub user: u64,
    /// Packed trace context (0 = none).
    pub trace: u64,
    /// Segment offset of the staged payload page (valid when
    /// `sqe_flags::PAYLOAD`).
    pub payload_off: u32,
    /// Staged payload length.
    pub payload_len: u32,
}

crate::assert_segment_layout!(XSqe {
    size: 96,
    align: 8,
    ep: 0,
    flags: 4,
    args: 8,
    user: 72,
    trace: 80,
    payload_off: 88,
    payload_len: 92,
});

/// One completion-queue entry (the wire analogue of the in-process
/// ring's `Cqe`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct XCqe {
    /// The submission's tag.
    pub user: u64,
    /// Entry point.
    pub ep: u32,
    /// 0 = success, else a wire error code.
    pub status: u32,
    /// Auxiliary error word.
    pub aux: u32,
    _pad: u32,
    /// Result frame (valid when `status == 0`).
    pub rets: [u64; 8],
}

crate::assert_segment_layout!(XCqe {
    size: 88,
    align: 8,
    user: 0,
    ep: 8,
    status: 12,
    aux: 16,
    rets: 24,
});

// ---------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------

/// Transport sizing. The defaults fit a parent/child pair with a few
/// pipelined clients in ~2 MiB of tmpfs.
#[derive(Clone, Copy, Debug)]
pub struct XSegOptions {
    /// Client slots in the segment (≤ [`MAX_XCLIENTS`]).
    pub n_clients: usize,
    /// SQ/CQ depth per client (power of two).
    pub ring_depth: u32,
    /// Bulk share per client, bytes (≤ 2²⁴ — descriptor offsets are
    /// 24-bit).
    pub bulk_bytes: usize,
    /// The vCPU the server dispatches remote calls on.
    pub vcpu: usize,
}

impl Default for XSegOptions {
    fn default() -> Self {
        XSegOptions { n_clients: 4, ring_depth: 32, bulk_bytes: 256 << 10, vcpu: 0 }
    }
}

fn align_up(x: usize, a: usize) -> usize {
    (x + a - 1) & !(a - 1)
}

/// The derived segment geometry, computed identically from the options
/// (creator) and from the header fields (opener) — any disagreement is
/// a validation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Geometry {
    n_clients: usize,
    ring_depth: u64,
    bulk_bytes: usize,
    slots_off: usize,
    rings_off: usize,
    ring_stride: usize,
    stage_off: usize,
    bulk_off: usize,
    total_len: usize,
}

impl Geometry {
    fn compute(n_clients: usize, ring_depth: u32, bulk_bytes: usize) -> Option<Geometry> {
        if n_clients == 0
            || n_clients > MAX_XCLIENTS
            || !ring_depth.is_power_of_two()
            || ring_depth > 1 << 12
            || bulk_bytes == 0
            || bulk_bytes > 1 << 24
            || !bulk_bytes.is_multiple_of(64)
        {
            return None;
        }
        let depth = ring_depth as usize;
        let slots_off = std::mem::size_of::<XSegHeader>();
        let rings_off = align_up(slots_off + n_clients * std::mem::size_of::<XClientSlot>(), 64);
        let ring_stride = align_up(
            std::mem::size_of::<XRingHdr>()
                + depth * (std::mem::size_of::<XSqe>() + std::mem::size_of::<XCqe>()),
            64,
        );
        let stage_off = align_up(rings_off + n_clients * ring_stride, 4096);
        let bulk_off = stage_off + n_clients * depth * SCRATCH_BYTES;
        let total_len = align_up(bulk_off + n_clients * bulk_bytes, 4096);
        if total_len > u32::MAX as usize {
            return None;
        }
        Some(Geometry {
            n_clients,
            ring_depth: ring_depth as u64,
            bulk_bytes,
            slots_off,
            rings_off,
            ring_stride,
            stage_off,
            bulk_off,
            total_len,
        })
    }
}

/// A validated, mapped segment: the only door to the raw structures.
/// All offset arithmetic is checked against the geometry once, here,
/// so the accessors below are in-bounds by construction.
struct SegMap {
    seg: Arc<Segment>,
    geo: Geometry,
}

impl SegMap {
    /// Create + initialize a segment at `path`.
    fn create(path: &Path, opts: &XSegOptions) -> Result<SegMap, RtError> {
        let geo = Geometry::compute(opts.n_clients, opts.ring_depth, opts.bulk_bytes)
            .ok_or(RtError::BadSegment)?;
        let seg = Segment::create(path, geo.total_len).map_err(|_| RtError::BadSegment)?;
        // Safety: fresh zeroed mapping of total_len ≥ header size; the
        // header is written before any peer can validate-open (openers
        // check magic, which is written last via the plain field — the
        // file is complete before `create` returns).
        unsafe {
            let h = seg.base() as *mut XSegHeader;
            std::ptr::write(
                h,
                XSegHeader {
                    magic: XPROC_MAGIC,
                    layout_version: XPROC_LAYOUT_VERSION,
                    n_clients: geo.n_clients as u32,
                    ring_depth: geo.ring_depth as u32,
                    bulk_bytes: geo.bulk_bytes as u32,
                    total_len: geo.total_len as u64,
                    slots_off: geo.slots_off as u32,
                    rings_off: geo.rings_off as u32,
                    ring_stride: geo.ring_stride as u32,
                    stage_off: geo.stage_off as u32,
                    bulk_off: geo.bulk_off as u32,
                    server_pid: AtomicU32::new(0),
                    server_state: AtomicU32::new(srv::STARTING),
                    doorbell: AtomicU32::new(0),
                    server_beat: AtomicU32::new(0),
                    _pad1: 0,
                    claim_mask: AtomicU64::new(0),
                    high_water: AtomicU64::new(0),
                    _pad_end: [0; 40],
                },
            );
        }
        Ok(SegMap { seg: Arc::new(seg), geo })
    }

    /// Open + validate a segment at `path`. Nothing beyond the header
    /// is touched until every geometry claim checks out.
    fn open(path: &Path) -> Result<SegMap, RtError> {
        let seg = Segment::open(path).map_err(|_| RtError::BadSegment)?;
        Self::validate(Arc::new(seg))
    }

    /// Validate an already-mapped segment (the byte-dump round-trip
    /// test enters here).
    fn validate(seg: Arc<Segment>) -> Result<SegMap, RtError> {
        if seg.len() < std::mem::size_of::<XSegHeader>() {
            return Err(RtError::BadSegment);
        }
        // Safety: length checked; XSegHeader is valid at any bit
        // pattern (u64/u32/atomics), so reading an arbitrary header is
        // safe — trusting it is what the checks below decide.
        let h: &XSegHeader = unsafe { SegRef::new(SegOffset(0)).resolve(&seg) };
        if h.magic != XPROC_MAGIC {
            return Err(RtError::BadSegment);
        }
        if h.layout_version != XPROC_LAYOUT_VERSION {
            return Err(RtError::BadSegment);
        }
        let geo = Geometry::compute(h.n_clients as usize, h.ring_depth, h.bulk_bytes as usize)
            .ok_or(RtError::BadSegment)?;
        let claimed = (
            h.slots_off as usize,
            h.rings_off as usize,
            h.ring_stride as usize,
            h.stage_off as usize,
            h.bulk_off as usize,
            h.total_len as usize,
        );
        let expect = (
            geo.slots_off,
            geo.rings_off,
            geo.ring_stride,
            geo.stage_off,
            geo.bulk_off,
            geo.total_len,
        );
        if claimed != expect || seg.len() != geo.total_len {
            return Err(RtError::BadSegment);
        }
        Ok(SegMap { seg, geo })
    }

    fn header(&self) -> &XSegHeader {
        // Safety: validated geometry; header fields are atomics or
        // creator-written plain words.
        unsafe { SegRef::new(SegOffset(0)).resolve(&self.seg) }
    }

    fn slot(&self, i: usize) -> &XClientSlot {
        debug_assert!(i < self.geo.n_clients);
        let off = self.geo.slots_off + i * std::mem::size_of::<XClientSlot>();
        // Safety: in-bounds by geometry; XClientSlot is valid zeroed.
        unsafe { SegRef::new(SegOffset(off as u32)).resolve(&self.seg) }
    }

    fn ring_hdr(&self, i: usize) -> &XRingHdr {
        debug_assert!(i < self.geo.n_clients);
        let off = self.geo.rings_off + i * self.geo.ring_stride;
        // Safety: in-bounds by geometry; XRingHdr is valid zeroed.
        unsafe { SegRef::new(SegOffset(off as u32)).resolve(&self.seg) }
    }

    fn sqe_ptr(&self, i: usize, idx: u64) -> *mut XSqe {
        let depth = self.geo.ring_depth;
        let off = self.geo.rings_off
            + i * self.geo.ring_stride
            + std::mem::size_of::<XRingHdr>()
            + (idx % depth) as usize * std::mem::size_of::<XSqe>();
        // In-bounds by geometry.
        unsafe { self.seg.base().add(off) as *mut XSqe }
    }

    fn cqe_ptr(&self, i: usize, idx: u64) -> *mut XCqe {
        let depth = self.geo.ring_depth;
        let off = self.geo.rings_off
            + i * self.geo.ring_stride
            + std::mem::size_of::<XRingHdr>()
            + depth as usize * std::mem::size_of::<XSqe>()
            + (idx % depth) as usize * std::mem::size_of::<XCqe>();
        // In-bounds by geometry.
        unsafe { self.seg.base().add(off) as *mut XCqe }
    }

    /// Segment offset of ring staging page `idx` for client `i`.
    fn stage_off(&self, i: usize, idx: u64) -> usize {
        self.geo.stage_off
            + (i * self.geo.ring_depth as usize + (idx % self.geo.ring_depth) as usize)
                * SCRATCH_BYTES
    }

    /// Segment offset of client `i`'s bulk share.
    fn bulk_off(&self, i: usize) -> usize {
        self.geo.bulk_off + i * self.geo.bulk_bytes
    }

    /// Raw pointer to `len` bytes at `off`; panics (server-side: the
    /// per-use clamp happens before) if out of bounds.
    fn span(&self, off: usize, len: usize) -> *mut u8 {
        assert!(off.checked_add(len).is_some_and(|end| end <= self.seg.len()));
        // Safety: bounds asserted.
        unsafe { self.seg.base().add(off) }
    }

    fn payload_ptr(&self, i: usize) -> *mut u8 {
        self.slot(i).payload.get() as *mut u8
    }
}

/// Validate the segment file at `path` — magic, layout version, and the
/// full geometry cross-check — without claiming a client slot or
/// touching anything past the header. The check every
/// [`XClient::connect`] performs, exposed for inspection tooling and
/// the byte-dump round-trip test.
pub fn validate_segment(path: &Path) -> Result<(), RtError> {
    SegMap::open(path).map(|_| ())
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// A serving cross-process transport: owns the segment (created at
/// [`Runtime::serve_xproc`], unlinked on drop) and the serve thread.
/// Dropping (or [`XServer::shutdown`]) stops serving, completes
/// outstanding slot calls with [`RtError::PeerGone`] semantics on the
/// client side (state flips to shutdown and clients are woken), and
/// unmaps.
pub struct XServer {
    rt: Arc<Runtime>,
    map: Arc<SegMap>,
    path: PathBuf,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Serve this runtime's entry points to other processes through a
    /// shared segment at `path` (must not exist; unlinked when the
    /// server drops). Remote calls dispatch on `opts.vcpu` with the
    /// caller's own program identity, exactly as if a local client had
    /// made them.
    pub fn serve_xproc(
        self: &Arc<Self>,
        path: &Path,
        opts: XSegOptions,
    ) -> Result<XServer, RtError> {
        if opts.vcpu >= self.n_vcpus() {
            return Err(RtError::BadVcpu(opts.vcpu));
        }
        let map = Arc::new(SegMap::create(path, &opts)?);
        self.set_xproc_segment(Arc::downgrade(&map.seg));
        let rt = Arc::clone(self);
        let tmap = Arc::clone(&map);
        let vcpu = opts.vcpu;
        let thread = std::thread::Builder::new()
            .name("ppc-xproc".into())
            .spawn(move || serve_loop(rt, tmap, vcpu))
            .map_err(|_| RtError::TableFull)?;
        Ok(XServer {
            rt: Arc::clone(self),
            map,
            path: path.to_path_buf(),
            thread: Some(thread),
        })
    }
}

impl XServer {
    /// The segment path clients connect to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stop serving: flip the state word, wake everyone, join the serve
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        let h = self.map.header();
        h.server_state.store(srv::SHUTDOWN, Ordering::Release);
        shm::futex_wake(&h.doorbell, u32::MAX);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the serve loop exits (a peer-initiated shutdown —
    /// the forked-child pattern: serve until the parent says stop).
    pub fn wait(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// The serving runtime.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }
}

impl Drop for XServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-client connection state on the server side (process-local).
struct ClientCtx {
    attached: bool,
    /// The attach was refused (registry full): remembered so the serve
    /// loop does not re-attempt — and busy-spin on — every iteration
    /// while the client winds down. Cleared when the claim bit clears.
    refused: bool,
    program: ProgramId,
    pid: u32,
    region: Option<RegionId>,
}

impl ClientCtx {
    fn empty() -> ClientCtx {
        ClientCtx { attached: false, refused: false, program: 0, pid: 0, region: None }
    }
}

fn serve_loop(rt: Arc<Runtime>, map: Arc<SegMap>, vcpu: usize) {
    let h = map.header();
    h.server_pid.store(std::process::id(), Ordering::Relaxed);
    h.server_state.store(srv::SERVING, Ordering::Release);
    let n = map.geo.n_clients;
    let mut ctx: Vec<ClientCtx> = (0..n).map(|_| ClientCtx::empty()).collect();
    let mut local_scratch = vec![0u8; SCRATCH_BYTES];
    let mut last_sweep = Instant::now();
    loop {
        h.server_beat.fetch_add(1, Ordering::Relaxed);
        let seen = h.doorbell.load(Ordering::Acquire);
        let mut progress = false;
        let mask = h.claim_mask.load(Ordering::Acquire);
        for (i, c) in ctx.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                // Attach only once the claimer has published its slot
                // words (attach_req = 1) — a claimed bit alone says
                // nothing about the words — and never re-attempt a
                // refused slot (that would busy-spin until the client
                // noticed and released).
                if !c.attached
                    && !c.refused
                    && map.slot(i).attach_req.load(Ordering::Acquire) == 1
                {
                    attach_client(&rt, &map, vcpu, i, c);
                    progress = true;
                }
                if c.attached {
                    progress |= service_slot(&rt, &map, vcpu, i, c);
                    progress |= service_ring(&rt, &map, vcpu, i, c, &mut local_scratch);
                }
            } else if c.attached || c.refused {
                // The claimer released its bit (clean DETACH, a refused
                // connect, or an abandoned handshake). The slot may
                // already belong to a new claimer, so touch only
                // process-local state — but if the release raced our
                // attach, the region is still registered and must not
                // leak.
                if let Some(region) = c.region.take() {
                    let _ = rt.bulk().registry(vcpu).unregister(region, c.program);
                }
                *c = ClientCtx::empty();
            }
        }
        if h.server_state.load(Ordering::Acquire) == srv::SHUTDOWN {
            break;
        }
        // Peer-death sweep: a killed client never sends DETACH, so its
        // claim bit, region, and any posted-but-unserviced call would
        // leak. The sweep reclaims all three and leaves a flight-plane
        // record of the loss. It also covers claimed-but-unattached
        // slots (a connector that died mid-handshake, or a refused
        // claimer that crashed before releasing its bit) — attach_req
        // == 1 guarantees the slot's pid word is valid to judge by.
        if last_sweep.elapsed() >= Duration::from_millis(50) {
            last_sweep = Instant::now();
            for (i, c) in ctx.iter_mut().enumerate() {
                if c.attached {
                    if !shm::pid_alive(c.pid) {
                        let pid = c.pid;
                        detach_client(&rt, &map, vcpu, i, c);
                        rt.flight().record(vcpu, FlightKind::PeerLost, i, pid);
                        progress = true;
                    }
                } else if h.claim_mask.load(Ordering::Acquire) & (1 << i) != 0
                    && map.slot(i).attach_req.load(Ordering::Acquire) == 1
                {
                    let pid = map.slot(i).pid.load(Ordering::Acquire);
                    if pid != 0 && !shm::pid_alive(pid) {
                        detach_client(&rt, &map, vcpu, i, c);
                        rt.flight().record(vcpu, FlightKind::PeerLost, i, pid);
                        progress = true;
                    }
                }
            }
        }
        if !progress {
            // Doorbell sleep (see module docs): a bump after `seen` was
            // read makes this return immediately. The short timeout
            // bounds the liveness sweep latency.
            if shm::futex_wait(&h.doorbell, seen, Some(Duration::from_millis(5))) {
                rt.stats.cell(vcpu).xproc_wakes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    // Shutdown: drain nothing further; flip state (already SHUTDOWN or
    // set here for the drop path), unregister regions, wake all
    // sleepers so remote waiters observe the state and error out.
    h.server_state.store(srv::SHUTDOWN, Ordering::Release);
    for (i, c) in ctx.iter_mut().enumerate() {
        if c.attached {
            if let Some(region) = c.region.take() {
                let _ = rt.bulk().registry(vcpu).unregister(region, c.program);
            }
        }
        shm::futex_wake(map.slot(i).core.state_word(), u32::MAX);
        shm::futex_wake(&map.slot(i).attach_ack, u32::MAX);
    }
    shm::futex_wake(&h.doorbell, u32::MAX);
}

/// Register the client's bulk share as a foreign-backed region and ack
/// the attach handshake.
fn attach_client(rt: &Arc<Runtime>, map: &SegMap, vcpu: usize, i: usize, c: &mut ClientCtx) {
    let slot = map.slot(i);
    let program = slot.client_program.load(Ordering::Acquire);
    let pid = slot.pid.load(Ordering::Acquire);
    let base = map.span(map.bulk_off(i), map.geo.bulk_bytes);
    // Safety: the span is segment memory kept mapped for the server's
    // lifetime (the region is unregistered before the segment unmaps).
    let buf = unsafe {
        crate::bulk::PoolBuf::foreign(NonNull::new_unchecked(base), map.geo.bulk_bytes, program)
    };
    match rt.bulk().registry(vcpu).register(buf, map.geo.bulk_bytes, program) {
        Ok(id) => {
            slot.region_id.store(u32::from(id), Ordering::Release);
            c.attached = true;
            c.program = program;
            c.pid = pid;
            c.region = Some(id);
            slot.attach_ack.store(1, Ordering::Release);
        }
        Err(_) => {
            // Remember the refusal so the serve loop does not retry
            // (and busy-spin) every iteration; the flag clears when the
            // claim bit does.
            c.refused = true;
            slot.attach_ack.store(2, Ordering::Release);
        }
    }
    shm::futex_wake(&slot.attach_ack, u32::MAX);
    rt.stats.cell(vcpu).xproc_wakes.fetch_add(1, Ordering::Relaxed);
}

/// Tear down a client (death or detach): unregister its region (drains
/// in-flight bulk transfers), reset its slot, release its claim bit.
fn detach_client(rt: &Arc<Runtime>, map: &SegMap, vcpu: usize, i: usize, c: &mut ClientCtx) {
    if let Some(region) = c.region.take() {
        let _ = rt.bulk().registry(vcpu).unregister(region, c.program);
    }
    let slot = map.slot(i);
    slot.region_id.store(u32::MAX, Ordering::Relaxed);
    slot.attach_ack.store(0, Ordering::Relaxed);
    slot.pid.store(0, Ordering::Relaxed);
    slot.core.reset();
    // Retract readiness before the claim bit clears (the AcqRel RMW
    // below releases this store) so a fresh claimer never inherits a
    // stale "words valid" signal.
    slot.attach_req.store(0, Ordering::Release);
    map.header().claim_mask.fetch_and(!(1u64 << i), Ordering::AcqRel);
    *c = ClientCtx::empty();
}

/// Service a posted slot call. Returns whether work was done.
fn service_slot(rt: &Arc<Runtime>, map: &SegMap, vcpu: usize, i: usize, c: &ClientCtx) -> bool {
    let slot = map.slot(i);
    if slot.core.state_word().load(Ordering::Acquire) != state::POSTED {
        return false;
    }
    let xop = slot.xop.load(Ordering::Relaxed);
    let ep = slot.ep.load(Ordering::Relaxed) as EntryId;
    let args = slot.core.read_args();
    let cell = rt.stats.cell(vcpu);
    let mut rets = [0u64; 8];
    let result: Result<[u64; 8], RtError> = match xop {
        op::CALL => rt.dispatch(vcpu, ep, args, c.program, true).map(|r| r.unwrap_or([0; 8])),
        op::PAYLOAD => {
            let len = (slot.core.payload_len() as usize).min(SCRATCH_BYTES);
            // Safety: the client owns the payload page only while the
            // slot is IDLE/DONE; during POSTED the server has exclusive
            // use (the rendezvous protocol, same as in-process scratch).
            let req = unsafe { std::slice::from_raw_parts(map.payload_ptr(i), len) };
            match rt.dispatch_payload(vcpu, ep, args, c.program, req) {
                Ok((r, resp)) => {
                    let n = resp.len().min(SCRATCH_BYTES);
                    // Safety: as above; exclusive during POSTED.
                    unsafe {
                        std::ptr::copy_nonoverlapping(resp.as_ptr(), map.payload_ptr(i), n);
                    }
                    slot.core.set_payload_len(n as u32);
                    Ok(r)
                }
                Err(e) => Err(e),
            }
        }
        op::GRANT => grant_region(rt, vcpu, ep, c, args[0] != 0).map(|()| [0; 8]),
        op::REVOKE => match c.region {
            Some(region) => rt
                .bulk()
                .registry(vcpu)
                .revoke(region, c.program, ep)
                .map(|n| {
                    let mut r = [0u64; 8];
                    r[0] = n as u64;
                    r
                }),
            None => Err(RtError::BadBulk),
        },
        op::DETACH => {
            // Completion must precede the claim release: ack first so
            // the waking client sees DONE, then reclaim.
            slot.core.complete_frame([0; 8], 0, 0);
            shm::futex_wake(slot.core.state_word(), u32::MAX);
            let mut cc = ClientCtx {
                attached: c.attached,
                refused: c.refused,
                program: c.program,
                pid: c.pid,
                region: c.region,
            };
            detach_client(rt, map, vcpu, i, &mut cc);
            cell.xproc_wakes.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        _ => Err(RtError::BadSegment),
    };
    let (status, aux) = match &result {
        Ok(r) => {
            rets = *r;
            (0, 0)
        }
        Err(e) => err_to_wire(e),
    };
    slot.core.complete_frame(rets, status, aux);
    shm::futex_wake(slot.core.state_word(), u32::MAX);
    cell.xproc_calls.fetch_add(1, Ordering::Relaxed);
    cell.xproc_wakes.fetch_add(1, Ordering::Relaxed);
    true
}

fn grant_region(
    rt: &Arc<Runtime>,
    vcpu: usize,
    ep: EntryId,
    c: &ClientCtx,
    write: bool,
) -> Result<(), RtError> {
    let region = c.region.ok_or(RtError::BadBulk)?;
    let e = rt.frank_entry(ep)?;
    if e.entry_state() != EntryState::Active {
        return Err(RtError::EntryDead(ep));
    }
    rt.bulk().registry(vcpu).grant(region, c.program, ep, e.opts.owner, write)
}

/// Drain client `i`'s submission queue. Returns whether work was done.
///
/// The drain is bounded: `sq_tail` is a client-controlled word, and a
/// well-formed producer can never be more than `ring_depth` ahead of
/// `sq_head`. A tail further ahead than that is a broken (or hostile)
/// client, not a big batch — it is detached on the spot, because an
/// unbounded `head != tail` loop would execute garbage SQEs with no
/// shutdown check, no liveness sweep, and every other client starved,
/// violating the module's "a client can corrupt only itself" trust
/// model. Because the tail is sampled once, a single invocation also
/// never drains more than `ring_depth` entries before returning to the
/// main loop.
fn service_ring(
    rt: &Arc<Runtime>,
    map: &SegMap,
    vcpu: usize,
    i: usize,
    c: &mut ClientCtx,
    local_scratch: &mut [u8],
) -> bool {
    let rh = map.ring_hdr(i);
    let tail = rh.sq_tail.load(Ordering::Acquire);
    let mut head = rh.sq_head.load(Ordering::Relaxed);
    if head == tail {
        return false;
    }
    if tail.wrapping_sub(head) > map.geo.ring_depth {
        let pid = c.pid;
        detach_client(rt, map, vcpu, i, c);
        rt.flight().record(vcpu, FlightKind::PeerLost, i, pid);
        return true;
    }
    let cell = rt.stats.cell(vcpu);
    while head != tail {
        // Safety: the Acquire on sq_tail published this entry; the
        // client will not rewrite it until sq_head passes it.
        let sqe = unsafe { std::ptr::read(map.sqe_ptr(i, head)) };
        let result = execute_xsqe(rt, map, vcpu, i, c, &sqe, local_scratch);
        let (status, aux, rets) = match result {
            Ok(r) => (0, 0, r),
            Err(e) => {
                let (s, a) = err_to_wire(&e);
                (s, a, [0; 8])
            }
        };
        let ct = rh.cq_tail.load(Ordering::Relaxed);
        // Safety: CQ occupancy ≤ in-flight ≤ depth (client credits),
        // so slot `ct` has been reaped.
        unsafe {
            std::ptr::write(
                map.cqe_ptr(i, ct),
                XCqe {
                    user: sqe.user,
                    ep: sqe.ep,
                    status,
                    aux,
                    _pad: 0,
                    rets,
                },
            );
        }
        rh.cq_tail.store(ct + 1, Ordering::Release);
        head += 1;
        rh.sq_head.store(head, Ordering::Release);
        cell.xproc_calls.fetch_add(1, Ordering::Relaxed);
    }
    true
}

fn execute_xsqe(
    rt: &Arc<Runtime>,
    map: &SegMap,
    vcpu: usize,
    i: usize,
    c: &ClientCtx,
    sqe: &XSqe,
    local_scratch: &mut [u8],
) -> Result<[u64; 8], RtError> {
    let ep = sqe.ep as EntryId;
    if sqe.flags & sqe_flags::PAYLOAD != 0 {
        // Validate the client-supplied offset against this client's own
        // staging area — a forged offset cannot reach another client's
        // pages.
        let len = (sqe.payload_len as usize).min(SCRATCH_BYTES);
        let off = sqe.payload_off as usize;
        let stage_base = map.stage_off(i, 0);
        let stage_end = stage_base + map.geo.ring_depth as usize * SCRATCH_BYTES;
        if off < stage_base || off + len > stage_end {
            return Err(RtError::BadBulk);
        }
        // Safety: bounds validated; the staging protocol gives the
        // server exclusive use of this page until its CQE is reaped.
        let scratch = unsafe { std::slice::from_raw_parts_mut(map.span(off, len), len) };
        rt.ring_execute(vcpu, ep, sqe.args, c.program, sqe.trace, scratch)
    } else {
        rt.ring_execute(vcpu, ep, sqe.args, c.program, sqe.trace, local_scratch)
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A cross-process client: the remote mirror of [`crate::Client`] plus
/// its ring. One `XClient` owns one claimed client slot — `&mut self`
/// on the call methods is the single-caller discipline the slot
/// rendezvous requires (the in-process analogue shards by value:
/// one `Client` per thread).
pub struct XClient {
    map: SegMap,
    idx: usize,
    program: ProgramId,
    server_pid: u32,
    /// Ring cursors (client-owned mirrors of the segment cursors).
    sq_tail: u64,
    cq_head: u64,
    sq_head_cache: u64,
    in_flight: u64,
    /// The transport observed peer death: everything fails fast with
    /// [`RtError::PeerGone`] from here on.
    dead: bool,
    /// Optional local observability home: peer-loss flight events and
    /// client-side xproc counters land here (vCPU index second).
    obs: Option<(Arc<Runtime>, usize)>,
}

impl XClient {
    /// Connect to the segment a server created at `path`, claiming one
    /// client slot under program identity `program`.
    pub fn connect(path: &Path, program: ProgramId) -> Result<XClient, RtError> {
        let map = SegMap::open(path)?;
        let h = map.header();
        // The creator writes the header before serving; wait briefly
        // for the serve loop to come up.
        let deadline = Instant::now() + Duration::from_secs(5);
        while h.server_state.load(Ordering::Acquire) != srv::SERVING {
            if Instant::now() >= deadline
                || h.server_state.load(Ordering::Acquire) == srv::SHUTDOWN
            {
                return Err(RtError::PeerGone);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let server_pid = h.server_pid.load(Ordering::Acquire);
        // Claim a slot: CAS the claim bit FIRST — only the bit's owner
        // may touch the slot's control words. Writing them before the
        // CAS would let a losing racer's stores land after the winner's
        // claim (and even after the server's attach), clobbering the
        // winner's pid/program — identity confusion at the protection
        // boundary. Readiness is signalled separately via `attach_req`,
        // which the server Acquire-reads before looking at any word.
        let n = map.geo.n_clients;
        let idx = 'claim: loop {
            let mask = h.claim_mask.load(Ordering::Acquire);
            let Some(i) = (0..n).find(|i| mask & (1u64 << i) == 0) else {
                return Err(RtError::TableFull);
            };
            if h.claim_mask
                .compare_exchange(mask, mask | (1u64 << i), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break 'claim i;
            }
            // Raced another claimer; retry from a fresh mask.
        };
        let slot = map.slot(idx);
        slot.pid.store(std::process::id(), Ordering::Relaxed);
        slot.client_program.store(program, Ordering::Relaxed);
        slot.attach_ack.store(0, Ordering::Relaxed);
        slot.region_id.store(u32::MAX, Ordering::Relaxed);
        // Publish the words: everything above is visible to whoever
        // Acquire-reads this 1.
        slot.attach_req.store(1, Ordering::Release);
        // Ring the doorbell so a sleeping server attaches us promptly.
        h.doorbell.fetch_add(1, Ordering::Release);
        shm::futex_wake(&h.doorbell, u32::MAX);
        // Await the attach ack (region registered server-side). On the
        // give-up paths, retract `attach_req` *before* releasing the
        // claim bit (both ordered before the mask RMW) so the next
        // claimer of this slot starts from an unpublished state and the
        // server can never pair a stale "ready" with fresh words.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match slot.attach_ack.load(Ordering::Acquire) {
                1 => break,
                2 => {
                    slot.attach_req.store(0, Ordering::Release);
                    h.claim_mask.fetch_and(!(1u64 << idx), Ordering::AcqRel);
                    return Err(RtError::TableFull);
                }
                _ => {
                    if Instant::now() >= deadline || !shm::pid_alive(server_pid) {
                        slot.attach_req.store(0, Ordering::Release);
                        h.claim_mask.fetch_and(!(1u64 << idx), Ordering::AcqRel);
                        return Err(RtError::PeerGone);
                    }
                    shm::futex_wait(&slot.attach_ack, 0, Some(Duration::from_millis(20)));
                }
            }
        }
        Ok(XClient {
            map,
            idx,
            program,
            server_pid,
            sq_tail: 0,
            cq_head: 0,
            sq_head_cache: 0,
            in_flight: 0,
            dead: false,
            obs: None,
        })
    }

    /// Like [`XClient::connect`], retrying while the segment file does
    /// not exist yet — the "parent connects to a freshly forked child"
    /// race, closed by polling.
    pub fn connect_retry(
        path: &Path,
        program: ProgramId,
        timeout: Duration,
    ) -> Result<XClient, RtError> {
        let deadline = Instant::now() + timeout;
        loop {
            match XClient::connect(path, program) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// Attach a local runtime as the observability home for this
    /// client: peer-loss flight events and client-side `xproc_*`
    /// counters are recorded against `vcpu`'s cell there.
    pub fn with_obs(mut self, rt: Arc<Runtime>, vcpu: usize) -> XClient {
        self.obs = Some((rt, vcpu));
        self
    }

    /// This client's program identity.
    pub fn program(&self) -> ProgramId {
        self.program
    }

    /// The region id over this client's bulk share (server-assigned at
    /// attach).
    pub fn region_id(&self) -> RegionId {
        self.map.slot(self.idx).region_id.load(Ordering::Acquire) as RegionId
    }

    /// Bulk share capacity in bytes.
    pub fn bulk_capacity(&self) -> usize {
        self.map.geo.bulk_bytes
    }

    /// Ring depth (submission credits).
    pub fn ring_depth(&self) -> u64 {
        self.map.geo.ring_depth
    }

    /// Whether the server is still alive and serving. Cheap enough for
    /// per-operation use: one shared load, plus `kill(pid, 0)` only on
    /// the slow paths that already decided to sleep.
    pub fn server_alive(&self) -> bool {
        !self.dead
            && self.map.header().server_state.load(Ordering::Acquire) == srv::SERVING
    }

    fn ensure_alive(&mut self) -> Result<(), RtError> {
        if self.dead {
            return Err(RtError::PeerGone);
        }
        if self.map.header().server_state.load(Ordering::Acquire) != srv::SERVING {
            self.note_peer_lost();
            return Err(RtError::PeerGone);
        }
        Ok(())
    }

    fn note_peer_lost(&mut self) {
        if !self.dead {
            self.dead = true;
            if let Some((rt, vcpu)) = &self.obs {
                rt.flight().record(*vcpu, FlightKind::PeerLost, self.idx, self.server_pid);
            }
        }
    }

    fn bump_doorbell(&self) {
        let h = self.map.header();
        h.doorbell.fetch_add(1, Ordering::Release);
        shm::futex_wake(&h.doorbell, u32::MAX);
        if let Some((rt, vcpu)) = &self.obs {
            rt.stats.cell(*vcpu).xproc_wakes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Wait out the slot rendezvous: brief spin, then futex chunks with
    /// liveness checks — the cross-process analogue of
    /// [`crate::slot::CallSlot::wait_done_spin`].
    fn wait_done(&mut self) -> Result<(), RtError> {
        let core = &self.map.slot(self.idx).core;
        let w = core.state_word();
        let mut spins = 0u32;
        while spins < 4096 {
            if w.load(Ordering::Acquire) == state::DONE {
                return Ok(());
            }
            if spins & 63 == 0 {
                std::thread::yield_now();
            }
            std::hint::spin_loop();
            spins += 1;
        }
        let mut beat = self.map.header().server_beat.load(Ordering::Relaxed);
        let mut stalled = 0u32;
        loop {
            if w.load(Ordering::Acquire) == state::DONE {
                return Ok(());
            }
            let h = self.map.header();
            if h.server_state.load(Ordering::Acquire) != srv::SERVING
                || !shm::pid_alive(self.server_pid)
            {
                self.note_peer_lost();
                return Err(RtError::PeerGone);
            }
            // A live PID with a frozen heartbeat for many chunks is a
            // wedged server (e.g. SIGSTOP): keep waiting — it may
            // resume — but the PID check above is the authority on
            // death. Heartbeat is only used to reset `stalled`.
            let nb = h.server_beat.load(Ordering::Relaxed);
            if nb != beat {
                beat = nb;
                stalled = 0;
            } else {
                stalled += 1;
            }
            let _ = stalled;
            shm::futex_wait(w, state::POSTED, Some(Duration::from_millis(25)));
        }
    }

    fn post_slot_op(&mut self, xop: u32, ep: EntryId, args: [u64; 8]) -> Result<(), RtError> {
        self.ensure_alive()?;
        let slot = self.map.slot(self.idx);
        slot.ep.store(ep as u32, Ordering::Relaxed);
        slot.xop.store(xop, Ordering::Relaxed);
        slot.core.fill(args, self.program, waiter::FUTEX);
        slot.core.post();
        self.bump_doorbell();
        Ok(())
    }

    fn finish_slot_op(&mut self) -> Result<[u64; 8], RtError> {
        self.wait_done()?;
        let core = &self.map.slot(self.idx).core;
        let (status, aux) = core.status();
        let rets = core.read_rets();
        core.reset();
        if let Some((rt, vcpu)) = &self.obs {
            rt.stats.cell(*vcpu).xproc_calls.fetch_add(1, Ordering::Relaxed);
        }
        if status != 0 {
            return Err(wire_to_err(status, aux));
        }
        Ok(rets)
    }

    /// Synchronous PPC across the process boundary — the remote
    /// [`crate::Client::call`].
    pub fn call(&mut self, ep: EntryId, args: [u64; 8]) -> Result<[u64; 8], RtError> {
        self.post_slot_op(op::CALL, ep, args)?;
        self.finish_slot_op()
    }

    /// Start an asynchronous call; at most one per client slot (the
    /// borrow enforces it). The remote [`crate::Client::call_async`].
    pub fn call_async(&mut self, ep: EntryId, args: [u64; 8]) -> Result<XAsyncCall<'_>, RtError> {
        self.post_slot_op(op::CALL, ep, args)?;
        Ok(XAsyncCall { client: self })
    }

    /// Synchronous PPC carrying a request payload in the slot's 4 KiB
    /// payload page; returns the result words and the response payload
    /// — the remote [`crate::Client::call_with_payload`].
    pub fn call_with_payload(
        &mut self,
        ep: EntryId,
        args: [u64; 8],
        payload: &[u8],
    ) -> Result<([u64; 8], Vec<u8>), RtError> {
        if payload.len() > SCRATCH_BYTES {
            return Err(RtError::BadBulk);
        }
        self.ensure_alive()?;
        // Safety: the client owns the payload page while the slot is
        // IDLE (it is: finish_slot_op reset it).
        unsafe {
            std::ptr::copy_nonoverlapping(
                payload.as_ptr(),
                self.map.payload_ptr(self.idx),
                payload.len(),
            );
        }
        self.map.slot(self.idx).core.set_payload_len(payload.len() as u32);
        self.post_slot_op(op::PAYLOAD, ep, args)?;
        let rets = self.finish_slot_op()?;
        let n = (self.map.slot(self.idx).core.payload_len() as usize).min(SCRATCH_BYTES);
        // Safety: DONE observed; the server is finished with the page.
        let resp =
            unsafe { std::slice::from_raw_parts(self.map.payload_ptr(self.idx), n).to_vec() };
        Ok((rets, resp))
    }

    /// Synchronous bulk PPC: `desc` (over this client's own share —
    /// see [`XClient::bulk_desc`]) rides `args[7]`, exactly like
    /// [`crate::Client::call_bulk`]. Grant the entry first with
    /// [`XClient::bulk_grant`].
    pub fn call_bulk(
        &mut self,
        ep: EntryId,
        mut args: [u64; 8],
        desc: BulkDesc,
    ) -> Result<[u64; 8], RtError> {
        args[7] = desc.encode().ok_or(RtError::BadBulk)?;
        self.note_high_water(self.map.bulk_off(self.idx) + desc.offset as usize + desc.len as usize);
        self.call(ep, args)
    }

    /// A descriptor over `[offset, offset + len)` of this client's bulk
    /// share. Errors if the span exceeds the share or the client is not
    /// attached.
    pub fn bulk_desc(&self, offset: u32, len: u32, write: bool) -> Result<BulkDesc, RtError> {
        let region = self.map.slot(self.idx).region_id.load(Ordering::Acquire);
        if region == u32::MAX {
            return Err(RtError::BadBulk);
        }
        if offset as usize + len as usize > self.map.geo.bulk_bytes {
            return Err(RtError::BadBulk);
        }
        Ok(BulkDesc { region: region as RegionId, offset, len, write })
    }

    /// Copy `data` into the bulk share at `offset` (the remote
    /// [`crate::BulkRegion::fill`]). The caller must not have an
    /// in-flight call or SQE whose descriptor covers the span — the
    /// same exclusivity the in-process region access rules enforce,
    /// here guaranteed by the client's own call discipline (`&mut
    /// self` + synchronous waits).
    pub fn bulk_write(&mut self, offset: u32, data: &[u8]) -> Result<(), RtError> {
        let end = offset as usize + data.len();
        if end > self.map.geo.bulk_bytes {
            return Err(RtError::BadBulk);
        }
        let base = self.map.span(self.map.bulk_off(self.idx) + offset as usize, data.len());
        // Safety: in-bounds; exclusivity per the doc contract.
        unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), base, data.len()) };
        Ok(())
    }

    /// Copy `len` bytes out of the bulk share at `offset` (the remote
    /// [`crate::BulkRegion::read_into`] direction).
    pub fn bulk_read(&mut self, offset: u32, len: usize) -> Result<Vec<u8>, RtError> {
        let end = offset as usize + len;
        if end > self.map.geo.bulk_bytes {
            return Err(RtError::BadBulk);
        }
        let base = self.map.span(self.map.bulk_off(self.idx) + offset as usize, len);
        // Safety: in-bounds; exclusivity per `bulk_write`'s contract.
        Ok(unsafe { std::slice::from_raw_parts(base, len).to_vec() })
    }

    /// Grant entry `ep` access to this client's bulk share (the remote
    /// [`crate::BulkRegion::grant`]): a control call the server
    /// executes against its region registry.
    pub fn bulk_grant(&mut self, ep: EntryId, write: bool) -> Result<(), RtError> {
        let mut args = [0u64; 8];
        args[0] = u64::from(write);
        self.post_slot_op(op::GRANT, ep, args)?;
        self.finish_slot_op().map(|_| ())
    }

    /// Revoke this client's grants to `ep`; returns how many were
    /// removed (the remote [`crate::BulkRegion::revoke`]).
    pub fn bulk_revoke(&mut self, ep: EntryId) -> Result<usize, RtError> {
        self.post_slot_op(op::REVOKE, ep, [0; 8])?;
        self.finish_slot_op().map(|r| r[0] as usize)
    }

    /// Advance the segment high-water mark to absolute offset `abs_end`.
    fn note_high_water(&self, abs_end: usize) {
        self.map.header().high_water.fetch_max(abs_end as u64, Ordering::Relaxed);
    }

    // -- ring ----------------------------------------------------------

    fn admit(&mut self) -> Result<(), RtError> {
        self.ensure_alive()?;
        if self.in_flight >= self.map.geo.ring_depth {
            return Err(RtError::RingFull);
        }
        let depth = self.map.geo.ring_depth;
        if self.sq_tail - self.sq_head_cache >= depth {
            self.sq_head_cache = self.map.ring_hdr(self.idx).sq_head.load(Ordering::Acquire);
            if self.sq_tail - self.sq_head_cache >= depth {
                return Err(RtError::RingFull);
            }
        }
        Ok(())
    }

    fn push_sqe(&mut self, sqe: XSqe) {
        // Safety: `admit` proved slot `sq_tail` is consumed; the entry
        // is published by the Release store of the tail below.
        unsafe { std::ptr::write(self.map.sqe_ptr(self.idx, self.sq_tail), sqe) };
        self.sq_tail += 1;
        self.map.ring_hdr(self.idx).sq_tail.store(self.sq_tail, Ordering::Release);
        self.in_flight += 1;
    }

    /// Queue one PPC (the remote [`crate::ClientRing::submit`]).
    /// Returns [`RtError::RingFull`] under backpressure — reap and
    /// retry. Call [`XClient::ring_doorbell`] after the batch.
    pub fn submit(&mut self, ep: EntryId, args: [u64; 8], user: u64) -> Result<(), RtError> {
        self.admit()?;
        self.push_sqe(XSqe {
            ep: ep as u32,
            flags: 0,
            args,
            user,
            trace: 0,
            payload_off: 0,
            payload_len: 0,
        });
        Ok(())
    }

    /// Queue one PPC with a request payload staged into this client's
    /// ring staging page (the remote [`crate::ClientRing::submit_payload`]).
    pub fn submit_payload(
        &mut self,
        ep: EntryId,
        args: [u64; 8],
        user: u64,
        payload: &[u8],
    ) -> Result<(), RtError> {
        if payload.len() > SCRATCH_BYTES {
            return Err(RtError::BadBulk);
        }
        self.admit()?;
        // Stage slot = SQE slot: by the credit argument in the module
        // docs the page is free once the prior tenant's CQE could be
        // reaped.
        let off = self.map.stage_off(self.idx, self.sq_tail);
        let dst = self.map.span(off, payload.len().max(1));
        // Safety: in-bounds staging page owned by this client until the
        // matching completion.
        unsafe { std::ptr::copy_nonoverlapping(payload.as_ptr(), dst, payload.len()) };
        self.note_high_water(off + payload.len());
        self.push_sqe(XSqe {
            ep: ep as u32,
            flags: sqe_flags::PAYLOAD,
            args,
            user,
            trace: 0,
            payload_off: off as u32,
            payload_len: payload.len() as u32,
        });
        Ok(())
    }

    /// Queue one bulk PPC: `payload` is copied into the span `desc`
    /// describes (this client's share), and the descriptor rides
    /// `args[7]` (the remote [`crate::ClientRing::submit_bulk`] — the
    /// copy happens client-side because the data is already
    /// cross-process shared; there is no second staging hop).
    pub fn submit_bulk(
        &mut self,
        ep: EntryId,
        mut args: [u64; 8],
        user: u64,
        desc: BulkDesc,
        payload: &[u8],
    ) -> Result<(), RtError> {
        if payload.len() > desc.len as usize {
            return Err(RtError::BadBulk);
        }
        args[7] = desc.encode().ok_or(RtError::BadBulk)?;
        self.admit()?;
        self.bulk_write(desc.offset, payload)?;
        self.note_high_water(self.map.bulk_off(self.idx) + desc.offset as usize + desc.len as usize);
        self.push_sqe(XSqe {
            ep: ep as u32,
            flags: sqe_flags::BULK,
            args,
            user,
            trace: 0,
            payload_off: 0,
            payload_len: 0,
        });
        Ok(())
    }

    /// Ring the doorbell for a submitted batch (the remote
    /// [`crate::ClientRing::doorbell`]): one futex wake per batch.
    pub fn ring_doorbell(&mut self) {
        self.bump_doorbell();
    }

    /// Harvest up to `max` completions (the remote
    /// [`crate::ClientRing::reap`]). Non-blocking; returns how many
    /// landed in `out`. When nothing is reapable but submissions are
    /// outstanding and the server died, returns [`RtError::PeerGone`]
    /// (in-flight work is lost; credits are forfeited with it).
    pub fn reap(&mut self, max: usize, out: &mut Vec<Completion>) -> Result<usize, RtError> {
        let rh = self.map.ring_hdr(self.idx);
        let tail = rh.cq_tail.load(Ordering::Acquire);
        let mut n = 0;
        while self.cq_head != tail && n < max {
            // Safety: Acquire on cq_tail published the entry; the
            // server will not rewrite it until cq_head passes.
            let cqe = unsafe { std::ptr::read(self.map.cqe_ptr(self.idx, self.cq_head)) };
            self.cq_head += 1;
            rh.cq_head.store(self.cq_head, Ordering::Release);
            self.in_flight = self.in_flight.saturating_sub(1);
            out.push(Completion {
                user: cqe.user,
                ep: cqe.ep as EntryId,
                result: if cqe.status == 0 {
                    Ok(cqe.rets)
                } else {
                    Err(wire_to_err(cqe.status, cqe.aux))
                },
            });
            n += 1;
        }
        if n == 0
            && self.in_flight > 0
            && (self.dead
                || self.map.header().server_state.load(Ordering::Acquire) != srv::SERVING
                || !shm::pid_alive(self.server_pid))
        {
            self.note_peer_lost();
            self.in_flight = 0;
            return Err(RtError::PeerGone);
        }
        Ok(n)
    }

    /// Submissions not yet reaped.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Ask the server to shut down (sets the segment state word and
    /// wakes the serve loop) — the cooperating-parent teardown for
    /// forked servers. The server exits its loop; in-flight work on
    /// *other* clients completes with peer-gone semantics on their
    /// side.
    pub fn shutdown_server(&mut self) {
        let h = self.map.header();
        h.server_state.store(srv::SHUTDOWN, Ordering::Release);
        shm::futex_wake(&h.doorbell, u32::MAX);
        self.dead = true;
    }
}

impl Drop for XClient {
    fn drop(&mut self) {
        // Best-effort clean detach so the server reclaims the slot and
        // region immediately instead of at the next liveness sweep.
        if self.dead || self.map.header().server_state.load(Ordering::Acquire) != srv::SERVING
        {
            return;
        }
        if self.post_slot_op(op::DETACH, 0, [0; 8]).is_ok() {
            let w = self.map.slot(self.idx).core.state_word();
            let deadline = Instant::now() + Duration::from_millis(200);
            while w.load(Ordering::Acquire) != state::DONE && Instant::now() < deadline {
                shm::futex_wait(w, state::POSTED, Some(Duration::from_millis(20)));
            }
            self.map.slot(self.idx).core.reset();
        }
    }
}

/// A pending asynchronous cross-process call (see
/// [`XClient::call_async`]). Dropping it without [`XAsyncCall::wait`]
/// blocks until the in-flight call completes (with the usual liveness
/// checks), discards the result, and releases the slot.
pub struct XAsyncCall<'a> {
    client: &'a mut XClient,
}

impl XAsyncCall<'_> {
    /// Whether the completion has landed.
    pub fn is_done(&self) -> bool {
        self.client.map.slot(self.client.idx).core.state_word().load(Ordering::Acquire)
            == state::DONE
    }

    /// Block for the result (futex rendezvous + liveness, like the
    /// synchronous call).
    pub fn wait(self) -> Result<[u64; 8], RtError> {
        // ManuallyDrop: finish_slot_op consumes the completion and
        // resets the slot itself; the abandoned-call Drop below must
        // not run on top of that.
        let mut this = std::mem::ManuallyDrop::new(self);
        this.client.finish_slot_op()
    }
}

/// An abandoned call cannot simply be forgotten: the server still flips
/// the slot to DONE, [`SlotCore`]'s fill spins for IDLE, and nothing
/// else resets it — the next operation (including the DETACH posted by
/// [`XClient`]'s own drop) would busy-spin forever. Drop therefore
/// drains the rendezvous and resets the slot. On peer death the wait
/// errors out in tens of milliseconds and the reset is safe regardless:
/// a gone server never writes the slot again.
impl Drop for XAsyncCall<'_> {
    fn drop(&mut self) {
        let _ = self.client.wait_done();
        self.client.map.slot(self.client.idx).core.reset();
    }
}

// ---------------------------------------------------------------------
// Forked servers (bench / example convenience)
// ---------------------------------------------------------------------

/// Handle to a server child created by [`fork_server`].
pub struct ForkedServer {
    pid: i32,
    reaped: bool,
}

impl ForkedServer {
    /// The child's PID.
    pub fn pid(&self) -> i32 {
        self.pid
    }

    /// SIGKILL the child (peer-death experiments).
    pub fn kill(&self) {
        fork_sys::kill_pid(self.pid);
    }

    /// Reap the child (waitpid); idempotent.
    pub fn wait(&mut self) {
        if !self.reaped {
            fork_sys::waitpid(self.pid);
            self.reaped = true;
        }
    }
}

impl Drop for ForkedServer {
    fn drop(&mut self) {
        if !self.reaped {
            self.kill();
            self.wait();
        }
    }
}

/// Fork a child process that builds a runtime (via `build`), serves it
/// over a segment at `path`, and exits when a client calls
/// [`XClient::shutdown_server`] (or it is killed).
///
/// **Must be called before the calling process spawns threads** — fork
/// only duplicates the calling thread, and a forked child of a threaded
/// process may hold poisoned locks. Test binaries (whose harness is
/// threaded) should use the re-exec pattern instead: spawn
/// `current_exe()` with an env flag and run the server in the fresh
/// child's `main` (see `tests/xproc.rs`).
pub fn fork_server(
    path: &Path,
    opts: XSegOptions,
    build: impl FnOnce() -> Arc<Runtime>,
) -> std::io::Result<ForkedServer> {
    let pid = fork_sys::fork()?;
    if pid == 0 {
        // Child: serve until told to stop, then exit without running
        // the parent's atexit/Drop state.
        let rt = build();
        let code = match rt.serve_xproc(path, opts) {
            Ok(mut srv) => {
                srv.wait();
                0
            }
            Err(_) => 1,
        };
        std::process::exit(code);
    }
    Ok(ForkedServer { pid, reaped: false })
}

#[cfg(target_os = "linux")]
mod fork_sys {
    use core::ffi::c_int;

    mod libc {
        use core::ffi::c_int;
        extern "C" {
            pub fn fork() -> c_int;
            pub fn waitpid(pid: c_int, status: *mut c_int, options: c_int) -> c_int;
            pub fn kill(pid: c_int, sig: c_int) -> c_int;
        }
    }

    pub(super) fn fork() -> std::io::Result<i32> {
        // Safety: plain fork; the caller upholds the single-threaded
        // contract documented on `fork_server`.
        let pid = unsafe { libc::fork() };
        if pid < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(pid)
    }

    pub(super) fn waitpid(pid: i32) {
        let mut status: c_int = 0;
        // Safety: plain waitpid on a child we own.
        unsafe { libc::waitpid(pid, &mut status, 0) };
    }

    pub(super) fn kill_pid(pid: i32) {
        const SIGKILL: c_int = 9;
        // Safety: signalling a child we own.
        unsafe { libc::kill(pid, SIGKILL) };
    }
}

#[cfg(not(target_os = "linux"))]
mod fork_sys {
    pub(super) fn fork() -> std::io::Result<i32> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "fork_server requires Linux",
        ))
    }

    pub(super) fn waitpid(_pid: i32) {}

    pub(super) fn kill_pid(_pid: i32) {}
}

// ---------------------------------------------------------------------
// Transport stats (exporter hook)
// ---------------------------------------------------------------------

/// A snapshot of segment-level transport stats for the exporters.
pub struct XprocStats {
    /// `"xproc-server"` — present only while a segment is mapped.
    pub mode: &'static str,
    /// Segment size in bytes.
    pub segment_bytes: u64,
    /// High-water byte offset reached by bulk/staged traffic.
    pub high_water: u64,
    /// Currently claimed client slots.
    pub clients: u32,
}

impl Runtime {
    /// Segment transport stats, if this runtime is serving a segment
    /// (`None` ⇒ purely in-process).
    pub fn xproc_stats(&self) -> Option<XprocStats> {
        let seg = self.xproc_segment()?.upgrade()?;
        if seg.len() < std::mem::size_of::<XSegHeader>() {
            return None;
        }
        // Safety: only ever set from a validated server segment.
        let h: &XSegHeader = unsafe { SegRef::new(SegOffset(0)).resolve(&seg) };
        Some(XprocStats {
            mode: "xproc-server",
            segment_bytes: seg.len() as u64,
            high_water: h.high_water.load(Ordering::Relaxed),
            clients: h.claim_mask.load(Ordering::Relaxed).count_ones(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codes_roundtrip() {
        let errs = [
            RtError::UnknownEntry(7),
            RtError::EntryDead(3),
            RtError::Aborted(9),
            RtError::BadBulk,
            RtError::BulkDenied(5),
            RtError::BulkRevoked(6),
            RtError::BulkReentrant(2),
            RtError::TableFull,
            RtError::NotOwner,
            RtError::BadVcpu(1),
            RtError::ServerFault(4),
            RtError::RingFull,
            RtError::PeerGone,
            RtError::BadSegment,
        ];
        for e in errs {
            let (c, a) = err_to_wire(&e);
            assert_ne!(c, 0, "status 0 is success");
            assert_eq!(wire_to_err(c, a), e, "roundtrip {e:?}");
        }
    }

    #[test]
    fn geometry_is_consistent_and_bounded() {
        let g = Geometry::compute(4, 32, 256 << 10).unwrap();
        assert_eq!(g.slots_off, 128);
        assert!(g.rings_off >= g.slots_off + 4 * std::mem::size_of::<XClientSlot>());
        assert_eq!(g.stage_off % 4096, 0);
        assert_eq!(g.total_len % 4096, 0);
        // Refusals: zero clients, too many, non-pow2 depth, giant bulk.
        assert!(Geometry::compute(0, 32, 4096).is_none());
        assert!(Geometry::compute(65, 32, 4096).is_none());
        assert!(Geometry::compute(4, 33, 4096).is_none());
        assert!(Geometry::compute(4, 32, (1 << 24) + 64).is_none());
    }

    fn serve_add(tag: &str, n_clients: usize) -> (Arc<Runtime>, XServer, EntryId, PathBuf) {
        let rt = Runtime::new(1);
        let ep = rt
            .bind(
                "add",
                crate::EntryOptions::default(),
                Arc::new(|ctx| [ctx.args[0] + ctx.args[1], 0, 0, 0, 0, 0, 0, 0]),
            )
            .unwrap();
        let path = shm::segment_dir().join(format!("ppc-xproc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = XSegOptions { n_clients, ring_depth: 8, bulk_bytes: 4096, vcpu: 0 };
        let srv = rt.serve_xproc(&path, opts).unwrap();
        (rt, srv, ep, path)
    }

    /// The claim handshake under contention: concurrent connectors must
    /// end up in distinct slots, each slot's identity words matching
    /// the client that owns it — the claim-before-write protocol (a
    /// losing racer that wrote words first could clobber the winner's
    /// pid/program after the winner's CAS).
    #[test]
    fn concurrent_connects_claim_distinct_slots() {
        let n = 8usize;
        let (_rt, srv, ep, path) = serve_add("claimrace", n);
        let clients: Vec<XClient> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n as u32)
                .map(|p| {
                    let path = path.clone();
                    s.spawn(move || {
                        XClient::connect_retry(&path, 100 + p, Duration::from_secs(10))
                            .expect("connect under contention")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut idxs: Vec<usize> = clients.iter().map(|c| c.idx).collect();
        idxs.sort_unstable();
        idxs.dedup();
        assert_eq!(idxs.len(), n, "every client owns a distinct slot");
        for c in &clients {
            assert_eq!(
                c.map.slot(c.idx).client_program.load(Ordering::Acquire),
                c.program,
                "slot identity words belong to the slot's owner"
            );
        }
        for mut c in clients {
            assert_eq!(c.call(ep, [20, 22, 0, 0, 0, 0, 0, 0]).unwrap()[0], 42);
        }
        drop(srv);
    }

    /// A client storing a garbage `sq_tail` must be detached — not
    /// handed an effectively-infinite drain loop that starves every
    /// other client and never re-checks shutdown.
    #[test]
    fn malformed_sq_tail_detaches_client_not_server() {
        let (rt, srv, ep, path) = serve_add("badtail", 2);
        let mut evil = XClient::connect_retry(&path, 66, Duration::from_secs(10)).unwrap();
        let mut good = XClient::connect_retry(&path, 77, Duration::from_secs(10)).unwrap();
        // Break the SPSC cursor contract: tail leaps far past head.
        evil.map.ring_hdr(evil.idx).sq_tail.store(u64::MAX, Ordering::Release);
        evil.bump_doorbell();
        // The serve loop must stay responsive for well-behaved clients…
        assert_eq!(good.call(ep, [19, 23, 0, 0, 0, 0, 0, 0]).unwrap()[0], 42);
        // …and must reclaim the malformed one (claim bit released,
        // loss on the flight record).
        let deadline = Instant::now() + Duration::from_secs(5);
        while evil.map.header().claim_mask.load(Ordering::Acquire) & (1u64 << evil.idx) != 0 {
            assert!(Instant::now() < deadline, "malformed client detached before deadline");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            rt.flight().snapshot(0).iter().any(|e| e.kind == FlightKind::PeerLost),
            "forced detach lands on the flight record"
        );
        // The slot no longer belongs to `evil`; skip its clean-detach
        // drop protocol against a reclaimed (possibly re-claimed) slot.
        evil.dead = true;
        drop(evil);
        drop(good);
        drop(srv);
    }

    #[test]
    fn create_then_validate_accepts_and_version_mismatch_is_clean() {
        let dir = shm::segment_dir();
        let path = dir.join(format!("ppc-xproc-hdr-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = XSegOptions { n_clients: 2, ring_depth: 8, bulk_bytes: 4096, vcpu: 0 };
        let map = SegMap::create(&path, &opts).unwrap();
        // Re-open by path: full validation passes.
        let re = SegMap::open(&path).unwrap();
        assert_eq!(re.geo, map.geo);
        // Corrupt the version: clean BadSegment, not UB.
        // Safety: single-process test, no concurrent reader.
        unsafe {
            let h = map.seg.base().add(8) as *mut u32;
            *h = XPROC_LAYOUT_VERSION + 1;
        }
        assert_eq!(SegMap::open(&path).err(), Some(RtError::BadSegment));
        drop(re);
        drop(map);
        assert!(!path.exists());
    }
}
