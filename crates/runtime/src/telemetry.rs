//! Continuous telemetry: a background sampler, a windowed time-series
//! ring, and the SLO burn-rate watchdog.
//!
//! The PR-3 counters and histograms are *cumulative*: they answer "what
//! happened since boot", never "what is the p99 right now and is it
//! burning the SLO". This module closes that gap. A sampler thread
//! wakes every tick (default [`DEFAULT_TICK`]), snapshots the whole
//! counter plane ([`crate::stats::Snapshot`], totals and per-vCPU) and
//! every [`LatencyKind`] histogram, computes **deltas** against the
//! previous tick, and stores them in a fixed-capacity power-of-two ring
//! of pre-allocated [`TickDelta`] slots — the same allocation-free
//! steady-state discipline as [`crate::flight`]: after startup the
//! sampler never allocates, it only overwrites slots in place.
//!
//! From the ring fall out the two products the cumulative plane cannot
//! give:
//!
//! * **windowed rates** — calls/s, sheds/s, pool misses/s over any
//!   window the ring covers ([`Telemetry::window`], exported as
//!   `ppc_rate_*` series on `/metrics`);
//! * **windowed quantiles** — per-window p50/p99/p999 recovered by
//!   merging histogram-bucket deltas over the window
//!   ([`WindowStats::quantile_ns`]). Bucket deltas of a cumulative
//!   histogram are exactly the histogram of the window's samples, so a
//!   windowed quantile is as accurate as a whole-run one (the
//!   correctness test in `tests/telemetry.rs` proves the identity
//!   against a brute-force recompute).
//!
//! On top of the windows sits the **SLO watchdog**: declarative
//! [`SloRule`]s evaluated every tick with the standard fast/slow
//! burn-rate pair (slow window = the rule's, fast window = 1/12th of
//! it, the 1h/5m convention scaled down). A rule fires only when *both*
//! windows burn past `burn_factor` — the fast window catches the step
//! change, the slow window keeps a single noisy tick from paging. A
//! rising edge records a [`FlightKind::Alert`] event (so post-mortems
//! see alerts interleaved with the facility events that caused them),
//! and a firing rule with [`SloRule::nudge_frank`] invokes
//! [`crate::Runtime::frank_maintain`] — the runtime watching itself and
//! feeding the slow-path resource manager.
//!
//! The sampler costs the *fast path* nothing: it only reads the
//! `Relaxed` counters the fast path was already writing, from its own
//! thread, ~10 times a second. The `obs_overhead` CI gate runs with
//! the sampler enabled to hold that claim to the ≤5% budget.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crate::flight::{FlightKind, FlightPlane};
use crate::obs::{Histogram, LatencyKind, ObsState, KINDS, NKINDS};
use crate::stats::{RuntimeStats, Snapshot};

/// Default sampler period.
pub const DEFAULT_TICK: Duration = Duration::from_millis(100);

/// Default time-series ring depth (power of two). At the default tick
/// this retains ~102 s — enough to serve the 60 s window with room for
/// scrape jitter.
pub const DEFAULT_SERIES_DEPTH: usize = 1024;

/// The windows every export reports, label first.
pub const WINDOWS: [(&str, Duration); 3] = [
    ("1s", Duration::from_secs(1)),
    ("10s", Duration::from_secs(10)),
    ("60s", Duration::from_secs(60)),
];

/// Clock-gap threshold above which the interference probe counts an
/// excursion. A tight `Instant::now` loop advances tens of nanoseconds
/// per iteration; a gap of 20µs+ between consecutive reads means the
/// probing thread lost the processor — an involuntary deschedule, the
/// host-interference signature `tail_probe` used to hunt by hand.
pub const INTERFERENCE_GAP_NS: u64 = 20_000;

/// Excursions at or above this size additionally land a
/// [`FlightKind::Interference`] event in vCPU 0's ring, so post-mortems
/// see big preemptions interleaved with the facility events they
/// perturbed.
pub const INTERFERENCE_EVENT_NS: u64 = 100_000;

/// One interference-probe run: how long the probe observed, how much of
/// that was stolen by involuntary deschedules, and the excursion count.
#[derive(Clone, Copy, Debug, Default)]
pub struct InterferenceSample {
    /// Total ns the probe loop observed (the ratio denominator).
    pub probed_ns: u64,
    /// Ns lost to clock gaps above [`INTERFERENCE_GAP_NS`].
    pub lost_ns: u64,
    /// Gaps counted.
    pub excursions: u64,
    /// Largest single gap observed (ns).
    pub max_excursion_ns: u64,
}

impl InterferenceSample {
    /// Fraction of probed time lost to interference (0.0 when nothing
    /// was probed).
    pub fn ratio(&self) -> f64 {
        if self.probed_ns == 0 {
            0.0
        } else {
            self.lost_ns as f64 / self.probed_ns as f64
        }
    }
}

/// Run the clock-gap interference probe for (about) `budget` wall-time:
/// spin reading the monotonic clock and classify every
/// consecutive-read gap above [`INTERFERENCE_GAP_NS`] as involuntarily
/// descheduled time. The successor to the ad-hoc `tail_probe`: the
/// telemetry sampler runs this every tick on a small budget (~0.2% of a
/// tick), turning "host jitter dominates p999" from a hand diagnosis
/// into a continuously exported ratio. Callers off the sampler thread
/// (e.g. `latency_gate` on a violation) may run it directly with a
/// bigger budget for a sharper estimate.
pub fn interference_probe(budget: Duration) -> InterferenceSample {
    let budget_ns = budget.as_nanos() as u64;
    let mut out = InterferenceSample::default();
    let start = Instant::now();
    let mut prev = start;
    loop {
        let now = Instant::now();
        let gap = now.duration_since(prev).as_nanos() as u64;
        prev = now;
        if gap >= INTERFERENCE_GAP_NS {
            out.lost_ns += gap;
            out.excursions += 1;
            out.max_excursion_ns = out.max_excursion_ns.max(gap);
        }
        let elapsed = now.duration_since(start).as_nanos() as u64;
        if elapsed >= budget_ns {
            out.probed_ns = elapsed;
            return out;
        }
        std::hint::spin_loop();
    }
}

/// One tick's activity: counter and histogram **deltas** over
/// `[at_ns - dt_ns, at_ns]`.
#[derive(Clone, Debug)]
pub struct TickDelta {
    /// Tick number (0-based, monotonic; survives ring wrap).
    pub seq: u64,
    /// End of the tick, nanoseconds since the sampler started.
    pub at_ns: u64,
    /// Measured width of the tick (the sleep is approximate; rates must
    /// divide by this, not by the configured tick).
    pub dt_ns: u64,
    /// Counter deltas, aggregated across vCPUs.
    pub counters: Snapshot,
    /// Counter deltas per vCPU (index = vCPU id).
    pub per_vcpu: Box<[Snapshot]>,
    /// Histogram bucket deltas per [`LatencyKind`] (discriminant
    /// order), merged across vCPUs.
    pub hists: Box<[Histogram]>,
    /// Per-vCPU bucket deltas for [`LatencyKind::Call`] — what the
    /// per-vCPU `ppc-top` quantile columns read.
    pub vcpu_call: Box<[Histogram]>,
}

impl TickDelta {
    fn empty(n_vcpus: usize) -> TickDelta {
        TickDelta {
            seq: 0,
            at_ns: 0,
            dt_ns: 0,
            counters: Snapshot::default(),
            per_vcpu: vec![Snapshot::default(); n_vcpus].into_boxed_slice(),
            hists: vec![Histogram::new(); NKINDS].into_boxed_slice(),
            vcpu_call: vec![Histogram::new(); n_vcpus].into_boxed_slice(),
        }
    }
}

/// A merged view over the newest ticks covering (at least) a requested
/// window: the raw material for rates and windowed quantiles.
#[derive(Clone, Debug)]
pub struct WindowStats {
    /// Summed tick widths actually merged (≤ the request when the ring
    /// is young; rates divide by this).
    pub dt_ns: u64,
    /// Ticks merged.
    pub ticks: usize,
    /// Counter deltas over the window.
    pub counters: Snapshot,
    /// Merged histogram deltas per kind (discriminant order).
    pub hists: Box<[Histogram]>,
    /// Per-vCPU counter deltas over the window.
    pub per_vcpu: Box<[Snapshot]>,
    /// Per-vCPU [`LatencyKind::Call`] histogram deltas over the window.
    pub vcpu_call: Box<[Histogram]>,
}

impl WindowStats {
    fn empty(n_vcpus: usize) -> WindowStats {
        WindowStats {
            dt_ns: 0,
            ticks: 0,
            counters: Snapshot::default(),
            hists: vec![Histogram::new(); NKINDS].into_boxed_slice(),
            per_vcpu: vec![Snapshot::default(); n_vcpus].into_boxed_slice(),
            vcpu_call: vec![Histogram::new(); n_vcpus].into_boxed_slice(),
        }
    }

    /// The window's width in (fractional) seconds.
    pub fn secs(&self) -> f64 {
        self.dt_ns as f64 / 1e9
    }

    /// Windowed rate of counter `name` in events/second (0.0 for an
    /// unknown counter or an empty window).
    pub fn rate(&self, name: &str) -> f64 {
        match (self.counters.field(name), self.dt_ns) {
            (Some(v), dt) if dt > 0 => v as f64 * 1e9 / dt as f64,
            _ => 0.0,
        }
    }

    /// The merged histogram delta for `kind`.
    pub fn hist(&self, kind: LatencyKind) -> &Histogram {
        &self.hists[kind as usize]
    }

    /// Windowed `q`-quantile (ns) for `kind` — computed from the bucket
    /// deltas, so it reflects only samples recorded inside the window.
    pub fn quantile_ns(&self, kind: LatencyKind, q: f64) -> u64 {
        self.hists[kind as usize].quantile(q)
    }
}

/// Which live signal an [`SloRule`] watches.
#[derive(Clone, Debug, PartialEq)]
pub enum SloMetric {
    /// Windowed rate (events/s) of a counter from the `counters!` list,
    /// by [`Snapshot::fields`] name — e.g. `"bulk_pool_misses"`,
    /// `"ring_full"`, `"server_faults"`. An unknown name measures 0 and
    /// never fires.
    Rate(&'static str),
    /// Windowed latency quantile (ns) of a [`LatencyKind`].
    QuantileNs(LatencyKind, f64),
}

impl SloMetric {
    /// Evaluate the metric over one window.
    pub fn measure(&self, w: &WindowStats) -> f64 {
        match self {
            SloMetric::Rate(name) => w.rate(name),
            SloMetric::QuantileNs(kind, q) => w.quantile_ns(*kind, *q) as f64,
        }
    }

    /// Human-readable unit suffix for dumps.
    pub fn unit(&self) -> &'static str {
        match self {
            SloMetric::Rate(_) => "/s",
            SloMetric::QuantileNs(..) => "ns",
        }
    }
}

/// One declarative SLO: "`metric` over `window` should stay at or under
/// `threshold`". The watchdog fires when the burn rate
/// (`measured / threshold`) reaches `burn_factor` on **both** the
/// rule's window and the fast window (window/12, clamped to one tick) —
/// the standard multiwindow burn-rate alert, scaled to runtime ticks.
#[derive(Clone, Debug)]
pub struct SloRule {
    /// Name for alerts, dumps and the `/json` export.
    pub name: &'static str,
    /// The signal watched.
    pub metric: SloMetric,
    /// The slow evaluation window.
    pub window: Duration,
    /// The SLO bound: burn rate 1.0 means consuming budget exactly at
    /// the threshold.
    pub threshold: f64,
    /// Burn multiple at which the rule fires (≥ 1.0; e.g. 14.4 is the
    /// classic fast-burn page).
    pub burn_factor: f64,
    /// When firing, invoke [`crate::Runtime::frank_maintain`] each tick
    /// — the "sustained pool-miss burn ⇒ let Frank shrink/clean up"
    /// feedback loop.
    pub nudge_frank: bool,
}

impl SloRule {
    /// A rule with the conventional defaults: 10 s window, burn factor
    /// 1.0 (fire as soon as both windows exceed the threshold), no
    /// Frank nudge.
    pub fn new(name: &'static str, metric: SloMetric, threshold: f64) -> SloRule {
        SloRule {
            name,
            metric,
            window: Duration::from_secs(10),
            threshold,
            burn_factor: 1.0,
            nudge_frank: false,
        }
    }
}

/// Live state of one rule, readable via [`Telemetry::alerts`].
#[derive(Clone, Debug)]
pub struct AlertState {
    /// The rule (cloned at install).
    pub rule: SloRule,
    /// Whether the rule is currently firing.
    pub firing: bool,
    /// Rising edges observed since install.
    pub fired: u64,
    /// Last measurement over the slow window.
    pub measured_slow: f64,
    /// Last measurement over the fast window.
    pub measured_fast: f64,
    /// Ticks spent in the firing state (cumulative).
    pub firing_ticks: u64,
    /// Host-interference ratio over the rule's window at the last
    /// evaluation (lost ns / probed ns, from the sampler's
    /// [`interference_probe`] runs): how much of the alert is the host
    /// scheduler's fault rather than the facility's.
    pub interference_ratio: f64,
}

/// The fixed-capacity tick ring: pre-allocated slots, overwritten in
/// place, never growing. Writes come only from the sampler thread;
/// reads (exports, windows, `ppc-top`) clone out under the same lock —
/// all cold-path, so a mutex is the honest choice (the hot path never
/// comes near this structure).
struct SeriesRing {
    slots: parking_lot::Mutex<Box<[TickDelta]>>,
    /// Ticks ever written (head); slot index = seq & (depth - 1).
    head: AtomicU64,
}

impl SeriesRing {
    fn new(depth: usize, n_vcpus: usize) -> SeriesRing {
        assert!(depth.is_power_of_two(), "telemetry_depth must be a power of two");
        SeriesRing {
            slots: parking_lot::Mutex::new(
                (0..depth).map(|_| TickDelta::empty(n_vcpus)).collect(),
            ),
            head: AtomicU64::new(0),
        }
    }

    /// Overwrite the next slot in place (no allocation: every boxed
    /// array in the slot keeps its storage; `clone_from` reuses it).
    fn push(&self, tick: &TickDelta) {
        let mut slots = self.slots.lock();
        let head = self.head.load(Ordering::Relaxed);
        let idx = head as usize & (slots.len() - 1);
        slots[idx].clone_from(tick);
        self.head.store(head + 1, Ordering::Release);
    }

    /// The newest `n` ticks, oldest first.
    fn last(&self, n: usize) -> Vec<TickDelta> {
        let slots = self.slots.lock();
        let head = self.head.load(Ordering::Relaxed);
        let retained = head.min(slots.len() as u64).min(n as u64);
        (head - retained..head)
            .map(|seq| slots[seq as usize & (slots.len() - 1)].clone())
            .collect()
    }

    /// Merge the newest ticks until `window` is covered (or the ring is
    /// exhausted).
    fn window(&self, window: Duration, n_vcpus: usize) -> WindowStats {
        let want_ns = window.as_nanos() as u64;
        let slots = self.slots.lock();
        let head = self.head.load(Ordering::Relaxed);
        let retained = head.min(slots.len() as u64);
        let mut out = WindowStats::empty(n_vcpus);
        for seq in (head - retained..head).rev() {
            if out.dt_ns >= want_ns {
                break;
            }
            let t = &slots[seq as usize & (slots.len() - 1)];
            out.dt_ns += t.dt_ns;
            out.ticks += 1;
            out.counters = out.counters.plus(&t.counters);
            for (k, h) in t.hists.iter().enumerate() {
                out.hists[k].merge(h);
            }
            for (v, s) in t.per_vcpu.iter().enumerate() {
                if let Some(slot) = out.per_vcpu.get_mut(v) {
                    *slot = slot.plus(s);
                }
            }
            for (v, h) in t.vcpu_call.iter().enumerate() {
                if let Some(slot) = out.vcpu_call.get_mut(v) {
                    slot.merge(h);
                }
            }
        }
        out
    }
}

/// The telemetry plane: the sampler thread's handle, the tick ring,
/// and the watchdog state. Obtain one via
/// [`crate::Runtime::start_telemetry`] (or the
/// [`crate::RuntimeOptions::telemetry_tick`] knob) and read it via
/// [`crate::Runtime::telemetry`].
pub struct Telemetry {
    ring: SeriesRing,
    alerts: parking_lot::Mutex<Vec<AlertState>>,
    tick: Duration,
    n_vcpus: usize,
    started: Instant,
    ticks: AtomicU64,
    stop: AtomicBool,
    /// Sleep/wake pair so `stop()` interrupts the tick sleep promptly.
    park: (std::sync::Mutex<()>, std::sync::Condvar),
    thread: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("tick", &self.tick)
            .field("ticks", &self.ticks())
            .finish_non_exhaustive()
    }
}

/// The sampler's previous-tick cumulative state: everything a tick
/// deltas against.
struct Cumulative {
    totals: Snapshot,
    vcpu: Box<[Snapshot]>,
    hists: Box<[Histogram]>,
    vcpu_call: Box<[Histogram]>,
}

impl Telemetry {
    /// Build the plane and spawn the sampler thread.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        tick: Duration,
        depth: usize,
        rules: Vec<SloRule>,
        stats: Arc<RuntimeStats>,
        obs: Arc<ObsState>,
        flight: Arc<FlightPlane>,
        rt: Weak<crate::Runtime>,
        n_vcpus: usize,
    ) -> Arc<Telemetry> {
        let tick = tick.max(Duration::from_millis(1));
        let tel = Arc::new(Telemetry {
            ring: SeriesRing::new(depth, n_vcpus),
            alerts: parking_lot::Mutex::new(
                rules
                    .into_iter()
                    .map(|rule| AlertState {
                        rule,
                        firing: false,
                        fired: 0,
                        measured_slow: 0.0,
                        measured_fast: 0.0,
                        firing_ticks: 0,
                        interference_ratio: 0.0,
                    })
                    .collect(),
            ),
            tick,
            n_vcpus,
            started: Instant::now(),
            ticks: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            park: (std::sync::Mutex::new(()), std::sync::Condvar::new()),
            thread: parking_lot::Mutex::new(None),
        });
        // The delta baseline is captured HERE, on the caller's thread,
        // not inside the sampler thread: on a loaded host the spawned
        // thread may not be scheduled until well after start() returns,
        // and any calls made in that gap would otherwise disappear into
        // a late-taken baseline instead of showing up in the first
        // tick's delta.
        let baseline = Cumulative {
            totals: stats.snapshot(),
            vcpu: (0..n_vcpus).map(|v| stats.vcpu_snapshot(v)).collect(),
            hists: KINDS.iter().map(|&k| obs.merged(k)).collect(),
            vcpu_call: (0..n_vcpus).map(|v| obs.vcpu_hist(LatencyKind::Call, v)).collect(),
        };
        let worker = Arc::clone(&tel);
        let handle = std::thread::Builder::new()
            .name("ppc-telemetry".into())
            .spawn(move || worker.run(stats, obs, flight, rt, baseline))
            .expect("spawn telemetry sampler");
        *tel.thread.lock() = Some(handle);
        tel
    }

    /// The configured tick.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Ticks sampled so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Ring capacity in ticks.
    pub fn depth(&self) -> usize {
        self.ring.slots.lock().len()
    }

    /// The newest `n` tick deltas, oldest first (the `/series` export).
    pub fn series(&self, n: usize) -> Vec<TickDelta> {
        self.ring.last(n)
    }

    /// Merged stats over (up to) the newest `window` of ticks.
    pub fn window(&self, window: Duration) -> WindowStats {
        self.ring.window(window, self.n_vcpus)
    }

    /// Live watchdog state, one entry per installed rule.
    pub fn alerts(&self) -> Vec<AlertState> {
        self.alerts.lock().clone()
    }

    /// Host-interference ratio over (up to) the newest `window`: ns the
    /// sampler's probe observed stolen by involuntary deschedules,
    /// divided by ns probed. 0.0 when the probe hasn't run in the
    /// window.
    pub fn interference_ratio(&self, window: Duration) -> f64 {
        let w = self.window(window);
        let probed = w.counters.interference_probe_ns;
        if probed == 0 {
            0.0
        } else {
            w.counters.interference_ns as f64 / probed as f64
        }
    }

    /// Rules currently firing.
    pub fn firing(&self) -> usize {
        self.alerts.lock().iter().filter(|a| a.firing).count()
    }

    /// Stop the sampler and join it (idempotent; called by
    /// [`crate::Runtime`]'s drop).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _guard = self.park.0.lock().unwrap_or_else(|e| e.into_inner());
        self.park.1.notify_all();
        drop(_guard);
        let handle = self.thread.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Block until at least `n` ticks have been sampled (test/CI
    /// helper; times out after 10 s to keep a wedged sampler from
    /// hanging the harness).
    pub fn wait_ticks(&self, n: u64) -> bool {
        let t0 = Instant::now();
        while self.ticks() < n {
            if t0.elapsed() > Duration::from_secs(10) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    fn run(
        self: Arc<Self>,
        stats: Arc<RuntimeStats>,
        obs: Arc<ObsState>,
        flight: Arc<FlightPlane>,
        rt: Weak<crate::Runtime>,
        baseline: Cumulative,
    ) {
        // Previous-tick cumulative state (captured in start(), see
        // there) and the scratch slot, allocated once: the loop body
        // only overwrites them in place.
        let n = self.n_vcpus;
        let Cumulative {
            totals: mut prev_totals,
            vcpu: mut prev_vcpu,
            hists: mut prev_hists,
            vcpu_call: mut prev_vcpu_call,
        } = baseline;
        let mut scratch = TickDelta::empty(n);
        let mut last = Instant::now();
        loop {
            // Interruptible tick sleep.
            {
                let guard = self.park.0.lock().unwrap_or_else(|e| e.into_inner());
                let _ = self
                    .park
                    .1
                    .wait_timeout(guard, self.tick)
                    .unwrap_or_else(|e| e.into_inner());
            }
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            // Interference probe: a fixed sliver of each tick (~0.2% at
            // the default tick) spent watching the clock for deschedule
            // gaps. The result lands in vCPU 0's counters, so it rides
            // the ordinary delta/window plumbing below.
            let probe = interference_probe(
                (self.tick / 512).clamp(Duration::from_micros(50), Duration::from_millis(1)),
            );
            let cell0 = stats.cell(0);
            cell0.interference_ns.fetch_add(probe.lost_ns, Ordering::Relaxed);
            cell0.interference_probe_ns.fetch_add(probe.probed_ns, Ordering::Relaxed);
            cell0.interference_excursions.fetch_add(probe.excursions, Ordering::Relaxed);
            if probe.max_excursion_ns >= INTERFERENCE_EVENT_NS {
                flight.record(
                    0,
                    FlightKind::Interference,
                    0,
                    probe.max_excursion_ns.min(u32::MAX as u64) as u32,
                );
            }
            let now = Instant::now();
            let dt_ns = now.duration_since(last).as_nanos() as u64;
            last = now;

            // Snapshot cumulative, delta against previous, in place.
            let totals = stats.snapshot();
            scratch.seq = self.ticks.load(Ordering::Relaxed);
            scratch.at_ns = self.started.elapsed().as_nanos() as u64;
            scratch.dt_ns = dt_ns.max(1);
            scratch.counters = totals.since(&prev_totals);
            prev_totals = totals;
            for v in 0..n {
                let s = stats.vcpu_snapshot(v);
                scratch.per_vcpu[v] = s.since(&prev_vcpu[v]);
                prev_vcpu[v] = s;
                let h = obs.vcpu_hist(LatencyKind::Call, v);
                scratch.vcpu_call[v] = h.delta_since(&prev_vcpu_call[v]);
                prev_vcpu_call[v] = h;
            }
            for (k, &kind) in KINDS.iter().enumerate() {
                let h = obs.merged(kind);
                scratch.hists[k] = h.delta_since(&prev_hists[k]);
                prev_hists[k] = h;
            }
            self.ring.push(&scratch);
            self.ticks.fetch_add(1, Ordering::Release);

            // Watchdog: evaluate every rule on its fast/slow pair.
            self.evaluate_rules(&flight, &rt);
            if rt.strong_count() == 0 {
                return; // runtime gone; nothing left to sample for
            }
        }
    }

    fn evaluate_rules(&self, flight: &FlightPlane, rt: &Weak<crate::Runtime>) {
        let mut nudge = false;
        let mut rising_edge = false;
        {
            let mut alerts = self.alerts.lock();
            for (idx, a) in alerts.iter_mut().enumerate() {
                let slow_w = self.ring.window(a.rule.window, self.n_vcpus);
                let fast_dur = (a.rule.window / 12).max(self.tick);
                let fast_w = self.ring.window(fast_dur, self.n_vcpus);
                a.measured_slow = a.rule.metric.measure(&slow_w);
                a.measured_fast = a.rule.metric.measure(&fast_w);
                // Annotate the alert with how much of its window the
                // host stole: a high ratio says "look at the machine,
                // not the facility".
                let probed = slow_w.counters.interference_probe_ns;
                a.interference_ratio = if probed == 0 {
                    0.0
                } else {
                    slow_w.counters.interference_ns as f64 / probed as f64
                };
                let budget = a.rule.threshold.max(f64::MIN_POSITIVE);
                let firing = a.measured_slow / budget >= a.rule.burn_factor
                    && a.measured_fast / budget >= a.rule.burn_factor;
                if firing && !a.firing {
                    a.fired += 1;
                    rising_edge = true;
                    // vCPU 0's ring is the watchdog's home; `ep` carries
                    // the rule index, `data` the slow measurement.
                    flight.record(
                        0,
                        FlightKind::Alert,
                        idx,
                        a.measured_slow.min(u32::MAX as f64) as u32,
                    );
                }
                if firing {
                    a.firing_ticks += 1;
                    nudge |= a.rule.nudge_frank;
                }
                a.firing = firing;
            }
        }
        if nudge || rising_edge {
            if let Some(rt) = rt.upgrade() {
                if nudge {
                    let _ = rt.frank_maintain();
                }
                if rising_edge {
                    // Postmortem hook: a rule starting to fire is
                    // exactly when the black box is worth keeping.
                    // Rate-limited inside; a no-op unless a capture
                    // directory is configured.
                    rt.blackbox_event("slo-alert");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_preallocates_and_wraps() {
        let ring = SeriesRing::new(4, 2);
        let mut t = TickDelta::empty(2);
        for i in 0..7u64 {
            t.seq = i;
            t.dt_ns = 10;
            t.counters.calls = i;
            ring.push(&t);
        }
        let last = ring.last(16);
        assert_eq!(last.len(), 4, "ring retains depth ticks");
        assert_eq!(last.first().unwrap().seq, 3);
        assert_eq!(last.last().unwrap().seq, 6);
        let w = ring.window(Duration::from_nanos(25), 2);
        assert_eq!(w.ticks, 3, "window stops once covered");
        assert_eq!(w.counters.calls, 6 + 5 + 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_depth_panics() {
        let _ = SeriesRing::new(100, 1);
    }

    #[test]
    fn window_rates_divide_by_measured_time() {
        let ring = SeriesRing::new(8, 1);
        let mut t = TickDelta::empty(1);
        t.dt_ns = 500_000_000; // half a second per tick
        t.counters.calls = 100;
        t.counters.inline_calls = 100;
        ring.push(&t);
        ring.push(&t);
        let w = ring.window(Duration::from_secs(1), 1);
        assert_eq!(w.counters.calls, 200);
        assert!((w.rate("calls") - 200.0).abs() < 1e-9, "rate {}", w.rate("calls"));
        assert_eq!(w.rate("no_such_counter"), 0.0);
    }

    #[test]
    fn window_merges_histogram_deltas() {
        let ring = SeriesRing::new(8, 1);
        let mut t = TickDelta::empty(1);
        t.dt_ns = 1_000;
        t.hists[LatencyKind::Call as usize].record(100);
        t.hists[LatencyKind::Call as usize].record(200);
        ring.push(&t);
        ring.push(&t);
        let w = ring.window(Duration::from_secs(1), 1);
        assert_eq!(w.hist(LatencyKind::Call).count(), 4);
        assert!(w.quantile_ns(LatencyKind::Call, 0.5) <= 255);
    }

    #[test]
    fn slo_metric_measures_rates_and_quantiles() {
        let mut w = WindowStats::empty(1);
        w.dt_ns = 1_000_000_000;
        w.counters.set_field("bulk_pool_misses", 50);
        w.hists[LatencyKind::Call as usize].record(1_000);
        assert!((SloMetric::Rate("bulk_pool_misses").measure(&w) - 50.0).abs() < 1e-9);
        let q = SloMetric::QuantileNs(LatencyKind::Call, 0.99).measure(&w);
        assert!((512.0..=1024.0).contains(&q), "q={q}");
        assert_eq!(SloMetric::Rate("x").unit(), "/s");
    }
}
