//! Per-vCPU flight recorder: the last N facility events, always on.
//!
//! When a chaos or kill test wedges, aggregate counters say *that*
//! something happened, never *what happened last*. The flight recorder
//! answers that: each vCPU owns a fixed-capacity ring of 16-byte packed
//! events — dispatch-mode choices, spin-vs-park outcomes, Frank
//! redirects, bulk denials and revoke races, kills, contained faults —
//! stamped with a monotonic per-vCPU sequence number. A failing test
//! dumps the rings ([`crate::Runtime::dump_diagnostics`]) and reads the
//! facility's final seconds instead of debugging blind.
//!
//! Shared-nothing discipline matches the stats and histogram planes:
//! recording touches only the calling vCPU's ring (one `Relaxed`
//! `fetch_add` on the cursor plus two stores into the claimed slot —
//! no locks, no SeqCst). Rare events (kills, faults, denials, Frank
//! redirects) are recorded unconditionally; per-call events (dispatch
//! mode, spin outcome) are recorded only on observability-sampled calls
//! so the recorder never becomes the hot path's biggest store.
//!
//! On the wire an event is two words:
//!
//! ```text
//! word 0: sequence number + 1  (0 = slot empty / write in progress)
//! word 1: kind:8 | vcpu:8 | entry:16 | data:32
//! ```
//!
//! Writers claim a slot by `fetch_add` on the cursor, invalidate it
//! (`seq = 0`), store the payload, then publish the sequence with
//! `Release`. Readers validate by re-reading the sequence word after
//! the payload — a torn slot (writer in flight) is skipped, never
//! misreported.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Default events retained per vCPU (power of two; ~4 KB of slots per
/// vCPU). Long-running captures can raise it with
/// `RuntimeOptions::flight_capacity`.
pub const RING_CAPACITY: usize = 256;

/// What a flight event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// Synchronous call dispatched inline on the caller's thread
    /// (`data` = caller program).
    Inline = 1,
    /// Synchronous call handed off to a worker (`data` = caller
    /// program).
    Handoff = 2,
    /// Hand-off rendezvous resolved by spinning (`data` = wait ns,
    /// saturated to u32).
    SpinResolved = 3,
    /// Hand-off rendezvous fell back to parking (`data` = wait ns,
    /// saturated).
    Parked = 4,
    /// Asynchronous dispatch (`data` = caller program).
    Async = 5,
    /// Frank slow path: a pool ran dry and grew (`data` = 0 worker
    /// pool, 1 CD pool).
    Frank = 6,
    /// Bulk access denied (`data` = region id).
    BulkDenied = 7,
    /// Bulk authorization lapsed mid-transfer — the revoke race
    /// (`data` = region id).
    BulkRevoked = 8,
    /// Entry soft-killed (`data` = killer program).
    SoftKill = 9,
    /// Entry hard-killed (`data` = killer program).
    HardKill = 10,
    /// Handler panic contained as a server fault (`data` = caller
    /// program).
    Fault = 11,
    /// Handler exchanged on a live entry (`data` = requester program).
    Exchange = 12,
    /// Entry published: bound and broadcast to every vCPU's table
    /// replica (`data` = owner program).
    Publish = 13,
    /// Retired handler(s) freed after their era quiesced (`data` =
    /// handlers freed).
    Retire = 14,
    /// Dead entry reclaimed: unpublished, grace period run, registry
    /// reference dropped (`data` = requester program).
    Reclaim = 15,
    /// Ring doorbell that woke a sleeping ring worker (`data` =
    /// submission-queue depth at wake).
    Doorbell = 16,
    /// Completion-queue reap batch (`data` = completions harvested).
    RingReap = 17,
    /// SLO watchdog rule began firing (`ep` = rule index, `data` = the
    /// measured value saturated to u32 — a rate in units/s or a
    /// quantile in ns, per the rule's metric).
    Alert = 18,
    /// The interference probe observed a large involuntary-deschedule
    /// excursion: a single clock-gap far above the probe threshold
    /// (`data` = excursion ns, saturated to u32). Recorded by the
    /// telemetry sampler on vCPU 0.
    Interference = 19,
    /// A cross-process peer died or detached with work outstanding:
    /// the server lost a client (slot/ring/region reclaimed; `ep` =
    /// client slot index, `data` = peer PID) or a client lost its
    /// server (`data` = server PID). See [`crate::xproc`].
    PeerLost = 20,
}

impl FlightKind {
    fn from_u8(v: u8) -> Option<FlightKind> {
        Some(match v {
            1 => FlightKind::Inline,
            2 => FlightKind::Handoff,
            3 => FlightKind::SpinResolved,
            4 => FlightKind::Parked,
            5 => FlightKind::Async,
            6 => FlightKind::Frank,
            7 => FlightKind::BulkDenied,
            8 => FlightKind::BulkRevoked,
            9 => FlightKind::SoftKill,
            10 => FlightKind::HardKill,
            11 => FlightKind::Fault,
            12 => FlightKind::Exchange,
            13 => FlightKind::Publish,
            14 => FlightKind::Retire,
            15 => FlightKind::Reclaim,
            16 => FlightKind::Doorbell,
            17 => FlightKind::RingReap,
            18 => FlightKind::Alert,
            19 => FlightKind::Interference,
            20 => FlightKind::PeerLost,
            _ => return None,
        })
    }

    /// Stable lower-case label for dumps and exports.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::Inline => "inline",
            FlightKind::Handoff => "handoff",
            FlightKind::SpinResolved => "spin",
            FlightKind::Parked => "park",
            FlightKind::Async => "async",
            FlightKind::Frank => "frank",
            FlightKind::BulkDenied => "bulk_denied",
            FlightKind::BulkRevoked => "bulk_revoked",
            FlightKind::SoftKill => "soft_kill",
            FlightKind::HardKill => "hard_kill",
            FlightKind::Fault => "fault",
            FlightKind::Exchange => "exchange",
            FlightKind::Publish => "publish",
            FlightKind::Retire => "retire",
            FlightKind::Reclaim => "reclaim",
            FlightKind::Doorbell => "doorbell",
            FlightKind::RingReap => "ring_reap",
            FlightKind::Alert => "alert",
            FlightKind::Interference => "interference",
            FlightKind::PeerLost => "peer_lost",
        }
    }
}

/// One decoded flight event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic per-vCPU sequence number (0-based; contiguous within a
    /// snapshot — gaps mean torn slots were skipped).
    pub seq: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// vCPU the event was recorded on.
    pub vcpu: u8,
    /// Entry point involved (0 when not entry-specific).
    pub ep: u16,
    /// Kind-specific payload (program, region id, or saturated ns).
    pub data: u32,
}

impl FlightEvent {
    /// Pack the payload word (`kind:8 | vcpu:8 | ep:16 | data:32`).
    pub fn pack(kind: FlightKind, vcpu: u8, ep: u16, data: u32) -> u64 {
        ((kind as u64) << 56) | ((vcpu as u64) << 48) | ((ep as u64) << 32) | data as u64
    }

    /// Decode a payload word; `None` for an invalid kind byte.
    pub fn unpack(seq: u64, word: u64) -> Option<FlightEvent> {
        Some(FlightEvent {
            seq,
            kind: FlightKind::from_u8((word >> 56) as u8)?,
            vcpu: (word >> 48) as u8,
            ep: (word >> 32) as u16,
            data: word as u32,
        })
    }
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<6} {:<12} ep={:<4} data={}",
            self.seq,
            self.kind.label(),
            self.ep,
            self.data
        )
    }
}

/// 16-byte ring slot: sequence word (`seq + 1`, 0 = invalid) and packed
/// payload.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    word: AtomicU64,
}

/// One vCPU's event ring, line-aligned so recording never shares a line
/// with a neighbor vCPU's ring head.
#[repr(align(64))]
#[derive(Debug)]
struct Ring {
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            cursor: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot { seq: AtomicU64::new(0), word: AtomicU64::new(0) })
                .collect(),
        }
    }

    fn record(&self, word: u64) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[seq as usize & (self.slots.len() - 1)];
        // Invalidate, fill, publish: a reader that acquires the final
        // sequence store is guaranteed a matching payload, and a reader
        // racing the middle sees 0 and skips the slot.
        slot.seq.store(0, Ordering::Relaxed);
        slot.word.store(word, Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Release);
    }

    /// The retained events, oldest first. Torn slots (concurrent
    /// writers mid-store) are skipped.
    fn snapshot(&self) -> Vec<FlightEvent> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let retained = cursor.min(self.slots.len() as u64);
        let mut out = Vec::with_capacity(retained as usize);
        for seq in cursor - retained..cursor {
            let slot = &self.slots[seq as usize & (self.slots.len() - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != seq + 1 {
                continue; // overwritten or in-flight
            }
            let word = slot.word.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // torn under us
            }
            if let Some(ev) = FlightEvent::unpack(seq, word) {
                out.push(ev);
            }
        }
        out
    }
}

/// The runtime's flight-recorder plane: one ring per vCPU plus the
/// global enable bit. Always compiled (the per-event cost only exists
/// when events fire; per-call events are additionally sample-gated by
/// the caller).
#[derive(Debug)]
pub struct FlightPlane {
    rings: Box<[Ring]>,
    enabled: AtomicBool,
}

impl FlightPlane {
    /// A plane for `n_vcpus` with `capacity` ring slots per vCPU (must
    /// be a power of two so the cursor mask is a single AND).
    pub(crate) fn new(n_vcpus: usize, capacity: usize) -> Self {
        assert!(capacity.is_power_of_two(), "flight_capacity must be a power of two");
        FlightPlane {
            rings: (0..n_vcpus.max(1)).map(|_| Ring::new(capacity)).collect(),
            enabled: AtomicBool::new(true),
        }
    }

    /// Ring slots per vCPU.
    pub fn capacity(&self) -> usize {
        self.rings.first().map_or(0, |r| r.slots.len())
    }

    /// Whether recording is enabled (one `Relaxed` load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record an event on `vcpu`'s ring. Lock-free; see module docs for
    /// the slot protocol.
    #[inline]
    pub fn record(&self, vcpu: usize, kind: FlightKind, ep: usize, data: u32) {
        if !self.enabled() {
            return;
        }
        let word = FlightEvent::pack(kind, vcpu as u8, ep as u16, data);
        self.rings[vcpu].record(word);
    }

    /// Number of vCPU rings.
    pub fn n_vcpus(&self) -> usize {
        self.rings.len()
    }

    /// Events recorded on `vcpu` since boot (including overwritten
    /// ones).
    pub fn recorded(&self, vcpu: usize) -> u64 {
        self.rings[vcpu].cursor.load(Ordering::Relaxed)
    }

    /// The retained events of `vcpu`'s ring, oldest first.
    pub fn snapshot(&self, vcpu: usize) -> Vec<FlightEvent> {
        self.rings[vcpu].snapshot()
    }

    /// Snapshot `vcpu`'s ring and clear it (sequence numbering
    /// continues — a post-drain snapshot starts where this one ended).
    pub fn drain(&self, vcpu: usize) -> Vec<FlightEvent> {
        let out = self.rings[vcpu].snapshot();
        let mask = self.rings[vcpu].slots.len() - 1;
        for ev in &out {
            let slot = &self.rings[vcpu].slots[ev.seq as usize & mask];
            // Only clear the slot if it still holds the drained event; a
            // racing writer's fresher event survives.
            let _ = slot.seq.compare_exchange(
                ev.seq + 1,
                0,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let word = FlightEvent::pack(FlightKind::BulkRevoked, 3, 512, 0xDEAD_BEEF);
        let ev = FlightEvent::unpack(41, word).unwrap();
        assert_eq!(ev.seq, 41);
        assert_eq!(ev.kind, FlightKind::BulkRevoked);
        assert_eq!(ev.vcpu, 3);
        assert_eq!(ev.ep, 512);
        assert_eq!(ev.data, 0xDEAD_BEEF);
        assert!(FlightEvent::unpack(0, 0).is_none(), "kind 0 is invalid");
        assert_eq!(std::mem::size_of::<Slot>(), 16, "16-byte packed slots");
    }

    #[test]
    fn ring_keeps_newest_with_contiguous_seqs() {
        let fp = FlightPlane::new(1, RING_CAPACITY);
        let n = RING_CAPACITY as u64 + 37;
        for i in 0..n {
            fp.record(0, FlightKind::Inline, 7, i as u32);
        }
        let evs = fp.snapshot(0);
        assert_eq!(evs.len(), RING_CAPACITY);
        // Newest RING_CAPACITY events, contiguous, ending at n-1.
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.seq, n - RING_CAPACITY as u64 + i as u64);
            assert_eq!(ev.data as u64, ev.seq);
        }
        assert_eq!(fp.recorded(0), n);
    }

    #[test]
    fn custom_capacity_rings_wrap_at_their_own_size() {
        let fp = FlightPlane::new(1, 8);
        assert_eq!(fp.capacity(), 8);
        for i in 0..20 {
            fp.record(0, FlightKind::Inline, 1, i);
        }
        let evs = fp.snapshot(0);
        assert_eq!(evs.len(), 8);
        assert_eq!(evs.last().unwrap().data, 19);
        assert_eq!(fp.recorded(0), 20);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_flight_capacity_panics() {
        let _ = FlightPlane::new(1, 100);
    }

    #[test]
    fn drain_clears_but_keeps_numbering() {
        let fp = FlightPlane::new(2, RING_CAPACITY);
        fp.record(1, FlightKind::HardKill, 9, 0);
        fp.record(1, FlightKind::Fault, 9, 1);
        let first = fp.drain(1);
        assert_eq!(first.len(), 2);
        assert!(fp.snapshot(1).is_empty());
        fp.record(1, FlightKind::Inline, 9, 2);
        let second = fp.snapshot(1);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].seq, 2, "numbering continues across drain");
    }

    #[test]
    fn disabled_plane_records_nothing() {
        let fp = FlightPlane::new(1, RING_CAPACITY);
        fp.set_enabled(false);
        fp.record(0, FlightKind::Inline, 1, 1);
        assert!(fp.snapshot(0).is_empty());
        fp.set_enabled(true);
        fp.record(0, FlightKind::Inline, 1, 1);
        assert_eq!(fp.snapshot(0).len(), 1);
    }

    #[test]
    fn display_is_greppable() {
        let ev = FlightEvent::unpack(5, FlightEvent::pack(FlightKind::Parked, 0, 3, 950)).unwrap();
        let s = ev.to_string();
        assert!(s.contains("park"), "{s}");
        assert!(s.contains("ep=3"), "{s}");
    }

    /// Drain/snapshot under concurrent writers: N threads hammer one
    /// ring while a reader snapshots and drains continuously. Torn
    /// slots may be *skipped* (that's the seqlock protocol) but must
    /// never surface as garbage: every returned event carries a kind,
    /// ep, and data some writer actually packed, and seqs within one
    /// read are strictly increasing.
    #[test]
    fn concurrent_writers_never_yield_garbage() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        const WRITERS: usize = 4;
        const PER_WRITER: u32 = 50_000;
        // Each writer uses its own kind so a torn read mixing two
        // writers' words would be visible as a (kind, ep) mismatch.
        const KINDS: [FlightKind; WRITERS] =
            [FlightKind::Inline, FlightKind::Handoff, FlightKind::Parked, FlightKind::Async];

        let fp = Arc::new(FlightPlane::new(1, 1024));
        let done = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let fp = Arc::clone(&fp);
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        fp.record(0, KINDS[w], w, i);
                    }
                })
            })
            .collect();
        let reader = {
            let fp = Arc::clone(&fp);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                let mut events = 0u64;
                while !done.load(Ordering::Relaxed) || reads == 0 {
                    // Alternate snapshot and drain: both must hold the
                    // no-garbage contract mid-write.
                    let evs =
                        if reads.is_multiple_of(2) { fp.snapshot(0) } else { fp.drain(0) };
                    let mut last_seq = None;
                    for ev in &evs {
                        if let Some(prev) = last_seq {
                            assert!(ev.seq > prev, "seqs strictly increase: {evs:?}");
                        }
                        last_seq = Some(ev.seq);
                        let w = ev.ep as usize;
                        assert!(w < WRITERS, "ep from a real writer: {ev:?}");
                        assert_eq!(ev.kind, KINDS[w], "kind matches the writer: {ev:?}");
                        assert!(ev.data < PER_WRITER, "data in range: {ev:?}");
                        assert_eq!(ev.vcpu, 0);
                    }
                    reads += 1;
                    events += evs.len() as u64;
                }
                (reads, events)
            })
        };
        for h in writers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        let (reads, events) = reader.join().unwrap();
        assert!(reads > 0 && events > 0, "reader observed traffic");
        assert_eq!(fp.recorded(0), WRITERS as u64 * u64::from(PER_WRITER));
        // Quiescent ring: a final snapshot is full-capacity and clean.
        fp.record(0, FlightKind::HardKill, 0, 0);
        let last = fp.snapshot(0).pop().unwrap();
        assert_eq!(last.kind, FlightKind::HardKill);
        assert_eq!(last.seq, fp.recorded(0) - 1);
    }
}
