//! The payload plane: per-vCPU size-classed buffer pools and the vectored
//! copy engine behind [`crate::Client::call_bulk`].
//!
//! PR 1 made the *control* plane (8 words each way) lock-free and
//! shared-nothing; this module applies the same discipline to payloads.
//! Buffers are allocated 64-byte aligned in power-of-four-ish size
//! classes, pooled **per virtual processor**, and recycled without ever
//! crossing CPUs — the CD-pool discipline applied to bulk data. A pool
//! miss is a Frank slow-path event: the buffer is allocated on demand
//! (and counted), exactly like worker/CD growth.
//!
//! The copy engine (`copy_span`, `exchange_span`) chunks large
//! transfers so a 1 MiB copy never monopolizes an unbounded stretch of
//! the store pipeline between progress points, and walks aligned spans
//! eight bytes at a time when source and destination agree modulo 8.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;
use std::sync::Arc;

use crossbeam::queue::ArrayQueue;

use crate::region::RegionRegistry;
use crate::stats::{RuntimeStats, StatsCell};
use std::sync::atomic::Ordering;

/// Pool buffer alignment: one cache line, so DMA-style word copies never
/// straddle a line at the buffer head.
pub const BULK_ALIGN: usize = 64;

/// The size classes, 64 B – 1 MiB. A request takes the smallest class
/// that fits; anything larger than the top class is refused (the paper's
/// `MAX_COPY` cap).
pub const SIZE_CLASSES: [usize; 8] =
    [64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];

/// Per-class pool depth: enough to keep a ping-pong workload warm without
/// letting the big classes pin tens of megabytes per vCPU.
fn class_depth(class: usize) -> usize {
    ((4 << 20) / SIZE_CLASSES[class]).clamp(2, 64)
}

/// The class index for a request of `len` bytes, or `None` if it exceeds
/// the top class.
pub fn class_for(len: usize) -> Option<usize> {
    SIZE_CLASSES.iter().position(|c| len <= *c)
}

/// Who last held a [`PoolBuf`]'s contents — the input to the
/// cross-program scrub decision in [`PoolBuf::bind_owner`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum BufOwner {
    /// Fresh allocation, still all-zero: safe for any program as is.
    Fresh,
    /// Used outside the region machinery (e.g. as server scratch via
    /// [`PoolBuf::as_mut_slice`]): contents unknown, scrub before any
    /// region registration.
    Unbound,
    /// Last registered as a region by this program: its own leftovers,
    /// the serially-shared-stacks caveat applies within the program.
    Program(crate::ProgramId),
}

/// A pooled, 64-byte-aligned byte buffer. Dropping it outside a pool
/// frees the allocation; returning it via [`BufferPool::put`] recycles
/// it. Contents persist across recycling **within one program** (the
/// serially-shared-stacks caveat from §2 applies to payload buffers
/// too); a region registration that rebinds the buffer to a different
/// program scrubs it first, so payload bytes never leak across the
/// program boundary the grant model enforces.
pub struct PoolBuf {
    ptr: NonNull<u8>,
    class: u8,
    owner: BufOwner,
    /// Capacity override for foreign (non-owned) memory; 0 for pooled
    /// buffers, whose capacity is their class size.
    foreign_len: u32,
}

/// Class sentinel marking a [`PoolBuf`] that *borrows* foreign memory
/// (e.g. a span of a shared segment) instead of owning a heap
/// allocation: never deallocated, never pooled.
const FOREIGN_CLASS: u8 = u8::MAX;

// Safety: the buffer is a plain owned allocation.
unsafe impl Send for PoolBuf {}

impl PoolBuf {
    fn alloc(class: usize) -> PoolBuf {
        let layout = Self::layout(class);
        // Safety: layout has non-zero size. Zeroed so the buffer is fully
        // initialized from birth — `as_mut_slice` is sound, and a fresh
        // region never leaks a previous allocation's bytes.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else { handle_alloc_error(layout) };
        PoolBuf { ptr, class: class as u8, owner: BufOwner::Fresh, foreign_len: 0 }
    }

    /// Wrap `len` bytes of foreign memory (a shared-segment span) as a
    /// region backing. The buffer borrows: dropping it never
    /// deallocates, and [`BufferPool::put`] refuses to pool it. The
    /// contents are attributed to `program` up front (the segment
    /// creator zeroed the span), so registration does not scrub memory
    /// another process may already be reading.
    ///
    /// # Safety
    /// `ptr` must point to at least `len` writable bytes that outlive
    /// every region registered over this buffer (the transport keeps
    /// the segment mapped for the server's lifetime).
    pub(crate) unsafe fn foreign(
        ptr: NonNull<u8>,
        len: usize,
        program: crate::ProgramId,
    ) -> PoolBuf {
        PoolBuf {
            ptr,
            class: FOREIGN_CLASS,
            owner: BufOwner::Program(program),
            foreign_len: len as u32,
        }
    }

    /// Whether this buffer borrows foreign memory (see
    /// [`PoolBuf::foreign`]).
    pub(crate) fn is_foreign(&self) -> bool {
        self.class == FOREIGN_CLASS
    }

    /// Claim the buffer for a region owned by `program`. Recycled
    /// contents left by a *different* program (or by scratch use outside
    /// the region machinery) are zeroed — the whole capacity, not just
    /// the new region's length, because a later same-program
    /// re-registration may expose more of the buffer. Fresh allocations
    /// are already zero; same-program recycling keeps its bytes.
    pub(crate) fn bind_owner(&mut self, program: crate::ProgramId) {
        match self.owner {
            BufOwner::Fresh => {}
            BufOwner::Program(p) if p == program => {}
            _ => {
                // Safety: owned allocation of `cap()` bytes.
                unsafe { std::ptr::write_bytes(self.ptr.as_ptr(), 0, self.cap()) };
            }
        }
        self.owner = BufOwner::Program(program);
    }

    fn layout(class: usize) -> Layout {
        Layout::from_size_align(SIZE_CLASSES[class], BULK_ALIGN).expect("valid bulk layout")
    }

    /// Capacity (the class size — at least what was requested — or the
    /// foreign span length).
    pub fn cap(&self) -> usize {
        if self.class == FOREIGN_CLASS {
            self.foreign_len as usize
        } else {
            SIZE_CLASSES[self.class as usize]
        }
    }

    pub(crate) fn as_mut_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// The whole buffer as a mutable slice (servers using pooled buffers
    /// as private scratch — the bulk-copy pattern in `bulk_modes`).
    /// Marks the contents unknown: if the buffer later backs a region,
    /// `PoolBuf::bind_owner` scrubs it first.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // Whatever gets written here (possibly another program's data) is
        // not attributable to the last region owner any more.
        self.owner = BufOwner::Unbound;
        // Safety: owned, fully initialized allocation of `cap()` bytes.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.cap()) }
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        // Foreign memory is borrowed, not owned: the segment mapping
        // frees it.
        if self.class == FOREIGN_CLASS {
            return;
        }
        // Safety: allocated with the identical layout in `alloc`.
        unsafe { dealloc(self.ptr.as_ptr(), Self::layout(self.class as usize)) };
    }
}

/// One vCPU's payload-buffer pool: a lock-free queue per size class.
pub struct BufferPool {
    classes: Vec<ArrayQueue<PoolBuf>>,
}

impl BufferPool {
    /// An empty pool (buffers are created on first miss — the same lazy
    /// growth as the CD pools).
    pub fn new() -> BufferPool {
        BufferPool {
            classes: (0..SIZE_CLASSES.len()).map(|c| ArrayQueue::new(class_depth(c))).collect(),
        }
    }

    /// Take a buffer of at least `len` bytes: lock-free pop on a hit, a
    /// counted Frank slow-path allocation on a miss. `None` when `len`
    /// exceeds the top size class.
    pub fn take(&self, len: usize, cell: &StatsCell) -> Option<PoolBuf> {
        let class = class_for(len)?;
        match self.classes[class].pop() {
            Some(b) => {
                cell.bulk_pool_hits.fetch_add(1, Ordering::Relaxed);
                Some(b)
            }
            None => {
                cell.bulk_pool_misses.fetch_add(1, Ordering::Relaxed);
                cell.frank_redirects.fetch_add(1, Ordering::Relaxed);
                Some(PoolBuf::alloc(class))
            }
        }
    }

    /// Recycle a buffer (dropped — freed — when its class queue is full:
    /// surplus reclamation, as with workers and CDs).
    pub fn put(&self, buf: PoolBuf) {
        // Foreign (segment-backed) buffers are borrows: dropping them
        // releases nothing, and pooling one would hand segment memory
        // to an unrelated region after the segment unmaps.
        if buf.is_foreign() {
            return;
        }
        let _ = self.classes[buf.class as usize].push(buf);
    }

    /// Pooled buffers in `class` (diagnostics).
    pub fn idle_in_class(&self, class: usize) -> usize {
        self.classes[class].len()
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

/// Copy chunk: large transfers advance in 64 KiB steps.
const COPY_CHUNK: usize = 64 << 10;
/// Block size for the in-place exchange (stack temporary, no allocation).
const XCHG_BLOCK: usize = 512;

/// Chunked, alignment-aware copy of `len` bytes. When source and
/// destination are congruent modulo 8 the body runs eight bytes at a
/// time ([`u64`] lanes); otherwise it falls back to byte granularity.
///
/// # Safety
/// `src..src+len` must be readable, `dst..dst+len` writable, and the two
/// spans must not overlap.
pub(crate) unsafe fn copy_span(dst: *mut u8, src: *const u8, len: usize) {
    let mut off = 0;
    while off < len {
        let n = (len - off).min(COPY_CHUNK);
        let d = dst.add(off);
        let s = src.add(off);
        if (d as usize) & 7 == (s as usize) & 7 {
            // Align to the word boundary, stream words, mop up the tail.
            let head = ((8 - ((d as usize) & 7)) & 7).min(n);
            std::ptr::copy_nonoverlapping(s, d, head);
            let words = (n - head) / 8;
            std::ptr::copy_nonoverlapping(
                s.add(head).cast::<u64>(),
                d.add(head).cast::<u64>(),
                words,
            );
            let tail = head + words * 8;
            std::ptr::copy_nonoverlapping(s.add(tail), d.add(tail), n - tail);
        } else {
            std::ptr::copy_nonoverlapping(s, d, n);
        }
        off += n;
    }
}

/// Swap `len` bytes between `a` and `b` through a fixed stack block — the
/// runtime's Exchange for payloads, allocation-free so it stays legal on
/// the warm path.
///
/// # Safety
/// Both spans must be valid for read+write and must not overlap.
pub(crate) unsafe fn exchange_span(a: *mut u8, b: *mut u8, len: usize) {
    let mut tmp = [0u8; XCHG_BLOCK];
    let mut off = 0;
    while off < len {
        let n = (len - off).min(XCHG_BLOCK);
        std::ptr::copy_nonoverlapping(a.add(off), tmp.as_mut_ptr(), n);
        std::ptr::copy_nonoverlapping(b.add(off), a.add(off), n);
        std::ptr::copy_nonoverlapping(tmp.as_ptr(), b.add(off), n);
        off += n;
    }
}

/// The runtime's bulk-data state: one registry and one buffer pool per
/// virtual processor, plus the sharded stats the engine accounts to.
/// Shared into every bound entry so handlers reach it without a back
/// reference to the [`crate::Runtime`].
pub struct BulkState {
    registries: Vec<RegionRegistry>,
    pools: Vec<BufferPool>,
    pub(crate) stats: Arc<RuntimeStats>,
}

impl BulkState {
    pub(crate) fn new(n_vcpus: usize, stats: Arc<RuntimeStats>) -> Arc<BulkState> {
        Arc::new(BulkState {
            registries: (0..n_vcpus).map(|_| RegionRegistry::new()).collect(),
            pools: (0..n_vcpus).map(|_| BufferPool::new()).collect(),
            stats,
        })
    }

    /// vCPU `v`'s region registry.
    pub fn registry(&self, v: usize) -> &RegionRegistry {
        &self.registries[v]
    }

    /// vCPU `v`'s payload-buffer pool.
    pub fn pool(&self, v: usize) -> &BufferPool {
        &self.pools[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_and_align() {
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(64), Some(0));
        assert_eq!(class_for(65), Some(1));
        assert_eq!(class_for(1 << 20), Some(SIZE_CLASSES.len() - 1));
        assert_eq!(class_for((1 << 20) + 1), None);
        let cell = StatsCell::default();
        let pool = BufferPool::new();
        for len in [1usize, 64, 100, 4096, 1 << 20] {
            let b = pool.take(len, &cell).unwrap();
            assert!(b.cap() >= len);
            assert_eq!(b.as_mut_ptr() as usize % BULK_ALIGN, 0, "64-byte aligned");
            pool.put(b);
        }
        // Four class-cold takes missed; the second class-0 take (len 64,
        // after len 1 recycled its buffer) hit.
        assert_eq!(cell.bulk_pool_misses.load(Ordering::Relaxed), 4);
        assert_eq!(cell.bulk_pool_hits.load(Ordering::Relaxed), 1);
        let b = pool.take(4096, &cell).unwrap();
        assert_eq!(cell.bulk_pool_hits.load(Ordering::Relaxed), 2);
        pool.put(b);
    }

    #[test]
    fn bind_owner_scrubs_cross_program_leftovers() {
        let cell = StatsCell::default();
        let pool = BufferPool::new();
        let mut b = pool.take(256, &cell).unwrap();
        b.bind_owner(7);
        // Region-style write through the raw pointer (what a registered
        // region's fill/copy path does).
        unsafe { b.as_mut_ptr().write(42) };
        // Same-program rebind keeps the bytes (serially-shared caveat).
        b.bind_owner(7);
        assert_eq!(unsafe { b.as_mut_ptr().read() }, 42);
        // Cross-program rebind scrubs the whole capacity.
        b.bind_owner(8);
        assert_eq!(unsafe { b.as_mut_ptr().read() }, 0);
        // Scratch use leaves unattributable contents: the next region
        // bind scrubs even for the same program.
        b.as_mut_slice()[0] = 9;
        b.bind_owner(8);
        assert_eq!(unsafe { b.as_mut_ptr().read() }, 0);
    }

    #[test]
    fn copy_and_exchange_spans() {
        // Cover aligned fast lanes, misaligned fallback, and chunking.
        for (src_off, dst_off, len) in
            [(0usize, 0usize, 4096usize), (1, 1, 1000), (1, 2, 777), (0, 0, COPY_CHUNK + 123), (3, 3, 0)]
        {
            let src: Vec<u8> = (0..src_off + len).map(|i| (i * 7) as u8).collect();
            let mut dst = vec![0u8; dst_off + len];
            unsafe {
                copy_span(dst.as_mut_ptr().add(dst_off), src.as_ptr().add(src_off), len)
            };
            assert_eq!(&dst[dst_off..], &src[src_off..], "copy ({src_off},{dst_off},{len})");
        }
        let mut a: Vec<u8> = (0..2000u32).map(|i| i as u8).collect();
        let mut b: Vec<u8> = (0..2000u32).map(|i| (i * 3) as u8).collect();
        let (a0, b0) = (a.clone(), b.clone());
        unsafe { exchange_span(a.as_mut_ptr(), b.as_mut_ptr(), 2000) };
        assert_eq!(a, b0);
        assert_eq!(b, a0);
    }
}
