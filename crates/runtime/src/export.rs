//! Metrics export: Prometheus text and JSON snapshots of the counter
//! and histogram planes.
//!
//! Everything here is cold-path: an export walks [`Snapshot::fields`]
//! (generated from the `counters!` list, so new counters appear without
//! touching this module) and the merged per-kind [`Histogram`]s, and
//! renders them. No external dependency is used — the repo vendors its
//! dependency graph, so JSON is a small hand-rolled [`Json`] value type
//! with a parser, which also gives tests a real round-trip check
//! instead of string-compares.
//!
//! Two renderings:
//!
//! * [`prometheus`] — the Prometheus text exposition format: one
//!   `ppc_<counter>` counter per stats field and a classic
//!   `ppc_latency_ns` histogram per [`LatencyKind`] (cumulative
//!   `_bucket{kind,le}` series plus `_count`/`_sum`).
//! * [`json_snapshot`] — the same data as a [`Json`] object tree with
//!   per-kind percentiles precomputed, the shape the bench bins write
//!   to `BENCH_*.json`.

use std::fmt::Write as _;

use crate::obs::{Histogram, LatencyKind, ObsState, KINDS};
use crate::span::SpanRecord;
use crate::stats::Snapshot;
use crate::telemetry::{Telemetry, TickDelta, WINDOWS};

/// Version stamp carried by every JSON artifact this module (and the
/// bench reports built on it) emits. Bump it when a field is renamed,
/// re-unitted, or re-shaped; loaders compare it and **warn** on
/// mismatch instead of silently mis-parsing an old committed
/// `BENCH_*.json`.
///
/// v2: the attribution plane — `time_*_ns` / `interference_*` counters
/// (and their windowed rates), per-alert `interference_ratio`, and the
/// `ppc-blackbox` capture document.
pub const SCHEMA_VERSION: u64 = 2;

/// `schema_version` of a parsed JSON artifact (`None` when the document
/// predates the stamp).
pub fn schema_version_of(doc: &Json) -> Option<u64> {
    doc.get("schema_version").and_then(Json::as_u64)
}

/// Warn (once per call, on stderr) when a loaded artifact's schema
/// version differs from ours. Returns `true` when versions agree.
pub fn check_schema_version(doc: &Json, what: &str) -> bool {
    match schema_version_of(doc) {
        Some(v) if v == SCHEMA_VERSION => true,
        Some(v) => {
            eprintln!(
                "warning: {what}: schema_version {v} != current {SCHEMA_VERSION}; \
                 fields may have moved — consider regenerating the artifact"
            );
            false
        }
        None => {
            eprintln!(
                "warning: {what}: no schema_version (pre-v{SCHEMA_VERSION} artifact); \
                 consider regenerating"
            );
            false
        }
    }
}

// ---------------------------------------------------------------------
// Json value type
// ---------------------------------------------------------------------

/// A JSON value. Numbers are `f64` (counter magnitudes in practice stay
/// far below the 2⁵³ integer-exactness limit; the writer renders
/// integral values without a decimal point). Object key order is
/// preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { pos, what: "trailing garbage" });
        }
        Ok(value)
    }
}

/// Parse failure: byte offset and a static description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub what: &'static str,
}

/// Serialization (`json.to_string()`). Integral numbers render without
/// a fraction (`3`, not `3.0`) so counters stay readable.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.what)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError { pos: *pos, what: "unexpected token" })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError { pos: *pos, what: "unexpected end of input" }),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError { pos: *pos, what: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(JsonError { pos: *pos, what: "expected ',' or '}'" }),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError { pos: *pos, what: "expected string" });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError { pos: *pos, what: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError { pos: *pos, what: "bad \\u escape" })?;
                        // Surrogate pairs are out of scope for metrics
                        // payloads; map them to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError { pos: *pos, what: "bad escape" }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so this is
                // always on a char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError { pos: *pos, what: "invalid utf-8" })?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or(JsonError { pos: start, what: "bad number" })
}

// ---------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------

/// The quantiles every export reports.
pub const QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// Render the counter + histogram planes in Prometheus text exposition
/// format. Counters become `ppc_<name>` counter series; each
/// [`LatencyKind`] with samples becomes a `kind`-labelled cumulative
/// `ppc_latency_ns` histogram. Latencies are in nanoseconds (sampled —
/// see [`ObsState`]; counts are of sampled recordings, not raw calls).
pub fn prometheus(snap: &Snapshot, obs: &ObsState) -> String {
    let mut out = String::new();
    for (name, value) in snap.fields() {
        let _ = writeln!(out, "# TYPE ppc_{name} counter");
        let _ = writeln!(out, "ppc_{name} {value}");
    }
    // The attribution plane's labelled view: the same `time_*_ns`
    // accumulators re-emitted as one `ppc_time_ns{state=}` family, so
    // dashboards can stack the states without knowing the counter
    // names. (The parser skips this family — it is derived.)
    let _ = writeln!(out, "# TYPE ppc_time_ns counter");
    for (_, name, label) in crate::stats::TIME_STATES {
        let _ = writeln!(
            out,
            "ppc_time_ns{{state=\"{label}\"}} {}",
            snap.field(name).unwrap_or(0)
        );
    }
    let hists: Vec<(LatencyKind, Histogram)> =
        KINDS.iter().map(|&k| (k, obs.merged(k))).collect();
    if hists.iter().any(|(_, h)| h.count() > 0) {
        let _ = writeln!(out, "# TYPE ppc_latency_ns histogram");
        for (kind, h) in &hists {
            if h.count() == 0 {
                continue;
            }
            let kind = kind.label();
            let mut cumulative = 0u64;
            for (bound, bucket_count) in h.bucket_entries() {
                if bucket_count == 0 {
                    continue;
                }
                cumulative += bucket_count;
                let _ = writeln!(
                    out,
                    "ppc_latency_ns_bucket{{kind=\"{kind}\",le=\"{bound}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "ppc_latency_ns_bucket{{kind=\"{kind}\",le=\"+Inf\"}} {cumulative}"
            );
            let _ = writeln!(out, "ppc_latency_ns_count{{kind=\"{kind}\"}} {}", h.count());
            let _ = writeln!(out, "ppc_latency_ns_sum{{kind=\"{kind}\"}} {}", h.sum_ns);
            let _ = writeln!(out, "ppc_latency_ns_max{{kind=\"{kind}\"}} {}", h.max_ns);
        }
    }
    out
}

/// Render the telemetry plane's windowed rates in Prometheus text
/// exposition format: one `ppc_rate_<counter>` gauge per counter, with
/// a sample per [`WINDOWS`] entry (`{window="1s"}` etc.), in events per
/// second. Appended to [`prometheus`] output by
/// [`crate::Runtime::export_prometheus`] when the sampler is running.
pub fn prometheus_rates(tel: &Telemetry) -> String {
    let windows: Vec<(&str, crate::telemetry::WindowStats)> =
        WINDOWS.iter().map(|&(label, dur)| (label, tel.window(dur))).collect();
    let mut out = String::new();
    for &name in Snapshot::field_names() {
        let _ = writeln!(out, "# TYPE ppc_rate_{name} gauge");
        for (label, w) in &windows {
            let _ = writeln!(
                out,
                "ppc_rate_{name}{{window=\"{label}\"}} {:.6}",
                w.rate(name)
            );
        }
    }
    out
}

/// Render the transport gauges: which transport the runtime is serving
/// (`0` in-process only, `1` cross-process segment) and, while a
/// segment is mapped, its size, bulk/staging high-water offset, and
/// claimed-client count. Appended by
/// [`crate::Runtime::export_prometheus`].
pub fn prometheus_transport(x: Option<&crate::xproc::XprocStats>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE ppc_transport_xproc gauge");
    let _ = writeln!(out, "ppc_transport_xproc {}", u8::from(x.is_some()));
    if let Some(x) = x {
        let _ = writeln!(out, "# TYPE ppc_segment_bytes gauge");
        let _ = writeln!(out, "ppc_segment_bytes {}", x.segment_bytes);
        let _ = writeln!(out, "# TYPE ppc_segment_high_water_bytes gauge");
        let _ = writeln!(out, "ppc_segment_high_water_bytes {}", x.high_water);
        let _ = writeln!(out, "# TYPE ppc_segment_clients gauge");
        let _ = writeln!(out, "ppc_segment_clients {}", x.clients);
    }
    out
}

/// The `"transport"` member of [`crate::Runtime::export_json`]:
/// `{"mode": "in-process"}` for a purely local runtime, or the serving
/// segment's mode and stats.
pub fn transport_json(x: Option<&crate::xproc::XprocStats>) -> Json {
    match x {
        None => Json::obj([("mode", Json::Str("in-process".into()))]),
        Some(x) => Json::obj([
            ("mode", Json::Str(x.mode.into())),
            ("segment_bytes", Json::Num(x.segment_bytes as f64)),
            ("segment_high_water_bytes", Json::Num(x.high_water as f64)),
            ("segment_clients", Json::Num(f64::from(x.clients))),
        ]),
    }
}

/// A parsed Prometheus exposition: the `ppc_` counters, the
/// de-cumulated per-kind latency histograms, and the `ppc_rate_*`
/// windowed gauges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PromSnapshot {
    /// `(counter name, value)`, in exposition order, `ppc_` stripped.
    pub counters: Vec<(String, u64)>,
    /// `(kind label, histogram)` reconstructed from the cumulative
    /// `_bucket` series plus `_sum`/`_max`.
    pub latency: Vec<(String, Histogram)>,
    /// `(counter name, window label, events/s)` from the `ppc_rate_*`
    /// gauges, in exposition order.
    pub rates: Vec<(String, String, f64)>,
}

impl PromSnapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The reconstructed histogram for `kind`, if present.
    pub fn hist(&self, kind: &str) -> Option<&Histogram> {
        self.latency.iter().find(|(k, _)| k == kind).map(|(_, h)| h)
    }

    /// The windowed rate of counter `name` over `window` (label as in
    /// [`WINDOWS`]), if present.
    pub fn rate(&self, name: &str, window: &str) -> Option<f64> {
        self.rates
            .iter()
            .find(|(n, w, _)| n == name && w == window)
            .map(|&(_, _, v)| v)
    }
}

/// One `key="value"` lookup in a Prometheus label body.
fn label_value<'a>(labels: &'a str, key: &str) -> Option<&'a str> {
    let start = labels.find(&format!("{key}=\""))? + key.len() + 2;
    let rest = &labels[start..];
    Some(&rest[..rest.find('"')?])
}

/// Parse [`prometheus`] output back into counters and histograms — the
/// round-trip check that keeps the exporter honest. The cumulative
/// `_bucket{le}` series is de-cumulated back into per-bucket counts
/// (exact: the exporter emits ascending `le`, and a skipped bucket is a
/// zero bucket); `_count` is validated against the bucket sum.
pub fn parse_prometheus(text: &str) -> Result<PromSnapshot, String> {
    fn hist_entry<'a>(
        latency: &'a mut Vec<(String, Histogram)>,
        kind: &str,
    ) -> &'a mut Histogram {
        if let Some(i) = latency.iter().position(|(k, _)| k == kind) {
            return &mut latency[i].1;
        }
        latency.push((kind.to_string(), Histogram::new()));
        &mut latency.last_mut().unwrap().1
    }
    let mut out = PromSnapshot::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) =
            line.rsplit_once(' ').ok_or_else(|| format!("no value in line: {line}"))?;
        // The `ppc_rate_` family must be matched before the generic
        // `ppc_` counter branch (same prefix, float-valued, labelled).
        if let Some(rest) = name_part.strip_prefix("ppc_rate_") {
            let (name, labels) = rest
                .split_once('{')
                .ok_or_else(|| format!("rate series without labels: {line}"))?;
            let labels = labels
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated labels: {line}"))?;
            let window = label_value(labels, "window")
                .ok_or_else(|| format!("no window label: {line}"))?;
            let value: f64 =
                value_part.parse().map_err(|_| format!("bad rate value: {line}"))?;
            out.rates.push((name.to_string(), window.to_string(), value));
        } else if let Some(rest) = name_part.strip_prefix("ppc_latency_ns_") {
            let (series, labels) = rest
                .split_once('{')
                .ok_or_else(|| format!("latency series without labels: {line}"))?;
            let labels = labels
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated labels: {line}"))?;
            let kind =
                label_value(labels, "kind").ok_or_else(|| format!("no kind label: {line}"))?;
            let value: u64 = value_part
                .parse()
                .map_err(|_| format!("bad latency value: {line}"))?;
            let h = hist_entry(&mut out.latency, kind);
            match series {
                "bucket" => {
                    let le = label_value(labels, "le")
                        .ok_or_else(|| format!("bucket without le: {line}"))?;
                    if le == "+Inf" {
                        continue; // the total; `_count` validates it below
                    }
                    let le: u64 =
                        le.parse().map_err(|_| format!("bad le bound: {line}"))?;
                    let seen: u64 = h.buckets.iter().sum();
                    h.buckets[crate::obs::bucket_of(le)] = value
                        .checked_sub(seen)
                        .ok_or_else(|| format!("non-monotonic cumulative bucket: {line}"))?;
                }
                "count" => {
                    if h.count() != value {
                        return Err(format!(
                            "count {} disagrees with bucket sum {}: {line}",
                            value,
                            h.count()
                        ));
                    }
                }
                "sum" => h.sum_ns = value,
                "max" => h.max_ns = value,
                other => return Err(format!("unknown latency series {other}: {line}")),
            }
        } else if name_part.starts_with("ppc_time_ns{") {
            // Derived view: the same values as the `ppc_time_*_ns`
            // counters parsed by the generic branch — skip the
            // duplicate.
            continue;
        } else if let Some(name) = name_part.strip_prefix("ppc_") {
            let value: u64 =
                value_part.parse().map_err(|_| format!("bad counter value: {line}"))?;
            out.counters.push((name.to_string(), value));
        } else {
            return Err(format!("unknown metric family: {line}"));
        }
    }
    Ok(out)
}

/// One histogram as a JSON object: sample count, p50/p90/p99/p999/max
/// in nanoseconds, and the non-empty log₂ buckets as `[le, count]`
/// pairs.
pub fn histogram_json(h: &Histogram) -> Json {
    let mut fields: Vec<(String, Json)> =
        vec![("count".into(), Json::Num(h.count() as f64))];
    for (name, q) in QUANTILES {
        fields.push((name.into(), Json::Num(h.quantile(q) as f64)));
    }
    fields.push(("max".into(), Json::Num(h.max_ns as f64)));
    fields.push(("sum".into(), Json::Num(h.sum_ns as f64)));
    fields.push((
        "buckets".into(),
        Json::Arr(
            h.bucket_entries()
                .filter(|&(_, n)| n > 0)
                .map(|(le, n)| Json::Arr(vec![Json::Num(le as f64), Json::Num(n as f64)]))
                .collect(),
        ),
    ));
    Json::Obj(fields)
}

/// One [`Snapshot`]'s counters as a JSON object (name → value, driven
/// by [`Snapshot::fields`] so a new counter appears automatically).
pub fn counters_json(snap: &Snapshot) -> Json {
    Json::Obj(
        snap.fields()
            .into_iter()
            .map(|(name, value)| (name.to_string(), Json::Num(value as f64)))
            .collect(),
    )
}

/// Render the counter + histogram planes as one JSON object:
/// `{"schema_version": N, "counters": {...}, "latency_ns":
/// {"call": {...}, ...}}`. Kinds with no samples are omitted from
/// `latency_ns`.
pub fn json_snapshot(snap: &Snapshot, obs: &ObsState) -> Json {
    let latency = Json::Obj(
        KINDS
            .iter()
            .map(|&k| (k, obs.merged(k)))
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| (k.label().to_string(), histogram_json(&h)))
            .collect(),
    );
    Json::obj([
        ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
        ("counters", counters_json(snap)),
        ("latency_ns", latency),
    ])
}

/// One [`TickDelta`] as JSON: the tick's identity, its counter deltas
/// (aggregate and per-vCPU), and the non-empty per-kind histogram
/// deltas. (Per-vCPU call histograms stay out of the document — the
/// per-vCPU view consumers want is the *windowed* one in
/// [`telemetry_json`], not per-tick buckets.)
fn tick_json(t: &TickDelta) -> Json {
    let latency = Json::Obj(
        KINDS
            .iter()
            .zip(t.hists.iter())
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| (k.label().to_string(), histogram_json(h)))
            .collect(),
    );
    Json::obj([
        ("seq", Json::Num(t.seq as f64)),
        ("at_ns", Json::Num(t.at_ns as f64)),
        ("dt_ns", Json::Num(t.dt_ns as f64)),
        ("counters", counters_json(&t.counters)),
        ("latency_ns", latency),
        ("per_vcpu", Json::Arr(t.per_vcpu.iter().map(counters_json).collect())),
    ])
}

/// The raw telemetry ring (the `/series` endpoint): every retained
/// [`TickDelta`], oldest first.
pub fn series_json(ticks: &[TickDelta]) -> Json {
    Json::obj([
        ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
        ("ticks", Json::Arr(ticks.iter().map(tick_json).collect())),
    ])
}

/// One window's merged stats as JSON: width, per-counter rates
/// (events/s), per-kind windowed quantiles, and the per-vCPU view
/// (counter deltas + call-latency quantiles) — the shape `ppc-top`
/// renders.
fn window_json(w: &crate::telemetry::WindowStats) -> Json {
    let rates = Json::Obj(
        w.counters
            .fields()
            .into_iter()
            .map(|(name, _)| (name.to_string(), Json::Num(w.rate(name))))
            .collect(),
    );
    let latency = Json::Obj(
        KINDS
            .iter()
            .zip(w.hists.iter())
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| (k.label().to_string(), histogram_json(h)))
            .collect(),
    );
    let per_vcpu = Json::Arr(
        w.per_vcpu
            .iter()
            .zip(w.vcpu_call.iter())
            .map(|(snap, call)| {
                Json::obj([
                    ("counters", counters_json(snap)),
                    ("call_ns", histogram_json(call)),
                ])
            })
            .collect(),
    );
    Json::obj([
        ("dt_ns", Json::Num(w.dt_ns as f64)),
        ("ticks", Json::Num(w.ticks as f64)),
        ("rates", rates),
        ("latency_ns", latency),
        ("per_vcpu", per_vcpu),
    ])
}

/// The live telemetry document (merged into the `/json` endpoint under
/// `"telemetry"`): sampler identity, every [`WINDOWS`] entry rendered
/// as its window object — wall-window rates and quantiles, per-vCPU —
/// and the SLO watchdog's alert states.
pub fn telemetry_json(tel: &Telemetry) -> Json {
    let windows = Json::Obj(
        WINDOWS
            .iter()
            .map(|&(label, dur)| (label.to_string(), window_json(&tel.window(dur))))
            .collect(),
    );
    let alerts = Json::Arr(
        tel.alerts()
            .iter()
            .map(|a| {
                Json::obj([
                    ("name", Json::Str(a.rule.name.into())),
                    ("metric", Json::Str(format!("{:?}", a.rule.metric))),
                    ("window_ms", Json::Num(a.rule.window.as_millis() as f64)),
                    ("threshold", Json::Num(a.rule.threshold)),
                    ("burn_factor", Json::Num(a.rule.burn_factor)),
                    ("firing", Json::Bool(a.firing)),
                    ("fired", Json::Num(a.fired as f64)),
                    ("measured_slow", Json::Num(a.measured_slow)),
                    ("measured_fast", Json::Num(a.measured_fast)),
                    ("firing_ticks", Json::Num(a.firing_ticks as f64)),
                    ("interference_ratio", Json::Num(a.interference_ratio)),
                ])
            })
            .collect(),
    );
    let interference = Json::Obj(
        WINDOWS
            .iter()
            .map(|&(label, dur)| {
                (label.to_string(), Json::Num(tel.interference_ratio(dur)))
            })
            .collect(),
    );
    Json::obj([
        ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
        ("tick_ms", Json::Num(tel.tick().as_secs_f64() * 1e3)),
        ("ticks", Json::Num(tel.ticks() as f64)),
        ("depth", Json::Num(tel.depth() as f64)),
        ("windows", windows),
        ("alerts", alerts),
        ("interference", interference),
    ])
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

/// Render span records as a Chrome trace-event JSON document — the
/// format `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
/// load directly. Each span becomes a `"B"`/`"E"` (begin/end) pair:
///
/// * `pid` is `vcpu + 1` (Perfetto groups tracks by process, pid 0 is
///   reserved), so each vCPU renders as its own process lane.
/// * `tid` is `depth * 2` for client-side phases and `depth * 2 + 1`
///   for server-side ones ([`crate::span::SpanPhase::server_side`]), so a call and
///   the handler it dispatched occupy adjacent tracks instead of
///   fighting over one.
/// * `ts` is microseconds (the format's unit) as `f64`, carrying
///   nanosecond precision in the fraction.
/// * `args` carries the causal identity: trace id, span id, parent
///   span id, depth, entry point, vcpu.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    struct Ev {
        ts_ns: u64,
        rank: u32, // orders B before E at equal timestamps
        json: Json,
    }
    let mut events: Vec<Ev> = Vec::with_capacity(records.len() * 2);
    for r in records {
        let phase = r.phase;
        let tid = u64::from(r.depth) * 2 + u64::from(phase.server_side());
        let common = |ph: &str, ts_ns: u64| {
            Json::obj([
                ("name", Json::Str(phase.label().into())),
                ("cat", Json::Str("ppc".into())),
                ("ph", Json::Str(ph.into())),
                ("pid", Json::Num(f64::from(r.vcpu) + 1.0)),
                ("tid", Json::Num(tid as f64)),
                ("ts", Json::Num(ts_ns as f64 / 1000.0)),
                (
                    "args",
                    Json::obj([
                        ("trace", Json::Num(f64::from(r.trace_id))),
                        ("span", Json::Num(f64::from(r.span_id))),
                        ("parent", Json::Num(f64::from(r.parent_id))),
                        ("depth", Json::Num(f64::from(r.depth))),
                        ("ep", Json::Num(f64::from(r.ep))),
                        ("vcpu", Json::Num(f64::from(r.vcpu))),
                    ]),
                ),
            ])
        };
        events.push(Ev {
            ts_ns: r.start_ns,
            rank: u32::from(r.depth),
            json: common("B", r.start_ns),
        });
        events.push(Ev {
            ts_ns: r.start_ns + r.dur_ns,
            rank: 256 + (255 - u32::from(r.depth)),
            json: common("E", r.start_ns + r.dur_ns),
        });
    }
    events.sort_by_key(|e| (e.ts_ns, e.rank));
    Json::obj([
        ("displayTimeUnit", Json::Str("ns".into())),
        ("traceEvents", Json::Arr(events.into_iter().map(|e| e.json).collect())),
    ])
    .to_string()
}

/// A span reconstructed from a Chrome trace-event document: one matched
/// `"B"`/`"E"` pair.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Phase label (`"call"`, `"handler"`, ...).
    pub name: String,
    pub trace_id: u32,
    pub span_id: u16,
    pub parent_id: u16,
    pub depth: u8,
    pub ep: u16,
    pub vcpu: u8,
    /// Begin timestamp in microseconds (the document's `ts` unit).
    pub start_us: f64,
    /// `E.ts - B.ts`, microseconds.
    pub dur_us: f64,
}

impl TraceSpan {
    /// Root spans have no parent.
    pub fn is_root(&self) -> bool {
        self.parent_id == 0
    }
}

/// Load a [`chrome_trace`] document back into spans, matching each
/// `"B"` to its `"E"` by `(trace, span)` identity from `args`. Errors
/// on malformed JSON, a missing field, an `"E"` with no open `"B"`, or
/// a `"B"` never closed — the strictness is the point: this is the
/// round-trip check the exporter is tested against. Returned spans are
/// sorted by `(start_us, depth)`.
pub fn load_chrome_trace(text: &str) -> Result<Vec<TraceSpan>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents array")?;
    fn arg(ev: &Json, key: &str) -> Result<u64, String> {
        ev.get("args")
            .and_then(|a| a.get(key))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event missing args.{key}"))
    }
    let mut open: std::collections::HashMap<(u64, u64), TraceSpan> =
        std::collections::HashMap::new();
    let mut out = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).ok_or("event missing ph")?;
        let key = (arg(ev, "trace")?, arg(ev, "span")?);
        let ts = ev.get("ts").and_then(Json::as_f64).ok_or("event missing ts")?;
        match ph {
            "B" => {
                let span = TraceSpan {
                    name: ev
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("event missing name")?
                        .to_string(),
                    trace_id: key.0 as u32,
                    span_id: key.1 as u16,
                    parent_id: arg(ev, "parent")? as u16,
                    depth: arg(ev, "depth")? as u8,
                    ep: arg(ev, "ep")? as u16,
                    vcpu: arg(ev, "vcpu")? as u8,
                    start_us: ts,
                    dur_us: 0.0,
                };
                if open.insert(key, span).is_some() {
                    return Err(format!("duplicate open span {key:?}"));
                }
            }
            "E" => {
                let mut span = open
                    .remove(&key)
                    .ok_or_else(|| format!("end without begin for span {key:?}"))?;
                span.dur_us = ts - span.start_us;
                out.push(span);
            }
            other => return Err(format!("unexpected event phase {other:?}")),
        }
    }
    if let Some(key) = open.keys().next() {
        return Err(format!("begin without end for span {key:?}"));
    }
    out.sort_by(|a, b| {
        a.start_us
            .total_cmp(&b.start_us)
            .then(a.depth.cmp(&b.depth))
            .then(a.span_id.cmp(&b.span_id))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "obs")]
    use crate::span::SpanPhase;

    #[test]
    fn json_roundtrip_preserves_structure() {
        let doc = Json::obj([
            ("name", Json::Str("rt_modes \"smoke\"\n".into())),
            ("n", Json::Num(12345.0)),
            ("frac", Json::Num(0.125)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Str("µs".into())]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back, doc);
        assert_eq!(back.get("n").unwrap().as_u64(), Some(12345));
        assert_eq!(back.get("arr").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn json_integers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse(" {\"a\" : [ 1 , 2 ] } ").is_ok());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let obs = ObsState::new(2);
        obs.set_enabled(true);
        obs.set_sample_shift(0);
        let snap = Snapshot { calls: 7, inline_calls: 7, ..Default::default() };
        for ns in [100, 200, 5_000] {
            obs.record(LatencyKind::Call, 0, ns);
        }
        let text = prometheus(&snap, &obs);
        assert!(text.contains("# TYPE ppc_calls counter"), "{text}");
        assert!(text.contains("ppc_calls 7"), "{text}");
        assert!(text.contains("ppc_inline_calls 7"), "{text}");
        if cfg!(feature = "obs") {
            assert!(
                text.contains("ppc_latency_ns_bucket{kind=\"call\",le=\"+Inf\"} 3"),
                "{text}"
            );
            assert!(text.contains("ppc_latency_ns_count{kind=\"call\"} 3"), "{text}");
            assert!(text.contains("ppc_latency_ns_sum{kind=\"call\"} 5300"), "{text}");
        }
    }

    #[test]
    fn json_snapshot_has_percentiles() {
        let obs = ObsState::new(1);
        obs.set_enabled(true);
        obs.set_sample_shift(0);
        for _ in 0..99 {
            obs.record(LatencyKind::Handler, 0, 1_000);
        }
        obs.record(LatencyKind::Handler, 0, 1_000_000);
        let snap = Snapshot::default();
        let doc = json_snapshot(&snap, &obs);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert!(back.get("counters").unwrap().get("calls").is_some());
        if cfg!(feature = "obs") {
            let handler = back.get("latency_ns").unwrap().get("handler").unwrap();
            assert_eq!(handler.get("count").unwrap().as_u64(), Some(100));
            // 99 samples of 1 000 ns live in the [512, 1023] bucket;
            // interpolation places p50 inside it rather than at the
            // bound.
            let p50 = handler.get("p50").unwrap().as_u64().unwrap();
            assert!((512..1_024).contains(&p50), "p50={p50}");
            let p999 = handler.get("p999").unwrap().as_u64().unwrap();
            assert!(p999 > 512_000, "p999={p999} should reach the outlier bucket");
            assert_eq!(handler.get("max").unwrap().as_u64(), Some(1_000_000));
        } else {
            assert_eq!(back.get("latency_ns").unwrap(), &Json::Obj(vec![]));
        }
    }

    #[test]
    fn prometheus_roundtrips_through_parser() {
        let obs = ObsState::new(2);
        obs.set_enabled(true);
        obs.set_sample_shift(0);
        let snap = Snapshot { calls: 9, handoff_calls: 2, ..Default::default() };
        for ns in [1, 100, 100, 5_000, 1 << 30] {
            obs.record(LatencyKind::Call, 0, ns);
        }
        for ns in [250, 800] {
            obs.record(LatencyKind::Handler, 1, ns);
        }
        let text = prometheus(&snap, &obs);
        let back = parse_prometheus(&text).expect("parse exposition");
        assert_eq!(back.counter("calls"), Some(9));
        assert_eq!(back.counter("handoff_calls"), Some(2));
        if cfg!(feature = "obs") {
            let call = back.hist("call").expect("call histogram");
            assert_eq!(*call, obs.merged(LatencyKind::Call));
            let handler = back.hist("handler").expect("handler histogram");
            assert_eq!(*handler, obs.merged(LatencyKind::Handler));
        } else {
            assert!(back.latency.is_empty());
        }
    }

    #[test]
    fn prometheus_parser_rejects_malformed_input() {
        assert!(parse_prometheus("ppc_calls").is_err(), "no value");
        assert!(parse_prometheus("other_metric 3").is_err(), "foreign family");
        assert!(parse_prometheus("ppc_latency_ns_bucket{le=\"3\"} 1").is_err(), "no kind");
        assert!(
            parse_prometheus(
                "ppc_latency_ns_bucket{kind=\"call\",le=\"3\"} 5\n\
                 ppc_latency_ns_bucket{kind=\"call\",le=\"7\"} 2\n"
            )
            .is_err(),
            "non-monotonic cumulative counts"
        );
        assert!(parse_prometheus("# HELP whatever\nppc_calls 3\n").is_ok());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn chrome_trace_roundtrips_through_loader() {
        use crate::span::SpanRecord;
        let records = vec![
            SpanRecord {
                seq: 1,
                trace_id: 7,
                span_id: 1,
                parent_id: 0,
                phase: SpanPhase::Call,
                depth: 0,
                vcpu: 0,
                ep: 3,
                start_ns: 1_000,
                dur_ns: 9_000,
            },
            SpanRecord {
                seq: 1,
                trace_id: 7,
                span_id: 2,
                parent_id: 1,
                phase: SpanPhase::Handler,
                depth: 1,
                vcpu: 0,
                ep: 3,
                start_ns: 2_000,
                dur_ns: 6_000,
            },
            SpanRecord {
                seq: 1,
                trace_id: 7,
                span_id: 3,
                parent_id: 2,
                phase: SpanPhase::Frank,
                depth: 2,
                vcpu: 0,
                ep: 3,
                start_ns: 3_000,
                dur_ns: 0,
            },
        ];
        let text = chrome_trace(&records);
        let doc = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("traceEvents").unwrap().as_arr().unwrap().len(),
            records.len() * 2,
            "one B and one E per span"
        );
        let spans = load_chrome_trace(&text).expect("round-trip");
        assert_eq!(spans.len(), records.len());
        for (got, want) in spans.iter().zip(&records) {
            assert_eq!(got.trace_id, want.trace_id);
            assert_eq!(got.span_id, want.span_id);
            assert_eq!(got.parent_id, want.parent_id);
            assert_eq!(got.depth, want.depth);
            assert_eq!(got.name, want.phase.label());
            let dur_ns = (got.dur_us * 1000.0).round() as u64;
            assert_eq!(dur_ns, want.dur_ns);
        }
        assert!(spans[0].is_root());
        assert!(!spans[1].is_root());
    }

    #[test]
    fn chrome_trace_loader_rejects_unpaired_events() {
        let text = chrome_trace(&[]);
        assert!(load_chrome_trace(&text).unwrap().is_empty());
        let orphan_end = r#"{"traceEvents":[{"name":"call","ph":"E","ts":1,
            "args":{"trace":1,"span":1,"parent":0,"depth":0,"ep":0,"vcpu":0}}]}"#;
        assert!(load_chrome_trace(orphan_end).is_err());
        let orphan_begin = r#"{"traceEvents":[{"name":"call","ph":"B","ts":1,
            "args":{"trace":1,"span":1,"parent":0,"depth":0,"ep":0,"vcpu":0}}]}"#;
        assert!(load_chrome_trace(orphan_begin).is_err());
    }
}
