//! The name service (§4.5.5), user-level edition.
//!
//! As in the paper, naming is separate from authentication: entry points
//! are small integers, and the name table simply maps strings to them.
//! Registration is a cold path; the table lives inside Frank (the
//! single owner of cold-path registry state — reclaim drops a dead
//! entry's automatic registration with the entry itself) and lookup
//! results should be cached by clients, as the paper's clients do — "a
//! client obtains the server's entry point ID from the Name Server, and
//! uses the ID as an argument on subsequent PPC operations".

use crate::{EntryId, Runtime};

impl Runtime {
    /// Register `name -> ep` (also done automatically by `bind` when the
    /// service was bound with a non-empty name). Returns any previous
    /// binding.
    pub fn ns_register(&self, name: &str, ep: EntryId) -> Option<EntryId> {
        self.frank.inner.lock().names.insert(name.to_string(), ep)
    }

    /// Resolve `name`.
    pub fn ns_lookup(&self, name: &str) -> Option<EntryId> {
        self.frank.inner.lock().names.get(name).copied()
    }

    /// Remove `name`, returning its binding.
    pub fn ns_unregister(&self, name: &str) -> Option<EntryId> {
        self.frank.inner.lock().names.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use crate::entry::EntryOptions;
    use crate::Runtime;
    use std::sync::Arc;

    #[test]
    fn bind_registers_name() {
        let rt = Runtime::new(1);
        let ep = rt.bind("svc", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
        assert_eq!(rt.ns_lookup("svc"), Some(ep));
        assert_eq!(rt.ns_unregister("svc"), Some(ep));
        assert_eq!(rt.ns_lookup("svc"), None);
    }

    #[test]
    fn manual_registration() {
        let rt = Runtime::new(1);
        assert_eq!(rt.ns_register("a", 7), None);
        assert_eq!(rt.ns_register("a", 9), Some(7));
        assert_eq!(rt.ns_lookup("a"), Some(9));
    }
}
