//! Causal call tracing: span propagation across PPC chains.
//!
//! The histogram plane ([`crate::obs`]) reports marginal distributions —
//! it can say rendezvous waits are slow *in aggregate*, never why *this*
//! p99 call was slow. The tracing plane answers that: every sampled root
//! call mints a 64-bit **trace context** (trace id + parent span + depth)
//! that rides the call through inline dispatch, the hand-off rendezvous,
//! nested calls made from inside handlers, Frank grow events, and bulk
//! copies, leaving packed **span records** (begin/end + phase tag) in
//! per-vCPU rings that mirror the flight recorder's slot protocol.
//!
//! The discipline matches the rest of the observability plane:
//!
//! * **Compile-out** — every field and store is gated on the `obs`
//!   feature; built with `--no-default-features` the public API remains
//!   but folds to nothing (no new branches on the fast path).
//! * **Sampling** — a root span is only minted on calls already chosen
//!   by [`crate::ObsState::try_sample`], so the unsampled common case
//!   pays one thread-local read and a branch. Once a trace is live,
//!   every span *within* it records (causal completeness: a sampled
//!   trace with holes cannot attribute its own tail).
//! * **Allocation-free recording** — span records go into fixed
//!   per-vCPU rings (five words per slot, claimed with a `Relaxed`
//!   cursor `fetch_add`, published with `Release` — readers skip torn
//!   slots exactly like the flight recorder). Exemplar promotion reuses
//!   preallocated buffers.
//!
//! **Propagation** is thread-local: whoever begins an *enclosing* span
//! (the root call span, a handler span) installs its context into a
//! thread-local cell and restores the previous value at end, so nested
//! `Client::call`s from inside a handler parent naturally. Across the
//! hand-off the context travels in a word on the [`crate::slot::CallSlot`]
//! (written before the mailbox publish, read by the worker after the
//! mailbox acquire — the existing edges order it for free).
//!
//! **Tail exemplars**: when a completed root span's duration exceeds
//! [`EXEMPLAR_FACTOR`] × the entry point's EWMA latency, the whole span
//! tree is copied from the rings into a small per-vCPU exemplar buffer
//! with a per-phase time breakdown — `Runtime::diagnostics()` prints
//! "slowest recent calls and where the time went".

use std::sync::atomic::AtomicU64;
#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU32, Ordering};
#[cfg(feature = "obs")]
use std::time::Instant;

#[cfg(feature = "obs")]
use parking_lot::Mutex;

use crate::EntryId;

/// Default span-ring slots per vCPU (power of two; ~40 KB per vCPU).
/// Override with `RuntimeOptions::trace_capacity`.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// Tail exemplars retained per vCPU.
pub const EXEMPLAR_CAPACITY: usize = 4;

/// Spans retained per exemplar (a deeper tree is truncated, flagged).
pub const EXEMPLAR_SPANS: usize = 32;

/// Promotion threshold: a root span slower than this factor times the
/// entry's EWMA latency becomes an exemplar.
pub const EXEMPLAR_FACTOR: u64 = 2;

/// What a span covers — the phase tag in the packed record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanPhase {
    /// Synchronous root or nested call, end to end (dispatch → return).
    Call = 1,
    /// Client-side rendezvous wait (post → `DONE` observed).
    Rendezvous = 2,
    /// Handler execution (worker-side or inline).
    Handler = 3,
    /// Bulk copy engine transfer.
    BulkCopy = 4,
    /// Frank slow path fired inside the call (instant span, duration 0).
    Frank = 5,
    /// Asynchronous call, dispatch to completion-observed.
    Async = 6,
    /// Ring-submitted call, SQE accepted to completion reaped.
    Ring = 7,
}

/// All phases, in discriminant order (exporter iteration surface).
pub const PHASES: [SpanPhase; 7] = [
    SpanPhase::Call,
    SpanPhase::Rendezvous,
    SpanPhase::Handler,
    SpanPhase::BulkCopy,
    SpanPhase::Frank,
    SpanPhase::Async,
    SpanPhase::Ring,
];

/// Slots in a per-phase accumulation array indexed by discriminant
/// (index 0 unused).
pub const NPHASES: usize = 8;

impl SpanPhase {
    /// Decode a phase byte; `None` for an invalid value.
    pub fn from_u8(v: u8) -> Option<SpanPhase> {
        Some(match v {
            1 => SpanPhase::Call,
            2 => SpanPhase::Rendezvous,
            3 => SpanPhase::Handler,
            4 => SpanPhase::BulkCopy,
            5 => SpanPhase::Frank,
            6 => SpanPhase::Async,
            7 => SpanPhase::Ring,
            _ => return None,
        })
    }

    /// Stable lower-case label (trace-event `name`, diagnostics).
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Call => "call",
            SpanPhase::Rendezvous => "rendezvous",
            SpanPhase::Handler => "handler",
            SpanPhase::BulkCopy => "bulk_copy",
            SpanPhase::Frank => "frank",
            SpanPhase::Async => "async",
            SpanPhase::Ring => "ring",
        }
    }

    /// Whether this phase runs on the serving side of the hand-off
    /// (drawn on the server track in the exported trace, so overlapping
    /// client waits and handler runs never mis-nest).
    pub fn server_side(self) -> bool {
        matches!(self, SpanPhase::Handler | SpanPhase::BulkCopy | SpanPhase::Frank)
    }
}

/// The 64-bit trace context: `trace_id:32 | span_id:16 | depth:8 | 0:8`.
/// A packed value of 0 means "no active trace" — trace ids are minted
/// non-zero, so every live context packs non-zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace identity, shared by every span of one causal chain.
    pub trace_id: u32,
    /// This context's own span (the parent of spans begun under it).
    pub span_id: u16,
    /// Nesting depth (root call = 0).
    pub depth: u8,
}

impl TraceCtx {
    /// Pack into the wire word (non-zero for any minted context).
    pub fn pack(self) -> u64 {
        ((self.trace_id as u64) << 32) | ((self.span_id as u64) << 16) | ((self.depth as u64) << 8)
    }

    /// Unpack a wire word; `None` for the "no trace" zero word.
    pub fn unpack(w: u64) -> Option<TraceCtx> {
        if w == 0 {
            return None;
        }
        Some(TraceCtx {
            trace_id: (w >> 32) as u32,
            span_id: (w >> 16) as u16,
            depth: (w >> 8) as u8,
        })
    }
}

/// One decoded span record (ring read product).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotonic per-vCPU sequence number.
    pub seq: u64,
    /// The trace this span belongs to.
    pub trace_id: u32,
    /// This span's id (unique within a trace for practical trace sizes;
    /// ids come from a wrapping 16-bit mint).
    pub span_id: u16,
    /// Parent span id (0 = root).
    pub parent_id: u16,
    /// Phase tag.
    pub phase: SpanPhase,
    /// Nesting depth (root = 0).
    pub depth: u8,
    /// vCPU whose ring recorded the span.
    pub vcpu: u8,
    /// Entry point involved.
    pub ep: u16,
    /// Begin time, nanoseconds since the plane's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant spans).
    pub dur_ns: u64,
}

impl SpanRecord {
    /// Whether this is a trace root (no parent).
    pub fn is_root(&self) -> bool {
        self.parent_id == 0
    }
}

impl std::fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace={:08x} span={} parent={} {} ep={} depth={} start={}ns dur={}ns",
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.phase.label(),
            self.ep,
            self.depth,
            self.start_ns,
            self.dur_ns,
        )
    }
}

/// A live span handed back by the begin calls; closed by
/// [`SpanPlane::end_token`] (usually via [`SpanScope`]'s drop).
#[derive(Clone, Copy, Debug)]
#[cfg_attr(not(feature = "obs"), allow(dead_code))] // fields read by the gated bodies
pub struct SpanToken {
    /// This span's own context (what children parent under).
    pub ctx: TraceCtx,
    pub(crate) parent_id: u16,
    pub(crate) phase: SpanPhase,
    pub(crate) ep: u16,
    pub(crate) vcpu: u8,
    pub(crate) start_ns: u64,
    /// Thread context to restore at end (only meaningful if installed).
    pub(crate) prev: u64,
    /// Whether this span was installed as the thread's current context.
    pub(crate) installed: bool,
}

impl SpanToken {
    /// Whether this token is a trace root.
    pub fn is_root(&self) -> bool {
        self.parent_id == 0
    }
}

/// 40-byte ring slot: a sequence word (`seq + 1`, 0 = invalid) plus four
/// payload words, written under the flight recorder's invalidate → fill
/// → publish protocol.
#[cfg(feature = "obs")]
#[derive(Debug)]
struct SpanSlot {
    seq: AtomicU64,
    /// `trace_id:32 | span_id:16 | parent_id:16`
    ids: AtomicU64,
    /// `phase:8 | depth:8 | vcpu:8 | ep:16 | 0:24`
    meta: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

/// One vCPU's span ring, line-aligned like its flight-recorder sibling.
#[cfg(feature = "obs")]
#[repr(align(64))]
#[derive(Debug)]
struct SpanRing {
    cursor: AtomicU64,
    slots: Box<[SpanSlot]>,
}

#[cfg(feature = "obs")]
impl SpanRing {
    fn new(capacity: usize) -> Self {
        SpanRing {
            cursor: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| SpanSlot {
                    seq: AtomicU64::new(0),
                    ids: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    start_ns: AtomicU64::new(0),
                    dur_ns: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn record(&self, ids: u64, meta: u64, start_ns: u64, dur_ns: u64) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[seq as usize & (self.slots.len() - 1)];
        slot.seq.store(0, Ordering::Relaxed);
        slot.ids.store(ids, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Release);
    }

    /// Visit every retained, untorn record, oldest first.
    fn for_each(&self, mut f: impl FnMut(SpanRecord)) {
        let cursor = self.cursor.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let retained = cursor.min(cap);
        for seq in cursor - retained..cursor {
            let slot = &self.slots[seq as usize & (self.slots.len() - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != seq + 1 {
                continue; // overwritten or in-flight
            }
            let ids = slot.ids.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // torn under us
            }
            let Some(phase) = SpanPhase::from_u8((meta >> 56) as u8) else {
                continue;
            };
            f(SpanRecord {
                seq,
                trace_id: (ids >> 32) as u32,
                span_id: (ids >> 16) as u16,
                parent_id: ids as u16,
                phase,
                depth: (meta >> 48) as u8,
                vcpu: (meta >> 40) as u8,
                ep: (meta >> 24) as u16,
                start_ns,
                dur_ns,
            });
        }
    }
}

/// One promoted tail exemplar: a slow root call with its span tree and
/// per-phase time breakdown.
#[derive(Clone, Debug)]
pub struct Exemplar {
    /// The promoted trace.
    pub trace_id: u32,
    /// Root entry point.
    pub ep: u16,
    /// vCPU the root completed on.
    pub vcpu: u8,
    /// Root span duration (ns).
    pub total_ns: u64,
    /// The entry's EWMA latency when promoted (ns) — the threshold base.
    pub ewma_ns: u64,
    /// Root begin time (ns since plane epoch).
    pub start_ns: u64,
    /// Summed duration per phase, indexed by [`SpanPhase`] discriminant
    /// (index 0 unused; the root call span itself is excluded so the
    /// breakdown attributes time *within* the call).
    pub phase_ns: [u64; NPHASES],
    /// Frank slow-path events inside the trace.
    pub frank_events: u32,
    /// The retained span tree (at most [`EXEMPLAR_SPANS`], by start
    /// time).
    pub spans: Vec<SpanRecord>,
    /// The tree had more spans than [`EXEMPLAR_SPANS`].
    pub truncated: bool,
}

impl Exemplar {
    #[cfg(feature = "obs")]
    fn empty() -> Self {
        Exemplar {
            trace_id: 0,
            ep: 0,
            vcpu: 0,
            total_ns: 0,
            ewma_ns: 0,
            start_ns: 0,
            phase_ns: [0; NPHASES],
            frank_events: 0,
            spans: Vec::with_capacity(EXEMPLAR_SPANS),
            truncated: false,
        }
    }

    /// One-line summary: where the time went.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "trace {:08x} ep {} vcpu {}: total={}ns (ewma {}ns)",
            self.trace_id, self.ep, self.vcpu, self.total_ns, self.ewma_ns
        );
        for phase in PHASES {
            if phase == SpanPhase::Call {
                continue;
            }
            let ns = self.phase_ns[phase as usize];
            if ns > 0 {
                let _ = write!(out, " {}={}ns", phase.label(), ns);
            }
        }
        if self.frank_events > 0 {
            let _ = write!(out, " frank_events={}", self.frank_events);
        }
        if self.truncated {
            let _ = write!(out, " (tree truncated)");
        }
        out
    }
}

/// Per-vCPU exemplar store: a tiny ring of preallocated exemplars,
/// overwritten oldest-first. The mutex is promotion-only (cold by the
/// EWMA threshold's construction) and never touched on the fast path.
#[cfg(feature = "obs")]
#[repr(align(64))]
#[derive(Debug)]
struct ExemplarCell {
    ring: Mutex<ExemplarRing>,
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct ExemplarRing {
    slots: Vec<Exemplar>,
    next: usize,
    used: usize,
}

thread_local! {
    /// The calling thread's current trace context (packed; 0 = none).
    /// Thread-local for the same reason the sampling tick is: the
    /// unsampled fast path must not touch shared memory to learn "no
    /// trace is active".
    #[cfg(feature = "obs")]
    static CTX: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The runtime's tracing plane: per-vCPU span rings, exemplar buffers,
/// and the id mints. With the `obs` feature disabled this struct is
/// empty and every method folds to a no-op.
#[derive(Debug)]
pub struct SpanPlane {
    /// Bit 0: tracing enabled.
    #[cfg(feature = "obs")]
    cfg: AtomicU32,
    #[cfg(feature = "obs")]
    next_trace: AtomicU32,
    #[cfg(feature = "obs")]
    next_span: AtomicU32,
    #[cfg(feature = "obs")]
    promotions: AtomicU64,
    #[cfg(feature = "obs")]
    rings: Box<[SpanRing]>,
    #[cfg(feature = "obs")]
    exemplars: Box<[ExemplarCell]>,
    /// Time zero for `start_ns` stamps.
    #[cfg(feature = "obs")]
    epoch: Instant,
}

#[cfg(feature = "obs")]
const CFG_TRACE_ON: u32 = 1;

impl SpanPlane {
    /// A plane for `n_vcpus` virtual processors with `capacity` ring
    /// slots per vCPU (must be a power of two), enabled.
    pub(crate) fn new(n_vcpus: usize, capacity: usize) -> Self {
        assert!(capacity.is_power_of_two(), "trace_capacity must be a power of two");
        #[cfg(not(feature = "obs"))]
        let _ = n_vcpus;
        SpanPlane {
            #[cfg(feature = "obs")]
            cfg: AtomicU32::new(CFG_TRACE_ON),
            #[cfg(feature = "obs")]
            next_trace: AtomicU32::new(0),
            #[cfg(feature = "obs")]
            next_span: AtomicU32::new(0),
            #[cfg(feature = "obs")]
            promotions: AtomicU64::new(0),
            #[cfg(feature = "obs")]
            rings: (0..n_vcpus.max(1)).map(|_| SpanRing::new(capacity)).collect(),
            #[cfg(feature = "obs")]
            exemplars: (0..n_vcpus.max(1))
                .map(|_| ExemplarCell {
                    ring: Mutex::new(ExemplarRing {
                        slots: (0..EXEMPLAR_CAPACITY).map(|_| Exemplar::empty()).collect(),
                        next: 0,
                        used: 0,
                    }),
                })
                .collect(),
            #[cfg(feature = "obs")]
            epoch: Instant::now(),
        }
    }

    /// Whether tracing is compiled in *and* enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "obs")]
        {
            self.cfg.load(Ordering::Relaxed) & CFG_TRACE_ON != 0
        }
        #[cfg(not(feature = "obs"))]
        {
            false
        }
    }

    /// Enable or disable span recording at runtime (no-op compiled out).
    pub fn set_enabled(&self, on: bool) {
        #[cfg(feature = "obs")]
        self.cfg.store(if on { CFG_TRACE_ON } else { 0 }, Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = on;
    }

    /// Ring slots per vCPU (0 when compiled out).
    pub fn capacity(&self) -> usize {
        #[cfg(feature = "obs")]
        {
            self.rings.first().map_or(0, |r| r.slots.len())
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Number of vCPU rings (0 when compiled out).
    pub fn n_vcpus(&self) -> usize {
        #[cfg(feature = "obs")]
        {
            self.rings.len()
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// The calling thread's current trace context, if any.
    pub fn current(&self) -> Option<TraceCtx> {
        #[cfg(feature = "obs")]
        {
            TraceCtx::unpack(CTX.with(|c| c.get()))
        }
        #[cfg(not(feature = "obs"))]
        {
            None
        }
    }

    #[cfg(feature = "obs")]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Mint a non-zero span id. A wrapping 16-bit mint: ids can recur
    /// across traces (records are disambiguated by trace id) and, in a
    /// trace spanning > 65535 concurrent mints, within one — acceptable
    /// for a diagnostics plane; the exporter matches begin/end pairs by
    /// (trace, span).
    #[cfg(feature = "obs")]
    fn mint_span(&self) -> u16 {
        (self.next_span.fetch_add(1, Ordering::Relaxed) % 0xFFFF) as u16 + 1
    }

    #[cfg(feature = "obs")]
    fn begin(
        &self,
        parent: Option<TraceCtx>,
        mint_root: bool,
        install: bool,
        vcpu: usize,
        ep: EntryId,
        phase: SpanPhase,
    ) -> Option<SpanToken> {
        let (trace_id, parent_id, depth) = match parent {
            Some(p) => (p.trace_id, p.span_id, p.depth.saturating_add(1)),
            None if mint_root && self.enabled() => {
                (self.next_trace.fetch_add(1, Ordering::Relaxed).wrapping_add(1).max(1), 0, 0)
            }
            None => return None,
        };
        let ctx = TraceCtx { trace_id, span_id: self.mint_span(), depth };
        let prev = if install { CTX.with(|c| c.replace(ctx.pack())) } else { 0 };
        Some(SpanToken {
            ctx,
            parent_id,
            phase,
            ep: ep as u16,
            vcpu: vcpu as u8,
            start_ns: self.now_ns(),
            prev,
            installed: install,
        })
    }

    /// Begin a (possibly root) call span on the client side and install
    /// it as the thread's context, so Frank events during resource
    /// acquisition and the rendezvous wait parent under it. A root is
    /// minted only when `sampled` (the caller's existing
    /// [`crate::ObsState::try_sample`] verdict); a live enclosing
    /// context always traces, sampled or not.
    #[inline]
    pub fn begin_call(&self, sampled: bool, vcpu: usize, ep: EntryId) -> Option<SpanToken> {
        #[cfg(feature = "obs")]
        {
            let parent = TraceCtx::unpack(CTX.with(|c| c.get()));
            if parent.is_none() && !sampled {
                return None;
            }
            self.begin(parent, sampled, true, vcpu, ep, SpanPhase::Call)
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (sampled, vcpu, ep);
            None
        }
    }

    /// Begin an async span (client side). Not installed — the caller
    /// continues immediately; the span closes when the completion is
    /// observed ([`crate::AsyncCall::wait`] or drop).
    #[inline]
    pub fn begin_async(&self, sampled: bool, vcpu: usize, ep: EntryId) -> Option<SpanToken> {
        #[cfg(feature = "obs")]
        {
            let parent = TraceCtx::unpack(CTX.with(|c| c.get()));
            if parent.is_none() && !sampled {
                return None;
            }
            self.begin(parent, sampled, false, vcpu, ep, SpanPhase::Async)
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (sampled, vcpu, ep);
            None
        }
    }

    /// Begin a ring span (client side, one per accepted SQE). Not
    /// installed — the submitter continues immediately; the span closes
    /// when the completion is reaped, and its packed context rides the
    /// SQE's trace word so the handler span parents under it.
    #[inline]
    pub fn begin_ring(&self, sampled: bool, vcpu: usize, ep: EntryId) -> Option<SpanToken> {
        #[cfg(feature = "obs")]
        {
            let parent = TraceCtx::unpack(CTX.with(|c| c.get()));
            if parent.is_none() && !sampled {
                return None;
            }
            self.begin(parent, sampled, false, vcpu, ep, SpanPhase::Ring)
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (sampled, vcpu, ep);
            None
        }
    }

    /// Begin a handler span under a propagated context word (the call
    /// slot's trace word for hand-off, the call token's context for
    /// inline) and install it, so nested calls made by the handler
    /// parent under the handler span.
    #[inline]
    pub fn begin_handler(&self, ctx_word: u64, vcpu: usize, ep: EntryId) -> Option<SpanToken> {
        #[cfg(feature = "obs")]
        {
            let parent = TraceCtx::unpack(ctx_word)?;
            self.begin(Some(parent), false, true, vcpu, ep, SpanPhase::Handler)
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (ctx_word, vcpu, ep);
            None
        }
    }

    /// Begin a leaf span (rendezvous wait, bulk copy) under the thread's
    /// current context. Not installed — leaves have no children.
    #[inline]
    pub fn begin_leaf(&self, vcpu: usize, ep: EntryId, phase: SpanPhase) -> Option<SpanToken> {
        #[cfg(feature = "obs")]
        {
            let parent = TraceCtx::unpack(CTX.with(|c| c.get()))?;
            self.begin(Some(parent), false, false, vcpu, ep, phase)
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (vcpu, ep, phase);
            None
        }
    }

    /// Record an instant (zero-duration) span under the thread's current
    /// context — Frank grow events. No-op outside a live trace.
    #[inline]
    pub fn record_instant(&self, vcpu: usize, ep: EntryId, phase: SpanPhase) {
        #[cfg(feature = "obs")]
        {
            let Some(parent) = TraceCtx::unpack(CTX.with(|c| c.get())) else {
                return;
            };
            let ids = ((parent.trace_id as u64) << 32)
                | ((self.mint_span() as u64) << 16)
                | parent.span_id as u64;
            let meta = Self::pack_meta(phase, parent.depth.saturating_add(1), vcpu, ep);
            self.rings[vcpu].record(ids, meta, self.now_ns(), 0);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (vcpu, ep, phase);
    }

    #[cfg(feature = "obs")]
    fn pack_meta(phase: SpanPhase, depth: u8, vcpu: usize, ep: EntryId) -> u64 {
        ((phase as u64) << 56) | ((depth as u64) << 48) | ((vcpu as u64 & 0xFF) << 40)
            | ((ep as u64 & 0xFFFF) << 24)
    }

    /// End a span: write its record into the token's vCPU ring, restore
    /// the thread context if the begin installed one, and — for a root
    /// token with an EWMA cell — run the exemplar promotion check.
    /// Returns the span duration in nanoseconds.
    pub fn end_token(&self, tok: SpanToken, ewma: Option<&AtomicU64>) -> u64 {
        #[cfg(feature = "obs")]
        {
            let dur = self.now_ns().saturating_sub(tok.start_ns);
            let ids = ((tok.ctx.trace_id as u64) << 32)
                | ((tok.ctx.span_id as u64) << 16)
                | tok.parent_id as u64;
            let meta = Self::pack_meta(tok.phase, tok.ctx.depth, tok.vcpu as usize, tok.ep as usize);
            self.rings[tok.vcpu as usize].record(ids, meta, tok.start_ns, dur);
            if tok.installed {
                CTX.with(|c| c.set(tok.prev));
            }
            if tok.is_root() {
                if let Some(cell) = ewma {
                    self.consider_exemplar(&tok, dur, cell);
                }
            }
            dur
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (tok, ewma);
            0
        }
    }

    /// Root-span tail check: promote the trace into the vCPU's exemplar
    /// buffer when its duration exceeds [`EXEMPLAR_FACTOR`] × the
    /// entry's EWMA, then fold the duration into the EWMA (weight 1/8,
    /// like the spin-budget EWMA). First observation seeds the EWMA and
    /// never promotes (no baseline yet).
    #[cfg(feature = "obs")]
    fn consider_exemplar(&self, tok: &SpanToken, dur: u64, ewma: &AtomicU64) {
        let old = ewma.load(Ordering::Relaxed);
        let promote = old > 0 && dur > old.saturating_mul(EXEMPLAR_FACTOR);
        let new = if old == 0 { dur } else { old - old / 8 + dur / 8 };
        ewma.store(new, Ordering::Relaxed);
        if promote {
            self.promote(tok, dur, old);
        }
    }

    /// Copy the trace's span tree from the rings into the next exemplar
    /// slot. Cold path (taken only past the tail threshold); the only
    /// allocation-free guarantee needed is that the preallocated span
    /// buffer is reused, which `clear()` + bounded `push` preserves.
    #[cfg(feature = "obs")]
    fn promote(&self, tok: &SpanToken, dur: u64, ewma: u64) {
        let vcpu = tok.vcpu as usize;
        let mut ring = self.exemplars[vcpu].ring.lock();
        let idx = ring.next;
        ring.next = (ring.next + 1) % EXEMPLAR_CAPACITY;
        ring.used = (ring.used + 1).min(EXEMPLAR_CAPACITY);
        let ex = &mut ring.slots[idx];
        ex.trace_id = tok.ctx.trace_id;
        ex.ep = tok.ep;
        ex.vcpu = tok.vcpu;
        ex.total_ns = dur;
        ex.ewma_ns = ewma;
        ex.start_ns = tok.start_ns;
        ex.phase_ns = [0; NPHASES];
        ex.frank_events = 0;
        ex.spans.clear();
        ex.truncated = false;
        let root_span = tok.ctx.span_id;
        for r in self.rings.iter() {
            r.for_each(|rec| {
                if rec.trace_id != tok.ctx.trace_id {
                    return;
                }
                // Attribute time within the call: every span but the
                // root itself (nested calls count under Call).
                if !(rec.span_id == root_span && rec.is_root()) {
                    ex.phase_ns[rec.phase as usize] += rec.dur_ns;
                }
                if rec.phase == SpanPhase::Frank {
                    ex.frank_events += 1;
                }
                if ex.spans.len() < EXEMPLAR_SPANS {
                    ex.spans.push(rec);
                } else {
                    ex.truncated = true;
                }
            });
        }
        ex.spans.sort_unstable_by_key(|r| (r.start_ns, r.depth));
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Total exemplar promotions since boot.
    pub fn promoted(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.promotions.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Spans recorded on `vcpu` since boot (including overwritten ones).
    pub fn recorded(&self, vcpu: usize) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.rings[vcpu].cursor.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = vcpu;
            0
        }
    }

    /// The retained span records of `vcpu`'s ring, oldest first (cold
    /// read path; torn slots skipped).
    pub fn snapshot(&self, vcpu: usize) -> Vec<SpanRecord> {
        #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
        let mut out = Vec::new();
        #[cfg(feature = "obs")]
        self.rings[vcpu].for_each(|rec| out.push(rec));
        #[cfg(not(feature = "obs"))]
        let _ = vcpu;
        out
    }

    /// Every retained span record across all vCPUs, ordered by start
    /// time (the exporter's input).
    pub fn all_records(&self) -> Vec<SpanRecord> {
        #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
        let mut out = Vec::new();
        #[cfg(feature = "obs")]
        {
            for r in self.rings.iter() {
                r.for_each(|rec| out.push(rec));
            }
            out.sort_unstable_by_key(|r| (r.start_ns, r.depth, r.span_id));
        }
        out
    }

    /// The retained tail exemplars of `vcpu`, most recent last (cold
    /// path, clones out of the preallocated buffer).
    pub fn exemplars(&self, vcpu: usize) -> Vec<Exemplar> {
        #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
        let mut out = Vec::new();
        #[cfg(feature = "obs")]
        {
            let ring = self.exemplars[vcpu].ring.lock();
            for i in 0..ring.used {
                // Oldest-first: start after the next write position.
                let idx = (ring.next + EXEMPLAR_CAPACITY - ring.used + i) % EXEMPLAR_CAPACITY;
                out.push(ring.slots[idx].clone());
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = vcpu;
        out
    }

    /// A no-children scope for tests and cold paths: begin + end around
    /// a closure under the current thread context.
    pub fn with_leaf<R>(
        &self,
        vcpu: usize,
        ep: EntryId,
        phase: SpanPhase,
        f: impl FnOnce() -> R,
    ) -> R {
        let tok = self.begin_leaf(vcpu, ep, phase);
        let r = f();
        if let Some(tok) = tok {
            self.end_token(tok, None);
        }
        r
    }
}

/// Drop guard closing a span on every exit path of the function that
/// began it (dispatch has several early `return Err(..)` exits; a span
/// left open would leak the installed thread context into unrelated
/// calls). With the `obs` feature off this is a zero-sized no-op.
pub struct SpanScope<'a> {
    #[cfg(feature = "obs")]
    plane: &'a SpanPlane,
    #[cfg(feature = "obs")]
    tok: Option<SpanToken>,
    /// Root-span exemplar accounting target (the entry's trace EWMA).
    #[cfg(feature = "obs")]
    ewma: Option<&'a AtomicU64>,
    #[cfg(not(feature = "obs"))]
    _p: std::marker::PhantomData<&'a ()>,
}

impl<'a> SpanScope<'a> {
    /// Whether a span is actually live inside this scope.
    #[inline]
    pub fn active(&self) -> bool {
        #[cfg(feature = "obs")]
        {
            self.tok.is_some()
        }
        #[cfg(not(feature = "obs"))]
        {
            false
        }
    }

    /// The packed context word of the live span (0 when inactive) — what
    /// the dispatcher writes into the call slot's trace word.
    #[inline]
    pub fn ctx_word(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.tok.map_or(0, |t| t.ctx.pack())
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }
}

/// Unconditional so explicit `drop(scope)` call sites stay meaningful
/// in both builds; the compiled-out body is empty and folds away.
impl Drop for SpanScope<'_> {
    fn drop(&mut self) {
        #[cfg(feature = "obs")]
        if let Some(tok) = self.tok.take() {
            self.plane.end_token(tok, self.ewma);
        }
    }
}

impl SpanPlane {
    /// Scope wrapper around [`SpanPlane::begin_call`]: closes (and, for
    /// roots, exemplar-checks against `ewma`) on drop.
    #[inline]
    pub fn call_scope<'a>(
        &'a self,
        sampled: bool,
        vcpu: usize,
        ep: EntryId,
        ewma: Option<&'a AtomicU64>,
    ) -> SpanScope<'a> {
        #[cfg(feature = "obs")]
        {
            SpanScope { plane: self, tok: self.begin_call(sampled, vcpu, ep), ewma }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (sampled, vcpu, ep, ewma);
            SpanScope { _p: std::marker::PhantomData }
        }
    }

    /// Scope wrapper around [`SpanPlane::begin_handler`].
    #[inline]
    pub fn handler_scope(&self, ctx_word: u64, vcpu: usize, ep: EntryId) -> SpanScope<'_> {
        #[cfg(feature = "obs")]
        {
            SpanScope { plane: self, tok: self.begin_handler(ctx_word, vcpu, ep), ewma: None }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (ctx_word, vcpu, ep);
            SpanScope { _p: std::marker::PhantomData }
        }
    }

    /// Scope wrapper around [`SpanPlane::begin_leaf`].
    #[inline]
    pub fn leaf_scope(&self, vcpu: usize, ep: EntryId, phase: SpanPhase) -> SpanScope<'_> {
        #[cfg(feature = "obs")]
        {
            SpanScope { plane: self, tok: self.begin_leaf(vcpu, ep, phase), ewma: None }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (vcpu, ep, phase);
            SpanScope { _p: std::marker::PhantomData }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_pack_unpack_roundtrip() {
        let ctx = TraceCtx { trace_id: 0xDEADBEEF, span_id: 513, depth: 3 };
        assert_eq!(TraceCtx::unpack(ctx.pack()), Some(ctx));
        assert_eq!(TraceCtx::unpack(0), None);
        // Every minted context packs non-zero (trace ids are non-zero).
        let min = TraceCtx { trace_id: 1, span_id: 0, depth: 0 };
        assert_ne!(min.pack(), 0);
    }

    #[test]
    fn phase_bytes_roundtrip() {
        for phase in PHASES {
            assert_eq!(SpanPhase::from_u8(phase as u8), Some(phase), "{phase:?}");
            assert!((phase as usize) < NPHASES);
        }
        assert_eq!(SpanPhase::from_u8(0), None);
        assert_eq!(SpanPhase::from_u8(99), None);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn slot_is_forty_bytes() {
        assert_eq!(std::mem::size_of::<SpanSlot>(), 40);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn root_and_children_share_a_trace() {
        let plane = SpanPlane::new(1, 64);
        let root = plane.begin_call(true, 0, 7).expect("sampled root");
        assert!(root.is_root());
        assert_eq!(plane.current().unwrap().trace_id, root.ctx.trace_id);
        let leaf = plane.begin_leaf(0, 7, SpanPhase::Rendezvous).expect("leaf under root");
        assert_eq!(leaf.ctx.trace_id, root.ctx.trace_id);
        assert_eq!(leaf.parent_id, root.ctx.span_id);
        assert_eq!(leaf.ctx.depth, 1);
        plane.end_token(leaf, None);
        plane.end_token(root, None);
        assert!(plane.current().is_none(), "root end restores empty ctx");
        let recs = plane.snapshot(0);
        assert_eq!(recs.len(), 2);
        let root_rec = recs.iter().find(|r| r.is_root()).unwrap();
        assert_eq!(root_rec.phase, SpanPhase::Call);
        let leaf_rec = recs.iter().find(|r| !r.is_root()).unwrap();
        assert_eq!(leaf_rec.parent_id, root_rec.span_id);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn unsampled_without_enclosing_trace_is_free() {
        let plane = SpanPlane::new(1, 64);
        assert!(plane.begin_call(false, 0, 1).is_none());
        assert!(plane.begin_leaf(0, 1, SpanPhase::Rendezvous).is_none());
        plane.record_instant(0, 1, SpanPhase::Frank);
        assert_eq!(plane.recorded(0), 0);
        // Disabled plane mints nothing even when sampled.
        plane.set_enabled(false);
        assert!(plane.begin_call(true, 0, 1).is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn handler_scope_installs_and_restores() {
        let plane = SpanPlane::new(1, 64);
        let root = plane.begin_call(true, 0, 3).unwrap();
        let word = root.ctx.pack();
        {
            let h = plane.handler_scope(word, 0, 3);
            assert!(h.active());
            let cur = plane.current().unwrap();
            assert_eq!(cur.trace_id, root.ctx.trace_id);
            assert_eq!(cur.depth, 1, "handler installed");
            // A nested call under the handler parents under it.
            let nested = plane.begin_call(false, 0, 4).unwrap();
            assert_eq!(nested.parent_id, cur.span_id);
            assert_eq!(nested.ctx.depth, 2);
            plane.end_token(nested, None);
        }
        assert_eq!(plane.current().unwrap().span_id, root.ctx.span_id, "scope restored");
        plane.end_token(root, None);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn ring_wraps_and_keeps_newest() {
        let plane = SpanPlane::new(1, 8);
        for _ in 0..20 {
            let t = plane.begin_call(true, 0, 1).unwrap();
            plane.end_token(t, None);
        }
        assert_eq!(plane.recorded(0), 20);
        let recs = plane.snapshot(0);
        assert_eq!(recs.len(), 8);
        for w in recs.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn exemplar_promotes_past_threshold() {
        let plane = SpanPlane::new(1, 64);
        let ewma = AtomicU64::new(0);
        // Seed the EWMA: first root never promotes.
        let t = plane.begin_call(true, 0, 9).unwrap();
        plane.end_token(t, Some(&ewma));
        assert_eq!(plane.promoted(), 0);
        assert!(ewma.load(Ordering::Relaxed) > 0);
        // Force a tail: backdate the root to the plane's epoch, so its
        // measured duration dwarfs the seeded EWMA deterministically.
        let mut slow = plane.begin_call(true, 0, 9).unwrap();
        slow.start_ns = 0;
        let leaf = plane.begin_leaf(0, 9, SpanPhase::Rendezvous).unwrap();
        plane.record_instant(0, 9, SpanPhase::Frank);
        plane.end_token(leaf, None);
        let dur = plane.end_token(slow, Some(&ewma));
        assert_eq!(plane.promoted(), 1);
        let exemplars = plane.exemplars(0);
        assert_eq!(exemplars.len(), 1);
        let ex = &exemplars[0];
        assert_eq!(ex.ep, 9);
        assert_eq!(ex.total_ns, dur);
        assert_eq!(ex.frank_events, 1);
        assert!(ex.spans.len() >= 3, "root + leaf + frank instant");
        assert!(ex.summary().contains("frank_events=1"), "{}", ex.summary());
        // The breakdown attributes the leaf's wait, not the root's total.
        assert!(ex.phase_ns[SpanPhase::Call as usize] < ex.total_ns);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_capacity_panics() {
        let _ = SpanPlane::new(1, 100);
    }
}
