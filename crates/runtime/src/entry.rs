//! Entry points: per-entry lifecycle state, sharded in-flight accounting,
//! and the era-parity handler-retirement protocol.
//!
//! The cold-path mutations themselves (bind, kill, exchange, reclaim) live
//! in [`crate::frank`]; this module owns the data those operations act on:
//!
//! * **Per-vCPU lifecycle cells** (`LifeCell`): every in-flight claim and
//!   every completion is counted on the calling vCPU's own cache line, so
//!   the hot path never writes a line another vCPU's hot path also writes.
//!   Kill/drain paths *sum* the shards — the same aggregate-on-read
//!   discipline as the stats plane.
//! * **Era-parity claims**: the entry carries an `era` counter, bumped by
//!   each handler exchange. A claim counts itself under the era's parity
//!   and re-validates the era afterwards, so "every call that can still
//!   observe the previous handler" is exactly "the claims counted under
//!   the previous parity" — a directly observable drain condition, even
//!   under continuous new traffic.
//! * **The limbo list**: a replaced handler is quarantined tagged with the
//!   era it was retired under, and freed once that era's parity drains —
//!   which [`EntryShared::swap_handler`] forces before installing the next
//!   handler, so the list never holds more than about one handler no
//!   matter how many exchanges run (the fix for the old unbounded
//!   graveyard).

use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::worker::WorkerPool;
use crate::{EntryId, Handler, ProgramId};

/// Entry lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EntryState {
    /// Accepting calls.
    Active = 0,
    /// Draining: new calls rejected, in-progress calls complete (§4.5.2).
    SoftKilled = 1,
    /// Dead: resources reaped; in-progress calls were aborted.
    Dead = 2,
}

impl EntryState {
    fn from_u8(v: u8) -> EntryState {
        match v {
            0 => EntryState::Active,
            1 => EntryState::SoftKilled,
            _ => EntryState::Dead,
        }
    }
}

/// Dispatch quality-of-service class of an entry point.
///
/// The class segregates the transport resources a call consumes so bulk
/// work can never head-of-line-block latency-critical calls: each vCPU
/// keeps one CD pool per class (a `Bulk` burst that drains its pool
/// grows *its* pool, not the `Latency` one), and submission rings keep
/// one SQ/CQ lane per class with the ring worker draining every queued
/// `Latency` SQE before each `Bulk` one (see [`crate::ring`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QosClass {
    /// Latency-critical calls (null calls, small control RPCs). The
    /// default.
    #[default]
    Latency,
    /// Throughput work (large payload/bulk transfers, long handlers)
    /// that must yield priority to `Latency` traffic.
    Bulk,
}

impl QosClass {
    /// Stable index for per-class resource arrays.
    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            QosClass::Latency => 0,
            QosClass::Bulk => 1,
        }
    }
}

/// Options for a bound entry point.
#[derive(Clone, Copy, Debug)]
pub struct EntryOptions {
    /// Workers permanently hold a CD + scratch page (2–3 µs faster per
    /// call in the paper; defeats stack sharing).
    pub hold_cd: bool,
    /// Restrict [`EntryOptions::hold_cd`]'s pinned-CD fast path to
    /// callers in this trust group (0 = every caller trusted — the
    /// paper's hold-CD mode shares the worker's scratch page across
    /// *all* callers). With a non-zero group, only programs registered
    /// under the same group via [`crate::Runtime::set_trust_group`] ride
    /// the pinned CD; everyone else falls back to the per-call CD pool,
    /// so an untrusted caller never shares a scratch page with the
    /// trusted set. Ignored when `hold_cd` is off.
    pub trust_group: u32,
    /// Dispatch QoS class (see [`QosClass`]). `Latency` by default.
    pub qos: QosClass,
    /// Synchronous calls may run the handler *inline on the caller's
    /// thread* — the logical conclusion of hand-off scheduling: when the
    /// worker would run on the caller's processor anyway, skip the worker
    /// entirely (no mailbox, no park/unpark). Borrow a CD for the scratch
    /// page, run, return. The trade-offs a service opts into:
    /// per-worker state is bypassed (worker-initialization overrides are
    /// ignored and [`crate::CallCtx::set_worker_handler`] is a no-op on
    /// inline calls), and a faulting handler unwinds on the caller's
    /// thread (still contained to [`crate::RtError::ServerFault`]).
    /// Asynchronous calls and upcalls to the entry still hand off.
    pub inline_ok: bool,
    /// Workers pre-spawned per vCPU at bind time.
    pub initial_workers: usize,
    /// Owning program (may kill/exchange; 0 = anyone).
    pub owner: ProgramId,
    /// Bind at this specific entry ID.
    pub want_ep: Option<EntryId>,
}

impl Default for EntryOptions {
    fn default() -> Self {
        EntryOptions {
            hold_cd: false,
            trust_group: 0,
            qos: QosClass::Latency,
            inline_ok: false,
            initial_workers: 1,
            owner: 0,
            want_ep: None,
        }
    }
}

/// One vCPU's lifecycle shard for one entry: in-flight claims split by
/// era parity, plus the completion count. Line-aligned so two vCPUs'
/// claim traffic never shares a cache line — the hot path's claim,
/// finish, and completion writes all land here and nowhere else.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct LifeCell {
    /// In-flight claims, indexed by the parity of the era they were
    /// validated under (see [`EntryShared::claim`]).
    active: [AtomicU64; 2],
    /// Calls completed on this vCPU (sync, async, and upcall alike).
    completed: AtomicU64,
}

/// Shared state of one bound entry point.
pub struct EntryShared {
    /// Entry ID.
    pub id: EntryId,
    /// Diagnostic name.
    pub name: String,
    /// Options.
    pub opts: EntryOptions,
    /// Lifecycle state (`EntryState` as u8).
    pub state: AtomicU8,
    /// Handler-exchange era. Bumped (under `xlock`) by every
    /// [`EntryShared::swap_handler`]; claims re-validate against it so
    /// each in-flight call is attributed to exactly one era's parity.
    /// The hot path only *reads* this line — it stays shared in every
    /// vCPU's cache and transfers only on an exchange (a cold path).
    era: AtomicU64,
    /// Per-vCPU lifecycle shards (claims + completions).
    life: Box<[LifeCell]>,
    handler_ptr: AtomicPtr<Handler>,
    /// Retired handlers, tagged with the era they were retired under.
    /// A tag-`t` handler can only be referenced by claims validated at
    /// era `t` (counted under parity `t & 1`): once that parity drains
    /// the box is freed. `swap_handler` forces the drain before every
    /// install, so the list holds at most ~one handler in steady state.
    #[allow(clippy::vec_box)]
    limbo: Mutex<Vec<(u64, Box<Handler>)>>,
    /// Serializes handler exchanges (and opportunistic limbo drains):
    /// the era-parity argument needs at most two live eras at any time.
    /// Deliberately *not* the Frank lock — the quiesce wait inside an
    /// exchange must not block unrelated binds.
    xlock: Mutex<()>,
    /// Self-reference, set at construction ([`Arc::new_cyclic`]). The
    /// grow-on-demand path upgrades this instead of scanning a registry
    /// under a lock, and tests observe entry reclamation through
    /// downgraded copies of it.
    weak_self: Weak<EntryShared>,
    /// Worker-side mailbox spin budget before an idle worker parks
    /// (0 = park immediately). Mirrors the runtime's [`crate::SpinPolicy`]
    /// so the rendezvous is spin-paired on both sides; updated by
    /// [`crate::Runtime::set_spin_policy`] through Frank.
    pub(crate) idle_spin: AtomicU32,
    /// The runtime's payload plane, shared in at bind so handlers reach
    /// region registries and buffer pools from [`crate::CallCtx`] without
    /// a back reference to the [`crate::Runtime`].
    pub(crate) bulk: Arc<crate::bulk::BulkState>,
    /// The latency-histogram plane, shared in at bind for the same
    /// no-back-reference reason (workers time handler runs, the bulk
    /// accessors time copies).
    pub(crate) obs: Arc<crate::obs::ObsState>,
    /// The flight-recorder plane, shared in at bind (workers record
    /// contained faults; kill paths record on the entry).
    pub(crate) flight: Arc<crate::flight::FlightPlane>,
    /// The facility counters, shared in at bind so the contained-fault
    /// dump can attach the last [`crate::Snapshot`] from the worker
    /// thread (which has no back reference to the [`crate::Runtime`]).
    pub(crate) stats: Arc<crate::stats::RuntimeStats>,
    /// The tracing plane, shared in at bind (workers open handler spans
    /// under the propagated context; dispatch opens call spans).
    pub(crate) spans: Arc<crate::span::SpanPlane>,
    /// The postmortem capture sink, shared in at bind so the contained-
    /// fault path can write a black-box artifact from the worker thread
    /// (same no-back-reference pattern as `stats`).
    pub(crate) blackbox: Arc<crate::blackbox::Sink>,
    /// EWMA of this entry's traced root-call latency (ns; 0 = unseeded)
    /// — the tail-exemplar promotion baseline. Only traced roots feed
    /// it, so the cell costs nothing untraced.
    pub(crate) trace_ewma_ns: AtomicU64,
    pools: Vec<WorkerPool>,
}

impl EntryShared {
    #[allow(clippy::too_many_arguments)] // internal ctor mirroring the field list
    pub(crate) fn new_arc(
        id: EntryId,
        name: &str,
        opts: EntryOptions,
        handler: Handler,
        n_vcpus: usize,
        idle_spin: u32,
        bulk: Arc<crate::bulk::BulkState>,
        obs: Arc<crate::obs::ObsState>,
        flight: Arc<crate::flight::FlightPlane>,
        stats: Arc<crate::stats::RuntimeStats>,
        spans: Arc<crate::span::SpanPlane>,
        blackbox: Arc<crate::blackbox::Sink>,
    ) -> Arc<Self> {
        Arc::new_cyclic(|weak| EntryShared {
            id,
            name: name.to_string(),
            opts,
            state: AtomicU8::new(EntryState::Active as u8),
            era: AtomicU64::new(0),
            life: (0..n_vcpus).map(|_| LifeCell::default()).collect(),
            handler_ptr: AtomicPtr::new(Box::into_raw(Box::new(handler))),
            limbo: Mutex::new(Vec::new()),
            xlock: Mutex::new(()),
            weak_self: weak.clone(),
            idle_spin: AtomicU32::new(idle_spin),
            bulk,
            obs,
            flight,
            stats,
            spans,
            blackbox,
            trace_ewma_ns: AtomicU64::new(0),
            pools: (0..n_vcpus).map(|_| WorkerPool::new()).collect(),
        })
    }

    /// Upgrade the self-reference (grow-on-demand path). Cannot fail
    /// while a claim on this entry is held — a claim blocks reclamation.
    pub(crate) fn strong(&self) -> Option<Arc<EntryShared>> {
        self.weak_self.upgrade()
    }

    /// Contained-fault diagnostics: the last counter snapshot plus the
    /// faulting vCPU's retained flight events, to stderr. Cold by
    /// construction — only runs after a handler panic was caught, so the
    /// dump can never tax a healthy fast path.
    pub(crate) fn dump_fault(&self, vcpu: usize) {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== contained fault: entry {} ({:?}) on vcpu {vcpu} ===",
            self.id, self.name
        );
        let _ = writeln!(out, "stats: {}", self.stats.snapshot());
        for ev in self.flight.snapshot(vcpu) {
            let _ = writeln!(out, "  {ev}");
        }
        let _ = writeln!(out, "=== end fault dump ===");
        eprint!("{out}");
    }

    /// Current lifecycle state.
    pub fn entry_state(&self) -> EntryState {
        EntryState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// The worker pool on `vcpu`.
    pub fn pool(&self, vcpu: usize) -> &WorkerPool {
        &self.pools[vcpu]
    }

    /// Claim an in-flight call slot on `vcpu`; returns the era parity the
    /// claim was counted under (pass it to [`EntryShared::finish_call`]).
    ///
    /// The loop re-validates the era *after* the increment: if an
    /// exchange flipped the era in between, the claim backs out and
    /// retries under the new parity. In the sequentially-consistent total
    /// order this guarantees that any claim whose later `handler()` load
    /// can still observe a pre-swap handler is counted under the pre-swap
    /// parity — which the swap drains before freeing that handler. All
    /// three operations touch this vCPU's own [`LifeCell`] line plus a
    /// read-only load of the shared era word; a `SeqCst` RMW costs the
    /// same as the `AcqRel` it replaces on x86/ARM.
    #[inline]
    pub(crate) fn claim(&self, vcpu: usize) -> u8 {
        let cell = &self.life[vcpu];
        loop {
            let era = self.era.load(Ordering::SeqCst);
            let parity = (era & 1) as usize;
            cell.active[parity].fetch_add(1, Ordering::SeqCst);
            if self.era.load(Ordering::SeqCst) == era {
                return parity as u8;
            }
            cell.active[parity].fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Release a claim taken on `vcpu` under `parity` (invoked by the
    /// side that owns the claim: the client for sync/inline calls, the
    /// worker for async ones).
    #[inline]
    pub(crate) fn finish_call(&self, vcpu: usize, parity: u8) {
        self.life[vcpu].active[parity as usize & 1].fetch_sub(1, Ordering::Release);
    }

    /// Count one completed call on `vcpu` (a `Relaxed` increment on the
    /// vCPU's own lifecycle line — the sharded successor of the old
    /// shared `calls` counter).
    #[inline]
    pub(crate) fn record_completion(&self, vcpu: usize) {
        self.life[vcpu].completed.fetch_add(1, Ordering::Relaxed);
    }

    /// In-flight claims, summed across every vCPU and both parities —
    /// the kill paths' drain gate (aggregate-on-read; cold).
    pub fn active(&self) -> u64 {
        self.life
            .iter()
            .map(|c| {
                c.active[0].load(Ordering::SeqCst) + c.active[1].load(Ordering::SeqCst)
            })
            .sum()
    }

    /// In-flight claims counted under `parity`, summed across vCPUs.
    fn parity_active(&self, parity: usize) -> u64 {
        self.life.iter().map(|c| c.active[parity & 1].load(Ordering::SeqCst)).sum()
    }

    /// Completed calls, summed across every vCPU (diagnostics).
    pub fn completions(&self) -> u64 {
        self.life.iter().map(|c| c.completed.load(Ordering::Relaxed)).sum()
    }

    /// Completed calls on one vCPU (the shard itself; used by tests that
    /// verify the shards sum exactly).
    pub(crate) fn completions_on(&self, vcpu: usize) -> u64 {
        self.life[vcpu].completed.load(Ordering::Relaxed)
    }

    /// The current handler (one atomic load + an `Arc` clone). The load
    /// is `SeqCst` so it participates in the era-parity total order; on
    /// the architectures this runtime targets it compiles to the same
    /// instruction as the `Acquire` load it replaced.
    pub fn handler(&self) -> Handler {
        let p = self.handler_ptr.load(Ordering::SeqCst);
        // Safety: a handler box is only freed once the era parity that
        // could observe it has drained (see `swap_handler`), and the
        // caller holds a claim, which pins the current parity.
        unsafe { (*p).clone() }
    }

    /// Replace the handler (Exchange, §4.5.2) and clear worker overrides
    /// so initialization reruns against the new code. Returns the number
    /// of previously retired handlers freed by this exchange's quiesce.
    ///
    /// Protocol (serialized by `xlock`): wait for the *previous* era's
    /// parity to drain — after which every handler already in limbo is
    /// unreferenced and freed — then swap the new handler in, quarantine
    /// the old box tagged with the current era, and bump the era. The
    /// two-era window keeps the parity counters unambiguous, and limbo
    /// never accumulates: 10k exchanges leave at most one box pending.
    ///
    /// Must not be called from one of this entry's own handlers — the
    /// quiesce can wait on the caller's own claim (same restriction as
    /// `wait_drained`/`hard_kill`).
    pub fn swap_handler(&self, h: Handler) -> u64 {
        let _x = self.xlock.lock();
        let era = self.era.load(Ordering::SeqCst);
        if era > 0 {
            let old_parity = ((era - 1) & 1) as usize;
            while self.parity_active(old_parity) != 0 {
                std::thread::yield_now();
            }
        }
        // The previous era has quiesced: every limbo tag is < era, and a
        // tag-t handler is only reachable from era-t claims, all drained.
        let freed = {
            let mut limbo = self.limbo.lock();
            let n = limbo.len() as u64;
            limbo.clear();
            n
        };
        let new = Box::into_raw(Box::new(h));
        let old = self.handler_ptr.swap(new, Ordering::SeqCst);
        // Safety: `old` came from Box::into_raw at bind or a prior swap.
        self.limbo.lock().push((era, unsafe { Box::from_raw(old) }));
        self.era.fetch_add(1, Ordering::SeqCst);
        let cold = self.stats.cell(0);
        cold.handlers_retired.fetch_add(1, Ordering::Relaxed);
        cold.handlers_freed.fetch_add(freed, Ordering::Relaxed);
        if freed > 0 {
            self.flight.record(0, crate::flight::FlightKind::Retire, self.id, freed as u32);
        }
        for p in &self.pools {
            p.for_each_worker(|w| w.clear_override());
        }
        freed
    }

    /// Opportunistically free quiesced limbo handlers (Frank maintenance;
    /// also the final drain a reclaim performs once the entry is fully
    /// drained). Returns how many were freed.
    pub(crate) fn try_drain_limbo(&self) -> u64 {
        let Some(_x) = self.xlock.try_lock() else { return 0 };
        let mut limbo = self.limbo.lock();
        let before = limbo.len();
        // `xlock` is held, so the era cannot advance under us; a tag-t
        // box is free once parity t&1 shows no claims (conservative when
        // era ≥ t+2 traffic shares the parity, but never unsound).
        limbo.retain(|(tag, _)| self.parity_active((tag & 1) as usize) != 0);
        let freed = (before - limbo.len()) as u64;
        if freed > 0 {
            self.stats.cell(0).handlers_freed.fetch_add(freed, Ordering::Relaxed);
            self.flight.record(0, crate::flight::FlightKind::Retire, self.id, freed as u32);
        }
        freed
    }

    /// Retired-but-not-yet-freed handlers (diagnostics; the exchange
    /// regression test asserts this stays bounded).
    pub fn limbo_len(&self) -> usize {
        self.limbo.lock().len()
    }

    /// Shut down and join every worker (called off the worker threads).
    /// Returns the `(vcpu, slot)` pairs of every CD the workers had
    /// pinned (hold-CD mode); callers with a live runtime recycle them
    /// into the vCPU CD pools via [`crate::Runtime`]'s kill/reclaim
    /// paths so entry churn doesn't bleed the warm-CD reservoir.
    pub fn reap_workers(&self) -> Vec<(usize, Arc<crate::slot::CallSlot>)> {
        let mut freed = Vec::new();
        for (v, p) in self.pools.iter().enumerate() {
            freed.extend(p.reap().into_iter().map(|s| (v, s)));
        }
        freed
    }
}

impl Drop for EntryShared {
    fn drop(&mut self) {
        let p = self.handler_ptr.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !p.is_null() {
            // Safety: the final handler box, never freed elsewhere.
            unsafe { drop(Box::from_raw(p)) };
        }
        // Limbo boxes drop with the Vec.
    }
}
