//! Entry points: binding, lifecycle, kill and exchange.
//!
//! The entry table is the paper's per-processor array scaled to a single
//! shared-memory process: reads are one atomic load (wait-free), writes
//! (bind/kill/exchange — all cold paths) go through the registry lock.

use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::worker::WorkerPool;
use crate::{EntryId, Handler, ProgramId, RtError, Runtime, MAX_ENTRIES};

/// Entry lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EntryState {
    /// Accepting calls.
    Active = 0,
    /// Draining: new calls rejected, in-progress calls complete (§4.5.2).
    SoftKilled = 1,
    /// Dead: resources reaped; in-progress calls were aborted.
    Dead = 2,
}

impl EntryState {
    fn from_u8(v: u8) -> EntryState {
        match v {
            0 => EntryState::Active,
            1 => EntryState::SoftKilled,
            _ => EntryState::Dead,
        }
    }
}

/// Options for a bound entry point.
#[derive(Clone, Copy, Debug)]
pub struct EntryOptions {
    /// Workers permanently hold a CD + scratch page (2–3 µs faster per
    /// call in the paper; defeats stack sharing).
    pub hold_cd: bool,
    /// Synchronous calls may run the handler *inline on the caller's
    /// thread* — the logical conclusion of hand-off scheduling: when the
    /// worker would run on the caller's processor anyway, skip the worker
    /// entirely (no mailbox, no park/unpark). Borrow a CD for the scratch
    /// page, run, return. The trade-offs a service opts into:
    /// per-worker state is bypassed (worker-initialization overrides are
    /// ignored and [`crate::CallCtx::set_worker_handler`] is a no-op on
    /// inline calls), and a faulting handler unwinds on the caller's
    /// thread (still contained to [`crate::RtError::ServerFault`]).
    /// Asynchronous calls and upcalls to the entry still hand off.
    pub inline_ok: bool,
    /// Workers pre-spawned per vCPU at bind time.
    pub initial_workers: usize,
    /// Owning program (may kill/exchange; 0 = anyone).
    pub owner: ProgramId,
    /// Bind at this specific entry ID.
    pub want_ep: Option<EntryId>,
}

impl Default for EntryOptions {
    fn default() -> Self {
        EntryOptions {
            hold_cd: false,
            inline_ok: false,
            initial_workers: 1,
            owner: 0,
            want_ep: None,
        }
    }
}

/// Shared state of one bound entry point.
pub struct EntryShared {
    /// Entry ID.
    pub id: EntryId,
    /// Diagnostic name.
    pub name: String,
    /// Options.
    pub opts: EntryOptions,
    /// Lifecycle state (`EntryState` as u8).
    pub state: AtomicU8,
    /// In-flight calls (soft-kill drain gate).
    pub active: AtomicU64,
    /// Completed calls.
    pub calls: AtomicU64,
    handler_ptr: AtomicPtr<Handler>,
    /// Replaced handlers are quarantined here so in-flight calls through
    /// the old pointer stay valid (freed when the entry drops). The boxes
    /// are reconstructed from `Box::into_raw` pointers handed out via
    /// `handler_ptr`, hence `Box` inside the `Vec`.
    #[allow(clippy::vec_box)]
    handler_graveyard: Mutex<Vec<Box<Handler>>>,
    /// Worker-side mailbox spin budget before an idle worker parks
    /// (0 = park immediately). Mirrors the runtime's [`crate::SpinPolicy`]
    /// so the rendezvous is spin-paired on both sides; updated by
    /// [`Runtime::set_spin_policy`] through the registry.
    pub(crate) idle_spin: AtomicU32,
    /// The runtime's payload plane, shared in at bind so handlers reach
    /// region registries and buffer pools from [`crate::CallCtx`] without
    /// a back reference to the [`Runtime`].
    pub(crate) bulk: Arc<crate::bulk::BulkState>,
    /// The latency-histogram plane, shared in at bind for the same
    /// no-back-reference reason (workers time handler runs, the bulk
    /// accessors time copies).
    pub(crate) obs: Arc<crate::obs::ObsState>,
    /// The flight-recorder plane, shared in at bind (workers record
    /// contained faults; kill paths record on the entry).
    pub(crate) flight: Arc<crate::flight::FlightPlane>,
    /// The facility counters, shared in at bind so the contained-fault
    /// dump can attach the last [`crate::Snapshot`] from the worker
    /// thread (which has no back reference to the [`Runtime`]).
    pub(crate) stats: Arc<crate::stats::RuntimeStats>,
    /// The tracing plane, shared in at bind (workers open handler spans
    /// under the propagated context; dispatch opens call spans).
    pub(crate) spans: Arc<crate::span::SpanPlane>,
    /// EWMA of this entry's traced root-call latency (ns; 0 = unseeded)
    /// — the tail-exemplar promotion baseline. Only traced roots feed
    /// it, so the cell costs nothing untraced.
    pub(crate) trace_ewma_ns: AtomicU64,
    pools: Vec<WorkerPool>,
}

impl EntryShared {
    #[allow(clippy::too_many_arguments)] // internal ctor mirroring the field list
    fn new(
        id: EntryId,
        name: &str,
        opts: EntryOptions,
        handler: Handler,
        n_vcpus: usize,
        idle_spin: u32,
        bulk: Arc<crate::bulk::BulkState>,
        obs: Arc<crate::obs::ObsState>,
        flight: Arc<crate::flight::FlightPlane>,
        stats: Arc<crate::stats::RuntimeStats>,
        spans: Arc<crate::span::SpanPlane>,
    ) -> Self {
        EntryShared {
            id,
            name: name.to_string(),
            opts,
            state: AtomicU8::new(EntryState::Active as u8),
            active: AtomicU64::new(0),
            calls: AtomicU64::new(0),
            handler_ptr: AtomicPtr::new(Box::into_raw(Box::new(handler))),
            handler_graveyard: Mutex::new(Vec::new()),
            idle_spin: AtomicU32::new(idle_spin),
            bulk,
            obs,
            flight,
            stats,
            spans,
            trace_ewma_ns: AtomicU64::new(0),
            pools: (0..n_vcpus).map(|_| WorkerPool::new()).collect(),
        }
    }

    /// Contained-fault diagnostics: the last counter snapshot plus the
    /// faulting vCPU's retained flight events, to stderr. Cold by
    /// construction — only runs after a handler panic was caught, so the
    /// dump can never tax a healthy fast path.
    pub(crate) fn dump_fault(&self, vcpu: usize) {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== contained fault: entry {} ({:?}) on vcpu {vcpu} ===",
            self.id, self.name
        );
        let _ = writeln!(out, "stats: {}", self.stats.snapshot());
        for ev in self.flight.snapshot(vcpu) {
            let _ = writeln!(out, "  {ev}");
        }
        let _ = writeln!(out, "=== end fault dump ===");
        eprint!("{out}");
    }

    /// Current lifecycle state.
    pub fn entry_state(&self) -> EntryState {
        EntryState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// The worker pool on `vcpu`.
    pub fn pool(&self, vcpu: usize) -> &WorkerPool {
        &self.pools[vcpu]
    }

    /// The current handler (one atomic load + an `Arc` clone).
    pub fn handler(&self) -> Handler {
        let p = self.handler_ptr.load(Ordering::Acquire);
        // Safety: handler boxes are only freed when the entry drops; swaps
        // quarantine the old box in the graveyard.
        unsafe { (*p).clone() }
    }

    /// Replace the handler (Exchange, §4.5.2) and clear worker overrides
    /// so initialization reruns against the new code.
    pub fn swap_handler(&self, h: Handler) {
        let new = Box::into_raw(Box::new(h));
        let old = self.handler_ptr.swap(new, Ordering::AcqRel);
        // Safety: `old` came from Box::into_raw at bind or a prior swap.
        self.handler_graveyard.lock().push(unsafe { Box::from_raw(old) });
        for p in &self.pools {
            p.for_each_worker(|w| w.clear_override());
        }
    }

    /// One in-flight call completed (invoked by the worker loop).
    pub fn finish_call(&self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Shut down and join every worker (called off the worker threads).
    pub fn reap_workers(&self) {
        for p in &self.pools {
            p.reap();
        }
    }
}

impl Drop for EntryShared {
    fn drop(&mut self) {
        let p = self.handler_ptr.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !p.is_null() {
            // Safety: the final handler box, never freed elsewhere.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

impl Runtime {
    /// Bind a service: claim an entry ID (specific one via
    /// `opts.want_ep`), install the handler, and pre-spawn
    /// `opts.initial_workers` pooled workers on every vCPU. Also registers
    /// `name` with the name table when non-empty.
    pub fn bind(
        self: &Arc<Self>,
        name: &str,
        opts: EntryOptions,
        handler: Handler,
    ) -> Result<EntryId, RtError> {
        let mut registry = self.registry_lock();
        let ep = match opts.want_ep {
            Some(ep) => {
                if ep >= MAX_ENTRIES {
                    return Err(RtError::UnknownEntry(ep));
                }
                if !self.table_ptr(ep).load(Ordering::Acquire).is_null() {
                    return Err(RtError::TableFull);
                }
                ep
            }
            None => (0..MAX_ENTRIES)
                .find(|i| self.table_ptr(*i).load(Ordering::Acquire).is_null())
                .ok_or(RtError::TableFull)?,
        };
        let entry = Arc::new(EntryShared::new(
            ep,
            name,
            opts,
            handler,
            self.n_vcpus(),
            crate::worker_idle_budget(self.spin_policy()),
            Arc::clone(self.bulk()),
            Arc::clone(self.obs()),
            Arc::clone(self.flight()),
            Arc::clone(&self.stats),
            Arc::clone(self.spans()),
        ));
        for v in 0..self.n_vcpus() {
            for _ in 0..opts.initial_workers {
                entry.pool(v).grow(&entry, v, self.pinned(), true);
            }
        }
        let raw = Arc::as_ptr(&entry) as *mut EntryShared;
        registry.push(Arc::clone(&entry));
        self.table_ptr(ep).store(raw, Ordering::Release);
        drop(registry);
        if !name.is_empty() {
            self.names.lock().insert(name.to_string(), ep);
        }
        Ok(ep)
    }

    /// Soft-kill `ep`: reject new calls, let in-progress calls drain.
    /// Resources are reaped by [`Runtime::wait_drained`] or shutdown.
    pub fn soft_kill(&self, ep: EntryId, by: ProgramId) -> Result<(), RtError> {
        let e = self.entry(ep)?;
        self.check_owner(e, by)?;
        match e.entry_state() {
            EntryState::Active => {
                e.state.store(EntryState::SoftKilled as u8, Ordering::Release);
                // Lifecycle events are facility-global, not tied to a
                // calling vCPU; by convention they land on ring 0.
                e.flight.record(0, crate::flight::FlightKind::SoftKill, ep, by);
                Ok(())
            }
            _ => Err(RtError::EntryDead(ep)),
        }
    }

    /// Wait for a soft-killed entry to drain, then reap its workers.
    /// Must not be called from one of the entry's own handlers.
    pub fn wait_drained(&self, ep: EntryId) -> Result<(), RtError> {
        let e = self.entry(ep)?;
        while e.active.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
        e.state.store(EntryState::Dead as u8, Ordering::Release);
        e.reap_workers();
        Ok(())
    }

    /// Hard-kill `ep`: reject new calls, abort callers of in-progress
    /// calls (they observe [`RtError::Aborted`]), reap all workers. Must
    /// not be called from one of the entry's own handlers.
    pub fn hard_kill(&self, ep: EntryId, by: ProgramId) -> Result<(), RtError> {
        let e = self.entry(ep)?;
        self.check_owner(e, by)?;
        if e.entry_state() == EntryState::Dead {
            return Err(RtError::EntryDead(ep));
        }
        e.state.store(EntryState::Dead as u8, Ordering::SeqCst);
        e.flight.record(0, crate::flight::FlightKind::HardKill, ep, by);
        e.reap_workers();
        Ok(())
    }

    /// Exchange (§4.5.2): atomically replace the handler of a live entry
    /// — on-line replacement of an executing server. Worker-local
    /// initialization overrides are cleared.
    pub fn exchange(&self, ep: EntryId, h: Handler, by: ProgramId) -> Result<(), RtError> {
        let e = self.entry(ep)?;
        self.check_owner(e, by)?;
        if e.entry_state() != EntryState::Active {
            return Err(RtError::EntryDead(ep));
        }
        e.swap_handler(h);
        e.flight.record(0, crate::flight::FlightKind::Exchange, ep, by);
        Ok(())
    }

    /// Free a dead entry's ID for rebinding. Kept separate from the kill
    /// so stale callers racing a kill observe `EntryDead`, never an
    /// unrelated new service.
    pub fn reclaim_slot(&self, ep: EntryId, by: ProgramId) -> Result<(), RtError> {
        let e = self.entry(ep)?;
        self.check_owner(e, by)?;
        if e.entry_state() != EntryState::Dead {
            return Err(RtError::EntryDead(ep));
        }
        // The registry keeps the Arc alive for racing readers; only the
        // table slot is released.
        self.table_ptr(ep).store(std::ptr::null_mut(), Ordering::Release);
        Ok(())
    }

    /// Completed calls of entry `ep` — sync (inline or hand-off), async,
    /// and upcall alike (diagnostics; used by stats-conservation checks).
    pub fn entry_completions(&self, ep: EntryId) -> Result<u64, RtError> {
        Ok(self.entry(ep)?.calls.load(Ordering::Relaxed))
    }

    /// Shrink the pooled workers of (`ep`, `vcpu`) down to `keep`.
    pub fn shrink_workers(&self, ep: EntryId, vcpu: usize, keep: usize) -> Result<usize, RtError> {
        let e = self.entry(ep)?;
        if vcpu >= self.n_vcpus() {
            return Err(RtError::BadVcpu(vcpu));
        }
        Ok(e.pool(vcpu).shrink_to(keep))
    }

    fn check_owner(&self, e: &EntryShared, by: ProgramId) -> Result<(), RtError> {
        if e.opts.owner != 0 && by != 0 && e.opts.owner != by {
            return Err(RtError::NotOwner);
        }
        Ok(())
    }

    pub(crate) fn table_ptr(&self, ep: EntryId) -> &AtomicPtr<EntryShared> {
        &self.table()[ep]
    }

    /// The `Arc` behind entry `ep` (cold path: pool growth, reaping).
    pub(crate) fn entry_arc(&self, ep: EntryId) -> Option<Arc<EntryShared>> {
        let raw = self.table_ptr(ep).load(Ordering::Acquire);
        if raw.is_null() {
            return None;
        }
        self.registry_lock().iter().find(|e| Arc::as_ptr(e) == raw).cloned()
    }
}
