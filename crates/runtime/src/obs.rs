//! Lock-free latency histograms, sharded per virtual processor.
//!
//! The instrumentation must preserve the property it exists to prove:
//! a PPC "accesses no shared data and acquires no locks" in the common
//! case. So the histograms mirror [`crate::stats::StatsCell`] exactly —
//! one `#[repr(align(64))]` `HistCell` per vCPU, `Relaxed` increments
//! on the recording (hot) path, merge and percentile extraction only on
//! the cold read path.
//!
//! Three mechanisms keep the fast path honest:
//!
//! 1. **Compile-out** — the `obs` cargo feature (default on) gates every
//!    bucket array and every recording store. Built with
//!    `--no-default-features`, the whole plane folds to nothing: the
//!    public API remains (so callers need no `cfg`), but reads return
//!    zeros and records are empty inline functions.
//! 2. **Runtime enable bit** — one `Relaxed` load per call
//!    ([`ObsState::try_sample`]). Disabled at runtime, a call pays that
//!    single load and nothing else.
//! 3. **Sampling** — timestamps are the real cost (`Instant::now` is
//!    tens of nanoseconds, comparable to a whole null inline call), so
//!    durations are recorded for every 2^`sample_shift`-th call per
//!    *thread* (default 1/128). A thread-local tick makes the decision
//!    without touching shared memory; sampled calls pay the two
//!    timestamps and one bucket increment, unsampled calls pay a
//!    thread-local increment and a branch. Uniform every-Nth sampling
//!    is unbiased for quantiles, which is what the plane reports.
//!
//! Buckets are log₂-spaced over nanoseconds: bucket *i* holds durations
//! with bit length *i* (i.e. `ns in [2^(i-1), 2^i)` for `i ≥ 1`, and
//! `ns == 0` in bucket 0), clamped to [`BUCKETS`]`-1`. Percentiles
//! interpolate linearly within the crossing bucket (assuming a uniform
//! spread of samples inside it), so reported quantiles are usable for
//! gating rather than snapping to the next power of two.

#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Number of log₂ buckets per histogram (covers 0 ns up to ≈ 2⁶³ ns).
pub const BUCKETS: usize = 64;

/// Default per-thread sampling shift: record every 2^7 = 128th call.
/// Chosen against the ≤5% overhead budget on a ~65 ns null inline call:
/// a sampled call costs ~200 ns (four timestamps plus the bucket and
/// ring stores), so 1/128 amortizes to ~1.6 ns; a busy bench run still
/// collects tens of thousands of samples.
pub const DEFAULT_SAMPLE_SHIFT: u32 = 7;

/// Which duration a histogram tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum LatencyKind {
    /// Synchronous call, end to end (dispatch entry to result return).
    Call = 0,
    /// Client-side rendezvous wait (post → `DONE` observed).
    Rendezvous = 1,
    /// Handler execution (worker-side or inline).
    Handler = 2,
    /// Bulk copy engine transfer (`copy_from`/`copy_to`/`exchange`,
    /// owner `fill`/`read_into`).
    BulkCopy = 3,
    /// Submission-queue occupancy observed by a ring worker when it
    /// picks up a doorbell (a depth in entries, not a duration — the
    /// log₂ buckets read as queue-depth bands).
    RingDepth = 4,
    /// Completions harvested per [`crate::ring::ClientRing::reap`] call
    /// (a batch size, not a duration).
    ReapBatch = 5,
}

/// All kinds, in discriminant order (exporter iteration surface).
pub const KINDS: [LatencyKind; 6] = [
    LatencyKind::Call,
    LatencyKind::Rendezvous,
    LatencyKind::Handler,
    LatencyKind::BulkCopy,
    LatencyKind::RingDepth,
    LatencyKind::ReapBatch,
];

/// Number of tracked [`LatencyKind`]s.
pub const NKINDS: usize = 6;

impl LatencyKind {
    /// Stable lower-case label (Prometheus `kind` tag / JSON key).
    pub fn label(self) -> &'static str {
        match self {
            LatencyKind::Call => "call",
            LatencyKind::Rendezvous => "rendezvous",
            LatencyKind::Handler => "handler",
            LatencyKind::BulkCopy => "bulk_copy",
            LatencyKind::RingDepth => "ring_depth",
            LatencyKind::ReapBatch => "reap_batch",
        }
    }
}

/// The log₂ bucket index of a duration in nanoseconds.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound (ns) of bucket `i` — the value percentiles
/// report for samples landing in that bucket. `bucket_of` of this bound
/// is `i` again, so re-encoding a decoded value never migrates buckets.
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// One virtual processor's histograms: [`NKINDS`] × [`BUCKETS`] bucket
/// counters plus a running sum and max per kind, aligned so two vCPUs
/// never share a cache line (the recording path touches only the
/// calling vCPU's cell).
#[cfg(feature = "obs")]
#[repr(align(64))]
#[derive(Debug)]
pub struct HistCell {
    buckets: [[AtomicU64; BUCKETS]; NKINDS],
    sum_ns: [AtomicU64; NKINDS],
    max_ns: [AtomicU64; NKINDS],
}

#[cfg(feature = "obs")]
impl HistCell {
    fn new() -> Self {
        // `AtomicU64` is not Copy; build the arrays element-wise.
        HistCell {
            buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            sum_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            max_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn record(&self, kind: LatencyKind, ns: u64) {
        let k = kind as usize;
        self.buckets[k][bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns[k].fetch_add(ns, Ordering::Relaxed);
        self.max_ns[k].fetch_max(ns, Ordering::Relaxed);
    }

    #[inline]
    fn record_max(&self, kind: LatencyKind, ns: u64) {
        self.max_ns[kind as usize].fetch_max(ns, Ordering::Relaxed);
    }
}

/// A merged (cross-vCPU) view of one kind's histogram — the cold-path
/// product handed to percentile queries and the exporter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts (log₂ buckets, see [`bucket_bound`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of recorded durations (ns).
    pub sum_ns: u64,
    /// Largest recorded duration (ns; exact, not bucket-rounded).
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; BUCKETS], sum_ns: 0, max_ns: 0 }
    }

    /// Record one duration (single-owner variant, used by bench
    /// harnesses that keep a private histogram rather than going through
    /// a runtime's sampled plane).
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `(inclusive upper bound ns, count)` per bucket, in bucket order —
    /// the exporter's iteration surface.
    pub fn bucket_entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().map(|(i, &n)| (bucket_bound(i), n))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), linearly interpolated within the
    /// log₂ bucket where the cumulative count crosses `q`: the rank's
    /// position among the bucket's samples picks a proportional point
    /// between the bucket's lower and upper bound (assuming samples
    /// spread uniformly inside the bucket — the standard refinement that
    /// keeps a 70 ns p50 from reporting as 127). The topmost populated
    /// bucket uses the exact tracked max as its upper bound, so p100 and
    /// near-tail quantiles are never inflated to a power of two.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let top = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = if i == 0 { 0 } else { bucket_bound(i - 1) + 1 };
                // The top populated bucket's upper bound is the exact
                // tracked max — but clamped into the bucket: `max_ns` may
                // exceed the top *sampled* bucket when the unconditional
                // max feed saw a tail the 1/128 sampler missed, and
                // letting it stretch the interpolation span would corrupt
                // every near-tail quantile.
                let upper = if i == top {
                    self.max_ns.clamp(lower, bucket_bound(i))
                } else {
                    bucket_bound(i)
                };
                let within = rank - seen; // 1 ..= c
                let span = (upper - lower) as f64;
                return lower + (span * within as f64 / c as f64).round() as u64;
            }
            seen += c;
        }
        self.max_ns
    }

    /// Merge `other` into `self` (bucket-wise add).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Clear every bucket, the sum, **and the exact max** back to zero.
    /// The max reset matters: the PR-7 exact-max feed is unconditional,
    /// so a histogram reused across measurement windows would otherwise
    /// report a stale worst-case from a previous window forever.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }

    /// The activity between two cumulative snapshots of the same
    /// histogram: bucket-wise `self - earlier` (saturating, so a
    /// concurrent [`ObsState::reset`] between the two reads degrades to
    /// zeros instead of wrapping).
    ///
    /// Delta-safe exact-max semantics: a cumulative `max_ns` only ever
    /// ratchets up, so it cannot be subtracted. If `self.max_ns` moved
    /// past `earlier.max_ns`, the new worst case was observed *inside*
    /// this window and is reported exactly; otherwise the window saw no
    /// new max and the delta's `max_ns` is 0 — "unknown", which
    /// [`Histogram::quantile`] already handles by clamping the top
    /// bucket's interpolation span to the bucket bounds. Reporting the
    /// stale cumulative max instead would pin every window's p100 at
    /// boot-time's worst call.
    pub fn delta_since(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (o, (a, b)) in
            out.buckets.iter_mut().zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *o = a.saturating_sub(*b);
        }
        out.sum_ns = self.sum_ns.saturating_sub(earlier.sum_ns);
        out.max_ns = if self.max_ns > earlier.max_ns { self.max_ns } else { 0 };
        out
    }
}

/// The runtime's histogram plane: per-vCPU cells plus the shared
/// enable/sampling configuration word.
///
/// With the `obs` feature disabled this struct carries only the (inert)
/// configuration; every record folds to nothing and every read returns
/// an empty [`Histogram`].
#[derive(Debug)]
pub struct ObsState {
    /// Bit 0: histograms enabled. Bits 8..=15: sample shift (record
    /// every 2^shift-th call per thread). One `Relaxed` load per call.
    #[cfg(feature = "obs")]
    cfg: AtomicU32,
    #[cfg(feature = "obs")]
    cells: Box<[HistCell]>,
}

#[cfg(feature = "obs")]
const CFG_HIST_ON: u32 = 1;

thread_local! {
    /// Per-thread sampling tick. Thread-local so the unsampled common
    /// case touches no shared memory at all (a shared per-vCPU tick
    /// would put an RMW on every call — measurable against a ~70 ns
    /// null inline call).
    static SAMPLE_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

impl ObsState {
    /// Histograms for `n_vcpus` virtual processors, enabled, sampling
    /// every 2^[`DEFAULT_SAMPLE_SHIFT`]-th call per thread.
    pub(crate) fn new(n_vcpus: usize) -> Self {
        let _ = n_vcpus;
        ObsState {
            #[cfg(feature = "obs")]
            cfg: AtomicU32::new(CFG_HIST_ON | (DEFAULT_SAMPLE_SHIFT << 8)),
            #[cfg(feature = "obs")]
            cells: (0..n_vcpus.max(1)).map(|_| HistCell::new()).collect(),
        }
    }

    /// Whether histogram recording is compiled in *and* enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "obs")]
        {
            self.cfg.load(Ordering::Relaxed) & CFG_HIST_ON != 0
        }
        #[cfg(not(feature = "obs"))]
        {
            false
        }
    }

    /// Enable or disable recording at runtime (no-op when compiled out).
    pub fn set_enabled(&self, on: bool) {
        #[cfg(feature = "obs")]
        {
            let mut cur = self.cfg.load(Ordering::Relaxed);
            loop {
                let next = if on { cur | CFG_HIST_ON } else { cur & !CFG_HIST_ON };
                match self.cfg.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(c) => cur = c,
                }
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = on;
    }

    /// Set the sampling shift: durations are recorded for every
    /// 2^`shift`-th call per thread. `0` records every call (full cost:
    /// two timestamps per call). Clamped to 16.
    pub fn set_sample_shift(&self, shift: u32) {
        #[cfg(feature = "obs")]
        {
            let shift = shift.min(16);
            let mut cur = self.cfg.load(Ordering::Relaxed);
            loop {
                let next = (cur & !(0xFF << 8)) | (shift << 8);
                match self.cfg.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(c) => cur = c,
                }
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = shift;
    }

    /// The current sampling shift.
    pub fn sample_shift(&self) -> u32 {
        #[cfg(feature = "obs")]
        {
            (self.cfg.load(Ordering::Relaxed) >> 8) & 0xFF
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// The once-per-call gate: one `Relaxed` config load; if enabled,
    /// one thread-local tick. Returns `true` when this call should be
    /// timed (the caller then takes timestamps and calls
    /// [`ObsState::record`]).
    #[inline]
    pub fn try_sample(&self) -> bool {
        #[cfg(feature = "obs")]
        {
            let cfg = self.cfg.load(Ordering::Relaxed);
            if cfg & CFG_HIST_ON == 0 {
                return false;
            }
            let mask = (1u64 << ((cfg >> 8) & 0xFF)) - 1;
            SAMPLE_TICK.with(|t| {
                let n = t.get();
                t.set(n.wrapping_add(1));
                n & mask == 0
            })
        }
        #[cfg(not(feature = "obs"))]
        {
            false
        }
    }

    /// Record one duration into the calling vCPU's cell. Hot-path legal:
    /// three `Relaxed` RMWs on this vCPU's own cache lines. Callers
    /// normally gate this behind [`ObsState::try_sample`]; the method
    /// itself is unconditional (tests and cold paths may record
    /// directly).
    #[inline]
    pub fn record(&self, kind: LatencyKind, vcpu: usize, ns: u64) {
        #[cfg(feature = "obs")]
        self.cells[vcpu].record(kind, ns);
        #[cfg(not(feature = "obs"))]
        {
            let _ = (kind, vcpu, ns);
        }
    }

    /// Feed only the **exact max** for `kind` — one `Relaxed`
    /// `fetch_max` on the calling vCPU's cell, no bucket or sum traffic.
    /// The hand-off dispatch path calls this for *every* timed call (not
    /// just the 1/128 sampled ones): a sampled max under-reports the
    /// worst call by construction — precisely the tail the latency gate
    /// and the flight-ring exemplars exist to catch — while an
    /// unconditional `fetch_max` on an almost-always-unchanged
    /// vCPU-local line costs next to nothing next to a hand-off. No-op
    /// when the plane is disabled or compiled out.
    #[inline]
    pub fn record_max(&self, kind: LatencyKind, vcpu: usize, ns: u64) {
        #[cfg(feature = "obs")]
        if self.enabled() {
            self.cells[vcpu].record_max(kind, ns);
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = (kind, vcpu, ns);
        }
    }

    /// Merge every vCPU's histogram for `kind` (cold read path).
    pub fn merged(&self, kind: LatencyKind) -> Histogram {
        #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
        let mut out = Histogram::new();
        #[cfg(feature = "obs")]
        {
            let k = kind as usize;
            for cell in self.cells.iter() {
                for (i, b) in cell.buckets[k].iter().enumerate() {
                    out.buckets[i] += b.load(Ordering::Relaxed);
                }
                out.sum_ns += cell.sum_ns[k].load(Ordering::Relaxed);
                out.max_ns = out.max_ns.max(cell.max_ns[k].load(Ordering::Relaxed));
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = kind;
        out
    }

    /// One vCPU's histogram for `kind` (cold read path).
    pub fn vcpu_hist(&self, kind: LatencyKind, vcpu: usize) -> Histogram {
        #[cfg_attr(not(feature = "obs"), allow(unused_mut))]
        let mut out = Histogram::new();
        #[cfg(feature = "obs")]
        {
            let k = kind as usize;
            let cell = &self.cells[vcpu];
            for (i, b) in cell.buckets[k].iter().enumerate() {
                out.buckets[i] = b.load(Ordering::Relaxed);
            }
            out.sum_ns = cell.sum_ns[k].load(Ordering::Relaxed);
            out.max_ns = cell.max_ns[k].load(Ordering::Relaxed);
        }
        #[cfg(not(feature = "obs"))]
        let _ = (kind, vcpu);
        out
    }

    /// Reset every bucket, sum and max to zero (cold path; racing
    /// recorders may land increments before or after — fine for the
    /// bench "reset between phases" use).
    pub fn reset(&self) {
        #[cfg(feature = "obs")]
        for cell in self.cells.iter() {
            for k in 0..NKINDS {
                for b in &cell.buckets[k] {
                    b.store(0, Ordering::Relaxed);
                }
                cell.sum_ns[k].store(0, Ordering::Relaxed);
                cell.max_ns[k].store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_covers_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Re-encoding the reported bound never migrates buckets.
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_bound(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn quantiles_step_through_buckets() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7, bound 127
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14, bound 16383
        }
        assert_eq!(h.count(), 100);
        // Interpolated within bucket 7 ([64, 127]): rank 50 of 90
        // samples lands at 64 + 63·50/90 ≈ 99; rank 90 pins the upper
        // bound.
        assert_eq!(h.quantile(0.5), 99);
        assert_eq!(h.quantile(0.9), 127);
        // The topmost populated bucket interpolates toward the exact
        // max ([8192, 10_000]): rank 99 is the 9th of its 10 samples.
        assert_eq!(h.quantile(0.99), 9_819);
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.max_ns, 10_000);
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn quantile_interpolation_brackets_uniform_samples() {
        // A single value recorded repeatedly: every quantile must land
        // inside its bucket, and the median should sit near the value's
        // proportional position, not at the bucket bound.
        let mut h = Histogram::new();
        for _ in 0..1_000 {
            h.record(70); // bucket 7: [64, 127]
        }
        for q in [0.01, 0.5, 0.999] {
            let v = h.quantile(q);
            assert!((64..=70).contains(&v), "q{q} = {v} outside [64, 70]");
        }
        assert_eq!(h.quantile(1.0), 70, "top bucket upper bound is the exact max");
    }

    #[test]
    fn unsampled_max_does_not_skew_quantiles() {
        // The unconditional max feed can push `max_ns` far above the top
        // *sampled* bucket (an 80µs convoy the 1/128 sampler missed).
        // Quantiles must stay inside the sampled distribution; only the
        // exact max reports the outlier.
        let mut h = Histogram::new();
        for _ in 0..1_000 {
            h.record(1_500); // bucket 11: [1024, 2047]
        }
        h.max_ns = 80_000;
        for q in [0.5, 0.99, 0.999] {
            let v = h.quantile(q);
            assert!((1024..=2047).contains(&v), "q{q} = {v} escaped the sampled bucket");
        }
        assert_eq!(h.max_ns, 80_000);
    }

    #[test]
    fn reset_clears_the_exact_max() {
        let mut h = Histogram::new();
        h.record(80_000); // the PR-7 unconditional max feed's outlier
        assert_eq!(h.max_ns, 80_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_ns, 0);
        assert_eq!(h.max_ns, 0, "a stale max must not leak into the next window");
        h.record(500);
        assert_eq!(h.quantile(1.0), 500, "post-reset quantiles use post-reset max only");
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let mut cum = Histogram::new();
        cum.record(100);
        cum.record(80_000);
        let t0 = cum.clone();
        // Window activity: three fast samples, no new max.
        for _ in 0..3 {
            cum.record(120);
        }
        let d = cum.delta_since(&t0);
        assert_eq!(d.count(), 3);
        assert_eq!(d.sum_ns, 360);
        assert_eq!(d.max_ns, 0, "no new max observed in the window");
        // Quantiles stay inside the window's own bucket despite max=0.
        let q = d.quantile(0.99);
        assert!((64..=127).contains(&q), "q={q}");
        // A new max inside the window reports exactly.
        let t1 = cum.clone();
        cum.record(200_000);
        let d2 = cum.delta_since(&t1);
        assert_eq!(d2.count(), 1);
        assert_eq!(d2.max_ns, 200_000);
    }

    #[test]
    fn delta_of_deltas_is_consistent() {
        // delta(t2, t0) == merge(delta(t2, t1), delta(t1, t0)) for
        // buckets and sums — the property the windowed merger relies on.
        let mut cum = Histogram::new();
        cum.record(50);
        let t0 = cum.clone();
        cum.record(500);
        cum.record(700);
        let t1 = cum.clone();
        cum.record(9_000);
        let t2 = cum.clone();
        let whole = t2.delta_since(&t0);
        let mut stitched = t1.delta_since(&t0);
        stitched.merge(&t2.delta_since(&t1));
        assert_eq!(whole.buckets, stitched.buckets);
        assert_eq!(whole.sum_ns, stitched.sum_ns);
        assert_eq!(whole.count(), 3);
        // A racing reset between snapshots degrades to zeros, not wrap.
        let empty = Histogram::new();
        let d = empty.delta_since(&t2);
        assert_eq!(d.count(), 0);
        assert_eq!(d.sum_ns, 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(500_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns, 500_000);
        assert_eq!(a.buckets[bucket_of(5)], 2);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn state_records_per_vcpu_and_merges() {
        let obs = ObsState::new(2);
        obs.record(LatencyKind::Call, 0, 100);
        obs.record(LatencyKind::Call, 1, 200);
        obs.record(LatencyKind::Handler, 1, 50);
        assert_eq!(obs.merged(LatencyKind::Call).count(), 2);
        assert_eq!(obs.merged(LatencyKind::Call).max_ns, 200);
        assert_eq!(obs.vcpu_hist(LatencyKind::Call, 0).count(), 1);
        assert_eq!(obs.merged(LatencyKind::Handler).count(), 1);
        assert_eq!(obs.merged(LatencyKind::BulkCopy).count(), 0);
        // The exact-max feed raises only the max: no bucket, no sum.
        obs.record_max(LatencyKind::Call, 0, 9_999);
        assert_eq!(obs.merged(LatencyKind::Call).count(), 2);
        assert_eq!(obs.merged(LatencyKind::Call).max_ns, 9_999);
        obs.set_enabled(false);
        obs.record_max(LatencyKind::Call, 0, 99_999);
        obs.set_enabled(true);
        assert_eq!(obs.merged(LatencyKind::Call).max_ns, 9_999, "disabled feed is a no-op");
        obs.reset();
        assert_eq!(obs.merged(LatencyKind::Call).count(), 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn sampling_honors_shift_and_enable_bit() {
        let obs = ObsState::new(1);
        obs.set_sample_shift(2); // every 4th
        let hits = (0..32).filter(|_| obs.try_sample()).count();
        assert_eq!(hits, 8);
        obs.set_enabled(false);
        assert!(!obs.enabled());
        assert_eq!((0..32).filter(|_| obs.try_sample()).count(), 0);
        obs.set_enabled(true);
        obs.set_sample_shift(0); // every call
        assert_eq!((0..8).filter(|_| obs.try_sample()).count(), 8);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn cells_are_line_aligned() {
        assert!(std::mem::align_of::<HistCell>() >= 64);
    }
}
