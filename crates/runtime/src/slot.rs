//! Call slots — the runtime's call descriptors.
//!
//! A [`CallSlot`] plays the CD's double role from §2 of the paper: it
//! carries the call's linkage (here: argument/result frames and the
//! caller's thread handle for the hand-off unpark) and it owns the 4 KB
//! scratch page that stands in for the worker's stack. Slots live in
//! per-vCPU lock-free pools and are recycled across services, giving the
//! same serial-sharing cache benefits the paper describes.
//!
//! The hand-off protocol is a two-party atomic rendezvous:
//!
//! 1. the client owns the slot exclusively (it popped it), fills `args`,
//!    `caller_program`, and its own `Thread` handle, then publishes the
//!    slot to the worker's mailbox with `Release` and unparks the worker;
//! 2. the worker acquires the mailbox pointer, runs the handler on the
//!    slot's scratch page, writes `rets`, stores `DONE` with `Release`,
//!    and unparks the client;
//! 3. the client observes `DONE` with `Acquire` and reclaims the slot.
//!
//! No step locks; the only blocking is `thread::park`, the user-level
//! analogue of the paper's hand-off scheduling.

use std::cell::UnsafeCell;
#[cfg(feature = "obs")]
use std::sync::atomic::AtomicU64;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::Thread;

use crossbeam::utils::CachePadded;

/// Size of the per-call scratch page ("one-page stacks", §4.5.4).
pub const SCRATCH_BYTES: usize = 4096;

/// The result frame a shutdown-aborted call completes with.
pub const ABORT_RETS: [u64; 8] = [u64::MAX; 8];

/// Slot lifecycle states.
pub mod state {
    /// In a pool, unowned.
    pub const IDLE: u8 = 0;
    /// Filled by a client, owned by a worker.
    pub const POSTED: u8 = 1;
    /// Handler finished; results valid.
    pub const DONE: u8 = 2;
}

/// One call descriptor.
///
/// The state word is the rendezvous's ping-pong line: the client spins or
/// parks on it while the worker writes results. It is cache-line padded
/// so a spinning client re-reads only that line — the worker's stores to
/// `rets`/`scratch` mid-handler never invalidate the spinner's cached
/// copy, and the line transfers exactly once per call (at `DONE`).
pub struct CallSlot {
    st: CachePadded<AtomicU8>,
    args: UnsafeCell<[u64; 8]>,
    rets: UnsafeCell<[u64; 8]>,
    caller_program: AtomicU32,
    /// Whether a client thread waits for completion (sync call).
    has_client: AtomicBool,
    /// The handler faulted (panicked) while servicing this call.
    faulted: AtomicBool,
    /// Era parity the dispatcher's entry claim was counted under. Rides
    /// the hand-off so whichever side owns the claim's release (worker
    /// for async calls) decrements the right lifecycle shard. Not
    /// feature-gated: it is lifecycle correctness, not observability.
    parity: AtomicU8,
    /// Packed trace context riding the hand-off (0 = no trace). Written
    /// by the client between `fill` and the mailbox post; the mailbox's
    /// Release/Acquire edge publishes it to the worker.
    #[cfg(feature = "obs")]
    trace: AtomicU64,
    client: UnsafeCell<Option<Thread>>,
    scratch: UnsafeCell<Box<[u8; SCRATCH_BYTES]>>,
}

// Safety: access to the UnsafeCell fields follows the ownership protocol
// documented above — exactly one party touches them in each state, with
// Release/Acquire edges on `st` (and the mailbox pointer) ordering the
// transfers.
unsafe impl Sync for CallSlot {}
unsafe impl Send for CallSlot {}

impl CallSlot {
    /// A fresh, idle slot.
    pub fn new() -> Arc<Self> {
        Arc::new(CallSlot {
            st: CachePadded::new(AtomicU8::new(state::IDLE)),
            args: UnsafeCell::new([0; 8]),
            rets: UnsafeCell::new([0; 8]),
            caller_program: AtomicU32::new(0),
            has_client: AtomicBool::new(false),
            faulted: AtomicBool::new(false),
            parity: AtomicU8::new(0),
            #[cfg(feature = "obs")]
            trace: AtomicU64::new(0),
            client: UnsafeCell::new(None),
            scratch: UnsafeCell::new(Box::new([0; SCRATCH_BYTES])),
        })
    }

    /// Client side: fill the slot prior to posting. Caller must own the
    /// slot (popped from a pool, or the held CD of a worker it popped).
    ///
    /// Held CDs have one benign window: the *previous* caller may still be
    /// between observing `DONE` and calling [`CallSlot::reset`] when the
    /// next caller (which already owns the worker) arrives, so we spin the
    /// few instructions until the slot returns to `IDLE`.
    pub fn fill(&self, args: [u64; 8], program: u32, client: Option<Thread>) {
        let mut spins = 0u32;
        while self.st.load(Ordering::Acquire) != state::IDLE {
            std::hint::spin_loop();
            spins += 1;
            if spins > 1 << 12 {
                std::thread::yield_now();
            }
        }
        // Safety: exclusive ownership in IDLE state.
        unsafe {
            *self.args.get() = args;
            *self.client.get() = client.clone();
        }
        self.caller_program.store(program, Ordering::Relaxed);
        self.has_client.store(client.is_some(), Ordering::Relaxed);
        self.faulted.store(false, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        self.trace.store(0, Ordering::Relaxed);
        self.st.store(state::POSTED, Ordering::Release);
    }

    /// Client side, after `fill` and before posting: attach the packed
    /// trace context ([`crate::span::TraceCtx::pack`]) to the call. The
    /// mailbox publish orders it for the worker. No-op compiled out.
    #[inline]
    pub fn set_trace(&self, word: u64) {
        #[cfg(feature = "obs")]
        self.trace.store(word, Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = word;
    }

    /// Worker side: the call's packed trace context (0 = none, and
    /// always 0 with the `obs` feature off).
    #[inline]
    pub fn trace_word(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.trace.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Worker side: read the arguments (slot must be POSTED and owned).
    pub fn read_args(&self) -> [u64; 8] {
        debug_assert_eq!(self.st.load(Ordering::Relaxed), state::POSTED);
        // Safety: worker owns the slot after acquiring the mailbox edge.
        unsafe { *self.args.get() }
    }

    /// Worker side: the caller's program identity.
    pub fn caller_program(&self) -> u32 {
        self.caller_program.load(Ordering::Relaxed)
    }

    /// Client side, after `fill` and before posting: record the claim's
    /// era parity. The mailbox publish orders it for the worker.
    #[inline]
    pub(crate) fn set_parity(&self, p: u8) {
        self.parity.store(p, Ordering::Relaxed);
    }

    /// Worker side: the claim's era parity.
    #[inline]
    pub(crate) fn parity(&self) -> u8 {
        self.parity.load(Ordering::Relaxed)
    }

    /// Whether a client thread waits synchronously on this call — which
    /// side owns the claim release (see `worker_loop`).
    #[inline]
    pub(crate) fn has_client(&self) -> bool {
        self.has_client.load(Ordering::Relaxed)
    }

    /// Worker side: run `f` with exclusive access to the scratch page.
    pub fn with_scratch<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        // Safety: worker owns the slot while POSTED.
        let scratch = unsafe { &mut **self.scratch.get() };
        f(scratch)
    }

    /// Raw pointer to the scratch page, for an exclusive owner operating
    /// outside the rendezvous protocol (the lazy inline scratch borrow).
    pub(crate) fn scratch_raw(&self) -> *mut u8 {
        // Safety: the caller owns the slot; this only materializes the
        // page's data pointer without forming a reference to its bytes.
        unsafe { (*self.scratch.get()).as_mut_ptr() }
    }

    /// Worker side: publish the results and wake the client if one waits.
    pub fn complete(&self, rets: [u64; 8]) {
        // Safety: worker still owns the slot.
        let client = unsafe {
            *self.rets.get() = rets;
            (*self.client.get()).take()
        };
        let had_client = self.has_client.load(Ordering::Relaxed);
        self.st.store(state::DONE, Ordering::Release);
        if had_client {
            if let Some(t) = client {
                t.unpark();
            }
        }
    }

    /// Worker side: mark the call as faulted before completing (the
    /// handler panicked).
    pub fn mark_faulted(&self) {
        self.faulted.store(true, Ordering::Relaxed);
    }

    /// Did the handler fault? (Valid once DONE.)
    pub fn is_faulted(&self) -> bool {
        self.faulted.load(Ordering::Relaxed)
    }

    /// Whether the handler has completed.
    pub fn is_done(&self) -> bool {
        self.st.load(Ordering::Acquire) == state::DONE
    }

    /// Client side: park until DONE (sync calls: the worker unparks us;
    /// async waiters: bounded park so a missed token cannot wedge us).
    pub fn wait_done(&self) {
        while !self.is_done() {
            if self.has_client.load(Ordering::Relaxed) {
                std::thread::park();
            } else {
                std::thread::park_timeout(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Client side: spin on the state word for up to `budget` iterations,
    /// then fall back to parking — the adaptive rendezvous for sync
    /// calls. Returns `true` if the wait resolved without parking.
    ///
    /// The spin reads only the (padded) state word with `Acquire` plus
    /// `spin_loop` hints; it yields the processor immediately and then
    /// every 64 iterations, so that on an oversubscribed (or single-core)
    /// host the just-unparked worker actually runs — pure spinning there
    /// would burn the client's timeslice while the worker starves behind
    /// it, and the handler cannot start until the worker is scheduled.
    pub fn wait_done_spin(&self, budget: u32) -> bool {
        if self.is_done() {
            return true;
        }
        let mut spins = 0u32;
        while spins < budget {
            if spins & 63 == 0 {
                std::thread::yield_now();
            }
            std::hint::spin_loop();
            if self.is_done() {
                return true;
            }
            spins += 1;
        }
        // Budget exhausted: park. The worker's completion unpark makes
        // this safe even if DONE lands between the check and the park —
        // the token is consumed by the next park, and the loop re-checks.
        while !self.is_done() {
            std::thread::park();
        }
        false
    }

    /// Client side: the bounded-spin rendezvous with escalation. Spin
    /// like [`CallSlot::wait_done_spin`] for up to `budget` iterations,
    /// then — instead of parking straight away — run up to
    /// [`crate::spin::ESCALATE_YIELDS`] *donation* rounds: priority-unpark
    /// the worker (a redundant token on a running worker is harmless — the
    /// idle wait tolerates spurious tokens) and `yield_now`, explicitly
    /// handing the processor to the thread we are waiting on. Only when
    /// donation also fails does the client park.
    ///
    /// Spinning out the budget means the worker lost the processor
    /// mid-handler (or never got it); a plain park adds a futex
    /// sleep/wake round trip on top of the context switch the worker
    /// needs anyway, and under scheduler contention that wake is exactly
    /// the multi-10µs convoy the tail histograms show. Donating the
    /// timeslice gets the worker running for the price of the context
    /// switch alone.
    ///
    /// Returns `(resolved_without_park, escalated)`.
    pub(crate) fn wait_done_donate(
        &self,
        budget: u32,
        worker: Option<&Thread>,
    ) -> (bool, bool) {
        // The EWMA budget decides whether spinning is worth it at all;
        // the hard cap decides how long to spin before donating beats
        // hoping (see `spin::SPIN_HARD_CAP`).
        if self.wait_done_spin_phase(budget.min(crate::spin::SPIN_HARD_CAP)) {
            return (true, false);
        }
        let Some(worker) = worker else {
            // No worker thread to donate to (not yet spawned its first
            // call); fall back to the plain park.
            while !self.is_done() {
                std::thread::park();
            }
            return (false, true);
        };
        let mut rounds = 0u32;
        while rounds < crate::spin::ESCALATE_YIELDS {
            worker.unpark();
            std::thread::yield_now();
            if self.is_done() {
                return (true, true);
            }
            rounds += 1;
        }
        while !self.is_done() {
            std::thread::park();
        }
        (false, true)
    }

    /// The spin phase of [`CallSlot::wait_done_spin`], without the park
    /// fallback: `true` if DONE landed within `budget`.
    fn wait_done_spin_phase(&self, budget: u32) -> bool {
        if self.is_done() {
            return true;
        }
        let mut spins = 0u32;
        while spins < budget {
            if spins & 63 == 0 {
                std::thread::yield_now();
            }
            std::hint::spin_loop();
            if self.is_done() {
                return true;
            }
            spins += 1;
        }
        false
    }

    /// Client side: read the results (slot must be DONE).
    pub fn read_rets(&self) -> [u64; 8] {
        debug_assert!(self.is_done());
        // Safety: DONE was observed with Acquire; worker wrote before the
        // Release store.
        unsafe { *self.rets.get() }
    }

    /// Return the slot to IDLE for pooling.
    pub fn reset(&self) {
        self.st.store(state::IDLE, Ordering::Release);
    }

    /// Client side, before posting (slot owned, IDLE): copy a request
    /// payload into the scratch page — the runtime's bulk-data channel
    /// (§4.2's CopyFrom direction). Panics if the payload exceeds the
    /// page.
    pub fn write_payload(&self, data: &[u8]) {
        assert!(data.len() <= SCRATCH_BYTES, "payload exceeds the scratch page");
        // Safety: exclusive ownership before POSTED.
        let scratch = unsafe { &mut **self.scratch.get() };
        scratch[..data.len()].copy_from_slice(data);
    }

    /// Client side, after DONE and before reset: copy a response payload
    /// out of the scratch page (§4.2's CopyTo direction).
    pub fn read_payload(&self, len: usize) -> Vec<u8> {
        debug_assert!(self.is_done());
        let len = len.min(SCRATCH_BYTES);
        // Safety: DONE observed with Acquire; the worker is finished.
        let scratch = unsafe { &**self.scratch.get() };
        scratch[..len].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_complete_roundtrip() {
        let s = CallSlot::new();
        s.fill([1, 2, 3, 4, 5, 6, 7, 8], 42, None);
        assert_eq!(s.read_args(), [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(s.caller_program(), 42);
        assert!(!s.is_done());
        s.complete([8, 7, 6, 5, 4, 3, 2, 1]);
        assert!(s.is_done());
        assert_eq!(s.read_rets(), [8, 7, 6, 5, 4, 3, 2, 1]);
        s.reset();
        assert!(!s.is_done());
    }

    #[test]
    fn scratch_is_page_sized_and_writable() {
        let s = CallSlot::new();
        s.fill([0; 8], 0, None);
        s.with_scratch(|buf| {
            assert_eq!(buf.len(), SCRATCH_BYTES);
            buf[0] = 0xAB;
            buf[SCRATCH_BYTES - 1] = 0xCD;
        });
        // Scratch persists across calls (recycled stacks).
        s.with_scratch(|buf| {
            assert_eq!(buf[0], 0xAB);
            assert_eq!(buf[SCRATCH_BYTES - 1], 0xCD);
        });
    }

    #[cfg(feature = "obs")]
    #[test]
    fn trace_word_rides_the_slot_and_clears_on_refill() {
        let s = CallSlot::new();
        s.fill([0; 8], 0, None);
        assert_eq!(s.trace_word(), 0);
        s.set_trace(0xAB_CD);
        assert_eq!(s.trace_word(), 0xAB_CD);
        s.complete([0; 8]);
        s.reset();
        s.fill([0; 8], 0, None);
        assert_eq!(s.trace_word(), 0, "stale context never leaks into the next call");
    }

    #[test]
    fn cross_thread_handoff() {
        let s = CallSlot::new();
        let s2 = Arc::clone(&s);
        s.fill([5; 8], 1, Some(std::thread::current()));
        let h = std::thread::spawn(move || {
            let args = s2.read_args();
            s2.complete([args[0] + 1; 8]);
        });
        s.wait_done();
        assert_eq!(s.read_rets(), [6; 8]);
        h.join().unwrap();
    }
}
