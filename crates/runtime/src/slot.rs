//! Call slots — the runtime's call descriptors.
//!
//! A [`CallSlot`] plays the CD's double role from §2 of the paper: it
//! carries the call's linkage (here: argument/result frames and the
//! caller's thread handle for the hand-off unpark) and it owns the 4 KB
//! scratch page that stands in for the worker's stack. Slots live in
//! per-vCPU lock-free pools and are recycled across services, giving the
//! same serial-sharing cache benefits the paper describes.
//!
//! The rendezvous state machine itself lives in [`SlotCore`] — a
//! `#[repr(C)]`, **pointer-free, position-independent** structure so the
//! identical protocol runs in two homes:
//!
//! * embedded in a heap [`CallSlot`] for the in-process path, where the
//!   completion wake is `Thread::unpark` on the caller's handle; and
//! * resident in a shared segment ([`crate::shm::Segment`]) for the
//!   cross-process transport ([`crate::xproc`]), where the wake is a
//!   futex on the state word — which is why the state word is an
//!   `AtomicU32` (the futex granule), not a byte.
//!
//! The layout is locked down with compile-time assertions
//! ([`assert_segment_layout!`](crate::assert_segment_layout)): both sides
//! of a process boundary must agree on every offset, and drift is a build
//! error, not UB. Process-local linkage (the parked `Thread` handle, the
//! boxed scratch page) stays **outside** the core in `CallSlot`.
//!
//! The hand-off protocol is a two-party atomic rendezvous:
//!
//! 1. the client owns the slot exclusively (it popped it), fills `args`,
//!    `caller_program`, and its own `Thread` handle, then publishes the
//!    slot to the worker's mailbox with `Release` and unparks the worker;
//! 2. the worker acquires the mailbox pointer, runs the handler on the
//!    slot's scratch page, writes `rets`, stores `DONE` with `Release`,
//!    and unparks the client;
//! 3. the client observes `DONE` with `Acquire` and reclaims the slot.
//!
//! No step locks; the only blocking is `thread::park`, the user-level
//! analogue of the paper's hand-off scheduling.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::Thread;

/// Size of the per-call scratch page ("one-page stacks", §4.5.4).
pub const SCRATCH_BYTES: usize = 4096;

/// The result frame a shutdown-aborted call completes with.
pub const ABORT_RETS: [u64; 8] = [u64::MAX; 8];

/// Slot lifecycle states. `u32` because the state word doubles as a
/// futex word on the cross-process path.
pub mod state {
    /// In a pool, unowned.
    pub const IDLE: u32 = 0;
    /// Filled by a client, owned by a worker.
    pub const POSTED: u32 = 1;
    /// Handler finished; results valid.
    pub const DONE: u32 = 2;
}

/// Who waits on the slot's completion — the value of
/// [`SlotCore`]'s waiter word.
pub mod waiter {
    /// Nobody blocks (async call; completion is polled).
    pub const NONE: u32 = 0;
    /// A process-local thread parks on its `Thread` handle.
    pub const THREAD: u32 = 1;
    /// A remote process sleeps on the state word via futex.
    pub const FUTEX: u32 = 2;
}

/// The position-independent core of a call descriptor: the rendezvous
/// state word, the 8-word argument/result frames, and the control words
/// that ride the hand-off. `#[repr(C)]`, pointer-free, layout asserted —
/// safe to place in a shared segment and operate from two processes.
///
/// Line layout (64-byte lines, asserted below):
///
/// ```text
/// line 0   st | waiter | caller_program | faulted | parity
///          | status | aux | payload_len | trace | pad
/// line 1   args[0..8]
/// line 2   rets[0..8]
/// ```
///
/// The state word shares line 0 only with words that are **quiescent
/// during the wait**: `waiter`/`caller_program`/`parity`/`trace` are
/// written by the client before POSTED, `status`/`aux`/`faulted` by the
/// server at completion (right before the `DONE` store that ends the
/// spin). `args` and `rets` get their own lines, so a spinning client
/// re-reads only line 0 — the worker's stores to `rets` mid-completion
/// never bounce the spinner's cached line until `DONE` lands.
#[repr(C, align(64))]
pub struct SlotCore {
    st: AtomicU32,
    /// Which wake mechanism completion must use ([`waiter`]).
    waiter: AtomicU32,
    caller_program: AtomicU32,
    /// The handler faulted (panicked) while servicing this call.
    faulted: AtomicU32,
    /// Era parity the dispatcher's entry claim was counted under. Rides
    /// the hand-off so whichever side owns the claim's release (worker
    /// for async calls) decrements the right lifecycle shard. Not
    /// feature-gated: it is lifecycle correctness, not observability.
    parity: AtomicU32,
    /// Wire status for cross-process completion (0 = ok; see
    /// [`crate::xproc`]'s `RtError` code mapping). Unused in-process —
    /// errors there travel as `Result`s, never through the slot.
    status: AtomicU32,
    /// Auxiliary word accompanying `status` (entry/region id).
    aux: AtomicU32,
    /// Valid payload bytes in the slot's payload page (cross-process
    /// `call_with_payload`); unused in-process (the scratch page is
    /// process-local there).
    payload_len: AtomicU32,
    /// Packed trace context riding the hand-off (0 = no trace). Written
    /// by the client between `fill` and the mailbox post; the mailbox's
    /// Release/Acquire edge publishes it to the worker. Present in the
    /// layout unconditionally — segment layout cannot depend on compile
    /// features — but with `obs` off nothing ever stores to it.
    trace: AtomicU64,
    _pad0: [u8; 24],
    args: UnsafeCell<[u64; 8]>,
    rets: UnsafeCell<[u64; 8]>,
}

crate::assert_segment_layout!(SlotCore {
    size: 192,
    align: 64,
    st: 0,
    waiter: 4,
    caller_program: 8,
    faulted: 12,
    parity: 16,
    status: 20,
    aux: 24,
    payload_len: 28,
    trace: 32,
    args: 64,
    rets: 128,
});

// Safety: access to the UnsafeCell frames follows the ownership protocol
// documented on the module — exactly one party touches them in each
// state, with Release/Acquire edges on `st` (and the mailbox pointer)
// ordering the transfers.
unsafe impl Sync for SlotCore {}
unsafe impl Send for SlotCore {}

impl SlotCore {
    /// A fresh, idle core (heap-embedded use; segment-resident cores are
    /// born valid from zeroed segment memory — all-zero is exactly
    /// `IDLE`/`NONE`/empty frames, which the layout test pins).
    pub fn new() -> SlotCore {
        SlotCore {
            st: AtomicU32::new(state::IDLE),
            waiter: AtomicU32::new(waiter::NONE),
            caller_program: AtomicU32::new(0),
            faulted: AtomicU32::new(0),
            parity: AtomicU32::new(0),
            status: AtomicU32::new(0),
            aux: AtomicU32::new(0),
            payload_len: AtomicU32::new(0),
            trace: AtomicU64::new(0),
            _pad0: [0; 24],
            args: UnsafeCell::new([0; 8]),
            rets: UnsafeCell::new([0; 8]),
        }
    }

    /// Client side: fill the frame prior to posting. Caller must own the
    /// slot. Spins out the benign held-CD reset window (see
    /// [`CallSlot::fill`]).
    pub fn fill(&self, args: [u64; 8], program: u32, wait_mode: u32) {
        let mut spins = 0u32;
        while self.st.load(Ordering::Acquire) != state::IDLE {
            std::hint::spin_loop();
            spins += 1;
            if spins > 1 << 12 {
                std::thread::yield_now();
            }
        }
        // Safety: exclusive ownership in IDLE state.
        unsafe {
            *self.args.get() = args;
        }
        self.caller_program.store(program, Ordering::Relaxed);
        self.waiter.store(wait_mode, Ordering::Relaxed);
        self.faulted.store(0, Ordering::Relaxed);
        self.status.store(0, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        self.trace.store(0, Ordering::Relaxed);
    }

    /// Publish the filled frame to the peer (`Release`): the slot
    /// transitions to POSTED. Separate from [`SlotCore::fill`] so the
    /// in-process path can interleave its mailbox hand-off and the
    /// cross-process path its doorbell.
    #[inline]
    pub fn post(&self) {
        self.st.store(state::POSTED, Ordering::Release);
    }

    /// The state word, for futex waits and external polling.
    #[inline]
    pub fn state_word(&self) -> &AtomicU32 {
        &self.st
    }

    /// Server side: read the arguments (slot must be POSTED and owned).
    #[inline]
    pub fn read_args(&self) -> [u64; 8] {
        debug_assert_eq!(self.st.load(Ordering::Relaxed), state::POSTED);
        // Safety: owner reads after acquiring the POSTED edge.
        unsafe { *self.args.get() }
    }

    /// Server side: publish results + status, transition to DONE
    /// (`Release`). The *wake* is the caller's job — in-process unpark
    /// or cross-process futex — because the wake mechanism is the one
    /// thing the core cannot carry position-independently.
    pub fn complete_frame(&self, rets: [u64; 8], status: u32, aux: u32) {
        // Safety: server owns the slot while POSTED.
        unsafe {
            *self.rets.get() = rets;
        }
        self.status.store(status, Ordering::Relaxed);
        self.aux.store(aux, Ordering::Relaxed);
        self.st.store(state::DONE, Ordering::Release);
    }

    /// Client side: read the results (slot must be DONE).
    #[inline]
    pub fn read_rets(&self) -> [u64; 8] {
        debug_assert_eq!(self.st.load(Ordering::Relaxed), state::DONE);
        // Safety: DONE observed with Acquire; server wrote before the
        // Release store.
        unsafe { *self.rets.get() }
    }

    /// Completion status word (valid once DONE; 0 = ok).
    #[inline]
    pub fn status(&self) -> (u32, u32) {
        (self.status.load(Ordering::Relaxed), self.aux.load(Ordering::Relaxed))
    }

    /// Payload length word (cross-process payload calls).
    #[inline]
    pub fn payload_len(&self) -> u32 {
        self.payload_len.load(Ordering::Relaxed)
    }

    /// Set the payload length word.
    #[inline]
    pub fn set_payload_len(&self, n: u32) {
        self.payload_len.store(n, Ordering::Relaxed);
    }

    /// Return the slot to IDLE for pooling / reuse.
    #[inline]
    pub fn reset(&self) {
        self.st.store(state::IDLE, Ordering::Release);
    }
}

impl Default for SlotCore {
    fn default() -> Self {
        SlotCore::new()
    }
}

/// One call descriptor (the in-process home of a [`SlotCore`]).
///
/// The state word is the rendezvous's ping-pong line: the client spins or
/// parks on it while the worker writes results. The core's line layout
/// keeps `rets`/`scratch` stores off the spinner's line — it transfers
/// exactly once per call (at `DONE`).
pub struct CallSlot {
    core: SlotCore,
    client: UnsafeCell<Option<Thread>>,
    scratch: UnsafeCell<Box<[u8; SCRATCH_BYTES]>>,
}

// Safety: see `SlotCore`; the `client` cell is written by the filling
// client and taken by the completing worker under the same protocol, and
// `scratch` is owned by whichever party owns the slot.
unsafe impl Sync for CallSlot {}
unsafe impl Send for CallSlot {}

impl CallSlot {
    /// A fresh, idle slot.
    pub fn new() -> Arc<Self> {
        Arc::new(CallSlot {
            core: SlotCore::new(),
            client: UnsafeCell::new(None),
            scratch: UnsafeCell::new(Box::new([0; SCRATCH_BYTES])),
        })
    }

    /// Client side: fill the slot prior to posting. Caller must own the
    /// slot (popped from a pool, or the held CD of a worker it popped).
    ///
    /// Held CDs have one benign window: the *previous* caller may still be
    /// between observing `DONE` and calling [`CallSlot::reset`] when the
    /// next caller (which already owns the worker) arrives, so we spin the
    /// few instructions until the slot returns to `IDLE` (inside
    /// [`SlotCore::fill`]).
    pub fn fill(&self, args: [u64; 8], program: u32, client: Option<Thread>) {
        let mode = if client.is_some() { waiter::THREAD } else { waiter::NONE };
        self.core.fill(args, program, mode);
        // Safety: exclusive ownership in IDLE state (fill spun it in).
        unsafe {
            *self.client.get() = client;
        }
        self.core.post();
    }

    /// Client side, after `fill` and before posting: attach the packed
    /// trace context ([`crate::span::TraceCtx::pack`]) to the call. The
    /// mailbox publish orders it for the worker. No-op compiled out.
    #[inline]
    pub fn set_trace(&self, word: u64) {
        #[cfg(feature = "obs")]
        self.core.trace.store(word, Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = word;
    }

    /// Worker side: the call's packed trace context (0 = none, and
    /// always 0 with the `obs` feature off).
    #[inline]
    pub fn trace_word(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.core.trace.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }

    /// Worker side: read the arguments (slot must be POSTED and owned).
    pub fn read_args(&self) -> [u64; 8] {
        self.core.read_args()
    }

    /// Worker side: the caller's program identity.
    pub fn caller_program(&self) -> u32 {
        self.core.caller_program.load(Ordering::Relaxed)
    }

    /// Client side, after `fill` and before posting: record the claim's
    /// era parity. The mailbox publish orders it for the worker.
    #[inline]
    pub(crate) fn set_parity(&self, p: u8) {
        self.core.parity.store(u32::from(p), Ordering::Relaxed);
    }

    /// Worker side: the claim's era parity.
    #[inline]
    pub(crate) fn parity(&self) -> u8 {
        self.core.parity.load(Ordering::Relaxed) as u8
    }

    /// Whether a client thread waits synchronously on this call — which
    /// side owns the claim release (see `worker_loop`).
    #[inline]
    pub(crate) fn has_client(&self) -> bool {
        self.core.waiter.load(Ordering::Relaxed) == waiter::THREAD
    }

    /// Worker side: run `f` with exclusive access to the scratch page.
    pub fn with_scratch<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        // Safety: worker owns the slot while POSTED.
        let scratch = unsafe { &mut **self.scratch.get() };
        f(scratch)
    }

    /// Raw pointer to the scratch page, for an exclusive owner operating
    /// outside the rendezvous protocol (the lazy inline scratch borrow).
    pub(crate) fn scratch_raw(&self) -> *mut u8 {
        // Safety: the caller owns the slot; this only materializes the
        // page's data pointer without forming a reference to its bytes.
        unsafe { (*self.scratch.get()).as_mut_ptr() }
    }

    /// Worker side: publish the results and wake the client if one waits.
    pub fn complete(&self, rets: [u64; 8]) {
        // Safety: worker still owns the slot.
        let client = unsafe { (*self.client.get()).take() };
        let had_client = self.has_client();
        self.core.complete_frame(rets, 0, 0);
        if had_client {
            if let Some(t) = client {
                t.unpark();
            }
        }
    }

    /// Worker side: mark the call as faulted before completing (the
    /// handler panicked).
    pub fn mark_faulted(&self) {
        self.core.faulted.store(1, Ordering::Relaxed);
    }

    /// Did the handler fault? (Valid once DONE.)
    pub fn is_faulted(&self) -> bool {
        self.core.faulted.load(Ordering::Relaxed) != 0
    }

    /// Whether the handler has completed.
    pub fn is_done(&self) -> bool {
        self.core.st.load(Ordering::Acquire) == state::DONE
    }

    /// Client side: park until DONE (sync calls: the worker unparks us;
    /// async waiters: bounded park so a missed token cannot wedge us).
    pub fn wait_done(&self) {
        while !self.is_done() {
            if self.has_client() {
                std::thread::park();
            } else {
                std::thread::park_timeout(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Client side: spin on the state word for up to `budget` iterations,
    /// then fall back to parking — the adaptive rendezvous for sync
    /// calls. Returns `true` if the wait resolved without parking.
    ///
    /// The spin reads only the (padded) state word with `Acquire` plus
    /// `spin_loop` hints; it yields the processor immediately and then
    /// every 64 iterations, so that on an oversubscribed (or single-core)
    /// host the just-unparked worker actually runs — pure spinning there
    /// would burn the client's timeslice while the worker starves behind
    /// it, and the handler cannot start until the worker is scheduled.
    pub fn wait_done_spin(&self, budget: u32) -> bool {
        if self.is_done() {
            return true;
        }
        let mut spins = 0u32;
        while spins < budget {
            if spins & 63 == 0 {
                std::thread::yield_now();
            }
            std::hint::spin_loop();
            if self.is_done() {
                return true;
            }
            spins += 1;
        }
        // Budget exhausted: park. The worker's completion unpark makes
        // this safe even if DONE lands between the check and the park —
        // the token is consumed by the next park, and the loop re-checks.
        while !self.is_done() {
            std::thread::park();
        }
        false
    }

    /// Client side: the bounded-spin rendezvous with escalation. Spin
    /// like [`CallSlot::wait_done_spin`] for up to `budget` iterations,
    /// then — instead of parking straight away — run up to
    /// [`crate::spin::ESCALATE_YIELDS`] *donation* rounds: priority-unpark
    /// the worker (a redundant token on a running worker is harmless — the
    /// idle wait tolerates spurious tokens) and `yield_now`, explicitly
    /// handing the processor to the thread we are waiting on. Only when
    /// donation also fails does the client park.
    ///
    /// Spinning out the budget means the worker lost the processor
    /// mid-handler (or never got it); a plain park adds a futex
    /// sleep/wake round trip on top of the context switch the worker
    /// needs anyway, and under scheduler contention that wake is exactly
    /// the multi-10µs convoy the tail histograms show. Donating the
    /// timeslice gets the worker running for the price of the context
    /// switch alone.
    ///
    /// Returns `(resolved_without_park, escalated)`.
    pub(crate) fn wait_done_donate(
        &self,
        budget: u32,
        worker: Option<&Thread>,
    ) -> (bool, bool) {
        // The EWMA budget decides whether spinning is worth it at all;
        // the hard cap decides how long to spin before donating beats
        // hoping (see `spin::SPIN_HARD_CAP`).
        if self.wait_done_spin_phase(budget.min(crate::spin::SPIN_HARD_CAP)) {
            return (true, false);
        }
        let Some(worker) = worker else {
            // No worker thread to donate to (not yet spawned its first
            // call); fall back to the plain park.
            while !self.is_done() {
                std::thread::park();
            }
            return (false, true);
        };
        let mut rounds = 0u32;
        while rounds < crate::spin::ESCALATE_YIELDS {
            worker.unpark();
            std::thread::yield_now();
            if self.is_done() {
                return (true, true);
            }
            rounds += 1;
        }
        while !self.is_done() {
            std::thread::park();
        }
        (false, true)
    }

    /// The spin phase of [`CallSlot::wait_done_spin`], without the park
    /// fallback: `true` if DONE landed within `budget`.
    fn wait_done_spin_phase(&self, budget: u32) -> bool {
        if self.is_done() {
            return true;
        }
        let mut spins = 0u32;
        while spins < budget {
            if spins & 63 == 0 {
                std::thread::yield_now();
            }
            std::hint::spin_loop();
            if self.is_done() {
                return true;
            }
            spins += 1;
        }
        false
    }

    /// Client side: read the results (slot must be DONE).
    pub fn read_rets(&self) -> [u64; 8] {
        debug_assert!(self.is_done());
        self.core.read_rets()
    }

    /// Return the slot to IDLE for pooling.
    pub fn reset(&self) {
        self.core.reset();
    }

    /// Client side, before posting (slot owned, IDLE): copy a request
    /// payload into the scratch page — the runtime's bulk-data channel
    /// (§4.2's CopyFrom direction). Panics if the payload exceeds the
    /// page.
    pub fn write_payload(&self, data: &[u8]) {
        assert!(data.len() <= SCRATCH_BYTES, "payload exceeds the scratch page");
        // Safety: exclusive ownership before POSTED.
        let scratch = unsafe { &mut **self.scratch.get() };
        scratch[..data.len()].copy_from_slice(data);
    }

    /// Client side, after DONE and before reset: copy a response payload
    /// out of the scratch page (§4.2's CopyTo direction).
    pub fn read_payload(&self, len: usize) -> Vec<u8> {
        debug_assert!(self.is_done());
        let len = len.min(SCRATCH_BYTES);
        // Safety: DONE observed with Acquire; the worker is finished.
        let scratch = unsafe { &**self.scratch.get() };
        scratch[..len].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_complete_roundtrip() {
        let s = CallSlot::new();
        s.fill([1, 2, 3, 4, 5, 6, 7, 8], 42, None);
        assert_eq!(s.read_args(), [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(s.caller_program(), 42);
        assert!(!s.is_done());
        s.complete([8, 7, 6, 5, 4, 3, 2, 1]);
        assert!(s.is_done());
        assert_eq!(s.read_rets(), [8, 7, 6, 5, 4, 3, 2, 1]);
        s.reset();
        assert!(!s.is_done());
    }

    #[test]
    fn scratch_is_page_sized_and_writable() {
        let s = CallSlot::new();
        s.fill([0; 8], 0, None);
        s.with_scratch(|buf| {
            assert_eq!(buf.len(), SCRATCH_BYTES);
            buf[0] = 0xAB;
            buf[SCRATCH_BYTES - 1] = 0xCD;
        });
        // Scratch persists across calls (recycled stacks).
        s.with_scratch(|buf| {
            assert_eq!(buf[0], 0xAB);
            assert_eq!(buf[SCRATCH_BYTES - 1], 0xCD);
        });
    }

    #[cfg(feature = "obs")]
    #[test]
    fn trace_word_rides_the_slot_and_clears_on_refill() {
        let s = CallSlot::new();
        s.fill([0; 8], 0, None);
        assert_eq!(s.trace_word(), 0);
        s.set_trace(0xAB_CD);
        assert_eq!(s.trace_word(), 0xAB_CD);
        s.complete([0; 8]);
        s.reset();
        s.fill([0; 8], 0, None);
        assert_eq!(s.trace_word(), 0, "stale context never leaks into the next call");
    }

    #[test]
    fn cross_thread_handoff() {
        let s = CallSlot::new();
        let s2 = Arc::clone(&s);
        s.fill([5; 8], 1, Some(std::thread::current()));
        let h = std::thread::spawn(move || {
            let args = s2.read_args();
            s2.complete([args[0] + 1; 8]);
        });
        s.wait_done();
        assert_eq!(s.read_rets(), [6; 8]);
        h.join().unwrap();
    }

    /// A zeroed `SlotCore` is a valid idle core: segment-resident cores
    /// are born from zeroed pages without running a constructor, so the
    /// all-zero bit pattern must mean exactly IDLE / no waiter / clean
    /// frames. Pinned here so a field whose zero value gains meaning
    /// fails a test, not a process boundary.
    #[test]
    fn zeroed_core_is_idle() {
        // Safety: SlotCore is repr(C) atomics + UnsafeCell'd arrays —
        // every field is valid at all bit patterns.
        let core: SlotCore = unsafe { std::mem::zeroed() };
        assert_eq!(core.state_word().load(Ordering::Relaxed), state::IDLE);
        assert_eq!(core.waiter.load(Ordering::Relaxed), waiter::NONE);
        assert_eq!(core.status(), (0, 0));
        assert_eq!(core.payload_len(), 0);
        core.fill([3; 8], 9, waiter::FUTEX);
        core.post();
        assert_eq!(core.read_args(), [3; 8]);
        core.complete_frame([4; 8], 0, 0);
        assert_eq!(core.read_rets(), [4; 8]);
    }
}
