//! The dispatch fastpath.
//!
//! A synchronous call performs, in order: one pinned load of the calling
//! vCPU's own service-table replica plus a lifecycle claim on its own
//! shard (see [`crate::frank`]), one lock-free worker-pool pop, one
//! lock-free CD-pool pop (or the worker's held CD in hold-CD mode), the
//! slot fill, one atomic mailbox publish + unpark (the hand-off), an
//! adaptive spin-then-park wait for `DONE`, and two lock-free pushes to
//! recycle. **Zero lock acquisitions, zero writes to a cache line any
//! other vCPU's fast path writes** — the user-level restatement of the
//! paper's common case. (The epoch protocol's `SeqCst` operations are
//! vCPU-local RMWs plus loads of read-mostly era/table words.)
//!
//! Entries bound with [`crate::EntryOptions::inline_ok`] skip even the
//! hand-off: the handler runs on the caller's own thread in a borrowed
//! CD, which is hand-off scheduling taken to its limit — the "switch" to
//! the worker costs nothing because the caller *is* the worker.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crate::entry::{EntryShared, EntryState};
use crate::flight::FlightKind;
use crate::frank::Claim;
use crate::obs::LatencyKind;
use crate::slot::CallSlot;
use crate::span::SpanPhase;
use crate::worker::WorkerHandle;
use crate::{AsyncCall, CallCtx, EntryId, ProgramId, RtError, Runtime, SpinPolicy, VcpuState};

impl Runtime {
    /// Core dispatch. With `sync`, blocks and returns `Some(rets)`;
    /// otherwise the call is fire-and-forget (the worker releases the
    /// claim and recycles nothing — see `dispatch_async` for the managed
    /// variant).
    pub(crate) fn dispatch(
        &self,
        vcpu: usize,
        ep: EntryId,
        args: [u64; 8],
        program: ProgramId,
        sync: bool,
    ) -> Result<Option<[u64; 8]>, RtError> {
        if !sync {
            let claim = self.claim(vcpu, ep)?;
            let qos = claim.opts.qos;
            let (worker, slot, held) = self.acquire(vcpu, &claim, program)?; // `?` releases the claim
            slot.fill(args, program, None);
            slot.set_parity(claim.parity());
            // The worker owns the release from here (the parity rides
            // the slot); the shutdown race below takes it back.
            let (entry, parity) = claim.transfer();
            worker.post(Arc::clone(&slot));
            if worker.is_shutdown() {
                if let Some(reclaimed) = worker.take_mail() {
                    entry.finish_call(vcpu, parity); // the worker never ran it
                    drop(reclaimed);
                    if !held {
                        self.vcpu(vcpu)?.put_slot(qos, slot);
                    } else {
                        slot.reset();
                    }
                    return Err(RtError::Aborted(ep));
                }
            }
            return Ok(None);
        }
        let claim = self.claim(vcpu, ep)?;
        if claim.opts.inline_ok {
            return self
                .dispatch_inline(vcpu, ep, args, program, None, claim)
                .map(|(r, _)| Some(r));
        }
        // The claim guards the rest of the call: every early `?`/`return
        // Err` below releases it, and at the happy-path exit it drops
        // last (no explicit drop — `scope` below borrows the entry
        // *through* it, so the compiler rejects any earlier release),
        // keeping the entry alive for the scope's EWMA read.
        //
        // Observability gate: one Relaxed load (plus a thread-local tick
        // when enabled). Unsampled calls pay only the end-to-end
        // timestamp pair that feeds the *exact* per-kind max — the tail
        // gate cannot live with a 1/128-sampled max — and nothing when
        // the plane is off entirely.
        let sampled = self.obs().try_sample();
        let t0 = self.obs().enabled().then(Instant::now);
        // The call span opens before resource acquisition so Frank grow
        // events during `acquire` parent under it; the drop guard closes
        // it (and runs the root's tail-exemplar check) on every exit.
        let scope = self.spans().call_scope(sampled, vcpu, ep, Some(&claim.trace_ewma_ns));
        let (worker, slot, held) = self.acquire(vcpu, &claim, program)?;
        slot.fill(args, program, Some(std::thread::current()));
        slot.set_parity(claim.parity());
        if scope.active() {
            // The mailbox publish below orders this for the worker.
            slot.set_trace(scope.ctx_word());
        }
        worker.post(Arc::clone(&slot));
        // Racing a kill: if the worker was told to shut down, it may have
        // exited after its final mailbox drain without seeing our post.
        // Reclaim the slot if it is still in the mailbox; the mailbox
        // atomics order this against the worker's drain, so exactly one
        // side gets the slot.
        if worker.is_shutdown() {
            if let Some(reclaimed) = worker.take_mail() {
                drop(reclaimed);
                if !held {
                    self.vcpu(vcpu)?.put_slot(claim.opts.qos, slot);
                } else {
                    slot.reset();
                }
                return Err(RtError::Aborted(ep));
            }
        }
        self.rendezvous(self.vcpu(vcpu)?, &slot, &worker, ep, sampled);
        let rets = slot.read_rets();
        let faulted = slot.is_faulted();
        // A hard kill that landed while we ran aborts the call. (The
        // claim is still held, so the entry memory is safe.)
        if claim.entry_state() == EntryState::Dead {
            return Err(RtError::Aborted(ep));
        }
        if !held {
            self.vcpu(vcpu)?.put_slot(claim.opts.qos, slot);
        } else {
            slot.reset();
        }
        let cell = self.stats.cell(vcpu);
        if faulted {
            cell.server_faults.fetch_add(1, Ordering::Relaxed);
            return Err(RtError::ServerFault(ep));
        }
        cell.handoff_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.obs().record_max(LatencyKind::Call, vcpu, ns);
            if sampled {
                self.obs().record(LatencyKind::Call, vcpu, ns);
                self.flight().record(vcpu, FlightKind::Handoff, ep, program);
            }
        }
        // `scope` drops first (it borrows `claim`), then the claim
        // releases — the order the reclaim protocol requires.
        Ok(Some(rets))
    }

    /// Synchronous call carrying a bulk payload through the scratch page —
    /// the runtime analogue of §4.2: the 8 register words carry the
    /// opcode/lengths, the page carries the data. The handler reads and
    /// rewrites the payload in place via `CallCtx::scratch`; the response
    /// payload of `rets[7]` bytes (by convention) is copied back out.
    ///
    /// Returns the result words and the response payload.
    pub(crate) fn dispatch_payload(
        &self,
        vcpu: usize,
        ep: EntryId,
        args: [u64; 8],
        program: ProgramId,
        payload: &[u8],
    ) -> Result<([u64; 8], Vec<u8>), RtError> {
        assert!(
            payload.len() <= crate::slot::SCRATCH_BYTES,
            "payload exceeds the {}-byte scratch page",
            crate::slot::SCRATCH_BYTES
        );
        let claim = self.claim(vcpu, ep)?;
        if claim.opts.inline_ok {
            let (rets, resp) =
                self.dispatch_inline(vcpu, ep, args, program, Some(payload), claim)?;
            return Ok((rets, resp.expect("payload dispatch returns a response")));
        }
        let sampled = self.obs().try_sample();
        let t0 = self.obs().enabled().then(Instant::now);
        // `scope` borrows the entry through `claim`, so the claim cannot
        // release before the scope's EWMA read (see `dispatch`).
        let scope = self.spans().call_scope(sampled, vcpu, ep, Some(&claim.trace_ewma_ns));
        let (worker, slot, held) = self.acquire(vcpu, &claim, program)?;
        // The payload is written before the fill publishes the slot.
        slot.write_payload(payload);
        slot.fill(args, program, Some(std::thread::current()));
        slot.set_parity(claim.parity());
        if scope.active() {
            slot.set_trace(scope.ctx_word());
        }
        worker.post(Arc::clone(&slot));
        if worker.is_shutdown() {
            if let Some(reclaimed) = worker.take_mail() {
                drop(reclaimed);
                if !held {
                    self.vcpu(vcpu)?.put_slot(claim.opts.qos, slot);
                } else {
                    slot.reset();
                }
                return Err(RtError::Aborted(ep));
            }
        }
        self.rendezvous(self.vcpu(vcpu)?, &slot, &worker, ep, sampled);
        let rets = slot.read_rets();
        if claim.entry_state() == EntryState::Dead {
            return Err(RtError::Aborted(ep));
        }
        let cell = self.stats.cell(vcpu);
        if slot.is_faulted() {
            if !held {
                self.vcpu(vcpu)?.put_slot(claim.opts.qos, slot);
            } else {
                slot.reset();
            }
            cell.server_faults.fetch_add(1, Ordering::Relaxed);
            return Err(RtError::ServerFault(ep));
        }
        let response = slot.read_payload(rets[7] as usize);
        if !held {
            self.vcpu(vcpu)?.put_slot(claim.opts.qos, slot);
        } else {
            slot.reset();
        }
        cell.handoff_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.obs().record_max(LatencyKind::Call, vcpu, ns);
            if sampled {
                self.obs().record(LatencyKind::Call, vcpu, ns);
                self.flight().record(vcpu, FlightKind::Handoff, ep, program);
            }
        }
        // `scope` drops first (it borrows `claim`), then the claim
        // releases.
        Ok((rets, response))
    }

    /// Caller-thread inline dispatch ([`crate::EntryOptions::inline_ok`]):
    /// the caller already claimed the entry; borrow a CD from
    /// the vCPU pool for its scratch page and run the handler right here —
    /// no worker, no mailbox, no park/unpark. With `payload`, the scratch
    /// page carries the request in and the first `rets[7]` bytes back
    /// out, as in the hand-off variant.
    fn dispatch_inline(
        &self,
        vcpu: usize,
        ep: EntryId,
        args: [u64; 8],
        program: ProgramId,
        payload: Option<&[u8]>,
        claim: Claim<'_>,
    ) -> Result<([u64; 8], Option<Vec<u8>>), RtError> {
        // The claim (a parameter, so dropped after every local) releases
        // on exit; the trace scope and `CallCtx` below borrow the entry
        // through it, so no use can outlive the release.
        let entry: &EntryShared = &claim;
        let vc = self.vcpu(vcpu)?;
        let cell = self.stats.cell(vcpu);
        let sampled = self.obs().try_sample();
        let t0 = sampled.then(Instant::now);
        // The inline call span; the drop guard closes it on the early
        // kill/fault returns too, restoring the caller's trace context.
        let call_scope = self.spans().call_scope(sampled, vcpu, ep, Some(&entry.trace_ewma_ns));
        let handler = entry.handler();
        // A payload call owns a CD up front (the scratch page carries the
        // bytes both ways); a plain call borrows one lazily, only if the
        // handler asks — descriptor-only bulk calls skip the CD pool.
        let slot = payload.map(|p| {
            let s = vc.take_slot(entry.opts.qos, cell, self.flight(), self.spans());
            s.write_payload(p);
            s
        });
        // Fault containment matches the worker loop: a panicking handler
        // unwinds to here, not through the caller's frames. The handler
        // span nests under the call span (no slot hop inline — the
        // context word passes directly), so nested calls the handler
        // makes parent under it.
        let th0 = sampled.then(Instant::now);
        let h_scope = self.spans().handler_scope(call_scope.ctx_word(), vcpu, ep);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &slot {
            Some(s) => s.with_scratch(|scratch| {
                let mut ctx = CallCtx {
                    args,
                    caller_program: program,
                    vcpu,
                    ep,
                    scratch: crate::ScratchRef::Ready(scratch),
                    worker: None,
                    entry,
                };
                (handler(&mut ctx), None)
            }),
            None => {
                let mut ctx = CallCtx {
                    args,
                    caller_program: program,
                    vcpu,
                    ep,
                    scratch: crate::ScratchRef::Lazy { vc, cell, slot: None },
                    worker: None,
                    entry,
                };
                let rets = handler(&mut ctx);
                (rets, ctx.take_lazy_slot())
            }
        }));
        drop(h_scope); // handler span ends here, even on a panic
        if let Some(th0) = th0 {
            let hns = th0.elapsed().as_nanos() as u64;
            self.obs().record(LatencyKind::Handler, vcpu, hns);
            // Inline handler time is charged as a sampled estimate: the
            // observed run scaled by the sample period. The unsampled
            // null inline call thus gains *zero* clock reads — the
            // `obs_overhead` gate's 25ns budget stays intact — while
            // the accumulator converges on the true inline handler
            // occupancy over any telemetry window.
            self.stats.cell(vcpu).add_time(
                crate::stats::TimeState::Handler,
                hns << self.obs().sample_shift(),
            );
        }
        let killed = entry.entry_state() == EntryState::Dead;
        match result {
            Ok((rets, lazy)) => {
                // The slot never left IDLE, so the response is read
                // straight off the scratch page before recycling.
                let response = slot.map(|s| {
                    let r = s.with_scratch(|sc| {
                        sc[..(rets[7] as usize).min(crate::slot::SCRATCH_BYTES)].to_vec()
                    });
                    vc.put_slot(entry.opts.qos, s);
                    r
                });
                if let Some(s) = lazy {
                    vc.put_slot(entry.opts.qos, s);
                }
                if killed {
                    return Err(RtError::Aborted(ep));
                }
                entry.record_completion(vcpu);
                // `inline_calls` alone records the completion: the
                // aggregate `calls` getter derives hand-off + inline, so
                // the fast path pays one counter increment, not two.
                cell.inline_calls.fetch_add(1, Ordering::Relaxed);
                if let Some(t0) = t0 {
                    self.obs().record(LatencyKind::Call, vcpu, t0.elapsed().as_nanos() as u64);
                    self.flight().record(vcpu, FlightKind::Inline, ep, program);
                }
                Ok((rets, response))
            }
            Err(_) => {
                // A lazily-borrowed CD unwound with the context (freed,
                // not repooled) — faults are cold; the pool regrows.
                if let Some(s) = slot {
                    vc.put_slot(entry.opts.qos, s);
                }
                if killed {
                    return Err(RtError::Aborted(ep));
                }
                cell.server_faults.fetch_add(1, Ordering::Relaxed);
                // Contained faults are rare: record unconditionally so
                // the ring always has them, and dump the context.
                self.flight().record(vcpu, FlightKind::Fault, ep, program);
                entry.dump_fault(vcpu);
                Err(RtError::ServerFault(ep))
            }
        }
    }

    /// Ring-worker-side execution of one accepted SQE
    /// ([`crate::ring::ClientRing`]): claim the entry *at execution
    /// time* — never while the SQE sits queued, so kill/exchange/
    /// reclaim drain with the queue instead of deadlocking against
    /// claims parked inside it — run the handler on the ring worker's
    /// thread under the SQE's propagated trace word, and contain
    /// faults exactly like the worker loop. `scratch` is the page the
    /// handler sees ([`crate::ScratchRef::Ready`]); the ring worker
    /// passes its persistent page, or the SQE's staged payload buffer.
    pub(crate) fn ring_execute(
        &self,
        vcpu: usize,
        ep: EntryId,
        args: [u64; 8],
        program: ProgramId,
        trace_word: u64,
        scratch: &mut [u8],
    ) -> Result<[u64; 8], RtError> {
        let claim = self.claim(vcpu, ep)?;
        // The claim (a parameter-position binding dropped after every
        // local) releases on exit; handler borrows go through it.
        let entry: &EntryShared = &claim;
        let cell = self.stats.cell(vcpu);
        let th0 = self.obs().try_sample().then(Instant::now);
        let h_scope = self.spans().handler_scope(trace_word, vcpu, ep);
        let handler = entry.handler();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = CallCtx {
                args,
                caller_program: program,
                vcpu,
                ep,
                scratch: crate::ScratchRef::Ready(scratch),
                worker: None,
                entry,
            };
            handler(&mut ctx)
        }));
        drop(h_scope); // handler span ends here, even on a panic
        if let Some(th0) = th0 {
            self.obs().record(LatencyKind::Handler, vcpu, th0.elapsed().as_nanos() as u64);
        }
        let killed = entry.entry_state() == EntryState::Dead;
        match result {
            Ok(rets) => {
                if killed {
                    return Err(RtError::Aborted(ep));
                }
                entry.record_completion(vcpu);
                cell.ring_calls.fetch_add(1, Ordering::Relaxed);
                Ok(rets)
            }
            Err(_) => {
                if killed {
                    return Err(RtError::Aborted(ep));
                }
                cell.server_faults.fetch_add(1, Ordering::Relaxed);
                self.flight().record(vcpu, FlightKind::Fault, ep, program);
                entry.dump_fault(vcpu);
                Err(RtError::ServerFault(ep))
            }
        }
    }

    /// Wait for the posted call to complete, per the runtime's
    /// [`SpinPolicy`]. Every budgeted wait is *bounded with escalation*
    /// ([`CallSlot::wait_done_donate`]): when the spin budget runs dry
    /// the client donates its timeslice to `worker` — priority-unpark
    /// plus `yield_now`, up to [`crate::spin::ESCALATE_YIELDS`] rounds —
    /// before finally parking. A spun-out budget means the worker lost
    /// the processor mid-handler; parking straight away stacks a futex
    /// sleep/wake round trip on top of the context switch the worker
    /// needs anyway, and that convoy is precisely the 50–80µs p999/max
    /// outlier the tail histograms showed. `ParkOnly` skips the spin but
    /// keeps the escalation (its tail had the same convoy shape);
    /// `Fixed(0)` remains the pure park/unpark escape hatch.
    ///
    /// Under `Adaptive`, the observed wall-clock latency feeds the
    /// calling vCPU's EWMA so the next budget fits the workload. With
    /// the obs plane enabled the wait is always timed and feeds the
    /// exact [`LatencyKind::Rendezvous`] max; a `sampled` rendezvous
    /// additionally records the full histogram entry and its
    /// spin-vs-park outcome into the flight ring.
    fn rendezvous(
        &self,
        vc: &VcpuState,
        slot: &CallSlot,
        worker: &WorkerHandle,
        ep: EntryId,
        sampled: bool,
    ) {
        // The client-side wait as a leaf span under the live call span
        // (no-op otherwise) — this is the "rendezvous wait" slice of a
        // tail exemplar's phase breakdown.
        let _span = self.spans().leaf_scope(vc.id, ep, SpanPhase::Rendezvous);
        let cell = self.stats.cell(vc.id);
        let policy = self.spin_policy();
        let adaptive = matches!(policy, SpinPolicy::Adaptive);
        // Unconditional timestamp pair: the wait below is µs-scale
        // (spin, donation, or futex), so the attribution plane's charge
        // of this interval to `time_spin_ns`/`time_park_ns` costs noise
        // relative to what it measures — unlike the inline path, which
        // stays sampled.
        let t0 = Instant::now();
        let (resolved, escalated) = match policy {
            SpinPolicy::ParkOnly => slot.wait_done_donate(0, worker.thread()),
            SpinPolicy::Fixed(budget) => {
                if budget == 0 {
                    slot.wait_done();
                    (false, false)
                } else {
                    slot.wait_done_donate(budget, worker.thread())
                }
            }
            SpinPolicy::Adaptive => {
                let budget = vc.spin_budget();
                if budget == 0 {
                    // The EWMA passed `PARK_THRESHOLD_NS`: handlers run
                    // ≥100µs and donation rounds would burn the client's
                    // slice for nothing — park flat out.
                    slot.wait_done();
                    (false, false)
                } else {
                    slot.wait_done_donate(budget, worker.thread())
                }
            }
        };
        let wait_ns = t0.elapsed().as_nanos() as u64;
        if self.obs().enabled() {
            self.obs().record_max(LatencyKind::Rendezvous, vc.id, wait_ns);
        }
        if adaptive {
            vc.observe_latency(wait_ns);
        }
        // The client's wait is this vCPU's attributed time: a resolved
        // wait was spent spinning (userspace), an unresolved one parked.
        if resolved {
            cell.spin_waits.fetch_add(1, Ordering::Relaxed);
            cell.add_time(crate::stats::TimeState::Spin, wait_ns);
        } else {
            cell.park_waits.fetch_add(1, Ordering::Relaxed);
            cell.add_time(crate::stats::TimeState::Park, wait_ns);
        }
        if escalated {
            cell.spin_escalations.fetch_add(1, Ordering::Relaxed);
        }
        if sampled {
            self.obs().record(LatencyKind::Rendezvous, vc.id, wait_ns);
            let kind = if resolved { FlightKind::SpinResolved } else { FlightKind::Parked };
            self.flight().record(vc.id, kind, ep, wait_ns.min(u32::MAX as u64) as u32);
        }
    }

    /// Asynchronous dispatch: returns a handle; the caller continues
    /// immediately ("the caller and worker proceed independently").
    /// Always hands off to a worker — inline execution would defeat the
    /// point of an async call. The *worker* releases the entry claim
    /// when the handler completes (the caller may be long gone), using
    /// the parity that rides the slot.
    pub(crate) fn dispatch_async(
        &self,
        vcpu: usize,
        ep: EntryId,
        args: [u64; 8],
        program: ProgramId,
    ) -> Result<AsyncCall, RtError> {
        let sampled = self.obs().try_sample();
        let claim = self.claim(vcpu, ep)?;
        let qos = claim.opts.qos;
        let (worker, slot, held) = self.acquire(vcpu, &claim, program)?; // `?` releases the claim
        slot.fill(args, program, None);
        slot.set_parity(claim.parity());
        // The async span is not installed (the caller continues past the
        // dispatch); it closes when the completion is observed. The
        // context word rides the slot so the worker's handler span — and
        // anything nested under it — parents here.
        let trace = self.spans().begin_async(sampled, vcpu, ep);
        if let Some(tok) = &trace {
            slot.set_trace(tok.ctx.pack());
        }
        // The worker owns the release from here (the parity rides the
        // slot); the shutdown race below takes it back.
        let (entry, parity) = claim.transfer();
        worker.post(Arc::clone(&slot));
        // Racing a kill, as in the sync path — but here nobody would
        // ever rendezvous with the orphaned slot, so reclaiming it (and
        // the claim) is the only thing standing between a shutdown race
        // and a leak that wedges `wait_drained`.
        if worker.is_shutdown() {
            if let Some(reclaimed) = worker.take_mail() {
                entry.finish_call(vcpu, parity);
                drop(reclaimed);
                if let Some(tok) = trace {
                    self.spans().end_token(tok, None);
                }
                if !held {
                    self.vcpu(vcpu)?.put_slot(qos, slot);
                } else {
                    slot.reset();
                }
                return Err(RtError::Aborted(ep));
            }
        }
        self.stats.cell(vcpu).async_calls.fetch_add(1, Ordering::Relaxed);
        if sampled {
            self.flight().record(vcpu, FlightKind::Async, ep, program);
        }
        Ok(AsyncCall {
            slot,
            vcpu: Arc::clone(self.vcpu(vcpu)?),
            ep,
            held,
            qos,
            trace: std::cell::Cell::new(trace),
            spans: Arc::clone(self.spans()),
        })
    }

    /// Upcall / interrupt dispatch (§4.4): an asynchronous request with no
    /// calling program, manufactured by the runtime itself.
    pub fn upcall(
        self: &Arc<Self>,
        vcpu: usize,
        ep: EntryId,
        args: [u64; 8],
    ) -> Result<AsyncCall, RtError> {
        let r = self.dispatch_async(vcpu, ep, args, 0);
        if r.is_ok() {
            self.stats.cell(vcpu).upcalls.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Acquire the call's transport resources — worker and CD — for an
    /// entry the caller has already claimed. Does **not** release the
    /// claim on failure; the caller's [`Claim`] owns that (callers pass
    /// `&claim` here), so the release happens exactly once. `program` is
    /// the caller's identity, consulted only for hold-CD entries that
    /// restrict the pinned CD to a trust group.
    #[allow(clippy::type_complexity)]
    fn acquire(
        &self,
        vcpu: usize,
        entry: &EntryShared,
        program: ProgramId,
    ) -> Result<(Arc<WorkerHandle>, Arc<CallSlot>, bool), RtError> {
        let vc = self.vcpu(vcpu)?;
        let cell = self.stats.cell(vcpu);
        // Worker: lock-free pool pop, or the Frank grow path.
        let worker = match entry.pool(vcpu).pop() {
            Some(w) => w,
            None => {
                let tf0 = Instant::now();
                cell.frank_redirects.fetch_add(1, Ordering::Relaxed);
                cell.workers_created.fetch_add(1, Ordering::Relaxed);
                // Frank redirects are the slow path by definition:
                // record unconditionally (data 0 = worker pool).
                self.flight().record(vcpu, FlightKind::Frank, entry.id, 0);
                self.spans().record_instant(vcpu, entry.id, SpanPhase::Frank);
                // The self-weak upgrade cannot fail while our claim is
                // held — reclamation drains claims first.
                let arc = entry.strong().ok_or(RtError::UnknownEntry(entry.id))?;
                let w = entry.pool(vcpu).grow(&arc, vcpu, self.pinned(), false);
                // Cold by construction: charge the grow (thread spawn
                // and all) to the caller's Frank time.
                cell.add_time(
                    crate::stats::TimeState::Frank,
                    tf0.elapsed().as_nanos() as u64,
                );
                w
            }
        };

        // CD: the worker's held slot in hold-CD mode, else the vCPU
        // pool (per-QoS-class, so bulk bursts can't starve latency
        // callers of warm CDs). A hold-CD entry with a non-zero trust
        // group extends the pinned CD only to callers registered under
        // that group — the trust lookup is paid solely by trust-gated
        // entries, and an untrusted caller routes through the pool, so
        // it never reads (or leaves bytes in) the trusted scratch page.
        let qos = entry.opts.qos;
        let hold = entry.opts.hold_cd
            && (entry.opts.trust_group == 0
                || self.program_trust(program) == entry.opts.trust_group);
        let (slot, held) = if hold {
            match worker.held_slot() {
                Some(s) => (s, true),
                None => {
                    let s = vc.take_slot(qos, cell, self.flight(), self.spans());
                    worker.pin_slot(Arc::clone(&s));
                    (s, true)
                }
            }
        } else {
            (vc.take_slot(qos, cell, self.flight(), self.spans()), false)
        };
        Ok((worker, slot, held))
    }
}
