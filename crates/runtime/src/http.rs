//! A tiny std-only HTTP/1.1 server for the observability endpoints.
//!
//! The repo vendors its dependency graph, so a real HTTP stack (hyper &
//! co.) is off the table — and overkill: the consumer is `curl`, a
//! Prometheus scraper, or `ppc-top` polling a few times a second. One
//! accept loop on a [`TcpListener`], one request per connection
//! (`Connection: close`), GET only:
//!
//! | path       | body                                               |
//! |------------|----------------------------------------------------|
//! | `/`        | plain-text index of the endpoints                  |
//! | `/metrics` | Prometheus text ([`crate::Runtime::export_prometheus`], incl. `ppc_rate_*` and transport/segment gauges) |
//! | `/json`    | counters + histograms + telemetry windows/alerts + transport mode/segment stats |
//! | `/series`  | the raw telemetry tick ring ([`crate::Runtime::export_series`]) |
//! | `/trace`   | Chrome trace-event JSON ([`crate::Runtime::export_trace`]) |
//! | `/profile` | critical-path profile text report ([`crate::profile`]) |
//! | `/profile.folded` | collapsed stacks for `flamegraph.pl`/speedscope |
//! | `/blackbox` | on-demand black-box capture ([`crate::Runtime::blackbox_json`]) |
//! | `/diagnostics` | the [`crate::Runtime::diagnostics`] text dump  |
//!
//! Requests are served **serially**: a diagnostics port has no business
//! running a thread pool, and serial service bounds the runtime-state
//! cloning one scrape can cause. The server holds only a
//! [`Weak`]`<Runtime>` — it can never keep a runtime alive, and it
//! shuts itself down when the runtime drops. [`MetricsServer::stop`]
//! (also run on drop) unblocks the accept loop with a loopback
//! self-connection, the standard std-only trick for interrupting
//! `accept` without platform-specific socket options.
//!
//! Hardening is proportionate to the exposure: per-connection read and
//! write timeouts (a stalled peer can't wedge the serial loop) and a
//! [`MAX_REQUEST_BYTES`] cap on the request head (a peer streaming
//! endless headers gets `431` and the boot, not unbounded buffering).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use crate::Runtime;

/// Upper bound on one request's head (request line + headers). A GET
/// for these endpoints fits in a few hundred bytes; anything larger is
/// a confused or hostile peer and is answered `431` without further
/// buffering.
pub const MAX_REQUEST_BYTES: u64 = 8 * 1024;

/// Handle to a running metrics server; stops (and joins) on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0: this is where the OS put
    /// us).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scrape URL for `path` (e.g. `url("/metrics")`).
    pub fn url(&self, path: &str) -> String {
        format!("http://{}{}", self.addr, path)
    }

    /// Stop the accept loop and join the server thread (idempotent).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` so the loop observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Runtime {
    /// Serve the observability endpoints over HTTP/1.1 on `addr` (pass
    /// `"127.0.0.1:0"` to let the OS pick a free port; read it back
    /// from [`MetricsServer::addr`]). The server holds only a weak
    /// runtime reference and answers `503 Service Unavailable` once the
    /// runtime is gone.
    pub fn serve_metrics<A: ToSocketAddrs>(
        self: &Arc<Self>,
        addr: A,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let rt = Arc::downgrade(self);
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("ppc-metrics".into())
            .spawn(move || serve_loop(listener, rt, flag))?;
        Ok(MetricsServer { addr, stop, thread: Some(thread) })
    }
}

fn serve_loop(listener: TcpListener, rt: Weak<Runtime>, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let _ = handle_conn(stream, &rt);
        if rt.strong_count() == 0 {
            return;
        }
    }
}

/// Parse the request line + headers and write one response. Any parse
/// or I/O failure just drops the connection — the peer is a tool, not a
/// user.
fn handle_conn(stream: TcpStream, rt: &Weak<Runtime>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    // Cap the request head: `Take` turns an oversized request into EOF
    // mid-headers, which we answer below instead of buffering on.
    let mut reader = BufReader::new(std::io::Read::take(stream, MAX_REQUEST_BYTES));
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers (we need none of them; `Connection: close` is our
    // answer regardless).
    let mut head_complete = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if line.trim().is_empty() {
            head_complete = true;
            break;
        }
    }
    let mut stream = reader.into_inner().into_inner();
    if !head_complete {
        // EOF before the blank line: either the cap fired or the peer
        // hung up mid-request. Both get the oversize answer (a peer
        // that's gone won't read it anyway).
        return respond(&mut stream, 431, "text/plain", "request head too large\n");
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let Some(rt) = rt.upgrade() else {
        return respond(&mut stream, 503, "text/plain", "runtime is gone\n");
    };
    // Ignore any query string: `/metrics?x=1` is `/metrics`.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/" => respond(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            "ppc-rt observability endpoints:\n\
             /metrics      Prometheus text exposition (incl. ppc_rate_* windows\n\
                           and ppc_transport_*/ppc_segment_* gauges)\n\
             /json         counters + histograms + telemetry windows/alerts\n\
                           + transport mode and segment stats\n\
             /series       raw telemetry tick ring\n\
             /trace        Chrome trace-event JSON (load in ui.perfetto.dev)\n\
             /profile      critical-path profile (per-entry phase breakdown)\n\
             /profile.folded  collapsed stacks (flamegraph.pl / speedscope)\n\
             /blackbox     on-demand black-box capture (JSON artifact)\n\
             /diagnostics  human-readable diagnostics dump\n",
        ),
        "/metrics" => respond(
            &mut stream,
            200,
            // The exposition-format content type Prometheus expects.
            "text/plain; version=0.0.4; charset=utf-8",
            &rt.export_prometheus(),
        ),
        "/json" => respond(
            &mut stream,
            200,
            "application/json",
            &rt.export_json().to_string(),
        ),
        "/series" => respond(
            &mut stream,
            200,
            "application/json",
            &rt.export_series().to_string(),
        ),
        "/trace" => respond(&mut stream, 200, "application/json", &rt.export_trace()),
        "/profile" => respond(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            &rt.profile().text_report(),
        ),
        "/profile.folded" => respond(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            &rt.profile().folded(),
        ),
        "/blackbox" => respond(
            &mut stream,
            200,
            "application/json",
            &rt.blackbox_json("http-request").to_string(),
        ),
        "/diagnostics" => respond(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            &rt.diagnostics(),
        ),
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A minimal HTTP/1.1 GET for tests and `ppc-top` (std-only, no
/// keep-alive). Returns `(status, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line")
        })?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().ok();
        }
    }
    let mut body = String::new();
    match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            std::io::Read::read_exact(&mut reader, &mut buf)?;
            body = String::from_utf8_lossy(&buf).into_owned();
        }
        None => {
            std::io::Read::read_to_string(&mut reader, &mut body)?;
        }
    }
    Ok((status, body))
}
