//! Postmortem black-box capture: one versioned JSON artifact holding
//! the facility's last seconds.
//!
//! When something goes wrong — a handler panic, an SLO rule starting to
//! fire, a latency-gate violation — the counters and the flight ring
//! still know what happened, but only until the process exits or the
//! rings wrap. The black box freezes all of it into a single
//! self-describing document:
//!
//! * the cumulative counter [`crate::Snapshot`] (total and
//!   per-vCPU) and merged latency histograms,
//! * per-vCPU **occupancy**: each vCPU's attributed wall-time split
//!   across the [`TIME_STATES`] (handler/spin/park/ring/copy/frank/idle),
//! * the **interference** tally from the sampler's clock-gap probe
//!   (lost-time ratio, excursion count, worst excursion),
//! * the live telemetry document (windowed rates, quantiles, alert
//!   states) plus the tail of the raw per-tick series ring,
//! * every vCPU's retained flight-recorder events and the tracing
//!   plane's tail exemplars (slowest recent calls, span by span).
//!
//! Captures are **cold by construction**: nothing here runs unless a
//! capture fires, and automatic captures are rate-limited
//! ([`MIN_CAPTURE_INTERVAL`]) and a no-op until a capture directory is
//! configured ([`crate::RuntimeOptions::blackbox_dir`] or the
//! `PPC_BLACKBOX_DIR` environment variable). Explicit captures
//! ([`crate::Runtime::write_blackbox`]) always run.
//!
//! `ppc-blackbox` (in the bench crate) loads an artifact back, rebuilds
//! the merged timeline, and names the dominant attributed causes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Weak;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::export::{self, Json};
use crate::obs::KINDS;
use crate::stats::{Snapshot, TIME_STATES};
use crate::Runtime;

/// Minimum spacing between two *automatic* captures
/// ([`Sink::event`]). A misbehaving workload can trip an SLO rule every
/// tick; one artifact per incident window is plenty, and the limit
/// bounds how much disk an unattended run can consume. Explicit
/// [`crate::Runtime::write_blackbox`] calls are never limited.
pub const MIN_CAPTURE_INTERVAL: Duration = Duration::from_secs(5);

/// How many telemetry ticks (newest last) a capture embeds from the
/// series ring. 128 ticks at the default 100 ms tick ≈ the last ~13 s,
/// enough timeline to see an incident build without ballooning the
/// artifact.
pub const CAPTURE_TICKS: usize = 128;

/// The capture sink: where automatic black-box captures go, and the
/// back-reference they capture through.
///
/// Shared (`Arc`) between the [`Runtime`] and every bound entry so the
/// worker panic path can trigger a capture from a thread that has no
/// runtime back-reference — the same no-cycle pattern as the stats and
/// flight planes. The `Weak` is attached right after runtime
/// construction; until then (and after the runtime drops) captures are
/// no-ops.
pub struct Sink {
    rt: Mutex<Weak<Runtime>>,
    dir: Mutex<Option<PathBuf>>,
    last: Mutex<Option<Instant>>,
    written: AtomicU64,
}

impl Sink {
    pub(crate) fn new() -> Sink {
        Sink {
            rt: Mutex::new(Weak::new()),
            dir: Mutex::new(None),
            last: Mutex::new(None),
            written: AtomicU64::new(0),
        }
    }

    pub(crate) fn attach(&self, rt: Weak<Runtime>) {
        *self.rt.lock() = rt;
    }

    pub(crate) fn set_dir(&self, dir: Option<PathBuf>) {
        *self.dir.lock() = dir;
    }

    /// The configured capture directory, if any.
    pub fn dir(&self) -> Option<PathBuf> {
        self.dir.lock().clone()
    }

    /// Artifacts written by this sink (automatic captures only).
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Automatic capture hook: write a black-box artifact named after
    /// `reason` into the configured directory. Returns the path written,
    /// or `None` when no directory is configured, the rate limit
    /// suppressed the capture, the runtime is gone, or the write failed
    /// (failure also warns on stderr — a postmortem hook must never
    /// take the process down with it).
    pub fn event(&self, reason: &str) -> Option<PathBuf> {
        let dir = self.dir.lock().clone()?;
        {
            let mut last = self.last.lock();
            if let Some(t) = *last {
                if t.elapsed() < MIN_CAPTURE_INTERVAL {
                    return None;
                }
            }
            *last = Some(Instant::now());
        }
        let rt = self.rt.lock().upgrade()?;
        let n = self.written.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("blackbox-{n:03}-{}.json", sanitize(reason)));
        match rt.write_blackbox(reason, &path) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: black-box capture to {} failed: {e}", path.display());
                None
            }
        }
    }
}

/// Reasons come from call sites ("handler-panic", "slo-alert") but also
/// ride into a file name, so squash anything that isn't a portable
/// file-name character.
fn sanitize(reason: &str) -> String {
    let mut s: String = reason
        .chars()
        .take(48)
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
        .collect();
    if s.is_empty() {
        s.push_str("event");
    }
    s
}

/// Per-vCPU occupancy: each attributed time counter's share of the
/// vCPU's total attributed time. Cumulative (whole-lifetime) shares —
/// the *windowed* view lives in the embedded telemetry document.
fn occupancy_json(per_vcpu: &[Snapshot]) -> Json {
    Json::Arr(
        per_vcpu
            .iter()
            .map(|s| {
                let total: u64 = TIME_STATES
                    .iter()
                    .map(|&(_, name, _)| s.field(name).unwrap_or(0))
                    .sum();
                Json::Obj(
                    TIME_STATES
                        .iter()
                        .map(|&(_, name, label)| {
                            let ns = s.field(name).unwrap_or(0);
                            let frac =
                                if total == 0 { 0.0 } else { ns as f64 / total as f64 };
                            (label.to_string(), Json::Num(frac))
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

fn flight_json(rt: &Runtime) -> Json {
    let flight = rt.flight();
    Json::Arr(
        (0..flight.n_vcpus())
            .map(|v| {
                Json::Arr(
                    flight
                        .snapshot(v)
                        .into_iter()
                        .map(|ev| {
                            Json::obj([
                                ("seq", Json::Num(ev.seq as f64)),
                                ("kind", Json::Str(ev.kind.label().into())),
                                ("vcpu", Json::Num(ev.vcpu as f64)),
                                ("ep", Json::Num(ev.ep as f64)),
                                ("data", Json::Num(ev.data as f64)),
                            ])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

fn exemplars_json(rt: &Runtime) -> Json {
    let spans = rt.spans();
    let mut out = Vec::new();
    for v in 0..spans.n_vcpus() {
        for ex in spans.exemplars(v) {
            out.push(Json::obj([
                ("trace_id", Json::Num(ex.trace_id as f64)),
                ("ep", Json::Num(ex.ep as f64)),
                ("vcpu", Json::Num(ex.vcpu as f64)),
                ("total_ns", Json::Num(ex.total_ns as f64)),
                (
                    "spans",
                    Json::Arr(
                        ex.spans
                            .iter()
                            .map(|s| {
                                Json::obj([
                                    ("phase", Json::Str(s.phase.label().into())),
                                    ("span_id", Json::Num(s.span_id as f64)),
                                    ("parent_id", Json::Num(s.parent_id as f64)),
                                    ("depth", Json::Num(s.depth as f64)),
                                    ("vcpu", Json::Num(s.vcpu as f64)),
                                    ("ep", Json::Num(s.ep as f64)),
                                    ("start_ns", Json::Num(s.start_ns as f64)),
                                    ("dur_ns", Json::Num(s.dur_ns as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]));
        }
    }
    Json::Arr(out)
}

/// Build the black-box document for `rt`. The shape is versioned by
/// [`export::SCHEMA_VERSION`] and identified by `"kind":
/// "ppc-blackbox"`; `ppc-blackbox --smoke` round-trips it.
pub fn capture(rt: &Runtime, reason: &str) -> Json {
    let snap = rt.stats.snapshot();
    let per_vcpu: Vec<Snapshot> =
        (0..rt.n_vcpus()).map(|v| rt.stats.vcpu_snapshot(v)).collect();

    let latency = Json::Obj(
        KINDS
            .iter()
            .map(|&k| (k, rt.obs().merged(k)))
            .filter(|(_, h)| h.count() > 0)
            .map(|(k, h)| (k.label().to_string(), export::histogram_json(&h)))
            .collect(),
    );

    // Cumulative interference tally (the probe accounts on vCPU 0's
    // shard, but read the aggregate — it is the same numbers).
    let probed = snap.field("interference_probe_ns").unwrap_or(0);
    let lost = snap.field("interference_ns").unwrap_or(0);
    let interference = Json::obj([
        ("probed_ns", Json::Num(probed as f64)),
        ("lost_ns", Json::Num(lost as f64)),
        (
            "excursions",
            Json::Num(snap.field("interference_excursions").unwrap_or(0) as f64),
        ),
        (
            "ratio",
            Json::Num(if probed == 0 { 0.0 } else { lost as f64 / probed as f64 }),
        ),
    ]);

    let (telemetry, series) = match rt.telemetry() {
        Some(tel) => {
            let mut ticks = tel.series(usize::MAX);
            if ticks.len() > CAPTURE_TICKS {
                ticks.drain(..ticks.len() - CAPTURE_TICKS);
            }
            (export::telemetry_json(&tel), export::series_json(&ticks))
        }
        None => (Json::Null, Json::Null),
    };

    Json::obj([
        ("schema_version", Json::Num(export::SCHEMA_VERSION as f64)),
        ("kind", Json::Str("ppc-blackbox".into())),
        ("reason", Json::Str(reason.into())),
        ("n_vcpus", Json::Num(rt.n_vcpus() as f64)),
        ("counters", export::counters_json(&snap)),
        (
            "per_vcpu",
            Json::Arr(per_vcpu.iter().map(export::counters_json).collect()),
        ),
        ("latency_ns", latency),
        ("occupancy", occupancy_json(&per_vcpu)),
        ("interference", interference),
        ("telemetry", telemetry),
        ("series", series),
        ("flight", flight_json(rt)),
        ("exemplars", exemplars_json(rt)),
    ])
}
