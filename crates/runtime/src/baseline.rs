//! The locked baseline: one global queue, one lock.
//!
//! This is the design the paper's Figure 3 (single file) condemns, ported
//! to user level for the `rt_throughput` benchmark: every call goes
//! through a single mutex-protected request queue served by a fixed pool
//! of server threads. Latency is fine; scalability is not.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::slot::CallSlot;

type BaselineHandler = Arc<dyn Fn([u64; 8]) -> [u64; 8] + Send + Sync>;

/// The mutex-protected state. `shutdown` lives *inside* the lock: setting
/// it and notifying outside the lock can race a server thread between its
/// empty-queue check and its `wait`, losing the wakeup forever.
struct Queue {
    items: VecDeque<Arc<CallSlot>>,
    shutdown: bool,
}

struct Inner {
    queue: Mutex<Queue>,
    cv: Condvar,
    handler: BaselineHandler,
    /// Completed calls.
    pub calls: AtomicU64,
}

/// A server with one global locked queue.
pub struct LockedServer {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl LockedServer {
    /// Start `n_threads` server threads running `handler`.
    pub fn start(n_threads: usize, handler: BaselineHandler) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue { items: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            handler,
            calls: AtomicU64::new(0),
        });
        let threads = (0..n_threads.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("locked-server-{i}"))
                    .spawn(move || server_loop(inner))
                    .expect("spawn server thread")
            })
            .collect();
        LockedServer { inner, threads }
    }

    /// Synchronous call through the global queue. The critical section is
    /// exactly one `push_back`: the slot is built, filled, and cloned
    /// before the lock, and the notification happens after release so the
    /// woken server never stalls on a still-held mutex.
    pub fn call(&self, args: [u64; 8]) -> [u64; 8] {
        let slot = CallSlot::new();
        slot.fill(args, 0, Some(std::thread::current()));
        let posted = Arc::clone(&slot);
        {
            let mut q = self.inner.queue.lock();
            q.items.push_back(posted);
        }
        self.inner.cv.notify_one();
        slot.wait_done();
        slot.read_rets()
    }

    /// Completed calls.
    pub fn completed(&self) -> u64 {
        self.inner.calls.load(Ordering::Relaxed)
    }
}

fn server_loop(inner: Arc<Inner>) {
    loop {
        let slot = {
            let mut q = inner.queue.lock();
            loop {
                // Drain before honoring shutdown so no client is left
                // parked on a slot nobody will complete.
                if let Some(s) = q.items.pop_front() {
                    break s;
                }
                if q.shutdown {
                    return;
                }
                inner.cv.wait(&mut q);
            }
        };
        // The handler runs outside the lock, of course — the point of the
        // baseline is the *queue* contention, not artificial serialization
        // of the service body.
        let rets = (inner.handler)(slot.read_args());
        inner.calls.fetch_add(1, Ordering::Relaxed);
        slot.complete(rets);
    }
}

impl Drop for LockedServer {
    fn drop(&mut self) {
        self.inner.queue.lock().shutdown = true;
        self.inner.cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_through_locked_queue() {
        let s = LockedServer::start(2, Arc::new(|a| a));
        assert_eq!(s.call([3; 8]), [3; 8]);
        assert_eq!(s.call([4; 8]), [4; 8]);
        assert_eq!(s.completed(), 2);
    }

    #[test]
    fn concurrent_clients() {
        let s = Arc::new(LockedServer::start(2, Arc::new(|a| [a[0] * 2; 8])));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    assert_eq!(s.call([i; 8])[0], i * 2);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.completed(), 200);
    }
}
