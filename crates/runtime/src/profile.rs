//! Critical-path profiler: fold retained span records into per-entry
//! phase-breakdown profiles.
//!
//! The tracing plane (PR 4) records causally-linked spans — call,
//! rendezvous wait, handler run, bulk copy, Frank excursion, nested
//! calls — into per-vCPU rings. Each record is already a begin/end
//! pair (`start_ns`, `dur_ns`); what it *doesn't* say is where the
//! time went. This module rebuilds the span trees (parent links inside
//! each trace) and answers that:
//!
//! * **Per-entry phase breakdown** — for every entry point, total and
//!   *self* time per [`SpanPhase`] (self = duration minus attributed
//!   children, so a handler that spends its time in a nested call into
//!   another entry doesn't double-bill its own entry).
//! * **Collapsed stacks** — one `frame;frame;frame value` line per
//!   distinct tree path, summed self-nanoseconds: the format
//!   `flamegraph.pl` and speedscope load directly. A frame is
//!   `entry:phase`, so a nested call shows up as a new entry frame
//!   under the parent handler — the cross-entry critical path is
//!   visible in the flame shape.
//!
//! Everything here is cold-path batch aggregation over
//! [`SpanPlane::all_records`](crate::span::SpanPlane::all_records);
//! nothing touches dispatch. Serve it over HTTP (`/profile`,
//! `/profile.folded`) or render it offline with the `ppc-profile`
//! bench bin.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::span::{SpanPhase, SpanRecord, NPHASES, PHASES};
use crate::Runtime;

/// Aggregate for one phase within one entry's profile.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseAgg {
    /// Spans folded in.
    pub count: u64,
    /// Σ span duration (ns). Phases nest, so totals across phases
    /// overlap — `call` contains `rendezvous` and usually `handler`.
    pub total_ns: u64,
    /// Σ self time (ns): duration minus the spans parented under it.
    /// Self times partition each tree, so these sum to root wall time
    /// (modulo cross-thread clock skew, clamped at 0 per span).
    pub self_ns: u64,
    /// Worst single span (ns).
    pub max_ns: u64,
}

/// One entry point's aggregated profile.
#[derive(Clone, Debug)]
pub struct EntryProfile {
    /// Entry ID.
    pub ep: u16,
    /// Diagnostic name at fold time (`ep<N>` when unresolvable —
    /// entry already unbound).
    pub name: String,
    /// Root spans (traced calls that began at this entry).
    pub roots: u64,
    /// Σ root span duration (ns): traced wall time under this entry.
    pub root_ns: u64,
    /// Per-phase aggregates, indexed by [`SpanPhase`] discriminant
    /// (slot 0 unused).
    pub phases: [PhaseAgg; NPHASES],
    /// Time this entry's spans spent in *nested calls into other
    /// entries* (ns) — the cross-entry child attribution.
    pub child_ns: u64,
}

/// A folded profile over one batch of span records.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Per-entry profiles, sorted by descending root time (entries
    /// that only ever appear nested sort by total phase time).
    pub entries: Vec<EntryProfile>,
    /// Collapsed stacks: distinct `frame;frame` paths with summed
    /// self-nanoseconds, sorted by path.
    pub stacks: Vec<(String, u64)>,
    /// Records folded in.
    pub records: usize,
    /// Distinct traces seen.
    pub traces: usize,
    /// Spans whose parent was not retained (ring wrap mid-trace);
    /// folded as roots of their own subtree so no time is dropped.
    pub orphans: usize,
}

/// Walk guard: a span tree deeper than this means a parent-link cycle
/// from span-id reuse inside one trace (16-bit mint); stop rather than
/// recurse forever. Real trees are bounded by call nesting (≤ 255).
const MAX_WALK_DEPTH: usize = 64;

/// Fold `records` into a [`Profile`]. `names` maps entry IDs to
/// diagnostic names (missing IDs render as `ep<N>`).
pub fn build(records: &[SpanRecord], names: &HashMap<u16, String>) -> Profile {
    let mut by_trace: HashMap<u32, Vec<&SpanRecord>> = HashMap::new();
    for r in records {
        by_trace.entry(r.trace_id).or_default().push(r);
    }

    let mut entries: HashMap<u16, EntryProfile> = HashMap::new();
    let mut stacks: HashMap<String, u64> = HashMap::new();
    let mut orphans = 0usize;

    let frame = |ep: u16, phase: SpanPhase| -> String {
        match names.get(&ep) {
            Some(n) if !n.is_empty() => format!("{n}:{}", phase.label()),
            _ => format!("ep{ep}:{}", phase.label()),
        }
    };

    // Sort each trace for deterministic child order, index children by
    // parent span id, then walk each root computing self time and the
    // collapsed path.
    let mut trace_ids: Vec<u32> = by_trace.keys().copied().collect();
    trace_ids.sort_unstable();
    for tid in &trace_ids {
        let mut spans = by_trace.remove(tid).unwrap();
        spans.sort_by_key(|r| (r.start_ns, r.seq));
        let ids: std::collections::HashSet<u16> =
            spans.iter().map(|r| r.span_id).collect();
        let mut children: HashMap<u16, Vec<usize>> = HashMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for (i, r) in spans.iter().enumerate() {
            if r.parent_id != 0 && ids.contains(&r.parent_id) && r.parent_id != r.span_id
            {
                children.entry(r.parent_id).or_default().push(i);
            } else {
                if r.parent_id != 0 {
                    orphans += 1;
                }
                roots.push(i);
            }
        }

        // Explicit stack: (span index, path string, child cursor).
        for &root in &roots {
            let r = spans[root];
            let e = entries.entry(r.ep).or_insert_with(|| EntryProfile {
                ep: r.ep,
                name: names.get(&r.ep).cloned().unwrap_or_else(|| format!("ep{}", r.ep)),
                roots: 0,
                root_ns: 0,
                phases: [PhaseAgg::default(); NPHASES],
                child_ns: 0,
            });
            if r.parent_id == 0 {
                e.roots += 1;
                e.root_ns += r.dur_ns;
            }

            let mut walk: Vec<(usize, String)> = vec![(root, frame(r.ep, r.phase))];
            while let Some((i, path)) = walk.pop() {
                let s = spans[i];
                let kids = children.get(&s.span_id).map(Vec::as_slice).unwrap_or(&[]);
                let mut kid_ns = 0u64;
                for &k in kids {
                    let kr = spans[k];
                    kid_ns = kid_ns.saturating_add(kr.dur_ns);
                    if path.matches(';').count() + 1 < MAX_WALK_DEPTH {
                        walk.push((k, format!("{path};{}", frame(kr.ep, kr.phase))));
                    }
                    // Cross-entry child attribution: a nested call into
                    // a *different* entry bills the parent's entry as
                    // child time.
                    if kr.ep != s.ep {
                        entries
                            .entry(s.ep)
                            .or_insert_with(|| EntryProfile {
                                ep: s.ep,
                                name: names
                                    .get(&s.ep)
                                    .cloned()
                                    .unwrap_or_else(|| format!("ep{}", s.ep)),
                                roots: 0,
                                root_ns: 0,
                                phases: [PhaseAgg::default(); NPHASES],
                                child_ns: 0,
                            })
                            .child_ns += kr.dur_ns;
                    }
                }
                let self_ns = s.dur_ns.saturating_sub(kid_ns);
                let e = entries.entry(s.ep).or_insert_with(|| EntryProfile {
                    ep: s.ep,
                    name: names.get(&s.ep).cloned().unwrap_or_else(|| format!("ep{}", s.ep)),
                    roots: 0,
                    root_ns: 0,
                    phases: [PhaseAgg::default(); NPHASES],
                    child_ns: 0,
                });
                let agg = &mut e.phases[s.phase as usize];
                agg.count += 1;
                agg.total_ns += s.dur_ns;
                agg.self_ns += self_ns;
                agg.max_ns = agg.max_ns.max(s.dur_ns);
                *stacks.entry(path).or_insert(0) += self_ns;
            }
        }
    }

    let mut entries: Vec<EntryProfile> = entries.into_values().collect();
    entries.sort_by_key(|e| {
        let phase_ns: u64 = e.phases.iter().map(|p| p.total_ns).sum();
        (std::cmp::Reverse(e.root_ns), std::cmp::Reverse(phase_ns), e.ep)
    });
    let mut stacks: Vec<(String, u64)> = stacks.into_iter().collect();
    stacks.sort();

    Profile { entries, stacks, records: records.len(), traces: trace_ids.len(), orphans }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000_000 {
        format!("{:.1}s", ns as f64 / 1e9)
    } else if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl Profile {
    /// Top-down text report: per entry, the phase breakdown
    /// (total / self / count / worst), child attribution, and a
    /// critical-path line ordering phases by self time.
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical-path profile: {} span(s) in {} trace(s), {} entries{}",
            self.records,
            self.traces,
            self.entries.len(),
            if self.orphans > 0 {
                format!(", {} orphan span(s) (ring wrapped)", self.orphans)
            } else {
                String::new()
            },
        );
        if self.records == 0 {
            let _ = writeln!(
                out,
                "(no spans retained — enable tracing and issue traced calls first)"
            );
            return out;
        }
        for e in &self.entries {
            let avg = e.root_ns.checked_div(e.roots).unwrap_or(0);
            let _ = writeln!(
                out,
                "\nentry {} ({}): {} traced root(s), {} total{}{}",
                e.ep,
                e.name,
                e.roots,
                fmt_ns(e.root_ns),
                if e.roots > 0 { format!(", {} avg", fmt_ns(avg)) } else { String::new() },
                if e.child_ns > 0 {
                    format!(", {} in nested calls", fmt_ns(e.child_ns))
                } else {
                    String::new()
                },
            );
            let _ = writeln!(
                out,
                "  {:<12} {:>10} {:>10} {:>8} {:>10}",
                "phase", "total", "self", "count", "worst"
            );
            for &p in &PHASES {
                let a = &e.phases[p as usize];
                if a.count == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<12} {:>10} {:>10} {:>8} {:>10}",
                    p.label(),
                    fmt_ns(a.total_ns),
                    fmt_ns(a.self_ns),
                    a.count,
                    fmt_ns(a.max_ns),
                );
            }
            // The critical path, by where the time actually stuck.
            let mut by_self: Vec<&SpanPhase> = PHASES
                .iter()
                .filter(|&&p| e.phases[p as usize].count > 0)
                .collect();
            by_self.sort_by_key(|&&p| std::cmp::Reverse(e.phases[p as usize].self_ns));
            let path: Vec<String> = by_self
                .iter()
                .take(3)
                .filter(|&&&p| e.phases[p as usize].self_ns > 0)
                .map(|&&p| {
                    format!("{} {}", p.label(), fmt_ns(e.phases[p as usize].self_ns))
                })
                .collect();
            if !path.is_empty() {
                let _ = writeln!(out, "  critical path: {}", path.join(" > "));
            }
        }
        out
    }

    /// Collapsed-stack rendering (`frame;frame;frame value`, one line
    /// per distinct path) — load with `flamegraph.pl` or speedscope.
    /// Values are self-nanoseconds.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, ns) in &self.stacks {
            let _ = writeln!(out, "{path} {ns}");
        }
        out
    }
}

impl Runtime {
    /// Fold every retained span record into a critical-path
    /// [`Profile`], resolving entry names through the registry (cold
    /// path; see [`profile`](crate::profile)).
    pub fn profile(&self) -> Profile {
        let records = self.spans().all_records();
        let mut names: HashMap<u16, String> = HashMap::new();
        for r in &records {
            if let std::collections::hash_map::Entry::Vacant(v) = names.entry(r.ep) {
                if let Ok(e) = self.frank_entry(r.ep as crate::EntryId) {
                    v.insert(e.name.clone());
                }
            }
        }
        build(&records, &names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        trace_id: u32,
        span_id: u16,
        parent_id: u16,
        phase: SpanPhase,
        ep: u16,
        start_ns: u64,
        dur_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            seq: span_id as u64,
            trace_id,
            span_id,
            parent_id,
            phase,
            depth: 0,
            vcpu: 0,
            ep,
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn folds_nested_tree_with_self_time() {
        // call(1000) -> rendezvous(200) + handler(700); handler ->
        // nested call into another entry (300).
        let records = vec![
            rec(7, 1, 0, SpanPhase::Call, 3, 0, 1000),
            rec(7, 2, 1, SpanPhase::Rendezvous, 3, 10, 200),
            rec(7, 3, 1, SpanPhase::Handler, 3, 50, 700),
            rec(7, 4, 3, SpanPhase::Call, 5, 100, 300),
        ];
        let mut names = HashMap::new();
        names.insert(3u16, "svc".to_string());
        let p = build(&records, &names);
        assert_eq!(p.traces, 1);
        assert_eq!(p.records, 4);
        assert_eq!(p.orphans, 0);

        let svc = p.entries.iter().find(|e| e.ep == 3).unwrap();
        assert_eq!(svc.roots, 1);
        assert_eq!(svc.root_ns, 1000);
        let call = svc.phases[SpanPhase::Call as usize];
        assert_eq!(call.total_ns, 1000);
        assert_eq!(call.self_ns, 100); // 1000 - (200 + 700)
        let handler = svc.phases[SpanPhase::Handler as usize];
        assert_eq!(handler.self_ns, 400); // 700 - 300 nested
        assert_eq!(svc.child_ns, 300); // nested call into ep 5

        let nested = p.entries.iter().find(|e| e.ep == 5).unwrap();
        assert_eq!(nested.roots, 0); // not a root — it was parented
        assert_eq!(nested.phases[SpanPhase::Call as usize].total_ns, 300);

        // Self times partition the root: 100 + 200 + 400 + 300 = 1000.
        let total_self: u64 = p.stacks.iter().map(|(_, ns)| ns).sum();
        assert_eq!(total_self, 1000);

        // Collapsed stacks name the cross-entry path.
        let folded = p.folded();
        assert!(folded.contains("svc:call;svc:handler;ep5:call 300"), "{folded}");
    }

    #[test]
    fn orphan_spans_fold_as_subtree_roots() {
        // Parent 9 was lost to ring wrap; the span still folds.
        let records = vec![rec(1, 2, 9, SpanPhase::Handler, 0, 0, 50)];
        let p = build(&records, &HashMap::new());
        assert_eq!(p.orphans, 1);
        assert_eq!(p.entries[0].phases[SpanPhase::Handler as usize].total_ns, 50);
        assert!(p.folded().contains("ep0:handler 50"));
    }
}
