//! Shared-memory segments: the substrate under the cross-process
//! transport ([`crate::xproc`]).
//!
//! A [`Segment`] is a file-backed (or `memfd`-backed) `mmap(MAP_SHARED)`
//! mapping that two processes open independently. Everything placed in a
//! segment must be **position-independent**: the mapping lands at a
//! different virtual address in every process, so segment-resident
//! structures carry no pointers — only [`SegOffset`]s (byte offsets from
//! the segment base) and indices, resolved against the local base at the
//! point of use via [`SegRef`]. The structures themselves are `#[repr(C)]`
//! with compile-time size/offset assertions (see [`crate::slot::SlotCore`]
//! and the `xproc` wire types) so both sides agree on layout without a
//! serialization step.
//!
//! The module is std-only: the repo vendors its dependency graph, so the
//! handful of calls std does not wrap (`mmap`, `munmap`, `futex`,
//! `memfd_create`, `kill(pid, 0)`) go through a thin `extern "C"` /
//! `syscall(2)` shim below. File length management uses
//! [`std::fs::File::set_len`] (ftruncate) and segment files live in
//! `/dev/shm` when present (tmpfs — no writeback), falling back to the
//! system temp directory.
//!
//! Cross-process blocking uses **futexes on shared words**: a waiting
//! process sleeps on a `u32` inside the segment (`FUTEX_WAIT`, *without*
//! `FUTEX_PRIVATE_FLAG` — the word is shared between address spaces) and
//! the peer wakes it (`FUTEX_WAKE`) after a release-store to that word —
//! the same rendezvous the in-process path gets from park/unpark, minus
//! the shared `Thread` handle that cannot cross a process boundary. On
//! non-Linux hosts the wait degrades to a bounded sleep-poll loop so the
//! crate still builds and the in-process tests run; the cross-process
//! transport itself is Linux-only.

use std::fs::{File, OpenOptions};
use std::io;
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::ptr::NonNull;
use std::sync::atomic::AtomicU32;
use std::time::Duration;

/// A byte offset from a [`Segment`]'s base address — the only form of
/// "pointer" allowed inside a segment. `u32` bounds segments at 4 GiB,
/// far above any transport configuration, and keeps segment-resident
/// structures compact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(transparent)]
pub struct SegOffset(pub u32);

impl SegOffset {
    /// The offset as a plain `usize`.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// A typed segment offset: `SegRef<T>` is to `SegOffset` what `*mut T`
/// is to `*mut u8`. It stores no address — resolution happens against a
/// segment base in *this* process, so a `SegRef` written by one process
/// means the same object when read by another.
#[derive(Debug, PartialEq, Eq)]
#[repr(transparent)]
pub struct SegRef<T> {
    off: SegOffset,
    _marker: PhantomData<*mut T>,
}

impl<T> Clone for SegRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SegRef<T> {}

impl<T> SegRef<T> {
    /// A typed reference at byte offset `off`. Debug-asserts alignment —
    /// segment layouts are computed with explicit alignment, so a
    /// misaligned `SegRef` is a layout bug, not a runtime condition.
    #[inline]
    pub fn new(off: SegOffset) -> SegRef<T> {
        debug_assert_eq!(off.as_usize() % std::mem::align_of::<T>(), 0);
        SegRef { off, _marker: PhantomData }
    }

    /// The untyped offset.
    #[inline]
    pub fn offset(self) -> SegOffset {
        self.off
    }

    /// Resolve against `seg`'s local base.
    ///
    /// # Safety
    /// The caller must guarantee the offset (plus `size_of::<T>()`) lies
    /// within the segment and that a valid `T` lives there (segment
    /// layouts are initialized by the creator and validated by the
    /// opener before any `SegRef` is resolved). The returned reference
    /// aliases shared memory: `T` must be a `repr(C)` structure whose
    /// cross-process shared fields are atomics or `UnsafeCell`s governed
    /// by the transport's ownership protocol.
    #[inline]
    pub unsafe fn resolve(self, seg: &Segment) -> &T {
        debug_assert!(self.off.as_usize() + std::mem::size_of::<T>() <= seg.len());
        // Safety: bounds and validity per the contract above.
        unsafe { &*(seg.base().add(self.off.as_usize()) as *const T) }
    }
}

/// The directory segment files live in: `/dev/shm` (tmpfs) when present,
/// else the system temp dir.
pub fn segment_dir() -> PathBuf {
    let shm = Path::new("/dev/shm");
    if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    }
}

/// A shared, mapped memory segment.
///
/// Created by one process ([`Segment::create`] — which also unlinks the
/// backing file on drop) and opened read-write by peers
/// ([`Segment::open`]). [`Segment::anon`] gives an anonymous
/// `memfd`-backed segment for single-process layout tests.
pub struct Segment {
    base: NonNull<u8>,
    len: usize,
    /// Unlinked on drop when this process created the file.
    unlink: Option<PathBuf>,
}

// Safety: the mapping is plain memory; all shared mutation inside it
// goes through atomics/UnsafeCell per the transport protocol.
unsafe impl Send for Segment {}
unsafe impl Sync for Segment {}

impl Segment {
    /// Create the backing file at `path` (must not exist), size it to
    /// `len`, and map it shared. The file is unlinked when this
    /// `Segment` drops — peers that already opened it keep their
    /// mapping (POSIX unlink semantics), and a crashed creator leaves
    /// at worst one stale file in tmpfs.
    pub fn create(path: &Path, len: usize) -> io::Result<Segment> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.set_len(len as u64)?;
        let base = map_shared(&file, len)?;
        Ok(Segment { base, len, unlink: Some(path.to_path_buf()) })
    }

    /// Open and map an existing segment file read-write. The mapped
    /// length is the file's current length; content validation (magic,
    /// layout version) is the caller's job — this layer only maps bytes.
    pub fn open(path: &Path) -> io::Result<Segment> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty segment file"));
        }
        let base = map_shared(&file, len)?;
        Ok(Segment { base, len, unlink: None })
    }

    /// An anonymous segment (`memfd_create` on Linux, an unlinked temp
    /// file elsewhere) — reachable only through this mapping or an
    /// inherited fd, used by layout unit tests.
    pub fn anon(len: usize) -> io::Result<Segment> {
        let file = sys::memfd(len)?;
        let base = map_shared(&file, len)?;
        Ok(Segment { base, len, unlink: None })
    }

    /// The local base address of the mapping.
    #[inline]
    pub fn base(&self) -> *mut u8 {
        self.base.as_ptr()
    }

    /// Mapped length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is zero-length (never true for a live
    /// segment; here for the conventional pairing with `len`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole mapping as a byte slice — the byte-dump side of the
    /// layout round-trip test.
    ///
    /// # Safety
    /// The caller must ensure no peer is concurrently writing the
    /// segment (quiesced dump), since this forms a `&[u8]` over memory
    /// that is otherwise mutated through atomics.
    pub unsafe fn bytes(&self) -> &[u8] {
        // Safety: mapping is valid for `len` bytes; quiescence per the
        // contract above.
        unsafe { std::slice::from_raw_parts(self.base(), self.len) }
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        // Safety: base/len came from a successful mmap of exactly `len`.
        unsafe { sys::unmap(self.base.as_ptr(), self.len) };
        if let Some(p) = self.unlink.take() {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn map_shared(file: &File, len: usize) -> io::Result<NonNull<u8>> {
    sys::map_shared(file, len)
}

/// Sleep on a shared `u32` until its value is no longer `expected` (or
/// the timeout lapses, or a spurious wake). Returns whether the word
/// changed (`true`) as observed on wake — callers re-check state in a
/// loop regardless, this is a hint for accounting.
///
/// The word must live in shared memory for cross-process use; the futex
/// is issued *non-private*.
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>) -> bool {
    sys::futex_wait(word, expected, timeout)
}

/// Wake up to `n` waiters sleeping on `word`. Returns the number woken.
pub fn futex_wake(word: &AtomicU32, n: u32) -> u32 {
    sys::futex_wake(word, n)
}

/// Whether a process with this PID currently exists (`kill(pid, 0)`).
/// Used for peer-death detection; PID reuse makes it a heuristic, which
/// the transport pairs with a heartbeat word in the segment.
pub fn pid_alive(pid: u32) -> bool {
    sys::pid_alive(pid)
}

#[cfg(target_os = "linux")]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::{AsRawFd, FromRawFd};
    use std::ptr::NonNull;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    use core::ffi::{c_char, c_int, c_long, c_uint, c_void};

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn kill(pid: c_int, sig: c_int) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const PROT_WRITE: c_int = 2;
    const MAP_SHARED: c_int = 1;

    #[cfg(target_arch = "x86_64")]
    const SYS_FUTEX: c_long = 202;
    #[cfg(target_arch = "aarch64")]
    const SYS_FUTEX: c_long = 98;
    #[cfg(target_arch = "x86_64")]
    const SYS_MEMFD_CREATE: c_long = 319;
    #[cfg(target_arch = "aarch64")]
    const SYS_MEMFD_CREATE: c_long = 279;

    /// `FUTEX_WAIT`/`FUTEX_WAKE` **without** `FUTEX_PRIVATE_FLAG`: the
    /// word is shared between address spaces.
    const FUTEX_WAIT: c_int = 0;
    const FUTEX_WAKE: c_int = 1;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    pub(super) fn map_shared(file: &File, len: usize) -> io::Result<NonNull<u8>> {
        // Safety: plain mmap of a file we own a handle to; failure is
        // reported, success hands us `len` mapped bytes.
        let p = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if p as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        NonNull::new(p as *mut u8).ok_or_else(|| io::Error::other("mmap returned null"))
    }

    pub(super) unsafe fn unmap(base: *mut u8, len: usize) {
        // Safety: caller passes a live mapping of exactly `len` bytes.
        unsafe { munmap(base as *mut c_void, len) };
    }

    pub(super) fn memfd(len: usize) -> io::Result<File> {
        let name = b"ppc-seg\0";
        // Safety: memfd_create with a NUL-terminated static name.
        let fd = unsafe {
            syscall(SYS_MEMFD_CREATE, name.as_ptr() as *const c_char, 0 as c_uint)
        };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // Safety: fresh fd owned by us.
        let file = unsafe { File::from_raw_fd(fd as c_int) };
        file.set_len(len as u64)?;
        Ok(file)
    }

    pub(super) fn futex_wait(
        word: &AtomicU32,
        expected: u32,
        timeout: Option<Duration>,
    ) -> bool {
        let ts = timeout.map(|d| Timespec {
            tv_sec: d.as_secs() as i64,
            tv_nsec: i64::from(d.subsec_nanos()),
        });
        let tsp = ts.as_ref().map_or(std::ptr::null(), |t| t as *const Timespec);
        // Safety: `word` outlives the call; the kernel compares and
        // sleeps atomically. EAGAIN (value changed), EINTR, and
        // ETIMEDOUT are all normal returns — callers re-check state.
        unsafe {
            syscall(SYS_FUTEX, word.as_ptr(), FUTEX_WAIT, expected, tsp);
        }
        word.load(Ordering::Acquire) != expected
    }

    pub(super) fn futex_wake(word: &AtomicU32, n: u32) -> u32 {
        // The kernel takes nr_wake as a signed int: an unclamped
        // `u32::MAX as c_int` is -1, which wakes at most ONE waiter —
        // silently breaking the wake-all idiom every shutdown/doorbell
        // call site relies on.
        let n = n.min(i32::MAX as u32) as c_int;
        // Safety: `word` outlives the call.
        let r = unsafe { syscall(SYS_FUTEX, word.as_ptr(), FUTEX_WAKE, n) };
        if r < 0 {
            0
        } else {
            r as u32
        }
    }

    pub(super) fn pid_alive(pid: u32) -> bool {
        if pid == 0 {
            return false;
        }
        // Safety: signal 0 performs existence + permission checks only.
        let r = unsafe { kill(pid as c_int, 0) };
        if r == 0 {
            return true;
        }
        // EPERM means "exists, not ours" — still alive.
        std::io::Error::last_os_error().raw_os_error() == Some(1)
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portability shim: keeps the crate building (and the in-process
    //! tests running) off Linux. Cross-process segments degrade to
    //! temp-file mappings via std (unsupported — `map_shared` errors),
    //! and futex waits become bounded sleep-polls.

    use std::fs::File;
    use std::io;
    use std::ptr::NonNull;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::{Duration, Instant};

    pub(super) fn map_shared(_file: &File, _len: usize) -> io::Result<NonNull<u8>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "shared-memory segments require Linux",
        ))
    }

    pub(super) unsafe fn unmap(_base: *mut u8, _len: usize) {}

    pub(super) fn memfd(_len: usize) -> io::Result<File> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memfd segments require Linux",
        ))
    }

    pub(super) fn futex_wait(
        word: &AtomicU32,
        expected: u32,
        timeout: Option<Duration>,
    ) -> bool {
        let deadline = timeout.map(|d| Instant::now() + d);
        while word.load(Ordering::Acquire) == expected {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    pub(super) fn futex_wake(_word: &AtomicU32, _n: u32) -> u32 {
        0
    }

    pub(super) fn pid_alive(_pid: u32) -> bool {
        false
    }
}

/// Compile-time layout lock-down for a segment-resident type: size,
/// alignment, and (optionally) field offsets. Layout drift across a
/// refactor becomes a build error on **both** sides of the boundary
/// instead of cross-process UB.
#[macro_export]
macro_rules! assert_segment_layout {
    ($t:ty { size: $size:expr, align: $align:expr $(, $field:ident: $off:expr)* $(,)? }) => {
        const _: () = {
            assert!(
                std::mem::size_of::<$t>() == $size,
                concat!("segment layout drift: size_of ", stringify!($t)),
            );
            assert!(
                std::mem::align_of::<$t>() == $align,
                concat!("segment layout drift: align_of ", stringify!($t)),
            );
            $(assert!(
                std::mem::offset_of!($t, $field) == $off,
                concat!(
                    "segment layout drift: offset_of ",
                    stringify!($t), ".", stringify!($field)
                ),
            );)*
        };
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn anon_segment_maps_and_is_zeroed() {
        let seg = Segment::anon(1 << 16).unwrap();
        assert_eq!(seg.len(), 1 << 16);
        // Safety: no concurrent writers.
        let bytes = unsafe { seg.bytes() };
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn create_open_share_bytes_and_unlink_on_drop() {
        let path = segment_dir().join(format!("ppc-shm-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let a = Segment::create(&path, 4096).unwrap();
        // Safety: single-threaded test; offset 0 is in bounds.
        unsafe { *a.base() = 0xAB };
        let b = Segment::open(&path).unwrap();
        // Safety: as above.
        assert_eq!(unsafe { *b.base() }, 0xAB);
        drop(a);
        assert!(!path.exists(), "creator unlinks on drop");
        // The peer's mapping stays valid after the unlink.
        // Safety: as above.
        assert_eq!(unsafe { *b.base() }, 0xAB);
    }

    #[test]
    fn segref_resolves_typed_offsets() {
        let seg = Segment::anon(4096).unwrap();
        let r: SegRef<AtomicU32> = SegRef::new(SegOffset(64));
        // Safety: offset 64 is in bounds and aligned; zeroed memory is a
        // valid AtomicU32.
        let w = unsafe { r.resolve(&seg) };
        w.store(7, Ordering::Relaxed);
        // Safety: as above.
        assert_eq!(unsafe { *(seg.base().add(64) as *const u32) }, 7);
    }

    #[test]
    fn futex_wake_crosses_threads() {
        let seg = Segment::anon(4096).unwrap();
        let r: SegRef<AtomicU32> = SegRef::new(SegOffset(0));
        // Safety: in-bounds, aligned, zero-initialized.
        let word = unsafe { r.resolve(&seg) };
        std::thread::scope(|s| {
            s.spawn(|| {
                while word.load(Ordering::Acquire) == 0 {
                    futex_wait(word, 0, Some(Duration::from_millis(50)));
                }
            });
            std::thread::sleep(Duration::from_millis(10));
            word.store(1, Ordering::Release);
            futex_wake(word, u32::MAX);
        });
        assert_eq!(word.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pid_alive_sees_self_and_not_garbage() {
        assert!(pid_alive(std::process::id()));
        assert!(!pid_alive(0));
    }
}
