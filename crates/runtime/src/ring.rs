//! Submission/completion rings: pipelined PPC with doorbell batching.
//!
//! Every dispatch mode in `call.rs` is one-call-at-a-time rendezvous: a
//! client's throughput is capped at 1/RTT however fast the control
//! plane gets, and the park modes pay a park/unpark **per call**. This
//! module adds the io_uring-style alternative over the same per-vCPU
//! machinery: a per-client **submission queue** (SQ) and **completion
//! queue** (CQ) pair serviced by one dedicated ring worker thread, so
//! many PPCs ride in flight per client and the wake cost amortizes over
//! a whole batch.
//!
//! Layout and protocol:
//!
//! * Both queues are power-of-two single-producer/single-consumer rings
//!   of fixed-size entries, with cache-line-padded head/tail words. The
//!   client is the SQ producer and CQ consumer; the ring worker is the
//!   SQ consumer and CQ producer. Each side publishes its cursor with a
//!   `Release` store and reads the other's with `Acquire` — no RMWs on
//!   the per-entry fast path at all.
//! * An SQE carries the entry id, the 8 argument words, a user tag
//!   (returned verbatim in the completion), the packed span context
//!   (so PR-4 traces stay causally complete across the queue hop), and
//!   optionally a staged payload buffer from the PR-2 pools.
//! * **Doorbell batching**: [`ClientRing::submit`] only writes the SQE
//!   and publishes the tail. [`ClientRing::doorbell`] — once per batch
//!   — re-publishes the tail `SeqCst` and wakes the worker only if it
//!   actually went to sleep, Dekker-style: the worker announces
//!   `sleeping` with `SeqCst`, re-checks the tail in the same total
//!   order, then parks; the doorbell's `SeqCst` tail store + sleep-flag
//!   swap make a lost wakeup impossible. In the spin modes the worker
//!   picks submissions up mid-spin and the doorbell is a no-op.
//! * **Admission control**: the client holds a fixed credit budget,
//!   clamped to the CQ capacity. `submitted - reaped >= credits` (or a
//!   full SQ) refuses the submission with [`RtError::RingFull`] — the
//!   open-loop backpressure signal — so overload shows up as shed
//!   requests and bounded queues, never unbounded memory. The same
//!   invariant proves the CQ can never overflow: completions in flight
//!   plus queued SQEs never exceed the credit budget.
//! * **Execution-time claims**: the worker claims the entry (the PR-5
//!   lifetime-bearing `frank::Claim` guard) only when an SQE
//!   reaches the head of the queue, never while it waits. Queued
//!   submissions therefore hold no entry references: kill, Exchange and
//!   reclaim drain cleanly (in-queue SQEs for a killed entry complete
//!   with [`RtError::EntryDead`]/[`RtError::Aborted`] CQEs), and
//!   `wait_drained` cannot wedge on parked queue depth.
//! * **Async copy engine**: [`ClientRing::submit_bulk`] stages the
//!   payload into a pool buffer (a local memcpy) and returns; the ring
//!   worker performs the grant-checked copy into the client's region
//!   *off the caller's critical path* before running the handler. The
//!   owner-side access (`owner_access = true`) authorizes iff the ring
//!   client's program owns the region, so a forged descriptor is
//!   refused in the worker with a [`RtError::BulkDenied`] completion.
//!
//! * **QoS lanes**: each ring keeps one SQ/CQ pair per
//!   [`crate::QosClass`] (the class of the *entry* an SQE targets,
//!   resolved at submit time and cached per-entry). The single ring
//!   worker drains every queued `Latency` SQE before each `Bulk` one
//!   and re-checks the `Latency` lane between `Bulk` executions, so a
//!   latency-critical submission waits behind at most one in-progress
//!   bulk handler — never behind a deep batch of 1MiB copies that
//!   happened to be queued first. Credits are a single budget across
//!   both lanes (total in-flight bounds each lane's CQ occupancy, so
//!   the no-overflow proof is unchanged). A cached class can go stale
//!   if an entry ID is killed and re-bound under the other class; that
//!   mis-sorts *priority* for that ID until the ring is rebuilt — it
//!   never affects correctness, since execution re-claims the entry
//!   fresh.
//!
//! Completions are posted in submission order **within a QoS lane**
//! (one FIFO worker per lane stream), which is the ordering guarantee
//! the tests pin down: for SQEs of the same class, CQE *i* is always
//! the completion of SQE *i*. Across classes, `Latency` completions
//! overtake `Bulk` ones by design — [`ClientRing::reap`] also harvests
//! the `Latency` lane first.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;
use std::time::Instant;

use crossbeam::utils::CachePadded;

use crate::bulk::PoolBuf;
use crate::flight::FlightKind;
use crate::obs::LatencyKind;
use crate::region::BulkDesc;
use crate::span::SpanToken;
use crate::{bulk, Client, EntryId, ProgramId, RtError, Runtime};

/// Number of QoS lanes per ring — one per [`crate::QosClass`] variant.
const LANES: usize = 2;
/// Lane index of the `Latency` class (drained first by the worker).
const LANE_LAT: usize = 0;
/// Lane index of the `Bulk` class.
const LANE_BULK: usize = 1;

/// Hard cap on ring capacities (entries). Large enough for any open-loop
/// experiment, small enough that a mis-typed depth cannot allocate gigabytes.
pub const MAX_RING_DEPTH: usize = 1 << 16;

/// Sizing for a [`ClientRing`]. Depths are rounded up to powers of two
/// and clamped to [2, [`MAX_RING_DEPTH`]]; `credits` is clamped to the
/// completion-queue capacity so the CQ can never overflow.
#[derive(Clone, Copy, Debug)]
pub struct RingOptions {
    /// Submission-queue capacity (entries).
    pub sq_depth: usize,
    /// Completion-queue capacity (entries).
    pub cq_depth: usize,
    /// In-flight credit budget: submissions not yet reaped. The
    /// admission bound behind [`RtError::RingFull`].
    pub credits: usize,
}

impl Default for RingOptions {
    fn default() -> Self {
        RingOptions { sq_depth: 64, cq_depth: 64, credits: 64 }
    }
}

/// One harvested completion (see [`ClientRing::reap`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The user tag passed at submission, returned verbatim.
    pub user: u64,
    /// The entry the SQE targeted.
    pub ep: EntryId,
    /// The handler's 8 return words, or the dispatch/execution error
    /// (unknown/dead entry, contained fault, refused bulk copy).
    pub result: Result<[u64; 8], RtError>,
}

/// A queued submission. Fixed-size; the staged payload (if any) rides
/// as an owned pool buffer, so dropping an unexecuted SQE cannot leak.
struct Sqe {
    ep: EntryId,
    args: [u64; 8],
    user: u64,
    /// Packed [`crate::TraceCtx`] of the client-side ring span (0 = no
    /// trace) — the handler span parents under it, exactly like the
    /// call slot's trace word on the hand-off path.
    trace: u64,
    staged: Option<Staged>,
}

/// Payload staged client-side for worker-side delivery.
enum Staged {
    /// Request bytes the handler sees as its scratch page
    /// ([`crate::ScratchRef::Ready`] over the buffer).
    Payload { buf: PoolBuf },
    /// Async bulk copy: `len` bytes to move into the granted region
    /// span `desc` before the handler (which receives `desc` in
    /// `args[7]`) runs.
    Bulk { buf: PoolBuf, len: usize, desc: BulkDesc },
}

/// A queued completion (plain data; the CQ never owns resources).
struct Cqe {
    user: u64,
    ep: EntryId,
    result: Result<[u64; 8], RtError>,
}

/// A power-of-two SPSC ring: cache-line-padded cursors, `MaybeUninit`
/// slots. The index protocol is the whole synchronization story: the
/// producer owns `[tail, head + capacity)`, the consumer owns
/// `[head, tail)`, and each side publishes its cursor with `Release`
/// after touching a slot, never before.
struct Spsc<T> {
    /// Consumer cursor (next entry to read). Monotonic, never masked.
    head: CachePadded<AtomicU64>,
    /// Producer cursor (next entry to write). Monotonic, never masked.
    tail: CachePadded<AtomicU64>,
    mask: u64,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// Safety: slots are accessed only under the SPSC index protocol — the
// producer touches a slot strictly before publishing it via `tail`, the
// consumer strictly after observing it there (and symmetrically for
// recycling via `head`) — so no slot is ever reachable from two threads
// at once.
unsafe impl<T: Send> Send for Spsc<T> {}
unsafe impl<T: Send> Sync for Spsc<T> {}

impl<T> Spsc<T> {
    fn new(cap: usize) -> Spsc<T> {
        debug_assert!(cap.is_power_of_two());
        Spsc {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            mask: cap as u64 - 1,
            slots: (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: move `v` into slot `idx`.
    ///
    /// # Safety
    /// Caller is the sole producer, `idx` is its unpublished cursor, and
    /// `idx - head < capacity` (the slot is free).
    unsafe fn write(&self, idx: u64, v: T) {
        (*self.slots[(idx & self.mask) as usize].get()).write(v);
    }

    /// Consumer side: move slot `idx`'s entry out.
    ///
    /// # Safety
    /// Caller is the sole consumer, `idx` is its cursor, and `idx <
    /// tail` was observed with `Acquire` (the slot is published).
    unsafe fn read(&self, idx: u64) -> T {
        (*self.slots[(idx & self.mask) as usize].get()).assume_init_read()
    }

    /// Drop every published-but-unconsumed entry (sole-owner teardown).
    fn drain_owned(&mut self) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            // Safety: exclusive access (`&mut self`), entries in
            // `[head, tail)` are initialized and unconsumed.
            unsafe { drop(self.read(i)) };
        }
        self.head.store(tail, Ordering::Relaxed);
    }
}

/// One QoS lane: an SQ/CQ pair carrying SQEs of a single
/// [`crate::QosClass`]. Both lanes share the worker, the sleep flag and the
/// credit budget — the lane split only decides *drain order*.
struct Lane {
    sq: Spsc<Sqe>,
    cq: Spsc<Cqe>,
}

/// The state shared between a [`ClientRing`] handle and its worker
/// thread. Registered (weakly) with Frank so runtime-wide policy
/// changes reach the worker's idle budget.
pub(crate) struct RingShared {
    vcpu: usize,
    program: ProgramId,
    /// SQ/CQ pairs indexed by [`crate::QosClass::index`]: `Latency` in lane 0,
    /// `Bulk` in lane 1.
    lanes: [Lane; LANES],
    /// Worker's sleep announcement (the Dekker flag the doorbell pairs
    /// with).
    sleeping: AtomicBool,
    /// Worker thread handle, installed by the spawner before the ring
    /// is usable — a doorbell can never miss its unpark target.
    worker: OnceLock<Thread>,
    shutdown: AtomicBool,
    /// Worker-side idle spin budget before sleeping; paired with the
    /// runtime [`crate::SpinPolicy`] like every entry's `idle_spin`.
    idle_spin: AtomicU32,
}

impl RingShared {
    pub(crate) fn set_idle_spin(&self, budget: u32) {
        self.idle_spin.store(budget, Ordering::Relaxed);
    }
}

impl Drop for RingShared {
    fn drop(&mut self) {
        // Sole owner at this point (client handle and worker both
        // gone): free anything still queued so staged payload buffers
        // never leak.
        for lane in &mut self.lanes {
            lane.sq.drain_owned();
            lane.cq.drain_owned();
        }
    }
}

/// The per-client ring handle: submit many PPCs, ring the doorbell once
/// per batch, reap completions in submission order. Created with
/// [`Client::ring`] / [`Client::ring_with`]; dropping it shuts the
/// worker down after everything queued has completed.
///
/// All producer-side methods take `&mut self`: the type system enforces
/// the single-producer half of the SPSC contract (clone the
/// [`Client`] and build another ring for a second submitter).
pub struct ClientRing {
    rt: Arc<Runtime>,
    shared: Arc<RingShared>,
    /// Client-local submission cursors, one per lane (each equals the
    /// lane's published SQ tail).
    local_tail: [u64; LANES],
    /// Completions harvested so far per lane (each equals the lane's
    /// published CQ head).
    reaped: [u64; LANES],
    credits: u64,
    /// Per-entry lane cache: 0 = not yet resolved, else
    /// `1 + QosClass::index()`. Submit-time classification costs one
    /// byte load after the first call on an entry — no claim, no
    /// atomic.
    classes: Box<[u8]>,
    /// Ring spans of in-flight SQEs per lane, submission order —
    /// completions arrive in the same per-lane order, so reap closes
    /// them front-first.
    tokens: [VecDeque<Option<SpanToken>>; LANES],
    join: Option<std::thread::JoinHandle<()>>,
}

impl ClientRing {
    pub(crate) fn new(client: &Client, opts: RingOptions) -> ClientRing {
        let rt = Arc::clone(client.runtime());
        let sq_cap = opts.sq_depth.next_power_of_two().clamp(2, MAX_RING_DEPTH);
        let cq_cap = opts.cq_depth.next_power_of_two().clamp(2, MAX_RING_DEPTH);
        let credits = opts.credits.clamp(1, cq_cap) as u64;
        // Each lane gets the full configured depth: the lane split is a
        // priority mechanism, not a capacity partition, and the global
        // credit budget (<= one lane's CQ capacity) already bounds
        // total occupancy.
        let shared = Arc::new(RingShared {
            vcpu: client.vcpu,
            program: client.program,
            lanes: std::array::from_fn(|_| Lane {
                sq: Spsc::new(sq_cap),
                cq: Spsc::new(cq_cap),
            }),
            sleeping: AtomicBool::new(false),
            worker: OnceLock::new(),
            shutdown: AtomicBool::new(false),
            idle_spin: AtomicU32::new(crate::worker_idle_budget(rt.spin_policy())),
        });
        rt.register_ring(&shared);
        let rt2 = Arc::clone(&rt);
        let sh2 = Arc::clone(&shared);
        let pin = rt.pinned();
        let jh = std::thread::Builder::new()
            .name(format!("ppc-ring-v{}", client.vcpu))
            .spawn(move || {
                if pin {
                    crate::worker::pin_to_vcpu_core(sh2.vcpu);
                }
                ring_worker(rt2, sh2);
            })
            .expect("spawn ring worker thread");
        shared.worker.set(jh.thread().clone()).expect("worker thread set once");
        rt.stats.cell(client.vcpu).workers_created.fetch_add(1, Ordering::Relaxed);
        ClientRing {
            rt,
            shared,
            local_tail: [0; LANES],
            reaped: [0; LANES],
            credits,
            classes: vec![0u8; crate::MAX_ENTRIES].into_boxed_slice(),
            tokens: std::array::from_fn(|_| VecDeque::new()),
            join: Some(jh),
        }
    }

    /// Submissions accepted but not yet reaped, both lanes — bounded by
    /// [`ClientRing::credits`] at all times (the bounded-memory
    /// invariant the overload experiment checks).
    pub fn in_flight(&self) -> u64 {
        (self.local_tail[LANE_LAT] - self.reaped[LANE_LAT])
            + (self.local_tail[LANE_BULK] - self.reaped[LANE_BULK])
    }

    /// The in-flight credit budget (shared across both QoS lanes).
    pub fn credits(&self) -> u64 {
        self.credits
    }

    /// Submission-queue capacity (entries, per QoS lane).
    pub fn sq_capacity(&self) -> usize {
        self.shared.lanes[LANE_LAT].sq.capacity()
    }

    /// Completion-queue capacity (entries, per QoS lane).
    pub fn cq_capacity(&self) -> usize {
        self.shared.lanes[LANE_LAT].cq.capacity()
    }

    /// The QoS lane `ep` rides: its entry's [`crate::QosClass`], resolved from
    /// this vCPU's service table on first submission and cached. An
    /// unknown or dead entry rides the `Latency` lane un-cached (its
    /// SQE completes with an error CQE either way; the id may be bound
    /// for real later).
    fn lane_of(&mut self, ep: EntryId) -> usize {
        if ep >= crate::MAX_ENTRIES {
            return LANE_LAT;
        }
        match self.classes[ep] {
            0 => match self.rt.entry_qos(self.shared.vcpu, ep) {
                Some(q) => {
                    self.classes[ep] = 1 + q.index() as u8;
                    q.index()
                }
                None => LANE_LAT,
            },
            c => (c - 1) as usize,
        }
    }

    /// Admission control for `lane`: refuse when the shared credit
    /// budget is spent (`ring_no_credit` — the remedy is to reap) or
    /// the lane's SQ has no free slot (`ring_full` — the worker is
    /// behind), both surfacing as [`RtError::RingFull`].
    fn admit(&self, lane: usize) -> Result<(), RtError> {
        let s = &self.shared;
        if self.in_flight() >= self.credits {
            self.rt.stats.cell(s.vcpu).ring_no_credit.fetch_add(1, Ordering::Relaxed);
            return Err(RtError::RingFull);
        }
        let sq = &s.lanes[lane].sq;
        if self.local_tail[lane] - sq.head.load(Ordering::Acquire) >= sq.capacity() as u64 {
            self.rt.stats.cell(s.vcpu).ring_full.fetch_add(1, Ordering::Relaxed);
            return Err(RtError::RingFull);
        }
        Ok(())
    }

    /// Write one SQE into `lane` and publish that lane's tail
    /// (`Release`). No wake — that is [`ClientRing::doorbell`]'s job,
    /// once per batch.
    fn push(&mut self, lane: usize, ep: EntryId, args: [u64; 8], user: u64, staged: Option<Staged>) {
        let s = &self.shared;
        let sampled = self.rt.obs().try_sample();
        let tok = self.rt.spans().begin_ring(sampled, s.vcpu, ep);
        let trace = tok.as_ref().map_or(0, |t| t.ctx.pack());
        // Safety: single producer (`&mut self`), space checked by
        // `admit` — the cursor's slot is free.
        unsafe { s.lanes[lane].sq.write(self.local_tail[lane], Sqe { ep, args, user, trace, staged }) };
        self.local_tail[lane] += 1;
        s.lanes[lane].sq.tail.store(self.local_tail[lane], Ordering::Release);
        self.tokens[lane].push_back(tok);
        self.rt.stats.cell(s.vcpu).ring_submits.fetch_add(1, Ordering::Relaxed);
    }

    /// Queue one PPC: entry `ep`, 8 argument words, and a `user` tag
    /// returned verbatim in the [`Completion`]. Returns
    /// [`RtError::RingFull`] when admission control refuses (reap, or
    /// shed the request, and retry). Call [`ClientRing::doorbell`]
    /// after the batch.
    pub fn submit(&mut self, ep: EntryId, args: [u64; 8], user: u64) -> Result<(), RtError> {
        let lane = self.lane_of(ep);
        self.admit(lane)?;
        self.push(lane, ep, args, user, None);
        Ok(())
    }

    /// Queue one PPC carrying a request payload. The bytes are staged
    /// into a pool buffer (one local memcpy) and handed to the handler
    /// as its scratch page, payload in the prefix. Payloads above the
    /// top pool size class are refused with [`RtError::BadBulk`].
    pub fn submit_payload(
        &mut self,
        ep: EntryId,
        args: [u64; 8],
        user: u64,
        payload: &[u8],
    ) -> Result<(), RtError> {
        let lane = self.lane_of(ep);
        self.admit(lane)?;
        let s = &self.shared;
        let cell = self.rt.stats.cell(s.vcpu);
        let mut buf =
            self.rt.bulk().pool(s.vcpu).take(payload.len().max(1), cell).ok_or(RtError::BadBulk)?;
        buf.as_mut_slice()[..payload.len()].copy_from_slice(payload);
        self.push(lane, ep, args, user, Some(Staged::Payload { buf }));
        Ok(())
    }

    /// Queue one bulk PPC, draining the region copy off this thread's
    /// critical path: `payload` is staged into a pool buffer now (one
    /// local memcpy), the ring worker later performs the grant-checked
    /// copy into the span `desc` describes — which this client's
    /// program must own — and then runs the handler with `desc` packed
    /// into `args[7]`, exactly like [`Client::call_bulk`]. A payload
    /// longer than the descriptor's span, or wider than the top pool
    /// class, is refused with [`RtError::BadBulk`] up front.
    pub fn submit_bulk(
        &mut self,
        ep: EntryId,
        mut args: [u64; 8],
        user: u64,
        desc: BulkDesc,
        payload: &[u8],
    ) -> Result<(), RtError> {
        let lane = self.lane_of(ep);
        self.admit(lane)?;
        args[7] = desc.encode().ok_or(RtError::BadBulk)?;
        if payload.len() > desc.len as usize {
            return Err(RtError::BadBulk);
        }
        let s = &self.shared;
        let cell = self.rt.stats.cell(s.vcpu);
        let mut buf =
            self.rt.bulk().pool(s.vcpu).take(payload.len().max(1), cell).ok_or(RtError::BadBulk)?;
        buf.as_mut_slice()[..payload.len()].copy_from_slice(payload);
        cell.bulk_calls.fetch_add(1, Ordering::Relaxed);
        self.push(lane, ep, args, user, Some(Staged::Bulk { buf, len: payload.len(), desc }));
        Ok(())
    }

    /// Ring the doorbell: make the batch visible in the `SeqCst` order
    /// and wake the worker iff it actually went to sleep. One
    /// park/unpark pair per *batch*, not per call — the amortization
    /// that pays for the ring in the park modes. Idempotent and cheap
    /// when the worker is awake (spin modes): one store and one swap.
    pub fn doorbell(&self) {
        let s = &self.shared;
        // The SeqCst re-publish pairs with the worker's sleep protocol:
        // worker stores `sleeping = true` (SeqCst), re-loads both lane
        // tails (SeqCst), parks. Whichever lands first in the total
        // order, either the worker sees these tails, or this swap sees
        // the worker's announcement — a lost wakeup would need both
        // loads to miss both stores, which SeqCst forbids.
        for lane in 0..LANES {
            s.lanes[lane].sq.tail.store(self.local_tail[lane], Ordering::SeqCst);
        }
        if s.sleeping.swap(false, Ordering::SeqCst) {
            if let Some(t) = s.worker.get() {
                let cell = self.rt.stats.cell(s.vcpu);
                cell.ring_doorbells.fetch_add(1, Ordering::Relaxed);
                let depth: u64 = (0..LANES)
                    .map(|l| {
                        self.local_tail[l]
                            .saturating_sub(s.lanes[l].sq.head.load(Ordering::Relaxed))
                    })
                    .sum();
                self.rt.flight().record(s.vcpu, FlightKind::Doorbell, 0, depth as u32);
                t.unpark();
            }
        }
    }

    /// Harvest completions from one lane's CQ (per-lane submission
    /// order; closes ring spans front-first and returns credits).
    fn reap_lane(&mut self, lane: usize, max: usize, out: &mut Vec<Completion>) -> usize {
        let s = &self.shared;
        let cq = &s.lanes[lane].cq;
        let tail = cq.tail.load(Ordering::Acquire);
        let mut n = 0usize;
        while self.reaped[lane] < tail && n < max {
            // Safety: single consumer (`&mut self`), `reaped < tail`
            // observed with Acquire.
            let cqe = unsafe { cq.read(self.reaped[lane]) };
            self.reaped[lane] += 1;
            cq.head.store(self.reaped[lane], Ordering::Release);
            if let Some(tok) = self.tokens[lane].pop_front().flatten() {
                self.rt.spans().end_token(tok, None);
            }
            out.push(Completion { user: cqe.user, ep: cqe.ep, result: cqe.result });
            n += 1;
        }
        n
    }

    /// Harvest up to `max` completions into `out` (append; the caller
    /// reuses the vector so the hot loop never allocates). Returns how
    /// many were reaped. The `Latency` lane is harvested first — its
    /// completions overtake queued `Bulk` ones end to end — and within
    /// a lane completions arrive in submission order; each reap closes
    /// the matching ring span and returns a credit. Non-blocking — an
    /// empty CQ reaps zero.
    pub fn reap(&mut self, max: usize, out: &mut Vec<Completion>) -> usize {
        let mut n = self.reap_lane(LANE_LAT, max, out);
        n += self.reap_lane(LANE_BULK, max - n, out);
        if n > 0 && self.rt.obs().try_sample() {
            let vcpu = self.shared.vcpu;
            self.rt.obs().record(LatencyKind::ReapBatch, vcpu, n as u64);
            self.rt.flight().record(vcpu, FlightKind::RingReap, 0, n as u32);
        }
        n
    }

    /// Doorbell, then reap until every accepted submission has
    /// completed. Yields between empty polls; progress is guaranteed
    /// because the worker completes every queued SQE (a dead entry
    /// yields an error CQE, never silence).
    pub fn drain(&mut self, out: &mut Vec<Completion>) {
        self.doorbell();
        while self.in_flight() > 0 {
            if self.reap(usize::MAX, out) == 0 {
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for ClientRing {
    fn drop(&mut self) {
        // Shut the worker down; it finishes everything still queued
        // (error CQEs for dead entries) before exiting, so staged
        // buffers recycle and nothing is silently dropped mid-queue.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.doorbell();
        if let Some(jh) = self.join.take() {
            let _ = jh.join();
        }
        // Close the ring spans of completions never reaped, both lanes.
        for lane in &mut self.tokens {
            while let Some(tok) = lane.pop_front() {
                if let Some(tok) = tok {
                    self.rt.spans().end_token(tok, None);
                }
            }
        }
    }
}

impl Client {
    /// A submission/completion ring with default sizing (see
    /// [`RingOptions`]): pipelined PPC for this client's vCPU.
    pub fn ring(&self) -> ClientRing {
        ClientRing::new(self, RingOptions::default())
    }

    /// A submission/completion ring with explicit sizing.
    pub fn ring_with(&self, opts: RingOptions) -> ClientRing {
        ClientRing::new(self, opts)
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

/// Idle rendezvous, ring-worker side: bounded spin on both lanes' SQ
/// tails (the mirror of the entry workers' mailbox spin), then the
/// Dekker sleep protocol the doorbell pairs with.
fn idle_wait(
    ring: &RingShared,
    head: &[u64; LANES],
    timer: &mut crate::stats::StateTimer<'_>,
) {
    let pending = |ord: Ordering| {
        (0..LANES).any(|l| ring.lanes[l].sq.tail.load(ord) != head[l])
    };
    let budget = ring.idle_spin.load(Ordering::Relaxed);
    let mut spins = 0u32;
    while spins < budget {
        if spins & 63 == 0 {
            std::thread::yield_now();
        }
        std::hint::spin_loop();
        if pending(Ordering::Relaxed) || ring.shutdown.load(Ordering::Relaxed) {
            return;
        }
        spins += 1;
    }
    // Announce, re-check in the SeqCst order, then sleep. See
    // `ClientRing::doorbell` for why this cannot lose a wakeup.
    ring.sleeping.store(true, Ordering::SeqCst);
    if pending(Ordering::SeqCst) || ring.shutdown.load(Ordering::SeqCst) {
        ring.sleeping.store(false, Ordering::Relaxed);
        return;
    }
    // The spin above was Idle time; the sleep is Park time.
    timer.transition(crate::stats::TimeState::Park);
    std::thread::park();
    timer.transition(crate::stats::TimeState::Idle);
    ring.sleeping.store(false, Ordering::Relaxed);
}

/// Consume one SQE from `lane` and post its CQE: the per-SQE body of
/// the worker loop, parameterized so the priority scheduler above can
/// interleave lanes.
fn execute_lane(
    rt: &Arc<Runtime>,
    ring: &RingShared,
    lane: usize,
    head: &mut [u64; LANES],
    cq_tail: &mut [u64; LANES],
    scratch: &mut [u8],
    timer: &mut crate::stats::StateTimer<'_>,
) {
    let l = &ring.lanes[lane];
    // Safety: sole consumer; `head < tail` observed Acquire by the
    // caller.
    let sqe = unsafe { l.sq.read(head[lane]) };
    head[lane] += 1;
    // Free the SQ slot before executing: admission is bounded by
    // credits, not SQ occupancy, so the client may refill while this
    // entry runs.
    l.sq.head.store(head[lane], Ordering::Release);
    let cqe = execute_sqe(rt, ring, sqe, scratch, timer);
    debug_assert!(
        cq_tail[lane] - l.cq.head.load(Ordering::Relaxed) < l.cq.capacity() as u64,
        "credit clamp must bound CQ occupancy"
    );
    // Safety: sole CQ producer; occupancy bounded by the credit clamp
    // (credits <= cq capacity, and per-lane in-flight <= total).
    unsafe { l.cq.write(cq_tail[lane], cqe) };
    cq_tail[lane] += 1;
    l.cq.tail.store(cq_tail[lane], Ordering::Release);
}

/// The ring worker loop: consume SQEs in per-lane order — every queued
/// `Latency` SQE before each `Bulk` one, re-reading the `Latency` tail
/// between `Bulk` executions so a latency submission arriving mid-batch
/// waits behind at most one in-progress bulk handler — execute each
/// under an execution-time claim, post the CQE, repeat. One thread per
/// ring; it exits when the client handle drops (after finishing both
/// queues).
fn ring_worker(rt: Arc<Runtime>, ring: Arc<RingShared>) {
    // The persistent scratch page handlers see on non-payload SQEs —
    // the ring worker's stand-in for a CD's scratch.
    let mut scratch = vec![0u8; crate::slot::SCRATCH_BYTES].into_boxed_slice();
    let mut head = [0u64; LANES];
    let mut cq_tail = [0u64; LANES];
    // This thread's wall-time classifier: Idle on the tail spin, Park
    // across the Dekker sleep, Ring while draining SQEs — with the
    // handler bodies and staged bulk copies subdivided out to Handler/
    // Copy inside `execute_sqe`.
    let mut timer = crate::stats::StateTimer::new(
        rt.stats.cell(ring.vcpu),
        crate::stats::TimeState::Idle,
    );
    loop {
        let lat_tail = ring.lanes[LANE_LAT].sq.tail.load(Ordering::Acquire);
        let bulk_tail = ring.lanes[LANE_BULK].sq.tail.load(Ordering::Acquire);
        if head[LANE_LAT] == lat_tail && head[LANE_BULK] == bulk_tail {
            if ring.shutdown.load(Ordering::Acquire) {
                break;
            }
            idle_wait(&ring, &head, &mut timer);
            continue;
        }
        timer.transition(crate::stats::TimeState::Ring);
        if rt.obs().try_sample() {
            // The queue depth this pickup observes — log₂ depth bands.
            let depth = (lat_tail - head[LANE_LAT]) + (bulk_tail - head[LANE_BULK]);
            rt.obs().record(LatencyKind::RingDepth, ring.vcpu, depth);
        }
        loop {
            if ring.lanes[LANE_LAT].sq.tail.load(Ordering::Acquire) != head[LANE_LAT] {
                execute_lane(
                    &rt, &ring, LANE_LAT, &mut head, &mut cq_tail, &mut scratch, &mut timer,
                );
                continue;
            }
            if ring.lanes[LANE_BULK].sq.tail.load(Ordering::Acquire) == head[LANE_BULK] {
                break;
            }
            execute_lane(
                &rt, &ring, LANE_BULK, &mut head, &mut cq_tail, &mut scratch, &mut timer,
            );
        }
        timer.transition(crate::stats::TimeState::Idle);
    }
}

/// Execute one SQE: deliver any staged payload, run the handler under
/// an execution-time claim, recycle the staging buffer, and produce the
/// completion entry.
fn execute_sqe(
    rt: &Arc<Runtime>,
    ring: &RingShared,
    sqe: Sqe,
    scratch: &mut [u8],
    timer: &mut crate::stats::StateTimer<'_>,
) -> Cqe {
    use crate::stats::TimeState;
    let Sqe { ep, args, user, trace, staged } = sqe;
    // Subdivide the drain: the handler body is Handler time, the staged
    // bulk delivery Copy time; decode/staging/completion around them
    // stays Ring time.
    let run = |scratch: &mut [u8], timer: &mut crate::stats::StateTimer<'_>| {
        timer.transition(TimeState::Handler);
        let r = rt.ring_execute(ring.vcpu, ep, args, ring.program, trace, scratch);
        timer.transition(TimeState::Ring);
        r
    };
    let result = match staged {
        None => run(scratch, timer),
        Some(Staged::Payload { mut buf }) => {
            let r = run(buf.as_mut_slice(), timer);
            rt.bulk().pool(ring.vcpu).put(buf);
            r
        }
        Some(Staged::Bulk { buf, len, desc }) => {
            timer.transition(TimeState::Copy);
            let copied = bulk_copy_in(rt, ring, &buf, len, desc);
            timer.transition(TimeState::Ring);
            rt.bulk().pool(ring.vcpu).put(buf);
            match copied {
                Ok(()) => run(scratch, timer),
                Err(e) => Err(e),
            }
        }
    };
    Cqe { user, ep, result }
}

/// The async copy engine's worker half: move the staged bytes into the
/// granted region span on behalf of the submitting program. Owner-side
/// access — authorized iff the ring client's program owns the region —
/// with the same accounting as the synchronous copy paths.
fn bulk_copy_in(
    rt: &Arc<Runtime>,
    ring: &RingShared,
    buf: &PoolBuf,
    len: usize,
    desc: BulkDesc,
) -> Result<(), RtError> {
    let cell = rt.stats.cell(ring.vcpu);
    let t0 = rt.obs().try_sample().then(Instant::now);
    let acc = rt
        .bulk()
        .registry(ring.vcpu)
        .begin(desc, 0, ring.program, ring.program, true, true)
        .inspect_err(|_| {
            cell.bulk_denied.fetch_add(1, Ordering::Relaxed);
        })?;
    let n = acc.len.min(len);
    // Safety: `acc` authorizes `[acc.ptr, acc.ptr + acc.len)` and holds
    // the slot exclusively (write access); the pool buffer holds at
    // least `len` initialized bytes and cannot alias region memory.
    unsafe { bulk::copy_span(acc.ptr, buf.as_mut_ptr() as *const u8, n) };
    acc.finish().inspect_err(|_| {
        cell.bulk_denied.fetch_add(1, Ordering::Relaxed);
    })?;
    cell.bulk_bytes.fetch_add(n as u64, Ordering::Relaxed);
    if let Some(t0) = t0 {
        rt.obs().record(LatencyKind::BulkCopy, ring.vcpu, t0.elapsed().as_nanos() as u64);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_wraps_and_preserves_order() {
        let q: Spsc<u64> = Spsc::new(4);
        let mut tail = 0u64;
        let mut head = 0u64;
        // Three full laps around a 4-slot ring.
        for round in 0..3u64 {
            for i in 0..4u64 {
                unsafe { q.write(tail, round * 100 + i) };
                tail += 1;
                q.tail.store(tail, Ordering::Release);
            }
            assert_eq!(tail - head, 4, "full");
            for i in 0..4u64 {
                let got = unsafe { q.read(head) };
                head += 1;
                q.head.store(head, Ordering::Release);
                assert_eq!(got, round * 100 + i);
            }
        }
    }

    #[test]
    fn spsc_drain_owned_frees_queued_entries() {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        struct Probe(std::sync::Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut q: Spsc<Probe> = Spsc::new(8);
        for i in 0..5u64 {
            unsafe { q.write(i, Probe(std::sync::Arc::clone(&counter))) };
            q.tail.store(i + 1, Ordering::Release);
        }
        // Consume two, leave three queued.
        for i in 0..2u64 {
            unsafe { drop(q.read(i)) };
            q.head.store(i + 1, Ordering::Release);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2);
        q.drain_owned();
        assert_eq!(counter.load(Ordering::Relaxed), 5, "queued entries freed exactly once");
        drop(q);
        assert_eq!(counter.load(Ordering::Relaxed), 5, "no double free on drop");
    }

    #[test]
    fn ring_options_clamp() {
        let rt = Runtime::new(1);
        let client = rt.client(0, 1);
        let ring =
            client.ring_with(RingOptions { sq_depth: 5, cq_depth: 3, credits: 1000 });
        assert_eq!(ring.sq_capacity(), 8, "rounded up to a power of two");
        assert_eq!(ring.cq_capacity(), 4);
        assert_eq!(ring.credits(), 4, "credits clamped to CQ capacity");
        assert_eq!(ring.in_flight(), 0);
    }
}
