//! Frank — the paper's slow-path resource manager, as a module: the
//! single owner of every control-plane mutation (bind, exchange,
//! soft/hard kill, reclaim, worker shrink, name registration).
//!
//! The hot path never takes Frank's lock. It sees the control plane only
//! through two read-mostly structures:
//!
//! * **Per-vCPU service-table replicas** (`VcpuState::table`) —
//!   the paper's per-processor service table. A lookup is one atomic load
//!   of the calling vCPU's own replica; bind broadcasts a publish to
//!   every replica from the cold path, reclaim broadcasts the unpublish.
//! * **The pin-era cells** (`EpochCell`) — per-vCPU epoch counters
//!   advanced at call boundaries. A claim *pins* its vCPU for the tiny
//!   lookup→claim window; `Frank::wait_grace` on the reclaim path
//!   advances the era and waits for the old era's pins to exit, which
//!   (with the unpublish ordered first) proves no claimant can still be
//!   holding the dead entry's raw pointer without also holding a counted
//!   entry claim. After that, draining the entry's own claim shards is
//!   sufficient to free it.
//!
//! The grace protocol is the same era-parity scheme the entries use for
//! handler retirement (see [`crate::entry`]): an increment-then-revalidate
//! loop against a shared era word, counted in a parity-indexed slot of
//! the pinner's own cache line, so detecting quiescence is a sum over
//! per-vCPU counters instead of a global barrier — and, unlike a plain
//! entered/exited counter pair, it terminates under continuous traffic
//! because new pins land in the *new* parity.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::entry::{EntryOptions, EntryShared, EntryState};
use crate::flight::FlightKind;
use crate::span::SpanPhase;
use crate::worker::MAX_POOLED;
use crate::{EntryId, Handler, ProgramId, RtError, Runtime, VcpuState, MAX_ENTRIES};

/// A counted lifecycle claim on an entry, returned by [`Runtime::claim`].
///
/// Derefs to the entry, and releasing happens on drop — so the borrow
/// checker itself enforces the reclamation contract: any borrow taken
/// *through* the claim (a trace scope holding `&entry.trace_ewma_ns`, a
/// `CallCtx` handed to an inline handler) keeps the claim borrowed and
/// therefore cannot outlive the release. The claim is what keeps the
/// entry's memory alive against a concurrent `reclaim_slot`; before this
/// type, that invariant lived only in comments and was broken twice.
///
/// Async dispatch transfers the release obligation to the worker (the
/// parity rides the slot) via [`Claim::transfer`], which is the one
/// deliberate escape hatch back to an unguarded reference.
pub(crate) struct Claim<'rt> {
    entry: &'rt EntryShared,
    vcpu: usize,
    parity: u8,
}

impl<'rt> Claim<'rt> {
    /// The era parity the claim was counted under (rides the slot so the
    /// releasing side passes it back to [`EntryShared::finish_call`]).
    pub(crate) fn parity(&self) -> u8 {
        self.parity
    }

    /// Hand the release obligation to another owner (the worker, for
    /// async calls): suppresses the drop and returns the raw parts. The
    /// caller takes back responsibility for the entry staying alive —
    /// valid only while some side still holds the counted claim.
    pub(crate) fn transfer(self) -> (&'rt EntryShared, u8) {
        let (entry, parity) = (self.entry, self.parity);
        std::mem::forget(self);
        (entry, parity)
    }
}

impl Deref for Claim<'_> {
    type Target = EntryShared;
    fn deref(&self) -> &EntryShared {
        self.entry
    }
}

impl Drop for Claim<'_> {
    fn drop(&mut self) {
        self.entry.finish_call(self.vcpu, self.parity);
    }
}

/// One vCPU's pin cell: claims in the lookup→claim window, split by
/// pin-era parity. Line-aligned for the same reason as the entries'
/// lifecycle cells — the pin is two RMWs on this line and nothing else.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct EpochCell {
    pub(crate) active: [AtomicU64; 2],
}

/// Cold-path state: everything Frank owns, behind one mutex.
pub(crate) struct FrankInner {
    /// The authoritative entry registry (the strong references behind
    /// every raw pointer published in the vCPU table replicas).
    pub(crate) entries: Vec<Option<Arc<EntryShared>>>,
    /// Name table.
    pub(crate) names: HashMap<String, EntryId>,
    /// Live client rings, registered at creation so policy changes
    /// (e.g. [`crate::Runtime::set_spin_policy`]'s paired idle budget)
    /// reach their workers. Weak: a ring dies with its client handle,
    /// not with the registry; dead refs are pruned on iteration.
    pub(crate) rings: Vec<std::sync::Weak<crate::ring::RingShared>>,
}

/// The resource manager. Owned by [`Runtime`]; all mutation goes through
/// the `impl Runtime` block below so callers keep the familiar
/// `rt.bind(..)` / `rt.hard_kill(..)` surface.
pub(crate) struct Frank {
    pub(crate) inner: Mutex<FrankInner>,
    /// The table-pin era (see module docs). Read-only on the hot path.
    pin_era: AtomicU64,
    /// Serializes grace periods: the parity scheme admits at most two
    /// live eras, so era flips must not overlap.
    reclaim_lock: Mutex<()>,
    /// Idle-worker high watermark for [`Runtime::frank_maintain`]'s
    /// shrink policy. Defaults to the pool capacity (no shrinking).
    idle_watermark: AtomicUsize,
}

impl Frank {
    pub(crate) fn new() -> Frank {
        Frank {
            inner: Mutex::new(FrankInner {
                entries: (0..MAX_ENTRIES).map(|_| None).collect(),
                names: HashMap::new(),
                rings: Vec::new(),
            }),
            pin_era: AtomicU64::new(0),
            reclaim_lock: Mutex::new(()),
            idle_watermark: AtomicUsize::new(MAX_POOLED),
        }
    }

    /// Advance the pin era and wait for every pin taken under the old
    /// era to exit. Caller holds `reclaim_lock`, and must have made the
    /// state being reclaimed unreachable (nulled the table replicas)
    /// *before* calling: the SeqCst total order then guarantees any pin
    /// that read the old pointer is counted in the old parity until its
    /// entry claim is, so post-grace the entry claims alone gate freeing.
    fn wait_grace(&self, vcpus: &[Arc<VcpuState>]) {
        let era = self.pin_era.fetch_add(1, Ordering::SeqCst);
        let old = (era & 1) as usize;
        loop {
            let pinned: u64 =
                vcpus.iter().map(|v| v.epoch.active[old].load(Ordering::SeqCst)).sum();
            if pinned == 0 {
                return;
            }
            std::thread::yield_now();
        }
    }
}

impl Runtime {
    /// Register a live client ring so runtime-wide policy changes (the
    /// paired worker-side idle budget of
    /// [`Runtime::set_spin_policy`]) reach its worker. Cold path; dead
    /// weak refs are pruned here so the list stays bounded by the live
    /// ring population.
    pub(crate) fn register_ring(&self, ring: &Arc<crate::ring::RingShared>) {
        let mut inner = self.frank.inner.lock();
        inner.rings.retain(|w| w.strong_count() > 0);
        inner.rings.push(Arc::downgrade(ring));
    }

    /// Hot-path entry lookup + lifecycle claim: pin this vCPU's epoch
    /// cell, load the entry pointer from this vCPU's own table replica,
    /// count the claim on this vCPU's lifecycle shard, unpin, check
    /// state. Everything written is on the calling vCPU's own cache
    /// lines; the era words and the table replica are read-only here, so
    /// they stay resident in shared state across vCPUs.
    ///
    /// The returned [`Claim`] releases on drop and Derefs to the entry;
    /// borrows of the entry go through it, so the compiler rejects any
    /// use of the entry past the release (async dispatch escapes via
    /// [`Claim::transfer`], handing the release to the worker).
    #[inline]
    pub(crate) fn claim(&self, vcpu: usize, ep: EntryId) -> Result<Claim<'_>, RtError> {
        let vc = self.vcpu(vcpu)?;
        if ep >= MAX_ENTRIES {
            return Err(RtError::UnknownEntry(ep));
        }
        let cell = &vc.epoch;
        loop {
            let era = self.frank.pin_era.load(Ordering::SeqCst);
            let pin = (era & 1) as usize;
            cell.active[pin].fetch_add(1, Ordering::SeqCst);
            if self.frank.pin_era.load(Ordering::SeqCst) != era {
                // A grace period raced us; retry under the new era.
                cell.active[pin].fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let p = vc.table[ep].load(Ordering::SeqCst);
            if p.is_null() {
                cell.active[pin].fetch_sub(1, Ordering::Release);
                return Err(RtError::UnknownEntry(ep));
            }
            // Safety: the pin protocol — a reclaim unpublishes before its
            // grace period, so a pointer read under a validated pin is
            // backed by a registry Arc until at least our claim lands.
            let entry = unsafe { &*p };
            let parity = entry.claim(vcpu);
            // The entry claim now protects the entry; exit the pin.
            cell.active[pin].fetch_sub(1, Ordering::Release);
            let claim = Claim { entry, vcpu, parity };
            if claim.entry_state() != EntryState::Active {
                return Err(RtError::EntryDead(ep)); // drop releases the claim
            }
            return Ok(claim);
        }
    }

    /// Cold-path entry lookup: the registry `Arc` behind `ep`.
    pub(crate) fn frank_entry(&self, ep: EntryId) -> Result<Arc<EntryShared>, RtError> {
        if ep >= MAX_ENTRIES {
            return Err(RtError::UnknownEntry(ep));
        }
        self.frank.inner.lock().entries[ep].clone().ok_or(RtError::UnknownEntry(ep))
    }

    /// A `Weak` observer of entry `ep`'s shared state (diagnostics and
    /// tests: reclamation is visible as the upgrade starting to fail).
    pub fn entry_weak(&self, ep: EntryId) -> Result<Weak<EntryShared>, RtError> {
        Ok(Arc::downgrade(&self.frank_entry(ep)?))
    }

    /// Bind a service: claim an entry ID (specific one via
    /// `opts.want_ep`), install the handler, pre-spawn
    /// `opts.initial_workers` pooled workers on every vCPU, and publish
    /// the entry to every vCPU's table replica. Also registers `name`
    /// with the name table when non-empty.
    pub fn bind(
        self: &Arc<Self>,
        name: &str,
        opts: EntryOptions,
        handler: Handler,
    ) -> Result<EntryId, RtError> {
        let mut inner = self.frank.inner.lock();
        let ep = match opts.want_ep {
            Some(ep) => {
                if ep >= MAX_ENTRIES {
                    return Err(RtError::UnknownEntry(ep));
                }
                if inner.entries[ep].is_some() {
                    return Err(RtError::TableFull);
                }
                ep
            }
            None => {
                inner.entries.iter().position(|e| e.is_none()).ok_or(RtError::TableFull)?
            }
        };
        let entry = EntryShared::new_arc(
            ep,
            name,
            opts,
            handler,
            self.n_vcpus(),
            crate::worker_idle_budget(self.spin_policy()),
            Arc::clone(self.bulk()),
            Arc::clone(self.obs()),
            Arc::clone(self.flight()),
            Arc::clone(&self.stats),
            Arc::clone(self.spans()),
            Arc::clone(&self.blackbox),
        );
        for v in 0..self.n_vcpus() {
            for _ in 0..opts.initial_workers {
                entry.pool(v).grow(&entry, v, self.pinned(), true);
            }
        }
        let raw = Arc::as_ptr(&entry) as *mut EntryShared;
        inner.entries[ep] = Some(entry);
        // Publish: broadcast the pointer to every vCPU's replica. Claims
        // on other vCPUs start succeeding as each store lands; the
        // registry entry above is what keeps the pointee alive.
        for vc in &self.vcpus {
            vc.table[ep].store(raw, Ordering::SeqCst);
        }
        if !name.is_empty() {
            inner.names.insert(name.to_string(), ep);
        }
        drop(inner);
        self.flight().record(0, FlightKind::Publish, ep, opts.owner);
        self.spans().record_instant(0, ep, SpanPhase::Frank);
        Ok(ep)
    }

    /// Soft-kill `ep`: reject new calls, let in-progress calls drain.
    /// Resources are reaped by [`Runtime::wait_drained`] or shutdown.
    pub fn soft_kill(&self, ep: EntryId, by: ProgramId) -> Result<(), RtError> {
        let e = self.frank_entry(ep)?;
        self.check_owner(&e, by)?;
        match e.entry_state() {
            EntryState::Active => {
                e.state.store(EntryState::SoftKilled as u8, Ordering::Release);
                // Lifecycle events are facility-global, not tied to a
                // calling vCPU; by convention they land on ring 0.
                e.flight.record(0, FlightKind::SoftKill, ep, by);
                Ok(())
            }
            _ => Err(RtError::EntryDead(ep)),
        }
    }

    /// Wait for a soft-killed entry to drain, then reap its workers.
    /// Must not be called from one of the entry's own handlers.
    pub fn wait_drained(&self, ep: EntryId) -> Result<(), RtError> {
        let e = self.frank_entry(ep)?;
        while e.active() != 0 {
            std::thread::yield_now();
        }
        e.state.store(EntryState::Dead as u8, Ordering::Release);
        self.reap_and_recycle(&e);
        Ok(())
    }

    /// Hard-kill `ep`: reject new calls, abort callers of in-progress
    /// calls (they observe [`RtError::Aborted`]), reap all workers. Must
    /// not be called from one of the entry's own handlers.
    pub fn hard_kill(&self, ep: EntryId, by: ProgramId) -> Result<(), RtError> {
        let e = self.frank_entry(ep)?;
        self.check_owner(&e, by)?;
        if e.entry_state() == EntryState::Dead {
            return Err(RtError::EntryDead(ep));
        }
        e.state.store(EntryState::Dead as u8, Ordering::SeqCst);
        e.flight.record(0, FlightKind::HardKill, ep, by);
        self.reap_and_recycle(&e);
        Ok(())
    }

    /// Exchange (§4.5.2): atomically replace the handler of a live entry
    /// — on-line replacement of an executing server. Worker-local
    /// initialization overrides are cleared, and handlers retired by
    /// previous exchanges are freed as their era quiesces (the retired
    /// set is bounded; see [`EntryShared::swap_handler`]). Must not be
    /// called from one of the entry's own handlers.
    pub fn exchange(&self, ep: EntryId, h: Handler, by: ProgramId) -> Result<(), RtError> {
        let e = self.frank_entry(ep)?;
        self.check_owner(&e, by)?;
        if e.entry_state() != EntryState::Active {
            return Err(RtError::EntryDead(ep));
        }
        e.swap_handler(h);
        e.flight.record(0, FlightKind::Exchange, ep, by);
        Ok(())
    }

    /// Free a dead entry's ID for rebinding — and, unlike the
    /// pre-epoch runtime, actually free the entry: unpublish it from
    /// every vCPU replica, run a pin-era grace period, drain the
    /// lifecycle shards, and drop the registry reference. Once this
    /// returns, the old `EntryShared` is gone as soon as the last
    /// external `Arc` (a worker mid-join, a caller-held handle) drops —
    /// observable via [`Runtime::entry_weak`]. Kept separate from the
    /// kill so stale callers racing a kill observe `EntryDead`, never an
    /// unrelated new service.
    pub fn reclaim_slot(&self, ep: EntryId, by: ProgramId) -> Result<(), RtError> {
        let e = self.frank_entry(ep)?;
        self.check_owner(&e, by)?;
        if e.entry_state() != EntryState::Dead {
            return Err(RtError::EntryDead(ep));
        }
        {
            // Unpublish under the Frank lock: a concurrent bind cannot
            // slip a *new* entry into this ID before our removal below
            // (the ID stays occupied in the registry until then), so the
            // nulls can never clobber someone else's publish.
            let inner = self.frank.inner.lock();
            if !inner.entries[ep].as_ref().is_some_and(|cur| Arc::ptr_eq(cur, &e)) {
                return Err(RtError::UnknownEntry(ep));
            }
            for vc in &self.vcpus {
                vc.table[ep].store(std::ptr::null_mut(), Ordering::SeqCst);
            }
        }
        // Grace period — NOT under the Frank lock: in-flight calls
        // claimed before the kill may run handlers that call bind().
        {
            let _g = self.frank.reclaim_lock.lock();
            self.frank.wait_grace(&self.vcpus);
        }
        // No future claim can reach the entry; wait out the ones held.
        while e.active() != 0 {
            std::thread::yield_now();
        }
        // A dispatch that claimed before the kill may have grown the
        // pool after the kill's reap; with zero claims left no more can
        // appear, so this second reap is final — no pooled worker
        // outlives the reclaim holding the entry `Arc`.
        self.reap_and_recycle(&e);
        // Fully drained: every parity is zero, so all limbo handlers free.
        e.try_drain_limbo();
        let mut inner = self.frank.inner.lock();
        if inner.entries[ep].as_ref().is_some_and(|cur| Arc::ptr_eq(cur, &e)) {
            inner.entries[ep] = None;
            if !e.name.is_empty() && inner.names.get(&e.name) == Some(&ep) {
                inner.names.remove(&e.name);
            }
        }
        drop(inner);
        self.stats.cell(0).entries_reclaimed.fetch_add(1, Ordering::Relaxed);
        self.flight().record(0, FlightKind::Reclaim, ep, by);
        self.spans().record_instant(0, ep, SpanPhase::Frank);
        Ok(())
    }

    /// Completed calls of entry `ep` — sync (inline or hand-off), async,
    /// and upcall alike (diagnostics; used by stats-conservation checks).
    /// A sum over the per-vCPU lifecycle shards.
    pub fn entry_completions(&self, ep: EntryId) -> Result<u64, RtError> {
        Ok(self.frank_entry(ep)?.completions())
    }

    /// Completed calls of entry `ep` on one vCPU — the shard itself
    /// (tests verify the shards sum exactly to the aggregate).
    pub fn entry_completions_on(&self, ep: EntryId, vcpu: usize) -> Result<u64, RtError> {
        if vcpu >= self.n_vcpus() {
            return Err(RtError::BadVcpu(vcpu));
        }
        Ok(self.frank_entry(ep)?.completions_on(vcpu))
    }

    /// Shrink the pooled workers of (`ep`, `vcpu`) down to `keep`.
    pub fn shrink_workers(&self, ep: EntryId, vcpu: usize, keep: usize) -> Result<usize, RtError> {
        let e = self.frank_entry(ep)?;
        if vcpu >= self.n_vcpus() {
            return Err(RtError::BadVcpu(vcpu));
        }
        let (reaped, held) = e.pool(vcpu).shrink_to(keep);
        for s in held {
            self.vcpus[vcpu].put_slot(e.opts.qos, s);
        }
        Ok(reaped)
    }

    /// Reap an entry's workers and recycle any CDs they had pinned
    /// (hold-CD mode) back into the owning vCPU's CD pool — the pool is
    /// a fixed reservoir, so dropping a pinned slot on every kill would
    /// let hold-CD entry churn bleed the warm-CD supply dry.
    pub(crate) fn reap_and_recycle(&self, e: &EntryShared) {
        for (v, s) in e.reap_workers() {
            self.vcpus[v].put_slot(e.opts.qos, s);
        }
    }

    /// Idle pooled workers of `ep`, summed across vCPUs (diagnostics;
    /// the shrink-policy tests watch this decay).
    pub fn idle_workers(&self, ep: EntryId) -> Result<usize, RtError> {
        let e = self.frank_entry(ep)?;
        Ok((0..self.n_vcpus()).map(|v| e.pool(v).idle_len()).sum())
    }

    /// Set the idle-worker high watermark [`Runtime::frank_maintain`]
    /// shrinks pools down to. Defaults to the pool capacity, i.e. no
    /// shrinking until a policy is chosen.
    pub fn set_idle_watermark(&self, keep: usize) {
        self.frank.idle_watermark.store(keep, Ordering::Relaxed);
    }

    /// One Frank maintenance pass (cold; call it from a housekeeping
    /// thread or after load spikes): shrink every pool whose idle count
    /// exceeds the watermark — the paper's pools "shrink dynamically as
    /// needed" — and free retired handlers whose era has quiesced.
    /// Returns `(workers_reaped, handlers_freed)`.
    pub fn frank_maintain(&self) -> (usize, u64) {
        let entries: Vec<Arc<EntryShared>> =
            self.frank.inner.lock().entries.iter().flatten().cloned().collect();
        let keep = self.frank.idle_watermark.load(Ordering::Relaxed);
        let mut reaped = 0;
        let mut freed = 0;
        for e in entries {
            for v in 0..self.n_vcpus() {
                if e.pool(v).idle_len() > keep {
                    let (n, held) = e.pool(v).shrink_to(keep);
                    reaped += n;
                    for s in held {
                        self.vcpus[v].put_slot(e.opts.qos, s);
                    }
                }
            }
            freed += e.try_drain_limbo();
        }
        (reaped, freed)
    }

    pub(crate) fn check_owner(&self, e: &EntryShared, by: ProgramId) -> Result<(), RtError> {
        if e.opts.owner != 0 && by != 0 && e.opts.owner != by {
            return Err(RtError::NotOwner);
        }
        Ok(())
    }
}
