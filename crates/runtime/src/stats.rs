//! Facility counters (all relaxed; diagnostics only).

use std::sync::atomic::AtomicU64;

/// Monotonic counters mirroring `ppc-core`'s `FacilityStats`.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Completed synchronous calls.
    pub calls: AtomicU64,
    /// Dispatched asynchronous calls.
    pub async_calls: AtomicU64,
    /// Upcall dispatches.
    pub upcalls: AtomicU64,
    /// Slow-path events (pool empty → grow), the Frank redirections.
    pub frank_redirects: AtomicU64,
    /// Workers created on demand.
    pub workers_created: AtomicU64,
    /// Call slots created on demand.
    pub cds_created: AtomicU64,
    /// Handler panics contained by worker fault isolation.
    pub server_faults: AtomicU64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn counters_default_zero() {
        let s = RuntimeStats::default();
        assert_eq!(s.calls.load(Ordering::Relaxed), 0);
        assert_eq!(s.frank_redirects.load(Ordering::Relaxed), 0);
    }
}
