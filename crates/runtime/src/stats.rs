//! Facility counters, sharded per virtual processor.
//!
//! The paper's central claim is that a PPC "accesses no shared data" in
//! the common case — a single global statistics block would violate that
//! from inside the facility itself: every call on every vCPU would bounce
//! the same counter cache lines. Counters therefore live in one
//! [`StatsCell`] per vCPU, each `#[repr(align(64))]` so two vCPUs never
//! share a line, updated with `Relaxed` stores on the fast path and
//! aggregated only when someone asks (a cold read path).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One virtual processor's counters, padded to its own cache line so
/// fast-path increments on different vCPUs never contend.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct StatsCell {
    /// Completed synchronous hand-off calls — hand-off completions
    /// *only*; inline completions count in [`StatsCell::inline_calls`].
    /// The aggregate [`RuntimeStats::calls`] getter sums the two, so
    /// each dispatch path pays exactly one counter increment. (Named
    /// `handoff_calls` rather than `calls` so a reader wanting all
    /// completed calls cannot pick it up by accident.)
    pub handoff_calls: AtomicU64,
    /// Synchronous calls executed inline on the caller's thread.
    pub inline_calls: AtomicU64,
    /// Hand-off rendezvous resolved by spinning alone (no park).
    pub spin_waits: AtomicU64,
    /// Hand-off rendezvous that exhausted the spin budget and parked.
    pub park_waits: AtomicU64,
    /// Dispatched asynchronous calls.
    pub async_calls: AtomicU64,
    /// Upcall dispatches.
    pub upcalls: AtomicU64,
    /// Slow-path events (pool empty → grow), the Frank redirections.
    pub frank_redirects: AtomicU64,
    /// Workers created on demand.
    pub workers_created: AtomicU64,
    /// Call slots created on demand.
    pub cds_created: AtomicU64,
    /// Handler panics contained by fault isolation.
    pub server_faults: AtomicU64,
    /// Synchronous calls dispatched with a bulk descriptor.
    pub bulk_calls: AtomicU64,
    /// Payload bytes moved by the bulk copy engine (copy/exchange; the
    /// in-place zero-copy path moves none by construction).
    pub bulk_bytes: AtomicU64,
    /// Bulk buffer requests served from the vCPU pool.
    pub bulk_pool_hits: AtomicU64,
    /// Bulk buffer requests that missed the pool and allocated (the
    /// payload plane's Frank slow-path entries).
    pub bulk_pool_misses: AtomicU64,
    /// Bulk accesses rejected: no grant, bad descriptor, or revoked
    /// mid-transfer.
    pub bulk_denied: AtomicU64,
}

/// Sharded facility counters: one padded cell per virtual processor.
#[derive(Debug)]
pub struct RuntimeStats {
    cells: Box<[StatsCell]>,
}

macro_rules! aggregate_getters {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {$(
        $(#[$doc])*
        pub fn $field(&self) -> u64 {
            self.cells.iter().map(|c| c.$field.load(Ordering::Relaxed)).sum()
        }
    )+};
}

impl RuntimeStats {
    /// Counters for `n_vcpus` virtual processors.
    pub(crate) fn new(n_vcpus: usize) -> Self {
        RuntimeStats { cells: (0..n_vcpus.max(1)).map(|_| StatsCell::default()).collect() }
    }

    /// The cell owned by `vcpu` — the fast path writes here and nowhere
    /// else, so same-vCPU calls touch only their own line.
    #[inline]
    pub fn cell(&self, vcpu: usize) -> &StatsCell {
        &self.cells[vcpu]
    }

    /// Completed synchronous calls across all vCPUs (hand-off + inline).
    pub fn calls(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| {
                c.handoff_calls.load(Ordering::Relaxed)
                    + c.inline_calls.load(Ordering::Relaxed)
            })
            .sum()
    }

    aggregate_getters! {
        /// Hand-off (worker-dispatched) synchronous calls across all vCPUs.
        handoff_calls,
        /// Inline (caller-thread) synchronous calls across all vCPUs.
        inline_calls,
        /// Rendezvous resolved by spinning alone across all vCPUs.
        spin_waits,
        /// Rendezvous that fell back to parking across all vCPUs.
        park_waits,
        /// Asynchronous dispatches across all vCPUs.
        async_calls,
        /// Upcall dispatches across all vCPUs.
        upcalls,
        /// Frank (grow) slow-path events across all vCPUs.
        frank_redirects,
        /// Workers created on demand across all vCPUs.
        workers_created,
        /// Call slots created on demand across all vCPUs.
        cds_created,
        /// Contained handler panics across all vCPUs.
        server_faults,
        /// Bulk-descriptor calls across all vCPUs.
        bulk_calls,
        /// Payload bytes moved by the copy engine across all vCPUs.
        bulk_bytes,
        /// Bulk pool hits across all vCPUs.
        bulk_pool_hits,
        /// Bulk pool misses (slow-path allocations) across all vCPUs.
        bulk_pool_misses,
        /// Rejected bulk accesses across all vCPUs.
        bulk_denied,
    }

    /// A consistent-enough point-in-time aggregation (each counter read
    /// is atomic; the set is not — fine for diagnostics and benches).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            calls: self.calls(),
            inline_calls: self.inline_calls(),
            spin_waits: self.spin_waits(),
            park_waits: self.park_waits(),
            async_calls: self.async_calls(),
            upcalls: self.upcalls(),
            frank_redirects: self.frank_redirects(),
            workers_created: self.workers_created(),
            cds_created: self.cds_created(),
            server_faults: self.server_faults(),
            bulk_calls: self.bulk_calls(),
            bulk_bytes: self.bulk_bytes(),
            bulk_pool_hits: self.bulk_pool_hits(),
            bulk_pool_misses: self.bulk_pool_misses(),
            bulk_denied: self.bulk_denied(),
        }
    }
}

/// Plain-value aggregation of [`RuntimeStats`], comparable and printable
/// — what benches and tests should consume instead of reading atomics by
/// hand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Completed synchronous calls.
    pub calls: u64,
    /// Synchronous calls executed inline on the caller's thread.
    pub inline_calls: u64,
    /// Rendezvous resolved by spinning alone.
    pub spin_waits: u64,
    /// Rendezvous that fell back to parking.
    pub park_waits: u64,
    /// Dispatched asynchronous calls.
    pub async_calls: u64,
    /// Upcall dispatches.
    pub upcalls: u64,
    /// Slow-path (grow) events.
    pub frank_redirects: u64,
    /// Workers created on demand.
    pub workers_created: u64,
    /// Call slots created on demand.
    pub cds_created: u64,
    /// Contained handler panics.
    pub server_faults: u64,
    /// Bulk-descriptor calls.
    pub bulk_calls: u64,
    /// Payload bytes moved by the copy engine.
    pub bulk_bytes: u64,
    /// Bulk pool hits.
    pub bulk_pool_hits: u64,
    /// Bulk pool misses (slow-path allocations).
    pub bulk_pool_misses: u64,
    /// Rejected bulk accesses.
    pub bulk_denied: u64,
}

impl Snapshot {
    /// Counter-wise difference (`self - earlier`, saturating): the
    /// activity between two snapshots.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            calls: self.calls.saturating_sub(earlier.calls),
            inline_calls: self.inline_calls.saturating_sub(earlier.inline_calls),
            spin_waits: self.spin_waits.saturating_sub(earlier.spin_waits),
            park_waits: self.park_waits.saturating_sub(earlier.park_waits),
            async_calls: self.async_calls.saturating_sub(earlier.async_calls),
            upcalls: self.upcalls.saturating_sub(earlier.upcalls),
            frank_redirects: self.frank_redirects.saturating_sub(earlier.frank_redirects),
            workers_created: self.workers_created.saturating_sub(earlier.workers_created),
            cds_created: self.cds_created.saturating_sub(earlier.cds_created),
            server_faults: self.server_faults.saturating_sub(earlier.server_faults),
            bulk_calls: self.bulk_calls.saturating_sub(earlier.bulk_calls),
            bulk_bytes: self.bulk_bytes.saturating_sub(earlier.bulk_bytes),
            bulk_pool_hits: self.bulk_pool_hits.saturating_sub(earlier.bulk_pool_hits),
            bulk_pool_misses: self.bulk_pool_misses.saturating_sub(earlier.bulk_pool_misses),
            bulk_denied: self.bulk_denied.saturating_sub(earlier.bulk_denied),
        }
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} (inline={}, spin={}, park={}) async={} upcalls={} \
             frank={} workers+={} cds+={} faults={} \
             bulk={} (bytes={}, hit={}, miss={}, denied={})",
            self.calls,
            self.inline_calls,
            self.spin_waits,
            self.park_waits,
            self.async_calls,
            self.upcalls,
            self.frank_redirects,
            self.workers_created,
            self.cds_created,
            self.server_faults,
            self.bulk_calls,
            self.bulk_bytes,
            self.bulk_pool_hits,
            self.bulk_pool_misses,
            self.bulk_denied,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_default_zero_and_aggregate() {
        let s = RuntimeStats::new(4);
        assert_eq!(s.calls(), 0);
        assert_eq!(s.frank_redirects(), 0);
        s.cell(0).handoff_calls.fetch_add(2, Ordering::Relaxed);
        s.cell(3).handoff_calls.fetch_add(3, Ordering::Relaxed);
        s.cell(1).inline_calls.fetch_add(1, Ordering::Relaxed);
        // Aggregate `calls` derives hand-off + inline.
        assert_eq!(s.calls(), 6);
        assert_eq!(s.inline_calls(), 1);
    }

    #[test]
    fn cells_do_not_share_cache_lines() {
        assert!(std::mem::align_of::<StatsCell>() >= 64);
        assert!(std::mem::size_of::<StatsCell>().is_multiple_of(64));
        let s = RuntimeStats::new(2);
        let a = s.cell(0) as *const _ as usize;
        let b = s.cell(1) as *const _ as usize;
        assert!(b.abs_diff(a) >= 64);
    }

    #[test]
    fn snapshot_since_and_display() {
        let s = RuntimeStats::new(2);
        s.cell(0).handoff_calls.fetch_add(10, Ordering::Relaxed);
        let first = s.snapshot();
        s.cell(1).handoff_calls.fetch_add(4, Ordering::Relaxed);
        s.cell(1).park_waits.fetch_add(4, Ordering::Relaxed);
        let delta = s.snapshot().since(&first);
        assert_eq!(delta.calls, 4);
        assert_eq!(delta.park_waits, 4);
        assert_eq!(delta.frank_redirects, 0);
        let text = delta.to_string();
        assert!(text.contains("calls=4"));
        assert!(text.contains("park=4"));
    }
}
