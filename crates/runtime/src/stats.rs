//! Facility counters, sharded per virtual processor.
//!
//! The paper's central claim is that a PPC "accesses no shared data" in
//! the common case — a single global statistics block would violate that
//! from inside the facility itself: every call on every vCPU would bounce
//! the same counter cache lines. Counters therefore live in one
//! [`StatsCell`] per vCPU, each `#[repr(align(64))]` so two vCPUs never
//! share a line, updated with `Relaxed` stores on the fast path and
//! aggregated only when someone asks (a cold read path).
//!
//! The whole counter surface — the cell fields, the aggregate getters,
//! [`Snapshot`], [`Snapshot::since`], [`Snapshot::fields`], and the
//! `Display` impl — is generated from the single `counters!` list below,
//! so adding a counter is a one-line change and the five views can never
//! drift apart. The only hand-written special case is the aggregate
//! [`RuntimeStats::calls`] / [`Snapshot::calls`], which derives
//! hand-off + inline completions so each dispatch path pays exactly one
//! counter increment.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Defines every facility counter exactly once. Expands to:
///
/// * the [`StatsCell`] field (one padded `AtomicU64` per counter),
/// * the per-counter aggregate getter on [`RuntimeStats`],
/// * the [`Snapshot`] field, filled by [`RuntimeStats::snapshot`],
/// * the counter-wise [`Snapshot::since`] difference,
/// * the `name=value` segment of [`Snapshot`]'s `Display`,
/// * the `(name, value)` entry in [`Snapshot::fields`] (what the
///   metrics exporter iterates).
macro_rules! counters {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        /// One virtual processor's counters, padded to its own cache
        /// line so fast-path increments on different vCPUs never
        /// contend.
        #[derive(Debug, Default)]
        #[repr(align(64))]
        pub struct StatsCell {
            $($(#[$doc])* pub $field: AtomicU64,)+
        }

        impl RuntimeStats {
            $(
                $(#[$doc])*
                /// (Aggregated across all vCPUs.)
                pub fn $field(&self) -> u64 {
                    self.cells.iter().map(|c| c.$field.load(Ordering::Relaxed)).sum()
                }
            )+

            /// A consistent-enough point-in-time aggregation (each
            /// counter read is atomic; the set is not — fine for
            /// diagnostics and benches).
            pub fn snapshot(&self) -> Snapshot {
                Snapshot {
                    calls: self.calls(),
                    $($field: self.$field(),)+
                }
            }

            /// One vCPU's counters as a [`Snapshot`] (the telemetry
            /// sampler's per-vCPU read; generated from the same list as
            /// the cell, so it can never miss a counter).
            pub fn vcpu_snapshot(&self, vcpu: usize) -> Snapshot {
                let c = &self.cells[vcpu];
                Snapshot {
                    calls: c.handoff_calls.load(Ordering::Relaxed)
                        + c.inline_calls.load(Ordering::Relaxed),
                    $($field: c.$field.load(Ordering::Relaxed),)+
                }
            }
        }

        /// Plain-value aggregation of [`RuntimeStats`], comparable and
        /// printable — what benches and tests should consume instead of
        /// reading atomics by hand.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct Snapshot {
            /// Completed synchronous calls (hand-off + inline; derived).
            pub calls: u64,
            $($(#[$doc])* pub $field: u64,)+
        }

        impl Snapshot {
            /// Counter-wise difference (`self - earlier`, saturating):
            /// the activity between two snapshots.
            pub fn since(&self, earlier: &Snapshot) -> Snapshot {
                Snapshot {
                    calls: self.calls.saturating_sub(earlier.calls),
                    $($field: self.$field.saturating_sub(earlier.$field),)+
                }
            }

            /// Counter-wise sum (`self + other`, saturating): how two
            /// disjoint deltas compose — what the telemetry window
            /// merger uses to stitch tick deltas together.
            pub fn plus(&self, other: &Snapshot) -> Snapshot {
                Snapshot {
                    calls: self.calls.saturating_add(other.calls),
                    $($field: self.$field.saturating_add(other.$field),)+
                }
            }

            /// Set counter `name` to `value`; `false` for an unknown
            /// name. (Cold-path helper for tests and loaders; generated
            /// from the same list as the fields.)
            pub fn set_field(&mut self, name: &str, value: u64) -> bool {
                match name {
                    "calls" => self.calls = value,
                    $(stringify!($field) => self.$field = value,)+
                    _ => return false,
                }
                true
            }

            /// Every counter as a `(name, value)` pair, `calls` first —
            /// the exporter's iteration surface. Generated from the same
            /// list as the fields, so a new counter shows up in the
            /// Prometheus/JSON output without touching the exporter.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![
                    ("calls", self.calls),
                    $((stringify!($field), self.$field),)+
                ]
            }

            /// Every counter name, `calls` first — the same list
            /// [`Snapshot::fields`] iterates, without needing values.
            /// Tests drive exporter-completeness checks from this so a
            /// new counter that fails to surface in an export fails
            /// loudly instead of silently vanishing.
            pub fn field_names() -> &'static [&'static str] {
                &["calls", $(stringify!($field),)+]
            }

            /// Value of counter `name` (`None` for an unknown name) —
            /// the lookup the SLO watchdog's rate rules use.
            pub fn field(&self, name: &str) -> Option<u64> {
                match name {
                    "calls" => Some(self.calls),
                    $(stringify!($field) => Some(self.$field),)+
                    _ => None,
                }
            }
        }

        impl fmt::Display for Snapshot {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "calls={}", self.calls)?;
                $(write!(f, concat!(" ", stringify!($field), "={}"), self.$field)?;)+
                Ok(())
            }
        }
    };
}

counters! {
    /// Completed synchronous hand-off calls — hand-off completions
    /// *only*; inline completions count in [`StatsCell::inline_calls`].
    /// The aggregate [`RuntimeStats::calls`] getter sums the two, so
    /// each dispatch path pays exactly one counter increment. (Named
    /// `handoff_calls` rather than `calls` so a reader wanting all
    /// completed calls cannot pick it up by accident.)
    handoff_calls,
    /// Synchronous calls executed inline on the caller's thread.
    inline_calls,
    /// Hand-off rendezvous resolved by spinning alone (no park).
    spin_waits,
    /// Hand-off rendezvous that exhausted the spin budget and parked.
    park_waits,
    /// Hand-off rendezvous that spun out their budget and escalated to
    /// timeslice donation (priority-unpark the worker + yield) before
    /// deciding between resolve-in-userspace and park. Counted whether
    /// or not the donation resolved the wait; subtract `park_waits` in a
    /// window to see how many donations saved a futex round trip.
    spin_escalations,
    /// Dispatched asynchronous calls.
    async_calls,
    /// Upcall dispatches.
    upcalls,
    /// Slow-path events (pool empty → grow), the Frank redirections.
    frank_redirects,
    /// Workers created on demand.
    workers_created,
    /// Call slots created on demand.
    cds_created,
    /// Handler panics contained by fault isolation.
    server_faults,
    /// Synchronous calls dispatched with a bulk descriptor.
    bulk_calls,
    /// Payload bytes moved by the bulk copy engine (copy/exchange; the
    /// in-place zero-copy path moves none by construction).
    bulk_bytes,
    /// Bulk buffer requests served from the vCPU pool.
    bulk_pool_hits,
    /// Bulk buffer requests that missed the pool and allocated (the
    /// payload plane's Frank slow-path entries).
    bulk_pool_misses,
    /// Bulk accesses rejected: no grant, bad descriptor, or revoked
    /// mid-transfer.
    bulk_denied,
    /// Handlers retired by Exchange into the era-tagged limbo list.
    handlers_retired,
    /// Retired handlers freed after their era quiesced. Trails
    /// `handlers_retired` by at most the bounded limbo length — the
    /// anti-leak invariant the churn tests assert.
    handlers_freed,
    /// Dead entries reclaimed (unpublished + grace period + registry
    /// reference dropped).
    entries_reclaimed,
    /// SQEs accepted into a submission ring (admitted past the credit
    /// gate; each later completes exactly once).
    ring_submits,
    /// Ring-submitted calls executed by a ring worker (completions
    /// posted to a CQ, successful or not).
    ring_calls,
    /// Doorbell rings that actually woke a sleeping ring worker — the
    /// batched stand-in for per-call unpark.
    ring_doorbells,
    /// Submissions refused because the submission queue itself was full
    /// ([`crate::RtError::RingFull`]): the producer outran the ring
    /// worker's drain.
    ring_full,
    /// Submissions refused because the in-flight credit budget was
    /// exhausted (also [`crate::RtError::RingFull`], but a different
    /// remedy: the client must *reap* — completions are waiting — where
    /// a full SQ means the worker is behind).
    ring_no_credit,
    /// Wall-time (ns) spent running handlers ([`TimeState::Handler`]).
    /// Worker and ring threads charge it exactly; the inline path
    /// charges a sampled estimate (observed ns × the obs sample period)
    /// so the null inline call stays free of extra clock reads.
    time_handler_ns,
    /// Wall-time (ns) clients spent spinning out a hand-off rendezvous
    /// that resolved without parking ([`TimeState::Spin`]).
    time_spin_ns,
    /// Wall-time (ns) spent parked/blocked: clients whose rendezvous
    /// escalated to a futex wait, and workers parked on an empty
    /// mailbox or ring ([`TimeState::Park`]).
    time_park_ns,
    /// Wall-time (ns) ring workers spent draining submission queues —
    /// SQE decode, staging, completion posting — *excluding* the
    /// handler bodies and bulk copies, which are subdivided out
    /// ([`TimeState::Ring`]).
    time_ring_ns,
    /// Wall-time (ns) spent in bulk payload copies outside handler
    /// bodies (ring-side payload/bulk staging; a copy issued *inside* a
    /// handler counts as handler run time) ([`TimeState::Copy`]).
    time_copy_ns,
    /// Wall-time (ns) spent in Frank cold paths: worker-pool and CD-pool
    /// grow, the allocation slow path ([`TimeState::Frank`]).
    time_frank_ns,
    /// Wall-time (ns) workers spent spinning on an empty mailbox or
    /// ring before parking ([`TimeState::Idle`]).
    time_idle_ns,
    /// Interference detector: total ns the probe observed stolen by
    /// involuntary deschedule (clock-gap excursions above the probe
    /// threshold). Accumulated on vCPU 0's cell by the telemetry
    /// sampler; the ratio to [`StatsCell::interference_probe_ns`] is
    /// the measured interference fraction.
    interference_ns,
    /// Interference detector: total ns the probe spent measuring. The
    /// denominator for the interference ratio.
    interference_probe_ns,
    /// Interference detector: number of clock-gap excursions observed
    /// (each one involuntary-deschedule shaped: a single tight-loop
    /// clock read pair separated by more than the gap threshold).
    interference_excursions,
    /// Cross-process transport: PPCs serviced across a process
    /// boundary (slot calls, payload calls, and ring SQEs executed for
    /// remote clients). Counted on the serving vCPU's cell by the
    /// segment server loop ([`crate::xproc`]).
    xproc_calls,
    /// Cross-process transport: futex wakes issued or absorbed by the
    /// transport — completion wakes to remote clients plus doorbell
    /// wakes that roused a sleeping segment server.
    xproc_wakes,
}

/// Sharded facility counters: one padded cell per virtual processor.
#[derive(Debug)]
pub struct RuntimeStats {
    cells: Box<[StatsCell]>,
}

impl RuntimeStats {
    /// Counters for `n_vcpus` virtual processors.
    pub(crate) fn new(n_vcpus: usize) -> Self {
        RuntimeStats { cells: (0..n_vcpus.max(1)).map(|_| StatsCell::default()).collect() }
    }

    /// The cell owned by `vcpu` — the fast path writes here and nowhere
    /// else, so same-vCPU calls touch only their own line.
    #[inline]
    pub fn cell(&self, vcpu: usize) -> &StatsCell {
        &self.cells[vcpu]
    }

    /// Completed synchronous calls across all vCPUs (hand-off + inline).
    pub fn calls(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| {
                c.handoff_calls.load(Ordering::Relaxed)
                    + c.inline_calls.load(Ordering::Relaxed)
            })
            .sum()
    }
}

/// The exclusive wall-time states of the attribution plane. Every
/// facility thread (worker, ring worker) is in exactly one state at any
/// instant; client threads charge their rendezvous waits and cold paths
/// point-wise. Each state maps 1:1 onto a `time_*_ns` counter, so the
/// per-vCPU breakdown rides the ordinary counter plumbing (snapshots,
/// telemetry windows, exports) with no extra machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeState {
    /// Running a service handler body.
    Handler,
    /// Client spinning out a hand-off rendezvous (resolved in userspace).
    Spin,
    /// Parked/blocked: client futex wait, worker park.
    Park,
    /// Ring worker draining SQEs (decode/staging/completion, not the
    /// handler bodies).
    Ring,
    /// Bulk payload copy outside a handler body.
    Copy,
    /// Frank cold path: pool grow, on-demand allocation.
    Frank,
    /// Spinning on an empty mailbox/ring, waiting for work.
    Idle,
}

/// Every [`TimeState`] with its counter name and `ppc_time_ns{state=}`
/// label, in declaration order — what the exporter and `ppc-top` iterate.
pub const TIME_STATES: [(TimeState, &str, &str); 7] = [
    (TimeState::Handler, "time_handler_ns", "handler"),
    (TimeState::Spin, "time_spin_ns", "spin"),
    (TimeState::Park, "time_park_ns", "park"),
    (TimeState::Ring, "time_ring_ns", "ring"),
    (TimeState::Copy, "time_copy_ns", "copy"),
    (TimeState::Frank, "time_frank_ns", "frank"),
    (TimeState::Idle, "time_idle_ns", "idle"),
];

impl StatsCell {
    /// Charge `ns` of wall-time to `state`'s accumulator (Relaxed, the
    /// fast-path discipline of every other counter).
    #[inline]
    pub fn add_time(&self, state: TimeState, ns: u64) {
        let cell = match state {
            TimeState::Handler => &self.time_handler_ns,
            TimeState::Spin => &self.time_spin_ns,
            TimeState::Park => &self.time_park_ns,
            TimeState::Ring => &self.time_ring_ns,
            TimeState::Copy => &self.time_copy_ns,
            TimeState::Frank => &self.time_frank_ns,
            TimeState::Idle => &self.time_idle_ns,
        };
        cell.fetch_add(ns, Ordering::Relaxed);
    }
}

/// A facility thread's wall-time classifier: owned by the thread's loop,
/// it tracks the instant of the last state transition and charges the
/// elapsed interval to the *outgoing* state on every transition. One
/// timer per thread ⇒ states are exclusive by construction — the sum of
/// a worker's `time_*_ns` deltas equals its elapsed wall-time (minus the
/// loop's own transition overhead, which is one `Instant::now` per
/// transition on paths that already cost microseconds).
pub struct StateTimer<'a> {
    cell: &'a StatsCell,
    state: TimeState,
    last: std::time::Instant,
}

impl<'a> StateTimer<'a> {
    /// Start classifying this thread's time against `cell`, initially in
    /// `state`.
    pub fn new(cell: &'a StatsCell, state: TimeState) -> Self {
        StateTimer { cell, state, last: std::time::Instant::now() }
    }

    /// The current state.
    #[inline]
    pub fn state(&self) -> TimeState {
        self.state
    }

    /// Transition to `state`, charging the interval since the last
    /// transition to the outgoing state. A same-state transition just
    /// flushes the accumulator (see [`StateTimer::flush`]).
    #[inline]
    pub fn transition(&mut self, state: TimeState) {
        let now = std::time::Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.cell.add_time(self.state, ns);
        self.last = now;
        self.state = state;
    }

    /// Charge the accrued interval to the current state without leaving
    /// it — call periodically inside long waits so observers see time
    /// accrue instead of a burst at the next transition.
    #[inline]
    pub fn flush(&mut self) {
        let s = self.state;
        self.transition(s);
    }
}

impl Drop for StateTimer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_default_zero_and_aggregate() {
        let s = RuntimeStats::new(4);
        assert_eq!(s.calls(), 0);
        assert_eq!(s.frank_redirects(), 0);
        s.cell(0).handoff_calls.fetch_add(2, Ordering::Relaxed);
        s.cell(3).handoff_calls.fetch_add(3, Ordering::Relaxed);
        s.cell(1).inline_calls.fetch_add(1, Ordering::Relaxed);
        // Aggregate `calls` derives hand-off + inline.
        assert_eq!(s.calls(), 6);
        assert_eq!(s.inline_calls(), 1);
    }

    #[test]
    fn cells_do_not_share_cache_lines() {
        assert!(std::mem::align_of::<StatsCell>() >= 64);
        assert!(std::mem::size_of::<StatsCell>().is_multiple_of(64));
        let s = RuntimeStats::new(2);
        let a = s.cell(0) as *const _ as usize;
        let b = s.cell(1) as *const _ as usize;
        assert!(b.abs_diff(a) >= 64);
    }

    #[test]
    fn snapshot_since_and_display() {
        let s = RuntimeStats::new(2);
        s.cell(0).handoff_calls.fetch_add(10, Ordering::Relaxed);
        let first = s.snapshot();
        s.cell(1).handoff_calls.fetch_add(4, Ordering::Relaxed);
        s.cell(1).park_waits.fetch_add(4, Ordering::Relaxed);
        let delta = s.snapshot().since(&first);
        assert_eq!(delta.calls, 4);
        assert_eq!(delta.park_waits, 4);
        assert_eq!(delta.frank_redirects, 0);
        let text = delta.to_string();
        assert!(text.contains("calls=4"));
        assert!(text.contains("park_waits=4"));
    }

    #[test]
    fn vcpu_snapshot_and_field_lookup() {
        let s = RuntimeStats::new(2);
        s.cell(0).inline_calls.fetch_add(3, Ordering::Relaxed);
        s.cell(1).inline_calls.fetch_add(5, Ordering::Relaxed);
        s.cell(1).ring_submits.fetch_add(2, Ordering::Relaxed);
        let v0 = s.vcpu_snapshot(0);
        let v1 = s.vcpu_snapshot(1);
        assert_eq!(v0.calls, 3);
        assert_eq!(v1.calls, 5);
        assert_eq!(v1.ring_submits, 2);
        assert_eq!(v0.ring_submits, 0);
        // Per-vCPU shards partition the aggregate, counter for counter.
        let total = s.snapshot();
        for name in Snapshot::field_names() {
            assert_eq!(
                total.field(name).unwrap(),
                v0.field(name).unwrap() + v1.field(name).unwrap(),
                "{name} shards must sum to the aggregate"
            );
        }
        assert_eq!(total.field("calls"), Some(8));
        assert_eq!(total.field("no_such_counter"), None);
        assert_eq!(Snapshot::field_names().len(), total.fields().len());
    }

    #[test]
    fn snapshot_plus_and_set_field() {
        let mut a = Snapshot::default();
        let mut b = Snapshot::default();
        assert!(a.set_field("park_waits", 3));
        assert!(b.set_field("park_waits", 4));
        assert!(b.set_field("calls", 9));
        assert!(!b.set_field("no_such_counter", 1));
        let m = a.plus(&b);
        assert_eq!(m.park_waits, 7);
        assert_eq!(m.calls, 9);
        // plus is since's inverse on every counter.
        assert_eq!(m.since(&b), a);
    }

    #[test]
    fn snapshot_fields_cover_every_counter() {
        let s = RuntimeStats::new(1);
        s.cell(0).inline_calls.fetch_add(7, Ordering::Relaxed);
        s.cell(0).bulk_denied.fetch_add(2, Ordering::Relaxed);
        let snap = s.snapshot();
        let fields = snap.fields();
        // `calls` plus one entry per StatsCell counter, no drift.
        assert_eq!(fields.len(), 37);
        assert_eq!(fields[0], ("calls", 7));
        let get = |name: &str| fields.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(get("inline_calls"), 7);
        assert_eq!(get("bulk_denied"), 2);
        assert_eq!(get("park_waits"), 0);
        // Display is generated from the same list: every name appears.
        let text = snap.to_string();
        for (name, _) in &fields {
            assert!(text.contains(&format!("{name}=")), "{name} missing in {text}");
        }
    }

    #[test]
    fn time_states_map_to_live_counters() {
        let s = RuntimeStats::new(1);
        // Every TIME_STATES row names a real counter, and add_time
        // charges exactly that counter.
        for (i, (state, name, _label)) in TIME_STATES.iter().enumerate() {
            s.cell(0).add_time(*state, (i as u64 + 1) * 10);
            assert_eq!(
                s.snapshot().field(name),
                Some((i as u64 + 1) * 10),
                "{name} must receive its state's charge"
            );
        }
    }

    #[test]
    fn state_timer_partitions_elapsed_time() {
        let s = RuntimeStats::new(1);
        let start = std::time::Instant::now();
        {
            let mut t = StateTimer::new(s.cell(0), TimeState::Idle);
            std::thread::sleep(std::time::Duration::from_millis(5));
            t.transition(TimeState::Handler);
            assert_eq!(t.state(), TimeState::Handler);
            std::thread::sleep(std::time::Duration::from_millis(5));
            t.flush();
            // Drop charges the remainder to the current state.
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        let snap = s.snapshot();
        let total: u64 =
            TIME_STATES.iter().filter_map(|(_, name, _)| snap.field(name)).sum();
        assert!(snap.time_idle_ns >= 4_000_000, "idle interval charged");
        assert!(snap.time_handler_ns >= 4_000_000, "handler interval charged");
        // Exclusive states: the partition covers (and never exceeds)
        // the elapsed wall-time.
        assert!(total <= elapsed, "states must not double-count ({total} > {elapsed})");
        assert!(total >= elapsed * 9 / 10, "states must cover elapsed time");
    }
}
