//! Causal-tracing integration tests: span propagation through real
//! dispatch (inline, hand-off, nested, async), the exported Chrome
//! trace round-trip, tail-exemplar promotion, and the capacity knobs.
//!
//! Everything here runs against the public `Runtime` surface — the
//! plane's unit tests live in `span.rs`; these tests check the wiring:
//! that real calls on real threads produce one correctly-parented span
//! tree per causal chain.

use std::sync::Arc;

use ppc_rt::export::{load_chrome_trace, TraceSpan};
use ppc_rt::{EntryOptions, FlightKind, Runtime, RuntimeOptions};

fn spans_of(rt: &Arc<Runtime>) -> Vec<TraceSpan> {
    let text = rt.export_trace();
    load_chrome_trace(&text).expect("export_trace emits a loadable Chrome trace")
}

/// The acceptance chain: a client call into an inline entry whose
/// handler calls a second entry point that Frank-grows its worker pool
/// on first use. One trace id; every span parented into one tree:
///
/// ```text
/// call(outer) ── handler(outer) ── call(inner) ──┬─ frank (pool grow)
///                                                ├─ rendezvous
///                                                └─ handler(inner)
/// ```
#[test]
fn nested_chain_produces_one_correctly_parented_trace() {
    let rt = Runtime::new(1);
    rt.obs().set_sample_shift(0); // sample every root deterministically
    let inner = rt
        .bind(
            "inner",
            EntryOptions { initial_workers: 0, ..Default::default() },
            Arc::new(|c| [c.args[0] * 2; 8]),
        )
        .unwrap();
    let rt2 = Arc::clone(&rt);
    let outer = rt
        .bind(
            "outer",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(move |ctx| {
                let c = rt2.client(ctx.vcpu, 999);
                let r = c.call(inner, [ctx.args[0] + 1; 8]).unwrap();
                [r[0] + 5; 8]
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    assert_eq!(client.call(outer, [10; 8]).unwrap()[0], 27);

    let spans = spans_of(&rt);
    if !cfg!(feature = "obs") {
        assert!(spans.is_empty(), "compiled out: no spans recorded");
        return;
    }

    // One trace, rooted once.
    let trace = spans[0].trace_id;
    assert!(spans.iter().all(|s| s.trace_id == trace), "one causal chain, one id: {spans:#?}");
    let roots: Vec<_> = spans.iter().filter(|s| s.is_root()).collect();
    assert_eq!(roots.len(), 1, "exactly one root: {spans:#?}");
    let root = roots[0];
    assert_eq!((root.name.as_str(), root.depth, root.ep), ("call", 0, outer as u16));

    let find = |name: &str, depth: u8| -> &TraceSpan {
        spans
            .iter()
            .find(|s| s.name == name && s.depth == depth)
            .unwrap_or_else(|| panic!("no {name} span at depth {depth} in {spans:#?}"))
    };
    let outer_handler = find("handler", 1);
    assert_eq!(outer_handler.parent_id, root.span_id, "handler under its call");
    let inner_call = find("call", 2);
    assert_eq!(inner_call.parent_id, outer_handler.span_id, "nested call under the handler");
    assert_eq!(inner_call.ep, inner as u16);
    let inner_handler = find("handler", 3);
    assert_eq!(inner_handler.parent_id, inner_call.span_id, "inner handler under its call");
    let rendezvous = find("rendezvous", 3);
    assert_eq!(rendezvous.parent_id, inner_call.span_id, "wait attributed to the nested call");
    let franks: Vec<_> = spans.iter().filter(|s| s.name == "frank").collect();
    assert!(!franks.is_empty(), "worker-pool grow recorded: {spans:#?}");
    assert!(
        franks.iter().any(|f| f.parent_id == inner_call.span_id),
        "the grow fired inside the nested dispatch: {spans:#?}"
    );
    // Every span's parent is in the tree (no orphans).
    for s in &spans {
        assert!(
            s.is_root() || spans.iter().any(|p| p.span_id == s.parent_id),
            "orphaned span {s:?}"
        );
    }
    // Containment: children start no earlier than their parent.
    for s in &spans {
        if let Some(p) = spans.iter().find(|p| p.span_id == s.parent_id) {
            assert!(s.start_us >= p.start_us, "child {s:?} starts before parent {p:?}");
        }
    }
}

/// The thread-local trace context never leaks past the call that
/// installed it — including through nested handlers on the same thread.
#[test]
fn trace_context_is_restored_after_every_call() {
    let rt = Runtime::new(1);
    rt.obs().set_sample_shift(0);
    let ep = rt
        .bind("svc", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);
    assert!(rt.spans().current().is_none());
    for i in 0..5u64 {
        client.call(ep, [i; 8]).unwrap();
        assert!(rt.spans().current().is_none(), "context restored after call {i}");
    }
}

/// Asynchronous calls are observable end to end: the stats counter and
/// flight event fire at dispatch, and the trace context crosses the
/// completion boundary — the async root span closes at `wait()` and the
/// worker-side handler span carries the same trace id.
#[test]
fn call_async_is_fully_observable() {
    let rt = Runtime::new(1);
    rt.obs().set_sample_shift(0);
    let ep = rt
        .bind("svc", EntryOptions::default(), Arc::new(|c| [c.args[0] + 1; 8]))
        .unwrap();
    let client = rt.client(0, 1);
    let pending = client.call_async(ep, [41; 8]).unwrap();
    assert_eq!(pending.wait(), [42; 8]);

    assert_eq!(rt.stats.async_calls(), 1, "counter fires regardless of sampling");

    let spans = spans_of(&rt);
    if !cfg!(feature = "obs") {
        // Compiled out, `try_sample` is always false: no flight event,
        // no spans — only the counter plane sees the call.
        assert!(spans.is_empty());
        return;
    }
    let events = rt.flight().snapshot(0);
    assert!(
        events.iter().any(|e| e.kind == FlightKind::Async && e.ep == ep as u16),
        "async dispatch in the flight ring: {events:?}"
    );
    let root = spans
        .iter()
        .find(|s| s.name == "async" && s.is_root())
        .unwrap_or_else(|| panic!("async root span closed by wait(): {spans:#?}"));
    let handler = spans
        .iter()
        .find(|s| s.name == "handler")
        .unwrap_or_else(|| panic!("worker handler span: {spans:#?}"));
    assert_eq!(handler.trace_id, root.trace_id, "context crossed the hand-off");
    assert_eq!(handler.parent_id, root.span_id, "handler parented under the async root");
    // Dropping an unwaited call still closes its span (no dangling B).
    let pending = client.call_async(ep, [1; 8]).unwrap();
    drop(pending);
    load_chrome_trace(&rt.export_trace()).expect("every begin has an end after drop");
}

/// Ring submissions trace like every other dispatch: each sampled SQE
/// mints a `ring` root span that opens at submit and closes at reap,
/// and the worker-side handler span rides the SQE's packed context —
/// same trace id, parented under the ring span.
#[test]
fn ring_submissions_parent_their_handler_spans() {
    let rt = Runtime::new(1);
    rt.obs().set_sample_shift(0);
    let ep = rt
        .bind("svc", EntryOptions::default(), Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring();
    let mut out = Vec::new();
    ring.submit(ep, [1; 8], 1).unwrap();
    ring.submit(ep, [2; 8], 2).unwrap();
    ring.drain(&mut out);
    assert_eq!(out.len(), 2);

    let spans = spans_of(&rt);
    if !cfg!(feature = "obs") {
        assert!(spans.is_empty(), "compiled out: no spans recorded");
        return;
    }
    let rings: Vec<_> = spans.iter().filter(|s| s.name == "ring").collect();
    assert_eq!(rings.len(), 2, "one ring span per SQE: {spans:#?}");
    for r in &rings {
        assert!(r.is_root(), "ring submissions are trace roots");
        assert_eq!(r.ep, ep as u16);
        let handler = spans
            .iter()
            .find(|s| s.name == "handler" && s.trace_id == r.trace_id)
            .unwrap_or_else(|| panic!("handler span for trace {}: {spans:#?}", r.trace_id));
        assert_eq!(handler.parent_id, r.span_id, "handler under its ring span");
        assert!(handler.start_us >= r.start_us, "containment");
    }
    // The two SQEs are distinct causal chains.
    assert_ne!(rings[0].trace_id, rings[1].trace_id);
    // Submitting from inside a traced handler parents the ring span
    // into the surrounding chain instead of minting a new root.
    drop(ring);
    let rt2 = Arc::clone(&rt);
    let inner = ep;
    let outer = rt
        .bind(
            "outer",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(move |ctx| {
                let c = rt2.client(ctx.vcpu, 999);
                let mut ring = c.ring();
                let mut out = Vec::new();
                ring.submit(inner, ctx.args, 1).unwrap();
                ring.drain(&mut out);
                out[0].result.clone().unwrap()
            }),
        )
        .unwrap();
    client.call(outer, [5; 8]).unwrap();
    let spans = spans_of(&rt);
    let nested = spans
        .iter()
        .find(|s| s.name == "ring" && !s.is_root())
        .unwrap_or_else(|| panic!("nested ring span joins the caller's chain: {spans:#?}"));
    let parent = spans
        .iter()
        .find(|s| s.span_id == nested.parent_id)
        .expect("nested ring span's parent exists");
    assert_eq!(parent.name, "handler", "ring span parented under the submitting handler");
}

/// A root call slower than `EXEMPLAR_FACTOR`× the entry's EWMA is
/// promoted into the per-vCPU exemplar buffer, and the diagnostics dump
/// reports it with its phase breakdown.
#[test]
fn tail_call_promotes_an_exemplar() {
    let rt = Runtime::new(1);
    rt.obs().set_sample_shift(0);
    let ep = rt
        .bind(
            "svc",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|c| {
                if c.args[0] == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                c.args
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    for _ in 0..40 {
        client.call(ep, [0; 8]).unwrap(); // seed the EWMA with fast calls
    }
    client.call(ep, [1; 8]).unwrap(); // the tail

    if !cfg!(feature = "obs") {
        assert_eq!(rt.spans().promoted(), 0);
        return;
    }
    assert!(rt.spans().promoted() >= 1, "the 5ms call dwarfs the µs-scale EWMA");
    let exemplars = rt.spans().exemplars(0);
    assert!(!exemplars.is_empty());
    let ex = exemplars.last().unwrap();
    assert_eq!(ex.ep, ep as u16);
    assert!(ex.total_ns >= 5_000_000, "captured the slow call: {}", ex.summary());
    assert!(!ex.spans.is_empty(), "span tree attached");
    let dump = rt.diagnostics();
    assert!(dump.contains("slowest recent calls"), "exemplar section present:\n{dump}");
}

/// `RuntimeOptions` sizes both per-vCPU rings; the planes report the
/// configured capacities and the flight ring wraps at its own size.
#[test]
fn runtime_options_size_the_rings() {
    let rt = Runtime::with_runtime_options(
        1,
        RuntimeOptions { flight_capacity: 64, trace_capacity: 128, ..Default::default() },
    );
    assert_eq!(rt.flight().capacity(), 64);
    for i in 0..100u32 {
        rt.flight().record(0, FlightKind::Inline, 1, i);
    }
    let events = rt.flight().snapshot(0);
    assert_eq!(events.len(), 64, "flight ring wraps at the configured size");
    assert_eq!(events.last().unwrap().data, 99, "newest retained");
    if cfg!(feature = "obs") {
        assert_eq!(rt.spans().capacity(), 128);
    }
}

/// Disabling the trace plane at runtime stops span recording without
/// touching the histogram/counter planes.
#[test]
fn trace_plane_disable_stops_span_recording() {
    let rt = Runtime::new(1);
    rt.obs().set_sample_shift(0);
    rt.spans().set_enabled(false);
    let ep = rt
        .bind("svc", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);
    for i in 0..10u64 {
        client.call(ep, [i; 8]).unwrap();
    }
    assert!(spans_of(&rt).is_empty(), "no roots minted while disabled");
    assert_eq!(rt.stats.calls(), 10, "counters unaffected");
    rt.spans().set_enabled(true);
    client.call(ep, [0; 8]).unwrap();
    if cfg!(feature = "obs") {
        assert!(!spans_of(&rt).is_empty(), "recording resumes on re-enable");
    }
}
