//! Control-plane churn: the lifecycle paths the per-vCPU replication
//! rework added — exchange-era handler retirement, dead-entry
//! reclamation, pool decay — exercised under concurrent call traffic.
//!
//! These are the anti-leak gates: before the epoch rework, retired
//! handlers accumulated in a graveyard forever and reclaimed entries
//! stayed pinned by the registry. Every test here would have failed
//! against that runtime.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppc_rt::{EntryOptions, RtError, Runtime};

/// Abort (with diagnostics) if `done` is not set within `secs`.
fn watchdog(
    done: Arc<AtomicBool>,
    secs: u64,
    tag: &'static str,
    rt: Arc<Runtime>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            if done.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: {tag} did not finish within {secs}s — aborting");
        rt.dump_diagnostics();
        std::process::abort();
    })
}

/// Satellite (a), part 1: 10k exchanges under concurrent call load stay
/// memory-flat. Every retired handler is freed as its era quiesces —
/// `handlers_freed` trails `handlers_retired` by at most the bounded
/// limbo length, and the limbo itself drains to empty once traffic
/// stops.
#[test]
fn ten_k_exchanges_under_load_stay_memory_flat() {
    let rt = Runtime::new(2);
    let done = Arc::new(AtomicBool::new(false));
    let dog = watchdog(Arc::clone(&done), 120, "10k exchanges", Arc::clone(&rt));
    let ep = rt.bind("swapee", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let progress: Vec<Arc<AtomicU64>> =
        (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut clients = Vec::new();
    for v in 0..2 {
        let c = rt.client(v, 1 + v as u32);
        let stop = Arc::clone(&stop);
        let progress = Arc::clone(&progress[v]);
        clients.push(std::thread::spawn(move || {
            let mut ok = 0u64;
            while !stop.load(Ordering::Acquire) {
                match c.call(ep, [ok; 8]) {
                    Ok(_) => {
                        ok += 1;
                        progress.store(ok, Ordering::Release);
                    }
                    Err(e) => panic!("unexpected error under exchange churn: {e}"),
                }
            }
            ok
        }));
    }
    // Don't start churning until every client is demonstrably in its
    // call loop — a tight exchange loop can otherwise finish before the
    // client threads are first scheduled, making "under load" vacuous.
    while progress.iter().any(|p| p.load(Ordering::Acquire) == 0) {
        std::thread::yield_now();
    }

    const EXCHANGES: u64 = 10_000;
    for gen in 0..EXCHANGES {
        rt.exchange(ep, Arc::new(move |_| [gen; 8]), 0).unwrap();
    }
    stop.store(true, Ordering::Release);
    for c in clients {
        assert!(c.join().unwrap() > 0, "clients made progress throughout");
    }

    let entry = rt.entry_weak(ep).unwrap().upgrade().expect("entry still live");
    // In steady state each exchange frees the previous era's retiree, so
    // the limbo never grows beyond a couple of eras.
    assert!(entry.limbo_len() <= 2, "limbo unbounded: {}", entry.limbo_len());
    // Traffic has stopped; a maintenance pass drains whatever era was
    // still in flight at the end.
    for _ in 0..100 {
        if entry.limbo_len() == 0 {
            break;
        }
        rt.frank_maintain();
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(entry.limbo_len(), 0, "limbo drains to empty after quiesce");
    let retired = rt.stats.handlers_retired();
    let freed = rt.stats.handlers_freed();
    assert_eq!(retired, EXCHANGES);
    assert_eq!(freed, retired, "every retired handler was freed: {freed}/{retired}");
    done.store(true, Ordering::Release);
    dog.join().unwrap();
}

/// Satellite (a), part 2: after `reclaim_slot`, a `Weak` taken on the
/// entry's shared state fails to upgrade — the registry reference (the
/// old leak) is actually gone.
#[test]
fn weak_upgrade_fails_after_reclaim() {
    let rt = Runtime::new(1);
    let ep = rt.bind("mortal", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let c = rt.client(0, 1);
    assert_eq!(c.call(ep, [3; 8]).unwrap(), [3; 8]);
    let weak = rt.entry_weak(ep).unwrap();
    assert!(weak.upgrade().is_some(), "live entry upgrades");

    rt.hard_kill(ep, 0).unwrap();
    assert!(weak.upgrade().is_some(), "dead-but-unreclaimed entry is still pinned");
    rt.reclaim_slot(ep, 0).unwrap();
    assert!(weak.upgrade().is_none(), "reclaim dropped the last registry reference");
    assert_eq!(c.call(ep, [0; 8]), Err(RtError::UnknownEntry(ep)));
    assert_eq!(rt.stats.entries_reclaimed(), 1);
}

/// Acceptance criterion 3: bind → kill → reclaim → rebind at the same
/// `EntryId` frees the old `EntryShared` while the new binding serves.
#[test]
fn rebind_at_same_id_frees_old_entry() {
    let rt = Runtime::new(2);
    let opts = EntryOptions { want_ep: Some(37), ..Default::default() };
    let ep = rt.bind("first", opts, Arc::new(|_| [1; 8])).unwrap();
    assert_eq!(ep, 37);
    let c = rt.client(0, 1);
    assert_eq!(c.call(ep, [0; 8]).unwrap(), [1; 8]);
    let old = rt.entry_weak(ep).unwrap();

    rt.hard_kill(ep, 0).unwrap();
    rt.reclaim_slot(ep, 0).unwrap();
    let ep2 = rt.bind("second", opts, Arc::new(|_| [2; 8])).unwrap();
    assert_eq!(ep2, 37, "the reclaimed ID is reusable");
    assert!(old.upgrade().is_none(), "old generation freed, not shadowed");
    assert_eq!(c.call(ep2, [0; 8]).unwrap(), [2; 8], "new generation serves");
    // The name table followed the lifecycle: the old name went with the
    // reclaim, the new one resolves.
    assert_eq!(rt.ns_lookup("first"), None);
    assert_eq!(rt.ns_lookup("second"), Some(37));
}

/// Satellite (b): worker pools grown by a burst decay back to the idle
/// high-watermark on a Frank maintenance pass, and the shrunken entry
/// still serves.
#[test]
fn pools_decay_after_burst() {
    let rt = Runtime::new(1);
    let done = Arc::new(AtomicBool::new(false));
    let dog = watchdog(Arc::clone(&done), 60, "pool decay", Arc::clone(&rt));
    let ep = rt
        .bind(
            "bursty",
            EntryOptions::default(),
            Arc::new(|c| {
                std::thread::sleep(Duration::from_millis(2));
                c.args
            }),
        )
        .unwrap();

    // A burst of concurrent callers forces the pool to grow (each
    // blocked call holds a worker).
    let burst: Vec<_> = (0..8)
        .map(|i| {
            let c = rt.client(0, 1 + i as u32);
            std::thread::spawn(move || c.call(ep, [i; 8]).unwrap())
        })
        .collect();
    for t in burst {
        t.join().unwrap();
    }
    let grown = rt.idle_workers(ep).unwrap();
    assert!(grown >= 4, "burst grew the pool (idle={grown})");

    rt.set_idle_watermark(2);
    let (reaped, _) = rt.frank_maintain();
    assert!(reaped >= grown - 2, "maintenance reaped the surplus (reaped={reaped})");
    assert!(rt.idle_workers(ep).unwrap() <= 2, "idle pool decayed to the watermark");

    // The decayed entry still serves, growing back on demand.
    let c = rt.client(0, 99);
    for i in 0..20u64 {
        assert_eq!(c.call(ep, [i; 8]).unwrap(), [i; 8]);
    }
    done.store(true, Ordering::Release);
    dog.join().unwrap();
}

/// Satellite (d): cross-vCPU drain correctness. Handlers carry a canary
/// that counts live (not-yet-dropped) closures; calls racing exchanges
/// across two vCPUs must only ever execute a live handler, and once
/// traffic quiesces exactly one canary — the current handler's — is
/// left alive (every retiree was dropped, none early).
#[test]
fn exchange_churn_never_runs_a_freed_handler() {
    struct Canary {
        live: Arc<AtomicU64>,
        executing_freed: Arc<AtomicBool>,
        dropped: AtomicBool,
    }
    impl Canary {
        fn new(live: &Arc<AtomicU64>, executing_freed: &Arc<AtomicBool>) -> Arc<Canary> {
            live.fetch_add(1, Ordering::SeqCst);
            Arc::new(Canary {
                live: Arc::clone(live),
                executing_freed: Arc::clone(executing_freed),
                dropped: AtomicBool::new(false),
            })
        }
    }
    impl Drop for Canary {
        fn drop(&mut self) {
            self.dropped.store(true, Ordering::SeqCst);
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    let rt = Runtime::new(2);
    let done = Arc::new(AtomicBool::new(false));
    let dog = watchdog(Arc::clone(&done), 120, "canary churn", Arc::clone(&rt));
    let live = Arc::new(AtomicU64::new(0));
    let executing_freed = Arc::new(AtomicBool::new(false));

    let make_handler = |live: &Arc<AtomicU64>, flag: &Arc<AtomicBool>, gen: u64| {
        let canary = Canary::new(live, flag);
        Arc::new(move |_: &mut ppc_rt::CallCtx<'_>| {
            // The dispatch claim must keep the handler alive for the
            // whole execution; observing our own Drop is the bug the
            // era protocol exists to prevent.
            if canary.dropped.load(Ordering::SeqCst) {
                canary.executing_freed.store(true, Ordering::SeqCst);
            }
            [gen; 8]
        }) as ppc_rt::Handler
    };

    let ep = rt
        .bind("canary", EntryOptions::default(), make_handler(&live, &executing_freed, 0))
        .unwrap();

    let remaining = Arc::new(AtomicU64::new(2));
    let clients: Vec<_> = (0..2)
        .map(|v| {
            let c = rt.client(v, 1 + v as u32);
            let remaining = Arc::clone(&remaining);
            std::thread::spawn(move || {
                for _ in 0..1_000u64 {
                    // Torn or freed-handler results are caught by the
                    // canary flag, not the return value.
                    c.call(ep, [0; 8]).expect("entry stays live");
                }
                remaining.fetch_sub(1, Ordering::AcqRel);
            })
        })
        .collect();

    // At least 2000 exchanges, and keep churning until every client has
    // finished its quota mid-churn.
    let mut gen = 0u64;
    while gen < 2_000 || remaining.load(Ordering::Acquire) > 0 {
        gen += 1;
        rt.exchange(ep, make_handler(&live, &executing_freed, gen), 0).unwrap();
    }
    for c in clients {
        c.join().unwrap();
    }
    assert!(!executing_freed.load(Ordering::SeqCst), "a call executed a freed handler");

    // Quiesce: drain the final era's limbo, then exactly the current
    // handler's canary survives.
    for _ in 0..100 {
        if live.load(Ordering::SeqCst) == 1 {
            break;
        }
        rt.frank_maintain();
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(live.load(Ordering::SeqCst), 1, "all retired handlers dropped, current alive");
    done.store(true, Ordering::Release);
    dog.join().unwrap();
}

/// Ring lifecycle interop: kill and reclaim with SQEs still queued.
/// Ring submissions hold no entry claim while they wait (claims are
/// taken at execution time), so a hard kill mid-queue must not wedge
/// `reclaim_slot` — queued SQEs for the dead entry complete with error
/// CQEs, every accepted submission gets exactly one completion, and the
/// slot reclaims and rebinds while the same ring keeps serving.
#[test]
fn kill_with_queued_sqes_drains_cleanly() {
    let rt = Runtime::new(1);
    let done = Arc::new(AtomicBool::new(false));
    let dog = watchdog(Arc::clone(&done), 60, "ring kill drain", Arc::clone(&rt));
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let ep = rt
        .bind(
            "victim",
            ppc_rt::EntryOptions { want_ep: Some(11), ..Default::default() },
            Arc::new(move |c| {
                // The first SQE blocks the ring worker so the rest of
                // the batch is provably still queued at kill time.
                if c.args[0] == 0 {
                    while !g.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
                c.args
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring();
    for i in 0..8u64 {
        ring.submit(ep, [i; 8], i).unwrap();
    }
    ring.doorbell();
    rt.hard_kill(ep, 0).unwrap();
    gate.store(true, Ordering::Release);

    let mut out = Vec::new();
    ring.drain(&mut out);
    assert_eq!(out.len(), 8, "every accepted SQE completed exactly once");
    let errors = out.iter().filter(|c| c.result.is_err()).count();
    assert!(errors >= 1, "submissions queued behind the kill fail: {out:?}");
    for c in &out {
        if let Err(e) = &c.result {
            assert!(
                matches!(
                    e,
                    RtError::EntryDead(_) | RtError::Aborted(_) | RtError::UnknownEntry(_)
                ),
                "dead-entry shaped error, got {e}"
            );
        }
    }

    // The queue held no claims, so the slot reclaims without wedging
    // and the ID rebinds — and the *same ring* serves the new binding.
    rt.reclaim_slot(ep, 0).unwrap();
    let opts = ppc_rt::EntryOptions { want_ep: Some(11), ..Default::default() };
    let ep2 = rt.bind("reborn", opts, Arc::new(|_| [7; 8])).unwrap();
    assert_eq!(ep2, ep);
    ring.submit(ep2, [0; 8], 99).unwrap();
    ring.drain(&mut out);
    assert_eq!(out.last().unwrap().result, Ok([7; 8]));
    done.store(true, Ordering::Release);
    dog.join().unwrap();
}

/// Exchange with SQEs in flight: each queued submission executes
/// whichever handler era is current when it reaches the head of the
/// queue — never a freed one, never a torn mix — and all complete Ok.
#[test]
fn exchange_with_queued_sqes_serves_some_era() {
    let rt = Runtime::new(1);
    let done = Arc::new(AtomicBool::new(false));
    let dog = watchdog(Arc::clone(&done), 60, "ring exchange drain", Arc::clone(&rt));
    let ep = rt.bind("gen", EntryOptions::default(), Arc::new(|_| [1; 8])).unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring_with(ppc_rt::RingOptions {
        sq_depth: 256,
        cq_depth: 256,
        credits: 256,
    });
    let mut out = Vec::new();
    for round in 2..50u64 {
        for i in 0..16u64 {
            ring.submit(ep, [i; 8], round * 100 + i).unwrap();
        }
        ring.doorbell();
        // Race the exchange against the draining batch.
        rt.exchange(ep, Arc::new(move |_| [round; 8]), 0).unwrap();
        ring.drain(&mut out);
    }
    assert_eq!(out.len(), 48 * 16);
    for c in &out {
        let rets = c.result.clone().expect("exchange never kills the entry");
        let gen = rets[0];
        assert!(
            (1..50).contains(&gen),
            "result from a real handler era, got {gen}"
        );
    }
    done.store(true, Ordering::Release);
    dog.join().unwrap();
}

/// Acceptance criterion 2: the per-vCPU lifecycle shards are exact —
/// per-vCPU completion counts sum to the entry total, and the total
/// matches the calls actually made. (If the hot path wrote any shared
/// line, the cheap way to implement it would be one counter; this pins
/// the sharding.)
#[test]
fn sharded_completions_sum_exactly() {
    let rt = Runtime::new(2);
    let ep = rt.bind("counted", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    const PER_VCPU: u64 = 400;
    let threads: Vec<_> = (0..2)
        .map(|v| {
            let c = rt.client(v, 1 + v as u32);
            std::thread::spawn(move || {
                for i in 0..PER_VCPU {
                    assert_eq!(c.call(ep, [i; 8]).unwrap(), [i; 8]);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let total = rt.entry_completions(ep).unwrap();
    let per: u64 =
        (0..2).map(|v| rt.entry_completions_on(ep, v).unwrap()).sum();
    assert_eq!(total, 2 * PER_VCPU);
    assert_eq!(per, total, "shards sum exactly to the aggregate");
    // Each vCPU's shard saw exactly its own traffic: no cross-vCPU
    // writes to another shard's line.
    for v in 0..2 {
        assert_eq!(rt.entry_completions_on(ep, v).unwrap(), PER_VCPU);
    }
}
