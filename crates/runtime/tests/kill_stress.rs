//! Kill-under-traffic stress: hard and soft kills racing live call
//! traffic must never hang a client, leak an in-flight count, or produce
//! anything but `Ok` / `EntryDead` / `Aborted`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppc_rt::{EntryOptions, RtError, Runtime};

/// Abort the process if `done` is not set within `secs`, dumping the
/// runtime's diagnostics (counters, latency percentiles, per-vCPU
/// flight-recorder rings) first — a kill that wedges a client should
/// fail CI with the facility's last events on stderr, not hang it.
fn watchdog(
    done: Arc<AtomicBool>,
    secs: u64,
    tag: &'static str,
    rt: Arc<Runtime>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            if done.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: {tag} did not finish within {secs}s — aborting");
        rt.dump_diagnostics();
        std::process::abort();
    })
}

#[test]
fn hard_kill_under_traffic_never_hangs() {
    for round in 0..10 {
        let rt = Runtime::new(2);
        let done = Arc::new(AtomicBool::new(false));
        let dog = watchdog(Arc::clone(&done), 60, "hard kill round", Arc::clone(&rt));
        let ep = rt
            .bind(
                "victim",
                EntryOptions { initial_workers: 2, ..Default::default() },
                Arc::new(|ctx| {
                    // A little work so calls are in flight when the kill lands.
                    std::thread::yield_now();
                    [ctx.args[0] + 1; 8]
                }),
            )
            .unwrap();

        let mut clients = Vec::new();
        for v in 0..2 {
            let c = rt.client(v, 1 + v as u32);
            clients.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut dead = 0u64;
                for i in 0..2000u64 {
                    match c.call(ep, [i; 8]) {
                        Ok(r) => {
                            assert_eq!(r[0], i + 1, "no torn results");
                            ok += 1;
                        }
                        Err(RtError::EntryDead(_)) | Err(RtError::Aborted(_)) => {
                            dead += 1;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                (ok, dead)
            }));
        }

        // Let some traffic through, then kill.
        std::thread::sleep(Duration::from_micros(200 + round * 137));
        rt.hard_kill(ep, 0).unwrap();

        let mut total_dead = 0;
        for c in clients {
            let (_ok, dead) = c.join().expect("client thread must not hang or panic");
            total_dead += dead;
        }
        assert!(total_dead > 0, "the kill landed mid-traffic");
        done.store(true, Ordering::Release);
        dog.join().unwrap();
    }
}

#[test]
fn soft_kill_under_traffic_drains_cleanly() {
    let rt = Runtime::new(1);
    let done = Arc::new(AtomicBool::new(false));
    let dog = watchdog(Arc::clone(&done), 60, "soft kill drain", Arc::clone(&rt));
    let ep = rt
        .bind(
            "drainee",
            EntryOptions::default(),
            Arc::new(|ctx| {
                std::thread::sleep(Duration::from_micros(50));
                ctx.args
            }),
        )
        .unwrap();
    let c = rt.client(0, 1);
    let worker_thread = {
        let c = c.clone();
        std::thread::spawn(move || {
            let mut outcomes = (0u64, 0u64);
            for i in 0..300u64 {
                match c.call(ep, [i; 8]) {
                    Ok(_) => outcomes.0 += 1,
                    Err(RtError::EntryDead(_)) | Err(RtError::Aborted(_)) => outcomes.1 += 1,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            outcomes
        })
    };
    std::thread::sleep(Duration::from_millis(3));
    rt.soft_kill(ep, 0).unwrap();
    rt.wait_drained(ep).unwrap();
    let (ok, rejected) = worker_thread.join().unwrap();
    assert!(ok > 0, "some calls completed before the kill");
    assert!(rejected > 0, "calls after the kill were rejected");
    // Drained: the in-flight counter went back to zero (wait_drained
    // returned), and the runtime can still bind new services.
    let ep2 = rt.bind("next", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    assert_eq!(c.call(ep2, [9; 8]).unwrap(), [9; 8]);
    done.store(true, Ordering::Release);
    dog.join().unwrap();
}

#[test]
fn repeated_bind_kill_cycles_do_not_leak_calls() {
    let rt = Runtime::new(1);
    let c = rt.client(0, 1);
    for i in 0..20u64 {
        let ep = rt.bind(&format!("gen{i}"), EntryOptions::default(), Arc::new(|x| x.args)).unwrap();
        for j in 0..10u64 {
            assert_eq!(c.call(ep, [j; 8]).unwrap(), [j; 8]);
        }
        rt.hard_kill(ep, 0).unwrap();
        rt.reclaim_slot(ep, 0).unwrap();
    }
    assert_eq!(rt.stats.calls(), 200);
}

/// Reclaim under fire: one entry ID is bound, killed, reclaimed, and
/// re-bound in a loop while two client threads hammer it the whole
/// time. Every generation's shared state must actually be freed (its
/// `Weak` dies) even though stale calls race the teardown, and clients
/// may only ever observe the lifecycle errors — never a hang, a fault,
/// or a torn result.
#[test]
fn reclaim_and_rebind_reuses_ids_under_traffic() {
    let rt = Runtime::new(2);
    let done = Arc::new(AtomicBool::new(false));
    let dog = watchdog(Arc::clone(&done), 120, "reclaim under traffic", Arc::clone(&rt));
    const EP: usize = 11;
    let opts = EntryOptions { want_ep: Some(EP), ..Default::default() };
    let ep = rt.bind("gen", opts, Arc::new(|c| c.args)).unwrap();
    assert_eq!(ep, EP);

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..2)
        .map(|v| {
            let c = rt.client(v, 1 + v as u32);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                while !stop.load(Ordering::Acquire) {
                    match c.call(EP, [7; 8]) {
                        Ok(r) => {
                            assert_eq!(r, [7; 8], "echo result never torn across generations");
                            ok += 1;
                        }
                        // The lifecycle races produce exactly these:
                        // killed-but-not-reclaimed (EntryDead), reclaimed
                        // slot (UnknownEntry), teardown mid-rendezvous
                        // (Aborted).
                        Err(RtError::EntryDead(_))
                        | Err(RtError::UnknownEntry(_))
                        | Err(RtError::Aborted(_)) => {}
                        Err(e) => panic!("unexpected error under reclaim churn: {e}"),
                    }
                }
                ok
            })
        })
        .collect();

    for round in 0..60u64 {
        let weak = rt.entry_weak(EP).unwrap();
        // Let traffic land on this generation.
        std::thread::sleep(Duration::from_micros(200 + round * 31));
        rt.hard_kill(EP, 0).unwrap();
        rt.reclaim_slot(EP, 0).unwrap();
        assert!(
            weak.upgrade().is_none(),
            "round {round}: reclaim freed the generation despite live traffic"
        );
        rt.bind("gen", opts, Arc::new(|c| c.args)).unwrap();
    }

    stop.store(true, Ordering::Release);
    let total: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(total > 0, "traffic made progress across generations");
    assert_eq!(rt.stats.entries_reclaimed(), 60);
    done.store(true, Ordering::Release);
    dog.join().unwrap();
}
