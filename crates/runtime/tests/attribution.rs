//! Attribution-plane integration tests: per-vCPU time accounting
//! against real wall-time, the critical-path profiler against the raw
//! span tree, and the black-box capture round-trip.
//!
//! The accounting invariant under test is the tentpole claim: every
//! facility thread's wall-time is classified into exactly one
//! [`TimeState`](ppc_rt::stats::TimeState) at a time, so the per-state
//! counters a thread charges must *partition* that thread's lifetime —
//! no double counting, no unattributed gaps beyond timer-edge noise.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_rt::export::{self, load_chrome_trace};
use ppc_rt::stats::TIME_STATES;
use ppc_rt::{EntryOptions, Runtime, RuntimeOptions, SpanPhase};

/// Σ of all attributed time-state counters in a snapshot (ns).
fn attributed_ns(snap: &ppc_rt::Snapshot) -> u64 {
    TIME_STATES.iter().map(|&(_, name, _)| snap.field(name).unwrap_or(0)).sum()
}

/// The ring worker is the one facility thread whose whole life is
/// spent inside its `StateTimer` (spawned at ring creation, flushed by
/// the synchronous join in `ClientRing::drop`), and the ring client
/// never blocks — so the time the vCPU's counters gain across the
/// ring's lifetime must equal the ring worker's wall-time, which we
/// bracket with `Instant` reads around creation and drop.
#[test]
fn ring_worker_state_times_partition_wall_time() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "attr-ring",
            // No pooled workers: the ring thread runs handlers itself,
            // so it is the only thread charging this vCPU's shard.
            EntryOptions { initial_workers: 0, ..Default::default() },
            Arc::new(|ctx| {
                let t0 = Instant::now();
                while t0.elapsed().as_nanos() < 5_000 {
                    std::hint::spin_loop();
                }
                ctx.args
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let before = rt.stats.vcpu_snapshot(0);

    let t0 = Instant::now();
    let mut ring = client.ring();
    let mut out = Vec::with_capacity(64);
    let run = Duration::from_millis(200);
    let mut submitted = 0u64;
    let mut reaped = 0u64;
    while t0.elapsed() < run {
        if ring.submit(ep, [reaped; 8], 0).is_ok() {
            submitted += 1;
            ring.doorbell();
        }
        reaped += ring.reap(64, &mut out) as u64;
        out.clear();
        // Let the ring idle now and then so Park/Idle states appear
        // in the partition too, not just Ring/Handler.
        if submitted.is_multiple_of(50) {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    drop(ring); // drains, joins the worker, flushes its StateTimer
    let elapsed = t0.elapsed().as_nanos() as u64;

    let after = rt.stats.vcpu_snapshot(0);
    let gained = attributed_ns(&after) - attributed_ns(&before);
    assert!(submitted > 0 && reaped > 0, "workload ran: {submitted} submitted");
    // The bracket includes thread spawn/join overhead outside the
    // timer, and a CI box can deschedule either thread — ±25%.
    assert!(
        gained >= elapsed / 4 * 3 && gained <= elapsed / 4 * 5,
        "attributed {gained}ns vs wall {elapsed}ns: states must partition \
         the ring worker's lifetime"
    );
    // Exclusivity means no single state can exceed the whole bracket.
    for &(_, name, label) in &TIME_STATES {
        let d = after.field(name).unwrap_or(0) - before.field(name).unwrap_or(0);
        assert!(d <= elapsed * 5 / 4, "state {label} alone exceeds wall-time: {d}ns");
    }
}

/// The profiler's per-entry phase totals must equal what the span
/// tree's B/E pairs say — folding is aggregation, not re-measurement.
#[test]
fn profiler_breakdown_matches_span_tree() {
    if !cfg!(feature = "obs") {
        return; // tracing compiled out: nothing to fold
    }
    let rt = Runtime::with_runtime_options(
        1,
        RuntimeOptions { trace_capacity: 4096, ..Default::default() },
    );
    rt.obs().set_sample_shift(0); // trace every root
    let inner = rt
        .bind(
            "attr-inner",
            EntryOptions { initial_workers: 0, ..Default::default() },
            Arc::new(|c| [c.args[0] * 2; 8]),
        )
        .unwrap();
    let rt2 = Arc::clone(&rt);
    let outer = rt
        .bind(
            "attr-outer",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(move |ctx| {
                let c = rt2.client(ctx.vcpu, 999);
                c.call(inner, [ctx.args[0]; 8]).unwrap()
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    for i in 0..50u64 {
        client.call(outer, [i; 8]).unwrap();
    }

    let records = rt.spans().all_records();
    assert!(!records.is_empty(), "traced calls left span records");

    // Independent per-(entry, phase) totals straight off the records.
    let mut expect: std::collections::HashMap<(u16, u8), (u64, u64)> =
        std::collections::HashMap::new();
    for r in &records {
        let e = expect.entry((r.ep, r.phase as u8)).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.dur_ns;
    }

    let prof = ppc_rt::profile::build(&records, &std::collections::HashMap::new());
    assert_eq!(prof.records, records.len());
    assert_eq!(prof.orphans, 0, "deep ring, nothing wrapped");
    for e in &prof.entries {
        for phase in
            [SpanPhase::Call, SpanPhase::Rendezvous, SpanPhase::Handler, SpanPhase::Frank]
        {
            let a = &e.phases[phase as usize];
            let (count, total) =
                expect.get(&(e.ep, phase as u8)).copied().unwrap_or((0, 0));
            assert_eq!(a.count, count, "{}/{} count", e.name, phase.label());
            assert_eq!(a.total_ns, total, "{}/{} total", e.name, phase.label());
            assert!(a.self_ns <= a.total_ns, "self within total");
        }
        // The nested hand-off call is billed to the outer entry as
        // child time.
        if e.ep == outer as u16 {
            let (_, inner_total) =
                expect.get(&(inner as u16, SpanPhase::Call as u8)).copied().unwrap();
            assert_eq!(e.child_ns, inner_total, "cross-entry child attribution");
        }
    }

    // And the B/E export agrees span-for-span: each record round-trips
    // through the Chrome trace as one begin/end pair of the same
    // duration (µs floats carry the ns in the fraction).
    let loaded = load_chrome_trace(&export::chrome_trace(&records)).unwrap();
    assert_eq!(loaded.len(), records.len());
    for r in &records {
        let t = loaded
            .iter()
            .find(|t| t.trace_id == r.trace_id && t.span_id == r.span_id)
            .unwrap_or_else(|| panic!("span {}/{} lost in B/E export", r.trace_id, r.span_id));
        let dur_ns = (t.dur_us * 1_000.0).round() as u64;
        assert!(
            dur_ns.abs_diff(r.dur_ns) <= 1,
            "B/E duration drifted: {} vs {}",
            dur_ns,
            r.dur_ns
        );
    }
}

/// The black-box document survives a full serialize → parse round-trip
/// with counters intact, and the automatic sink honors its directory
/// gate and rate limit.
#[test]
fn blackbox_round_trips_and_rate_limits() {
    let rt = Runtime::new(2);
    let ep = rt
        .bind(
            "attr-bb",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|c| c.args),
        )
        .unwrap();
    let client = rt.client(0, 1);
    for i in 0..500u64 {
        client.call(ep, [i; 8]).unwrap();
    }

    let doc = rt.blackbox_json("round-trip-test");
    let reparsed = export::Json::parse(&doc.to_string()).expect("capture is valid JSON");
    assert_eq!(doc, reparsed, "document survives the text round-trip");
    assert_eq!(
        reparsed.get("kind").and_then(|k| k.as_str()),
        Some("ppc-blackbox"),
        "self-identifying artifact"
    );
    assert_eq!(
        export::schema_version_of(&reparsed),
        Some(export::SCHEMA_VERSION),
        "stamped with the current schema"
    );
    assert_eq!(
        reparsed.get("reason").and_then(|r| r.as_str()),
        Some("round-trip-test")
    );
    let snap = rt.stats.snapshot();
    let counters = reparsed.get("counters").expect("counters object");
    for (name, value) in snap.fields() {
        assert_eq!(
            counters.get(name).and_then(|v| v.as_u64()),
            Some(value),
            "counter {name} intact after round-trip"
        );
    }
    let occ = reparsed.get("occupancy").and_then(|o| o.as_arr()).expect("occupancy");
    assert_eq!(occ.len(), rt.n_vcpus(), "one occupancy object per vCPU");
    // No sampler running: telemetry members are explicit nulls, not
    // absent — loaders can rely on the keys existing.
    assert_eq!(reparsed.get("telemetry"), Some(&export::Json::Null));

    // Automatic capture: off without a directory, on with one, and
    // rate-limited once it fires.
    assert_eq!(rt.blackbox_event("no-dir"), None, "no directory, no capture");
    let dir = std::env::temp_dir().join(format!("ppc-bb-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    rt.set_blackbox_dir(Some(dir.clone()));
    let first = rt.blackbox_event("incident").expect("first capture writes");
    assert!(first.exists(), "artifact on disk: {}", first.display());
    let text = std::fs::read_to_string(&first).unwrap();
    let loaded = export::Json::parse(&text).expect("artifact parses");
    assert_eq!(loaded.get("reason").and_then(|r| r.as_str()), Some("incident"));
    assert_eq!(
        rt.blackbox_event("incident-again"),
        None,
        "second capture inside the rate-limit window is suppressed"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
