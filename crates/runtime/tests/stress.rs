//! Cross-vCPU stress: many clients × many entries × every dispatch
//! variant, with and without lifecycle chaos.
//!
//! Two invariants anchor the suite:
//!
//! 1. **No lost replies / no deadlocks** — every call either returns a
//!    result or a well-defined error; every client thread joins. A
//!    watchdog aborts the process if the run wedges, so a hang fails the
//!    test instead of hanging CI.
//! 2. **Stats conservation** — in a chaos-free run, the facility's
//!    sharded counters and the per-entry completion counts describe the
//!    same set of events: `calls + async_calls == Σ entry_completions`
//!    and `calls == inline + spin + park` (each sync call resolves by
//!    exactly one rendezvous mode).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ppc_rt::{EntryOptions, RtError, Runtime};

/// Abort the whole process if `done` is not set within `secs` — a hung
/// rendezvous would otherwise park the harness forever. Before aborting,
/// dump the runtime's diagnostics (final counter snapshot, latency
/// percentiles, per-vCPU flight-recorder rings) so the wedge comes with
/// the facility's last events attached.
fn watchdog(
    done: Arc<AtomicBool>,
    secs: u64,
    tag: &'static str,
    rt: Arc<Runtime>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let deadline = std::time::Instant::now() + Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            if done.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: {tag} did not finish within {secs}s — aborting");
        rt.dump_diagnostics();
        std::process::abort();
    })
}

#[test]
fn cross_vcpu_mixed_traffic_conserves_stats() {
    const VCPUS: usize = 4;
    const CLIENTS: usize = 8;
    const ITERS: usize = 250;

    let rt = Runtime::new(VCPUS);
    // M entries covering the option matrix: plain, hold-CD, inline, and
    // a multi-worker one.
    let eps = [
        rt.bind("plain", EntryOptions::default(), Arc::new(|c| c.args)).unwrap(),
        rt.bind(
            "held",
            EntryOptions { hold_cd: true, ..Default::default() },
            Arc::new(|c| c.args),
        )
        .unwrap(),
        rt.bind(
            "inline",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|c| c.args),
        )
        .unwrap(),
        rt.bind(
            "wide",
            EntryOptions { initial_workers: 2, ..Default::default() },
            Arc::new(|c| c.args),
        )
        .unwrap(),
    ];

    let done = Arc::new(AtomicBool::new(false));
    let dog = watchdog(Arc::clone(&done), 120, "mixed traffic", Arc::clone(&rt));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let rt = Arc::clone(&rt);
            let client = rt.client(i % VCPUS, 100 + i as u32);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ i as u64);
                for n in 0..ITERS {
                    let ep = eps[rng.gen_range(0..eps.len())];
                    let args = [n as u64, i as u64, 0, 0, 0, 0, 0, 0];
                    match rng.gen_range(0..4u32) {
                        // Sync: the reply must be the echo, always.
                        0 | 1 => {
                            let rets = client.call(ep, args).expect("sync call on live entry");
                            assert_eq!(rets, args, "lost or corrupted reply");
                        }
                        // Async: dispatch, then await the reply.
                        2 => {
                            let pending =
                                client.call_async(ep, args).expect("async call on live entry");
                            assert_eq!(pending.wait(), args, "lost async reply");
                        }
                        // Upcall: runtime-manufactured async request.
                        _ => {
                            let pending = rt
                                .upcall(client.vcpu, ep, args)
                                .expect("upcall on live entry");
                            assert_eq!(pending.wait(), args, "lost upcall reply");
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }
    done.store(true, Ordering::Release);
    dog.join().unwrap();

    // Conservation: the sharded per-vCPU cells, aggregated, must agree
    // with the per-entry completion counters — every dispatched call
    // completed exactly once, nothing double-counted, nothing lost.
    let s = rt.stats.snapshot();
    let completions: u64 = eps.iter().map(|&ep| rt.entry_completions(ep).unwrap()).sum();
    assert_eq!(
        s.calls + s.async_calls,
        completions,
        "facility counters disagree with per-entry completions: {s}"
    );
    assert_eq!(s.calls + s.async_calls, (CLIENTS * ITERS) as u64);
    // Each sync call resolved by exactly one mode.
    assert_eq!(s.calls, s.inline_calls + s.spin_waits + s.park_waits, "{s}");
    // Upcalls are a subset of async dispatches.
    assert!(s.upcalls <= s.async_calls);
    assert_eq!(s.server_faults, 0);
}

#[test]
fn chaos_kill_exchange_never_wedges() {
    const VCPUS: usize = 2;
    const CLIENTS: usize = 4;
    const ITERS: usize = 300;
    const CHAOS_ROUNDS: usize = 40;

    let rt = Runtime::new(VCPUS);
    // Victim entries get killed, reclaimed, and rebound underneath the
    // clients; the durable entry gets its handler exchanged mid-traffic.
    let durable = rt
        .bind("durable", EntryOptions::default(), Arc::new(|c| c.args))
        .unwrap();
    let victims: Vec<usize> = (0..3)
        .map(|i| {
            rt.bind(
                &format!("victim-{i}"),
                EntryOptions { want_ep: Some(10 + i), ..Default::default() },
                Arc::new(|c| c.args),
            )
            .unwrap()
        })
        .collect();

    let done = Arc::new(AtomicBool::new(false));
    let dog = watchdog(Arc::clone(&done), 120, "chaos kill/exchange", Arc::clone(&rt));
    let stop = Arc::new(AtomicBool::new(false));

    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let rt = Arc::clone(&rt);
            let client = rt.client(i % VCPUS, 200 + i as u32);
            let victims = victims.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xDEAD ^ i as u64);
                let mut ok = 0u64;
                for n in 0..ITERS {
                    let (ep, must_succeed) = if rng.gen::<bool>() {
                        (durable, true)
                    } else {
                        (victims[rng.gen_range(0..victims.len())], false)
                    };
                    let args = [n as u64, i as u64, 0, 0, 0, 0, 0, 0];
                    match client.call(ep, args) {
                        Ok(rets) => {
                            assert_eq!(rets, args, "corrupted reply under chaos");
                            ok += 1;
                        }
                        // The only legitimate failures while entries die
                        // and are reborn around us.
                        Err(
                            RtError::EntryDead(_)
                            | RtError::Aborted(_)
                            | RtError::UnknownEntry(_),
                        ) if !must_succeed => {}
                        Err(e) => panic!("unexpected error under chaos: {e}"),
                    }
                }
                ok
            })
        })
        .collect();

    let chaos = {
        let rt = Arc::clone(&rt);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xBADCAB);
            for round in 0..CHAOS_ROUNDS {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let ep = 10 + rng.gen_range(0..3usize);
                if rng.gen::<bool>() {
                    // Soft kill: drain, reap, free the ID, rebind.
                    if rt.soft_kill(ep, 0).is_ok() {
                        rt.wait_drained(ep).unwrap();
                        rt.reclaim_slot(ep, 0).unwrap();
                        rt.bind(
                            &format!("victim-re-{round}"),
                            EntryOptions { want_ep: Some(ep), ..Default::default() },
                            Arc::new(|c| c.args),
                        )
                        .unwrap();
                    }
                } else if rt.hard_kill(ep, 0).is_ok() {
                    rt.reclaim_slot(ep, 0).unwrap();
                    rt.bind(
                        &format!("victim-re-{round}"),
                        EntryOptions { want_ep: Some(ep), ..Default::default() },
                        Arc::new(|c| c.args),
                    )
                    .unwrap();
                }
                // Exchange on the durable entry: handler swaps must stay
                // invisible to callers (same echo semantics).
                rt.exchange(durable, Arc::new(|c: &mut ppc_rt::CallCtx<'_>| c.args), 0)
                    .unwrap();
                std::thread::yield_now();
            }
        })
    };

    let mut total_ok = 0u64;
    for h in clients {
        total_ok += h.join().expect("client thread panicked under chaos");
    }
    stop.store(true, Ordering::Relaxed);
    chaos.join().expect("chaos thread panicked");
    done.store(true, Ordering::Release);
    dog.join().unwrap();

    // Durable-entry calls never fail, so at least those succeeded; and
    // the facility's own ledger must cover every success we observed.
    assert!(total_ok > 0);
    assert!(rt.stats.calls() >= total_ok, "stats lost completed calls");
}
