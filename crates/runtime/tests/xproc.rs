//! Cross-process transport integration tests: client and server in
//! **different PIDs**, exercising `call`, `call_with_payload`,
//! `call_bulk`, and ring submit/reap through the shared segment — plus
//! the same-API invariant (one test body run against both transports),
//! segment byte-dump validation, and peer-death robustness.
//!
//! The child process is this same test binary re-executed with
//! `PPC_XPROC_CHILD_PATH` set: the hidden `xproc_child_server` "test"
//! builds a runtime, binds the shared entry table, and serves the
//! segment until a client asks it to shut down (or it is killed). The
//! fork(2)-based `ppc_rt::xproc::fork_server` is not used here because
//! the libtest harness is threaded by the time any `#[test]` runs.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_rt::xproc::validate_segment;
use ppc_rt::{
    Completion, EntryId, EntryOptions, FlightKind, RtError, Runtime, XClient, XSegOptions,
};

/// Abort the whole binary if a rendezvous bug wedges a test — a hang
/// here would otherwise stall `cargo test` forever.
fn watchdog(secs: u64) {
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(secs));
        eprintln!("xproc test watchdog fired after {secs}s");
        std::process::abort();
    });
}

/// Bind the entry table both processes agree on. Bind order fixes the
/// entry ids on a fresh runtime; the constants below are that order.
fn bind_test_entries(rt: &Arc<Runtime>) {
    let add = rt
        .bind(
            "add",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let a = ctx.args;
                [a[0] + a[1], a[0], a[1], 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let upper = rt
        .bind(
            "upper",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().expect("descriptor in args[7]");
                let n = ctx
                    .with_bulk_mut(desc, |bytes| {
                        for b in bytes.iter_mut() {
                            b.make_ascii_uppercase();
                        }
                        bytes.len()
                    })
                    .expect("granted access");
                [0, n as u64, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let psum = rt
        .bind(
            "psum",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let n = ctx.args[0] as usize;
                let sum: u64 = ctx.scratch()[..n].iter().map(|b| u64::from(*b)).sum();
                ctx.scratch()[..8].copy_from_slice(&sum.to_le_bytes());
                [sum, 0, 0, 0, 0, 0, 0, 8]
            }),
        )
        .unwrap();
    let slow = rt
        .bind(
            "slow",
            EntryOptions::default(),
            Arc::new(|ctx| {
                std::thread::sleep(Duration::from_millis(ctx.args[0]));
                [0; 8]
            }),
        )
        .unwrap();
    assert_eq!((add, upper, psum, slow), (EP_ADD, EP_UPPER, EP_PSUM, EP_SLOW));
}

const EP_ADD: EntryId = 0;
const EP_UPPER: EntryId = 1;
const EP_PSUM: EntryId = 2;
const EP_SLOW: EntryId = 3;

/// The hidden server half: runs only when re-executed with the env var
/// set (a bare `cargo test` run sees it pass as a no-op).
#[test]
fn xproc_child_server() {
    let Some(path) = std::env::var_os("PPC_XPROC_CHILD_PATH") else {
        return;
    };
    // Self-deadline so an orphaned child can never outlive the test run.
    watchdog(120);
    let rt = Runtime::new(1);
    bind_test_entries(&rt);
    let mut srv = rt
        .serve_xproc(Path::new(&path), XSegOptions::default())
        .expect("child serves the segment");
    srv.wait();
}

/// A spawned server child, killed and reaped on drop so a failing
/// parent assertion can't leak processes.
struct ChildServer {
    child: Child,
    path: PathBuf,
}

impl ChildServer {
    fn spawn(tag: &str) -> ChildServer {
        let path = ppc_rt::shm::segment_dir()
            .join(format!("ppc-xproc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let child = Command::new(std::env::current_exe().unwrap())
            .args(["xproc_child_server", "--exact", "--test-threads=1", "--nocapture"])
            .env("PPC_XPROC_CHILD_PATH", &path)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn child server");
        ChildServer { child, path }
    }

    fn connect(&self, program: u32) -> XClient {
        XClient::connect_retry(&self.path, program, Duration::from_secs(10))
            .expect("connect to child server")
    }

    /// SIGKILL the child **and reap it**: `pid_alive` (and hence the
    /// client's liveness checks) sees a zombie as alive until the
    /// parent waits on it, exactly like any real supervisor would.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ChildServer {
    fn drop(&mut self) {
        self.kill();
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Reap until `want` completions or the deadline; errors pass through.
fn reap_all(
    xc: &mut XClient,
    want: usize,
    deadline: Duration,
) -> Result<Vec<Completion>, RtError> {
    let t0 = Instant::now();
    let mut out = Vec::new();
    while out.len() < want {
        xc.reap(want - out.len(), &mut out)?;
        assert!(t0.elapsed() < deadline, "reaped {}/{want} before deadline", out.len());
        std::hint::spin_loop();
    }
    Ok(out)
}

/// The acceptance-criteria test: one client, one server, **different
/// PIDs**, exercising `call`, payload calls, `call_bulk`, and ring
/// submit/reap through the shared segment.
#[test]
fn cross_process_call_bulk_and_ring() {
    watchdog(90);
    let mut srv = ChildServer::spawn("main");
    let mut xc = srv.connect(7);

    // Plain sync call.
    let rets = xc.call(EP_ADD, [5, 6, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(rets[0], 11);
    assert_eq!((rets[1], rets[2]), (5, 6));

    // Error surface crosses the boundary intact.
    assert_eq!(xc.call(99, [0; 8]), Err(RtError::UnknownEntry(99)));

    // Payload call: request bytes ride the slot's payload page, the
    // response payload comes back the same way.
    let req = vec![3u8; 100];
    let mut args = [0u64; 8];
    args[0] = req.len() as u64;
    let (rets, resp) = xc.call_with_payload(EP_PSUM, args, &req).unwrap();
    assert_eq!(rets[0], 300);
    assert_eq!(resp.len(), 8);
    assert_eq!(u64::from_le_bytes(resp.try_into().unwrap()), 300);

    // Async call.
    let pending = xc.call_async(EP_ADD, [20, 22, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(pending.wait().unwrap()[0], 42);

    // Bulk: fill the share, grant the entry, call with a descriptor —
    // the handler uppercases the span in place across the boundary.
    let data = b"hello cross-process bulk".to_vec();
    xc.bulk_write(0, &data).unwrap();
    xc.bulk_grant(EP_UPPER, true).unwrap();
    let desc = xc.bulk_desc(0, data.len() as u32, true).unwrap();
    let rets = xc.call_bulk(EP_UPPER, [0; 8], desc).unwrap();
    assert_eq!(rets[1] as usize, data.len());
    let back = xc.bulk_read(0, data.len()).unwrap();
    assert_eq!(back, data.to_ascii_uppercase());

    // Ring: pipeline a batch of calls through SQ/CQ in the segment.
    for user in 0..16u64 {
        xc.submit(EP_ADD, [user, user, 0, 0, 0, 0, 0, 0], user).unwrap();
    }
    xc.ring_doorbell();
    let done = reap_all(&mut xc, 16, Duration::from_secs(10)).unwrap();
    assert_eq!(done.len(), 16);
    let mut seen = [false; 16];
    for c in &done {
        assert_eq!(c.ep, EP_ADD);
        assert_eq!(c.result.as_ref().unwrap()[0], c.user * 2);
        seen[c.user as usize] = true;
    }
    assert!(seen.iter().all(|s| *s), "every submission completed");

    // Ring payload staging.
    let payload = vec![2u8; 50];
    let mut args = [0u64; 8];
    args[0] = payload.len() as u64;
    xc.submit_payload(EP_PSUM, args, 77, &payload).unwrap();
    xc.ring_doorbell();
    let done = reap_all(&mut xc, 1, Duration::from_secs(10)).unwrap();
    assert_eq!(done[0].user, 77);
    assert_eq!(done[0].result.as_ref().unwrap()[0], 100);

    // Ring bulk: payload lands in the client's share before the SQE.
    let bulk = b"ring bulk payload".to_vec();
    let desc = xc.bulk_desc(4096, bulk.len() as u32, true).unwrap();
    xc.submit_bulk(EP_UPPER, [0; 8], 88, desc, &bulk).unwrap();
    xc.ring_doorbell();
    let done = reap_all(&mut xc, 1, Duration::from_secs(10)).unwrap();
    assert_eq!(done[0].user, 88);
    assert_eq!(xc.bulk_read(4096, bulk.len()).unwrap(), bulk.to_ascii_uppercase());

    // Cooperative teardown: the client asks, the child's serve loop
    // exits, the child process terminates cleanly.
    xc.shutdown_server();
    let status = srv.child.wait().expect("child reaped");
    assert!(status.success(), "child exited cleanly: {status:?}");
}

/// The same-API invariant: one test body, two transports. Everything a
/// caller can observe — results, error values, completion pairing — is
/// identical whether the server lives in this process or another one.
trait Transport {
    fn call(&mut self, ep: EntryId, args: [u64; 8]) -> Result<[u64; 8], RtError>;
    fn bulk_upper(&mut self, data: &[u8]) -> Result<Vec<u8>, RtError>;
    fn ring_submit(&mut self, ep: EntryId, args: [u64; 8], user: u64) -> Result<(), RtError>;
    fn ring_doorbell(&mut self);
    fn ring_reap(&mut self, out: &mut Vec<Completion>) -> Result<usize, RtError>;
}

struct InProc {
    client: ppc_rt::Client,
    ring: ppc_rt::ClientRing,
}

impl Transport for InProc {
    fn call(&mut self, ep: EntryId, args: [u64; 8]) -> Result<[u64; 8], RtError> {
        self.client.call(ep, args)
    }

    fn bulk_upper(&mut self, data: &[u8]) -> Result<Vec<u8>, RtError> {
        let region = self.client.bulk_register(data.len())?;
        region.fill(0, data)?;
        region.grant(EP_UPPER, true)?;
        self.client.call_bulk(EP_UPPER, [0; 8], region.full_desc(true))?;
        let mut out = vec![0u8; data.len()];
        region.read_into(0, &mut out)?;
        Ok(out)
    }

    fn ring_submit(&mut self, ep: EntryId, args: [u64; 8], user: u64) -> Result<(), RtError> {
        self.ring.submit(ep, args, user)
    }

    fn ring_doorbell(&mut self) {
        self.ring.doorbell();
    }

    fn ring_reap(&mut self, out: &mut Vec<Completion>) -> Result<usize, RtError> {
        Ok(self.ring.reap(usize::MAX, out))
    }
}

struct XProc {
    xc: XClient,
    granted: bool,
}

impl Transport for XProc {
    fn call(&mut self, ep: EntryId, args: [u64; 8]) -> Result<[u64; 8], RtError> {
        self.xc.call(ep, args)
    }

    fn bulk_upper(&mut self, data: &[u8]) -> Result<Vec<u8>, RtError> {
        if !self.granted {
            self.xc.bulk_grant(EP_UPPER, true)?;
            self.granted = true;
        }
        self.xc.bulk_write(0, data)?;
        let desc = self.xc.bulk_desc(0, data.len() as u32, true)?;
        self.xc.call_bulk(EP_UPPER, [0; 8], desc)?;
        self.xc.bulk_read(0, data.len())
    }

    fn ring_submit(&mut self, ep: EntryId, args: [u64; 8], user: u64) -> Result<(), RtError> {
        self.xc.submit(ep, args, user)
    }

    fn ring_doorbell(&mut self) {
        self.xc.ring_doorbell();
    }

    fn ring_reap(&mut self, out: &mut Vec<Completion>) -> Result<usize, RtError> {
        self.xc.reap(usize::MAX, out)
    }
}

/// The shared body. Each observable below must hold for any transport.
fn exercise_transport(t: &mut dyn Transport) {
    // Results round-trip.
    let rets = t.call(EP_ADD, [19, 23, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(rets[0], 42);
    // Errors carry the same payload.
    assert_eq!(t.call(99, [0; 8]), Err(RtError::UnknownEntry(99)));
    assert_eq!(t.call(EP_ADD + 500, [0; 8]), Err(RtError::UnknownEntry(EP_ADD + 500)));
    // Bulk mutates the span and only the span.
    let out = t.bulk_upper(b"mixed CASE bytes").unwrap();
    assert_eq!(out, b"MIXED CASE BYTES");
    // Ring completions pair user tags with their results.
    for user in 0..8u64 {
        t.ring_submit(EP_ADD, [user, 100, 0, 0, 0, 0, 0, 0], user).unwrap();
    }
    t.ring_doorbell();
    let t0 = Instant::now();
    let mut done = Vec::new();
    while done.len() < 8 {
        t.ring_reap(&mut done).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(10), "ring drained");
    }
    done.sort_by_key(|c| c.user);
    for (user, c) in done.iter().enumerate() {
        assert_eq!(c.user, user as u64);
        assert_eq!(c.result.as_ref().unwrap()[0], user as u64 + 100);
    }
}

#[test]
fn same_api_invariant_in_both_modes() {
    watchdog(90);
    // In-process mode.
    let rt = Runtime::new(1);
    bind_test_entries(&rt);
    let client = rt.client(0, 7);
    let ring = client.ring();
    exercise_transport(&mut InProc { client, ring });

    // Cross-process mode: same body, server in another PID.
    let mut srv = ChildServer::spawn("invariant");
    let xc = srv.connect(7);
    let mut xp = XProc { xc, granted: false };
    exercise_transport(&mut xp);
    xp.xc.shutdown_server();
    let status = srv.child.wait().expect("child reaped");
    assert!(status.success());
}

/// Segment validation: a byte-for-byte dump of a live segment passes
/// the layout-version check; corrupted or truncated dumps are refused
/// with a clean [`RtError::BadSegment`] — never UB, never a hang.
#[test]
fn segment_byte_dump_round_trips_validation() {
    watchdog(90);
    let mut srv = ChildServer::spawn("dump");
    let mut xc = srv.connect(7);
    // Force some traffic so the dump is of a *working* segment.
    xc.call(EP_ADD, [1, 2, 0, 0, 0, 0, 0, 0]).unwrap();
    validate_segment(&srv.path).expect("live segment validates");

    let bytes = std::fs::read(&srv.path).expect("dump the segment");
    let copy = srv.path.with_extension("dump");

    // Round trip: the byte dump validates as-is.
    std::fs::write(&copy, &bytes).unwrap();
    validate_segment(&copy).expect("byte dump round-trips validation");

    // Version bump (offset 8 is `layout_version` by the asserted
    // layout): clean error.
    let mut bad = bytes.clone();
    bad[8] ^= 0xFF;
    std::fs::write(&copy, &bad).unwrap();
    assert_eq!(validate_segment(&copy), Err(RtError::BadSegment));

    // Bad magic: clean error.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    std::fs::write(&copy, &bad).unwrap();
    assert_eq!(validate_segment(&copy), Err(RtError::BadSegment));

    // Truncated dump: the geometry cross-check refuses it.
    std::fs::write(&copy, &bytes[..bytes.len() / 2]).unwrap();
    assert_eq!(validate_segment(&copy), Err(RtError::BadSegment));

    // Geometry lie (ring_depth at offset 16 per the asserted layout):
    // recomputed offsets disagree, refused.
    let mut bad = bytes.clone();
    bad[16] = bad[16].wrapping_add(1);
    std::fs::write(&copy, &bad).unwrap();
    assert_eq!(validate_segment(&copy), Err(RtError::BadSegment));

    let _ = std::fs::remove_file(&copy);
    xc.shutdown_server();
    let _ = srv.child.wait();
}

/// Dropping an un-waited async call must not wedge the slot: the next
/// operation — and the client's own detach-on-drop — must still work.
/// (An abandoned call parks the slot at DONE; without drop-side
/// cleanup, the next fill would spin on IDLE forever.)
#[test]
fn abandoned_async_call_releases_slot() {
    watchdog(90);
    let mut srv = ChildServer::spawn("abandon");
    let mut xc = srv.connect(7);

    // Abandon a completed (or soon-complete) call.
    let pending = xc.call_async(EP_ADD, [1, 2, 0, 0, 0, 0, 0, 0]).unwrap();
    drop(pending);
    assert_eq!(xc.call(EP_ADD, [30, 12, 0, 0, 0, 0, 0, 0]).unwrap()[0], 42);

    // Abandon one still in flight on a slow entry: drop blocks until
    // the handler finishes, then the slot is reusable.
    let pending = xc.call_async(EP_SLOW, [50, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    drop(pending);
    assert_eq!(xc.call(EP_ADD, [2, 3, 0, 0, 0, 0, 0, 0]).unwrap()[0], 5);

    xc.shutdown_server();
    let status = srv.child.wait().expect("child reaped");
    assert!(status.success(), "child exited cleanly: {status:?}");
}

/// Kill the server **mid-call**: the parent's wait must resolve to a
/// timely [`RtError::PeerGone`] (no hang), subsequent operations must
/// fail fast, and the loss must land in the flight recorder.
#[test]
fn peer_death_mid_call_is_timely_error() {
    watchdog(90);
    let obs_rt = Runtime::new(1);
    let mut srv = ChildServer::spawn("midcall");
    let mut xc = srv.connect(7).with_obs(Arc::clone(&obs_rt), 0);

    // A call the server will sit in for 30s — far past every deadline
    // below, so completion cannot race the kill.
    let pending = xc.call_async(EP_SLOW, [30_000, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    // Let the server actually pick it up, then kill it mid-handler.
    std::thread::sleep(Duration::from_millis(100));
    srv.kill();

    let t0 = Instant::now();
    assert_eq!(pending.wait(), Err(RtError::PeerGone));
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "peer loss detected in {:?}, not a hang",
        t0.elapsed()
    );

    // Everything after fails fast — no leaked in-flight state.
    assert_eq!(xc.call(EP_ADD, [1; 8]), Err(RtError::PeerGone));
    assert_eq!(xc.submit(EP_ADD, [1; 8], 0), Err(RtError::PeerGone));
    assert_eq!(xc.bulk_grant(EP_UPPER, false), Err(RtError::PeerGone));

    // The loss is on the record.
    let events = obs_rt.flight().snapshot(0);
    assert!(
        events.iter().any(|e| e.kind == FlightKind::PeerLost),
        "flight recorder holds the PeerLost event: {events:?}"
    );
}

/// Kill the server **mid-submit_bulk**: queued ring work resolves to a
/// timely [`RtError::PeerGone`] from `reap`, credits are forfeited with
/// the segment (no RingFull lockout afterwards — the error is
/// PeerGone), and the client is cleanly dead.
#[test]
fn peer_death_mid_submit_bulk_is_timely_error() {
    watchdog(90);
    let mut srv = ChildServer::spawn("midbulk");
    let mut xc = srv.connect(9);
    xc.bulk_grant(EP_UPPER, true).unwrap();

    // Stall the server first so the bulk submissions sit in the SQ.
    xc.submit(EP_SLOW, [30_000, 0, 0, 0, 0, 0, 0, 0], 1).unwrap();
    let payload = vec![b'q'; 512];
    for user in 2..6u64 {
        let desc = xc.bulk_desc((user as u32) * 1024, payload.len() as u32, true).unwrap();
        xc.submit_bulk(EP_UPPER, [0; 8], user, desc, &payload).unwrap();
    }
    xc.ring_doorbell();
    assert!(xc.in_flight() >= 5);
    std::thread::sleep(Duration::from_millis(100));
    srv.kill();

    let t0 = Instant::now();
    let mut out = Vec::new();
    let err = loop {
        match xc.reap(16, &mut out) {
            Ok(_) => {
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "reap noticed peer death before the deadline"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => break e,
        }
    };
    assert_eq!(err, RtError::PeerGone);
    assert_eq!(xc.in_flight(), 0, "in-flight credits released with the peer");
    // Dead client fails fast, with PeerGone — not RingFull, not a hang.
    assert_eq!(xc.submit(EP_ADD, [0; 8], 9), Err(RtError::PeerGone));
    assert_eq!(xc.call(EP_ADD, [0; 8]), Err(RtError::PeerGone));
}
