//! Property-based and stress tests of the real-threads runtime.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::test_runner::Config;

use ppc_rt::slot::CallSlot;
use ppc_rt::{BulkDesc, EntryOptions, Runtime};

proptest! {
    #![proptest_config(Config { cases: 64, ..Config::default() })]

    /// Every descriptor expressible within the bit budget survives the
    /// trip through its single argument word.
    #[test]
    fn bulk_desc_roundtrips_through_one_word(region in any::<u16>(),
                                             offset in any::<u32>(),
                                             len in any::<u32>(),
                                             write in any::<bool>()) {
        let d = BulkDesc {
            region: region & 0x0fff,          // 12-bit region id
            offset: offset & 0x00ff_ffff,     // 24-bit offset
            len: len & 0x00ff_ffff,           // 24-bit length
            write,
        };
        let word = d.encode().expect("masked fields fit the bit budget");
        prop_assert_eq!(BulkDesc::decode(word), Some(d));
    }

    /// Fields past the bit budget never encode — in release builds too —
    /// so an oversized descriptor can't silently become a smaller span.
    #[test]
    fn bulk_desc_out_of_range_fields_refuse_to_encode(region in any::<u16>(),
                                                      offset in any::<u32>(),
                                                      len in any::<u32>(),
                                                      write in any::<bool>()) {
        let d = BulkDesc { region, offset, len, write };
        let in_range = region <= 0x0fff && offset <= 0x00ff_ffff && len <= 0x00ff_ffff;
        prop_assert_eq!(d.encode().is_some(), in_range);
    }

    /// Decoding is the exact inverse of encoding on tagged words, and
    /// rejects every untagged word — an ordinary argument can never be
    /// mistaken for a descriptor.
    #[test]
    fn bulk_desc_decode_partitions_words(word in any::<u64>()) {
        match BulkDesc::decode(word) {
            Some(d) => prop_assert_eq!(d.encode(), Some(word)),
            None => prop_assert_ne!(word >> 61, 0b101),
        }
    }

    #[test]
    fn slot_frames_roundtrip(args in prop::array::uniform8(any::<u64>()),
                             rets in prop::array::uniform8(any::<u64>()),
                             program in any::<u32>()) {
        let s = CallSlot::new();
        s.fill(args, program, None);
        prop_assert_eq!(s.read_args(), args);
        prop_assert_eq!(s.caller_program(), program);
        s.complete(rets);
        prop_assert_eq!(s.read_rets(), rets);
        s.reset();
    }

    #[test]
    fn calls_echo_arbitrary_payloads(args in prop::array::uniform8(any::<u64>())) {
        let rt = Runtime::new(1);
        let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
        let client = rt.client(0, 3);
        prop_assert_eq!(client.call(ep, args).unwrap(), args);
    }

    #[test]
    fn interleaved_sync_async_preserve_results(seq in prop::collection::vec(any::<bool>(), 1..24)) {
        let rt = Runtime::new(1);
        let ep = rt
            .bind("inc", EntryOptions::default(), Arc::new(|c| [c.args[0] + 1; 8]))
            .unwrap();
        let client = rt.client(0, 1);
        let mut pending = Vec::new();
        for (i, is_async) in seq.iter().enumerate() {
            let x = i as u64;
            if *is_async {
                pending.push((x, client.call_async(ep, [x; 8]).unwrap()));
            } else {
                prop_assert_eq!(client.call(ep, [x; 8]).unwrap()[0], x + 1);
            }
        }
        for (x, p) in pending {
            prop_assert_eq!(p.wait()[0], x + 1);
        }
    }
}

/// Deterministic stress: several client threads per vCPU hammering two
/// services, checking every reply. Exercises pool growth, slot recycling,
/// and the rendezvous protocol under real contention.
#[test]
fn stress_many_clients_two_services() {
    let rt = Runtime::new(2);
    let double = rt.bind("double", EntryOptions::default(), Arc::new(|c| [c.args[0] * 2; 8])).unwrap();
    let add7 = rt
        .bind(
            "add7",
            EntryOptions { hold_cd: true, ..Default::default() },
            Arc::new(|c| [c.args[0] + 7; 8]),
        )
        .unwrap();
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let client = rt.client((t % 2) as usize, t as u32 + 1);
        handles.push(std::thread::spawn(move || {
            for i in 0..300u64 {
                let x = t * 1000 + i;
                if i % 2 == 0 {
                    assert_eq!(client.call(double, [x; 8]).unwrap()[0], x * 2);
                } else {
                    assert_eq!(client.call(add7, [x; 8]).unwrap()[0], x + 7);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(rt.stats.calls(), 6 * 300);
}

/// Stress the async path: a burst of async calls larger than any pool.
#[test]
fn stress_async_burst() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "spin",
            EntryOptions::default(),
            Arc::new(|c| {
                std::thread::yield_now();
                [c.args[0] + 1; 8]
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let pending: Vec<_> = (0..40u64).map(|i| (i, client.call_async(ep, [i; 8]).unwrap())).collect();
    for (i, p) in pending {
        assert_eq!(p.wait()[0], i + 1);
    }
    assert!(rt.stats.workers_created() > 0);
}

/// One lifecycle operation in the randomized interleaving below.
#[derive(Clone, Copy, Debug)]
enum LifeOp {
    Call,
    Exchange,
    SoftKill,
    HardKill,
    Reclaim,
    Rebind,
}

/// What the model says entry 5 currently is. (`wait_drained` marks a
/// soft-killed entry Dead once it drains, so a drained soft kill and a
/// hard kill land in the same model state.)
#[derive(Clone, Copy, Debug, PartialEq)]
enum LifeState {
    Vacant,
    Active,
    Dead,
}

proptest! {
    #![proptest_config(Config { cases: 16, ..Config::default() })]

    /// Random interleavings of call / exchange / soft-kill / hard-kill /
    /// reclaim / rebind against a single entry ID, checked against an
    /// explicit lifecycle model — while a concurrent client thread
    /// hammers the same ID and must only ever observe the lifecycle
    /// error set. Pins the Frank state machine: every operation's
    /// outcome is a function of the entry's lifecycle state alone, and
    /// reclaim really vacates the ID (later ops see `UnknownEntry`, a
    /// rebind revives it at the same ID).
    #[test]
    fn lifecycle_interleavings_follow_the_model(
        raw_ops in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        // Weighted op mix: calls dominate, lifecycle ops interleave.
        let ops: Vec<LifeOp> = raw_ops
            .iter()
            .map(|b| match b % 12 {
                0..=2 => LifeOp::Call,
                3..=4 => LifeOp::Exchange,
                5 => LifeOp::SoftKill,
                6..=7 => LifeOp::HardKill,
                8..=9 => LifeOp::Reclaim,
                _ => LifeOp::Rebind,
            })
            .collect();
        use std::sync::atomic::{AtomicBool, Ordering};
        use ppc_rt::RtError;

        const EP: usize = 5;
        let rt = Runtime::new(1);
        let opts = EntryOptions { want_ep: Some(EP), ..Default::default() };
        let c = rt.client(0, 1);

        let stop = Arc::new(AtomicBool::new(false));
        let background = {
            let c = rt.client(0, 2);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match c.call(EP, [1; 8]) {
                        Ok(r) => assert_eq!(r, [1; 8], "echo never torn"),
                        Err(RtError::EntryDead(_))
                        | Err(RtError::UnknownEntry(_))
                        | Err(RtError::Aborted(_)) => {}
                        Err(e) => panic!("background caller saw {e}"),
                    }
                }
            })
        };

        let mut model = LifeState::Vacant;
        for op in ops {
            match op {
                LifeOp::Call => {
                    let got = c.call(EP, [9; 8]);
                    match model {
                        LifeState::Active => prop_assert_eq!(got.unwrap(), [9; 8]),
                        LifeState::Vacant => {
                            prop_assert_eq!(got, Err(RtError::UnknownEntry(EP)))
                        }
                        // A drained soft-killed or dead entry rejects.
                        _ => prop_assert_eq!(got, Err(RtError::EntryDead(EP))),
                    }
                }
                LifeOp::Exchange => {
                    let got = rt.exchange(EP, Arc::new(|x| x.args), 0);
                    match model {
                        LifeState::Active => prop_assert_eq!(got, Ok(())),
                        LifeState::Vacant => {
                            prop_assert_eq!(got, Err(RtError::UnknownEntry(EP)))
                        }
                        _ => prop_assert_eq!(got, Err(RtError::EntryDead(EP))),
                    }
                }
                LifeOp::SoftKill => {
                    let got = rt.soft_kill(EP, 0);
                    match model {
                        LifeState::Active => {
                            prop_assert_eq!(got, Ok(()));
                            // Deterministic model: drain immediately —
                            // `wait_drained` marks the entry Dead.
                            rt.wait_drained(EP).unwrap();
                            model = LifeState::Dead;
                        }
                        LifeState::Vacant => {
                            prop_assert_eq!(got, Err(RtError::UnknownEntry(EP)))
                        }
                        _ => prop_assert_eq!(got, Err(RtError::EntryDead(EP))),
                    }
                }
                LifeOp::HardKill => {
                    let got = rt.hard_kill(EP, 0);
                    match model {
                        LifeState::Active => {
                            prop_assert_eq!(got, Ok(()));
                            model = LifeState::Dead;
                        }
                        LifeState::Vacant => {
                            prop_assert_eq!(got, Err(RtError::UnknownEntry(EP)))
                        }
                        LifeState::Dead => {
                            prop_assert_eq!(got, Err(RtError::EntryDead(EP)))
                        }
                    }
                }
                LifeOp::Reclaim => {
                    let got = rt.reclaim_slot(EP, 0);
                    match model {
                        LifeState::Dead => {
                            prop_assert_eq!(got, Ok(()));
                            model = LifeState::Vacant;
                        }
                        LifeState::Vacant => {
                            prop_assert_eq!(got, Err(RtError::UnknownEntry(EP)))
                        }
                        LifeState::Active => {
                            prop_assert_eq!(got, Err(RtError::EntryDead(EP)))
                        }
                    }
                }
                LifeOp::Rebind => {
                    let got = rt.bind("prop-life", opts, Arc::new(|x| x.args));
                    match model {
                        LifeState::Vacant => {
                            prop_assert_eq!(got.unwrap(), EP);
                            model = LifeState::Active;
                        }
                        _ => prop_assert_eq!(got, Err(RtError::TableFull)),
                    }
                }
            }
        }

        stop.store(true, Ordering::Release);
        background.join().unwrap();
    }
}
