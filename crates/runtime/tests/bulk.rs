//! Integration tests of the bulk-data payload plane: grant-backed
//! regions, `call_bulk`, the copy engine, buffer-pool recycling, and the
//! grant/revoke revocation guarantee under concurrency.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppc_rt::{BulkDesc, EntryOptions, Runtime, RtError, SpinPolicy};

/// Abort the process if the whole test binary wedges (the race tests
/// would otherwise hang `cargo test` forever on a rendezvous bug). The
/// thread dies with the process on a normal exit.
fn watchdog(secs: u64) {
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(secs));
        eprintln!("bulk test watchdog fired after {secs}s");
        std::process::abort();
    });
}

#[test]
fn zero_copy_roundtrip_in_place() {
    let rt = Runtime::new(1);
    // The server uppercases the granted span in place — no payload bytes
    // ever cross a mailbox or a scratch page.
    let ep = rt
        .bind(
            "upper",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().expect("descriptor in args[7]");
                let n = ctx
                    .with_bulk_mut(desc, |bytes| {
                        for b in bytes.iter_mut() {
                            b.make_ascii_uppercase();
                        }
                        bytes.len()
                    })
                    .expect("granted access");
                [0, n as u64, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let client = rt.client(0, 7);

    let region = client.bulk_register(64 << 10).unwrap();
    let payload = vec![b'x'; 64 << 10];
    region.fill(0, &payload).unwrap();
    region.grant(ep, true).unwrap();

    let rets = client.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
    assert_eq!(rets[1] as usize, 64 << 10);

    let mut out = vec![0u8; 64 << 10];
    region.read_into(0, &mut out).unwrap();
    assert!(out.iter().all(|b| *b == b'X'));

    let snap = rt.stats.snapshot();
    assert_eq!(snap.bulk_calls, 1);
    assert_eq!(snap.bulk_denied, 0);
    // In-place access moves no bytes through the copy engine; the owner
    // fill/drain moved 2 × 64 KiB.
    assert_eq!(snap.bulk_bytes, 0);
}

#[test]
fn copy_from_copy_to_and_exchange() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "sum-and-stamp",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().unwrap();
                // CopyFrom into server memory, compute, CopyTo the result
                // back — the paper's two-request bulk pattern in one call.
                let mut buf = vec![0u8; desc.len as usize];
                let n = ctx.copy_from(desc, &mut buf).unwrap();
                let sum: u64 = buf.iter().map(|b| *b as u64).sum();
                buf.iter_mut().for_each(|b| *b = b.wrapping_add(1));
                let wrote = ctx.copy_to(desc, &buf).unwrap();
                [sum, n as u64, wrote as u64, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let client = rt.client(0, 3);
    let region = client.bulk_register(4096).unwrap();
    region.fill(0, &[5u8; 4096]).unwrap();
    region.grant(ep, true).unwrap();

    let rets = client.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
    assert_eq!(rets[0], 5 * 4096);
    assert_eq!(rets[1], 4096);
    assert_eq!(rets[2], 4096);
    let mut out = [0u8; 4096];
    region.read_into(0, &mut out).unwrap();
    assert!(out.iter().all(|b| *b == 6));
    // copy_from + copy_to moved 8 KiB through the engine.
    assert_eq!(rt.stats.bulk_bytes(), 2 * 4096);

    // Exchange: server swaps its buffer with the span.
    let xep = rt
        .bind(
            "swap",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let mut mine = vec![9u8; desc.len as usize];
                let n = ctx.exchange_bulk(desc, &mut mine).unwrap();
                // The server now holds the client's old bytes.
                [mine[0] as u64, n as u64, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    region.grant(xep, true).unwrap();
    let rets = client.call_bulk(xep, [0; 8], region.full_desc(true)).unwrap();
    assert_eq!(rets[0], 6, "server received the client's bytes");
    region.read_into(0, &mut out).unwrap();
    assert!(out.iter().all(|b| *b == 9), "client received the server's bytes");
}

#[test]
fn authorization_is_enforced() {
    let rt = Runtime::new(1);
    let denied = Arc::new(AtomicU64::new(0));
    let d2 = Arc::clone(&denied);
    let ep = rt
        .bind(
            "prober",
            EntryOptions::default(),
            Arc::new(move |ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let mut buf = vec![0u8; 16];
                let read_ok = ctx.copy_from(desc, &mut buf).is_ok();
                let write_ok = ctx.copy_to(desc, &buf).is_ok();
                if !read_ok || !write_ok {
                    d2.fetch_add(1, Ordering::Relaxed);
                }
                [read_ok as u64, write_ok as u64, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let client = rt.client(0, 11);
    let region = client.bulk_register(256).unwrap();

    // No grant: both directions denied.
    let rets = client.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
    assert_eq!((rets[0], rets[1]), (0, 0));

    // Read-only grant: reads pass, writes denied.
    region.grant(ep, false).unwrap();
    let rets = client.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
    assert_eq!((rets[0], rets[1]), (1, 0));

    // Write grant but a read-only *descriptor*: the descriptor caps it.
    region.grant(ep, true).unwrap();
    let rets = client.call_bulk(ep, [0; 8], region.full_desc(false)).unwrap();
    assert_eq!((rets[0], rets[1]), (1, 0));

    // Full grant + writable descriptor: both pass.
    let rets = client.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
    assert_eq!((rets[0], rets[1]), (1, 1));

    // A different program's client cannot pass off the owner's region as
    // its own: the granter check fails.
    let imposter = rt.client(0, 999);
    let rets = imposter.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
    assert_eq!((rets[0], rets[1]), (0, 0));

    assert!(rt.stats.bulk_denied() >= denied.load(Ordering::Relaxed));
}

#[test]
fn bounds_and_descriptor_validation() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "bounds",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let mut sink = vec![0u8; 2 << 20];
                match ctx.copy_from(desc, &mut sink) {
                    Ok(n) => [1, n as u64, 0, 0, 0, 0, 0, 0],
                    Err(RtError::BadBulk) => [2, 0, 0, 0, 0, 0, 0, 0],
                    Err(_) => [3, 0, 0, 0, 0, 0, 0, 0],
                }
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let region = client.bulk_register(1024).unwrap();
    region.grant(ep, false).unwrap();

    // Zero-length at the exact end of the region: legal, copies nothing.
    let rets = client.call_bulk(ep, [0; 8], region.desc(1024, 0, false)).unwrap();
    assert_eq!((rets[0], rets[1]), (1, 0));
    // One byte past the end: BadBulk, not a wrap or a panic.
    let rets = client.call_bulk(ep, [0; 8], region.desc(1024, 1, false)).unwrap();
    assert_eq!(rets[0], 2);
    // offset+len saturating the 24-bit fields: BadBulk.
    let rets = client
        .call_bulk(ep, [0; 8], region.desc((1 << 24) - 1, (1 << 24) - 1, false))
        .unwrap();
    assert_eq!(rets[0], 2);
    // An unknown region id: BadBulk.
    let forged = BulkDesc::read(region.id() + 1, 0, 16);
    let rets = client.call_bulk(ep, [0; 8], forged).unwrap();
    assert_eq!(rets[0], 2);

    // Oversized registration is refused up front.
    assert_eq!(client.bulk_register((1 << 20) + 1).err(), Some(RtError::BadBulk));

    // A descriptor whose fields exceed the one-word bit budget cannot be
    // transmitted faithfully: rejected before dispatch, never silently
    // truncated to a smaller span.
    assert_eq!(
        client.call_bulk(ep, [0; 8], region.desc(1 << 24, 16, false)).err(),
        Some(RtError::BadBulk)
    );
    assert_eq!(
        client.call_bulk(ep, [0; 8], region.desc(0, 1 << 24, false)).err(),
        Some(RtError::BadBulk)
    );
}

#[test]
fn buffers_recycle_through_the_pool() {
    let rt = Runtime::new(1);
    let client = rt.client(0, 1);
    {
        let r = client.bulk_register(16 << 10).unwrap();
        r.fill(0, &[1; 128]).unwrap();
    } // dropped: buffer back to the pool
    let before = rt.stats.snapshot();
    for _ in 0..32 {
        let r = client.bulk_register(16 << 10).unwrap();
        r.fill(0, &[2; 128]).unwrap();
    }
    let delta = rt.stats.snapshot().since(&before);
    assert_eq!(delta.bulk_pool_hits, 32, "every re-registration reused the pooled buffer");
    assert_eq!(delta.bulk_pool_misses, 0);
}

/// A buffer recycled through the vCPU pool must never surface one
/// program's payload bytes inside another program's freshly registered
/// region — the grant model's boundary applies to leftovers too.
#[test]
fn recycled_buffers_do_not_leak_across_programs() {
    let rt = Runtime::new(1);
    let alice = rt.client(0, 100);
    let bob = rt.client(0, 200);
    {
        let secret = alice.bulk_register(4096).unwrap();
        secret.fill(0, &[0xA5; 4096]).unwrap();
    } // dropped: Alice's bytes ride back to the pool
    let before = rt.stats.snapshot();
    let probe = bob.bulk_register(4096).unwrap();
    // Bob really did get the recycled buffer, and it is scrubbed.
    assert_eq!(rt.stats.snapshot().since(&before).bulk_pool_hits, 1);
    probe
        .with_bytes(|bytes| assert!(bytes.iter().all(|b| *b == 0), "leaked payload bytes"))
        .unwrap();
    drop(probe);
    // Same-program recycling keeps its own leftovers (the paper's
    // serially-shared caveat, scoped to one program).
    let again = bob.bulk_register(4096).unwrap();
    let mut out = [0u8; 16];
    again.read_into(0, &mut out).unwrap();
    assert!(out.iter().all(|b| *b == 0));
}

/// Regression for the aliasing-`&mut` soundness hole: the owner's
/// in-place access (`with_bytes`) and a handler's `with_bulk_mut` on a
/// worker thread (reachable via `call_async`) must be mutually
/// exclusive, never two live `&mut [u8]` over the same bytes.
#[test]
fn owner_and_server_in_place_writes_exclude_each_other() {
    watchdog(120);
    let rt = Runtime::new(1);
    let writer_live = Arc::new(AtomicBool::new(false));
    let wl = Arc::clone(&writer_live);
    let ep = rt
        .bind(
            "mutator",
            EntryOptions::default(),
            Arc::new(move |ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let ok = ctx
                    .with_bulk_mut(desc, |bytes| {
                        assert!(
                            !wl.swap(true, Ordering::SeqCst),
                            "two in-place write accesses overlapped"
                        );
                        for b in bytes.iter_mut() {
                            *b = b.wrapping_add(1);
                        }
                        wl.store(false, Ordering::SeqCst);
                    })
                    .is_ok();
                [ok as u64, 0, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let region = client.bulk_register(4096).unwrap();
    region.grant(ep, true).unwrap();
    let mut args = [0u64; 8];
    args[7] = region.full_desc(true).encode().unwrap();

    for _ in 0..20 {
        let pending: Vec<_> =
            (0..8).map(|_| client.call_async(ep, args).unwrap()).collect();
        // Owner-side in-place writes race the async handlers.
        for _ in 0..8 {
            region
                .with_bytes(|bytes| {
                    assert!(
                        !writer_live.swap(true, Ordering::SeqCst),
                        "owner write overlapped a server write"
                    );
                    for b in bytes.iter_mut() {
                        *b = b.wrapping_sub(1);
                    }
                    writer_live.store(false, Ordering::SeqCst);
                })
                .unwrap();
        }
        for p in pending {
            p.wait();
        }
    }
}

/// Reentrant bulk operations from inside an in-place closure report
/// [`RtError::BulkReentrant`] instead of deadlocking the slot.
#[test]
fn reentrant_bulk_access_errors_cleanly() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "reentrant",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let mut nested = [0u64; 2];
                ctx.with_bulk_mut(desc, |_| {
                    // Both directions conflict with the write access we
                    // already hold on this region.
                    nested[0] = matches!(
                        ctx.copy_to(desc, &[1, 2, 3]),
                        Err(RtError::BulkReentrant(_))
                    ) as u64;
                    nested[1] = matches!(
                        ctx.with_bulk(desc, |_| ()),
                        Err(RtError::BulkReentrant(_))
                    ) as u64;
                })
                .unwrap();
                [nested[0], nested[1], 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let region = client.bulk_register(256).unwrap();
    region.grant(ep, true).unwrap();
    let rets = client.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
    assert_eq!((rets[0], rets[1]), (1, 1), "nested accesses must error, not deadlock");
}

#[test]
fn region_table_exhaustion_reports_full() {
    let rt = Runtime::new(1);
    let client = rt.client(0, 1);
    let mut held = Vec::new();
    for _ in 0..ppc_rt::MAX_REGIONS {
        held.push(client.bulk_register(64).unwrap());
    }
    assert_eq!(client.bulk_register(64).err(), Some(RtError::TableFull));
    held.pop();
    assert!(client.bulk_register(64).is_ok());
}

#[test]
fn call_bulk_works_across_dispatch_modes() {
    // The descriptor rides the ordinary arg frame, so inline,
    // spin-then-park, and park-only dispatch all carry it unchanged.
    for (inline_ok, policy) in [
        (true, SpinPolicy::Adaptive),
        (false, SpinPolicy::Adaptive),
        (false, SpinPolicy::ParkOnly),
        (false, SpinPolicy::Fixed(1 << 10)),
    ] {
        let rt = Runtime::new(1);
        rt.set_spin_policy(policy);
        let ep = rt
            .bind(
                "negate",
                EntryOptions { inline_ok, ..Default::default() },
                Arc::new(|ctx| {
                    let desc = ctx.bulk_desc().unwrap();
                    let n = ctx
                        .with_bulk_mut(desc, |bytes| {
                            bytes.iter_mut().for_each(|b| *b = !*b);
                            bytes.len()
                        })
                        .unwrap();
                    [n as u64, 0, 0, 0, 0, 0, 0, 0]
                }),
            )
            .unwrap();
        let client = rt.client(0, 5);
        let region = client.bulk_register(4096).unwrap();
        region.fill(0, &[0xF0; 4096]).unwrap();
        region.grant(ep, true).unwrap();
        let rets = client.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
        assert_eq!(rets[0], 4096);
        let mut out = [0u8; 4096];
        region.read_into(0, &mut out).unwrap();
        assert!(out.iter().all(|b| *b == 0x0F), "inline={inline_ok} policy={policy:?}");
    }
}

/// The revocation guarantee (satellite): one thread revokes a grant while
/// others stream bulk copies. Once the revoker observes its revoke
/// complete, **no** copy may succeed — the registry drains in-flight
/// transfers before the revoke returns, and later transfers fail the
/// grant check or the epoch validation.
#[test]
fn revoke_vs_streaming_copies_race() {
    watchdog(120);
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "streamer",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let src = vec![0xAB; desc.len as usize];
                match ctx.copy_to(desc, &src) {
                    Ok(n) => [1, n as u64, 0, 0, 0, 0, 0, 0],
                    Err(_) => [0; 8],
                }
            }),
        )
        .unwrap();

    for round in 0..20 {
        let client = rt.client(0, 42);
        let region = Arc::new(client.bulk_register(8 << 10).unwrap());
        region.grant(ep, true).unwrap();

        let revoked = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(AtomicU64::new(0));
        let successes = Arc::new(AtomicU64::new(0));

        let streamers: Vec<_> = (0..2)
            .map(|_| {
                let c = client.clone();
                let region = Arc::clone(&region);
                let revoked = Arc::clone(&revoked);
                let stop = Arc::clone(&stop);
                let violations = Arc::clone(&violations);
                let successes = Arc::clone(&successes);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        // Sample the flag BEFORE dispatching: if the
                        // revoke had already returned, this copy must
                        // not succeed.
                        let was_revoked = revoked.load(Ordering::SeqCst);
                        let rets = c.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
                        if rets[0] == 1 {
                            successes.fetch_add(1, Ordering::Relaxed);
                            if was_revoked {
                                violations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();

        // Let copies flow, then revoke mid-stream.
        std::thread::sleep(Duration::from_millis(2));
        region.revoke(ep).unwrap();
        revoked.store(true, Ordering::SeqCst);
        // Keep streaming a moment against the revoked grant.
        std::thread::sleep(Duration::from_millis(2));
        stop.store(true, Ordering::Release);
        for s in streamers {
            s.join().unwrap();
        }
        assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "round {round}: a copy succeeded after its revoke was observed"
        );
        // Sanity: the pre-revoke window actually exercised the grant.
        assert!(successes.load(Ordering::Relaxed) > 0, "round {round}: no copy ever succeeded");
    }
}

/// Unregister during streaming: dropping the region drains in-flight
/// transfers, recycles the buffer, and later calls fail cleanly.
#[test]
fn unregister_vs_streaming_copies_race() {
    watchdog(120);
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "reader",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let ok = ctx.with_bulk(desc, |bytes| bytes.iter().map(|b| *b as u64).sum::<u64>());
                match ok {
                    Ok(sum) => [1, sum, 0, 0, 0, 0, 0, 0],
                    Err(_) => [0; 8],
                }
            }),
        )
        .unwrap();
    for _ in 0..20 {
        let client = rt.client(0, 9);
        let region = client.bulk_register(4096).unwrap();
        region.fill(0, &[1; 4096]).unwrap();
        region.grant(ep, false).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let seen = Arc::new(AtomicU64::new(0));
        let c = client.clone();
        let desc = region.full_desc(false);
        let stop2 = Arc::clone(&stop);
        let seen2 = Arc::clone(&seen);
        let t = std::thread::spawn(move || {
            let mut good = 0u64;
            while !stop2.load(Ordering::Acquire) {
                let rets = c.call_bulk(ep, [0; 8], desc).unwrap();
                if rets[0] == 1 {
                    assert_eq!(rets[1], 4096, "torn read of a live region");
                    good += 1;
                    seen2.store(good, Ordering::Release);
                }
            }
            good
        });
        // Wait until the stream has actually observed the live region
        // before unregistering — a fixed sleep loses to a loaded
        // single-core scheduler (the watchdog bounds this loop).
        while seen.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(1));
        drop(region); // unregister mid-stream
        std::thread::sleep(Duration::from_millis(1));
        stop.store(true, Ordering::Release);
        let good = t.join().unwrap();
        assert!(good > 0, "stream never observed the live region");
    }
}
