//! Observability-plane integration tests: exact concurrent sums, ring
//! wraparound through the runtime, exporter round-trips, bucket-index
//! stability, and the failure-path diagnostics dump.
//!
//! Everything here runs against the public `Runtime` surface — the
//! plane's unit tests live with the modules; these tests check the
//! wiring: that real calls on real threads land in the histograms and
//! rings the exporters read.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::test_runner::Config;

use ppc_rt::flight::RING_CAPACITY;
use ppc_rt::obs::{bucket_bound, bucket_of, BUCKETS};
use ppc_rt::{EntryOptions, FlightKind, LatencyKind, RtError, Runtime};

/// Histograms sum exactly under concurrent multi-vCPU recording: every
/// `Relaxed` bucket increment survives, none are lost or double-counted.
#[test]
fn concurrent_recording_sums_exactly() {
    const VCPUS: usize = 4;
    const THREADS_PER_VCPU: usize = 2;
    const RECORDS: u64 = 10_000;

    let rt = Runtime::new(VCPUS);
    let obs = Arc::clone(rt.obs());
    let mut handles = Vec::new();
    for v in 0..VCPUS {
        for t in 0..THREADS_PER_VCPU {
            let obs = Arc::clone(&obs);
            handles.push(std::thread::spawn(move || {
                for i in 0..RECORDS {
                    // Distinct durations per thread so the sum check
                    // would catch increments landing in the wrong cell.
                    obs.record(LatencyKind::Call, v, i + t as u64);
                }
            }));
        }
    }
    for h in handles {
        h.join().unwrap();
    }

    let merged = rt.obs().merged(LatencyKind::Call);
    if !cfg!(feature = "obs") {
        assert_eq!(merged.count(), 0, "compiled out: recording is a no-op");
        return;
    }
    let n = VCPUS as u64 * THREADS_PER_VCPU as u64 * RECORDS;
    assert_eq!(merged.count(), n, "every record is counted exactly once");
    // Σ over threads of Σ_{i<RECORDS} (i + t):
    let per_thread_base: u64 = (0..RECORDS).sum();
    let expected_sum: u64 = (0..VCPUS as u64 * THREADS_PER_VCPU as u64)
        .map(|k| per_thread_base + (k % THREADS_PER_VCPU as u64) * RECORDS)
        .sum();
    assert_eq!(merged.sum_ns, expected_sum, "sum is exact, not sampled");
    // Per-vCPU cells partition the merged view.
    let per_vcpu: u64 = (0..VCPUS)
        .map(|v| rt.obs().vcpu_hist(LatencyKind::Call, v).count())
        .sum();
    assert_eq!(per_vcpu, n);
}

/// Overfilling a vCPU's flight ring through the runtime keeps exactly
/// the newest `RING_CAPACITY` events with contiguous sequence numbers.
#[test]
fn flight_ring_wraparound_keeps_newest() {
    let rt = Runtime::new(2);
    let total = RING_CAPACITY as u32 + 100;
    for i in 0..total {
        rt.flight().record(1, FlightKind::Inline, 3, i);
    }
    let events = rt.flight().snapshot(1);
    assert_eq!(events.len(), RING_CAPACITY, "ring retains exactly its capacity");
    for (k, ev) in events.iter().enumerate() {
        assert_eq!(ev.seq, (total as u64 - RING_CAPACITY as u64) + k as u64);
        assert_eq!(ev.data, ev.seq as u32, "newest events, in order");
        assert_eq!(ev.vcpu, 1);
        assert_eq!(ev.ep, 3);
    }
    assert!(rt.flight().snapshot(0).is_empty(), "other rings untouched");
}

/// The JSON exporter round-trips through its own parser, and counters in
/// the document match the live facility counters.
#[test]
fn export_json_roundtrips_with_live_counters() {
    let rt = Runtime::new(1);
    rt.obs().set_sample_shift(0); // time every call
    let ep = rt
        .bind("svc", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);
    for i in 0..50u64 {
        assert_eq!(client.call(ep, [i; 8]).unwrap(), [i; 8]);
    }

    let text = rt.export_json().to_string();
    let back = ppc_rt::export::Json::parse(&text).expect("exporter output parses");
    let counters = back.get("counters").expect("counters object");
    assert_eq!(counters.get("calls").unwrap().as_u64(), Some(rt.stats.calls()));
    assert_eq!(counters.get("inline_calls").unwrap().as_u64(), Some(50));
    if cfg!(feature = "obs") {
        let call = back.get("latency_ns").unwrap().get("call").expect("call histogram");
        assert_eq!(call.get("count").unwrap().as_u64(), Some(50));
        assert!(call.get("p50").unwrap().as_u64().unwrap() <= call.get("p99").unwrap().as_u64().unwrap());
    }

    let prom = rt.export_prometheus();
    assert!(prom.contains("ppc_calls 50"), "counter line present:\n{prom}");
    if cfg!(feature = "obs") {
        assert!(prom.contains("ppc_latency_ns_bucket{kind=\"call\",le=\"+Inf\"} 50"));
        assert!(prom.contains("ppc_latency_ns_count{kind=\"call\"} 50"));
    }
}

/// The failure-path dump: after traffic, a contained fault, and a hard
/// kill, the diagnostics text carries the per-vCPU flight rings with the
/// fault and kill events — what a tripped watchdog prints to stderr.
#[test]
fn diagnostics_dump_carries_flight_rings() {
    let rt = Runtime::new(2);
    rt.obs().set_sample_shift(0);
    let ep = rt
        .bind("svc", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let boom = rt
        .bind(
            "boom",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|_| panic!("handler fault")),
        )
        .unwrap();
    let client = rt.client(0, 1);
    for i in 0..10u64 {
        client.call(ep, [i; 8]).unwrap();
    }
    assert!(matches!(client.call(boom, [0; 8]), Err(RtError::ServerFault(_))));
    rt.hard_kill(ep, 0).unwrap();

    let dump = rt.diagnostics();
    assert!(dump.contains("=== ppc-rt diagnostics ==="), "framed:\n{dump}");
    assert!(dump.contains("stats:"), "last snapshot attached:\n{dump}");
    assert!(dump.contains("vcpu 0:") && dump.contains("vcpu 1:"), "per-vCPU sections:\n{dump}");
    assert!(dump.contains("inline"), "dispatch events present:\n{dump}");
    assert!(dump.contains("fault"), "the contained fault is in the ring:\n{dump}");
    assert!(dump.contains("hard_kill"), "the kill is in the ring:\n{dump}");
    if cfg!(feature = "obs") {
        assert!(dump.contains("latency[call]:"), "percentile lines present:\n{dump}");
    }
}

/// The runtime enable bit actually gates recording.
#[test]
fn runtime_disable_stops_sampling() {
    let rt = Runtime::new(1);
    rt.obs().set_sample_shift(0);
    rt.obs().set_enabled(false);
    rt.flight().set_enabled(false);
    let ep = rt
        .bind("svc", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);
    for i in 0..20u64 {
        client.call(ep, [i; 8]).unwrap();
    }
    assert_eq!(rt.obs().merged(LatencyKind::Call).count(), 0);
    assert!(rt.flight().snapshot(0).is_empty());
    // Counters are independent of the obs plane and still count.
    assert_eq!(rt.stats.calls(), 20);
}

proptest! {
    #![proptest_config(Config { cases: 256, ..Config::default() })]

    /// Bucket indexing is stable: every duration lands in exactly one
    /// bucket, the bucket's bound covers it (except the topmost bucket,
    /// which is a clamp for ≥2⁶³ ns durations), and the previous
    /// bucket's bound does not — so percentile reads overestimate by at
    /// most 2×.
    #[test]
    fn bucket_index_is_stable(ns in any::<u64>()) {
        let b = bucket_of(ns);
        prop_assert!(b < BUCKETS);
        if ns < 1u64 << 63 {
            prop_assert!(bucket_bound(b) >= ns, "bound covers the duration");
        } else {
            prop_assert_eq!(b, BUCKETS - 1, "out-of-range durations clamp to the top");
        }
        if b > 0 {
            prop_assert!(bucket_bound(b - 1) < ns, "previous bound excludes it");
        }
    }

    /// Monotone: a longer duration never lands in an earlier bucket.
    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_of(lo) <= bucket_of(hi));
    }
}
