//! QoS-class isolation and hold-CD lifecycle: the tail-latency
//! campaign's correctness surface.
//!
//! - Latency-lane SQEs overtake a queued Bulk backlog (at most one bulk
//!   handler ahead, the documented bound).
//! - A flooded Bulk entry cannot push a Latency entry's ring sojourn
//!   anywhere near the FIFO bound.
//! - Hold-CD pinned slots are recycled into the vCPU CD pool on entry
//!   retire, exchange churn, and worker-pool shrink — never leaked.
//! - Trust-group gating keeps the pinned scratch page private to the
//!   trusted caller.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ppc_rt::{EntryOptions, QosClass, RingOptions, Runtime};

/// Abort the process if a test wedges (ring bugs hang, not fail).
fn watchdog(secs: u64) {
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(secs));
        eprintln!("qos test watchdog fired after {secs}s");
        std::process::abort();
    });
}

/// Eight Bulk-class SQEs and one Latency-class SQE, submitted in that
/// order under a single doorbell: the worker's priority loop runs the
/// latency SQE with at most one bulk handler ahead of it, even though
/// it was last in submission order.
#[test]
fn latency_sqe_overtakes_bulk_backlog() {
    watchdog(60);
    let rt = Runtime::new(1);
    let order = Arc::new(Mutex::new(Vec::new()));
    let (o1, o2) = (Arc::clone(&order), Arc::clone(&order));
    let bulk_ep = rt
        .bind(
            "bulk",
            EntryOptions { qos: QosClass::Bulk, ..Default::default() },
            Arc::new(move |c| {
                o1.lock().unwrap().push(c.args[0]);
                c.args
            }),
        )
        .unwrap();
    let lat_ep = rt
        .bind(
            "lat",
            EntryOptions::default(),
            Arc::new(move |c| {
                o2.lock().unwrap().push(1000 + c.args[0]);
                c.args
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring_with(RingOptions { sq_depth: 16, cq_depth: 16, credits: 16 });

    for i in 0..8 {
        ring.submit(bulk_ep, [i; 8], i).unwrap();
    }
    ring.submit(lat_ep, [0; 8], 100).unwrap();
    let mut out = Vec::new();
    ring.drain(&mut out); // one doorbell for all nine
    assert_eq!(out.len(), 9);

    let order = order.lock().unwrap();
    let pos = order.iter().position(|&x| x == 1000).unwrap();
    assert!(
        pos <= 1,
        "latency SQE executed behind at most one bulk handler, ran {pos}th: {order:?}"
    );
    // Reap serves the Latency lane first, whatever the execution order.
    assert_eq!(out[0].ep, lat_ep);
    assert_eq!(out[0].user, 100);
}

/// Sustained Bulk flood: with ~24 four-millisecond bulk handlers queued
/// at all times, a Latency-class SQE still completes within roughly one
/// bulk slice — an order of magnitude under the FIFO backlog bound
/// (24 × 4 ms ≈ 96 ms). This is the head-of-line-blocking guarantee the
/// two-lane transport exists for.
#[test]
fn bulk_flood_cannot_head_of_line_block_latency() {
    watchdog(120);
    let rt = Runtime::new(1);
    let bulk_ep = rt
        .bind(
            "flood",
            EntryOptions { qos: QosClass::Bulk, ..Default::default() },
            Arc::new(|c| {
                std::thread::sleep(Duration::from_millis(4));
                c.args
            }),
        )
        .unwrap();
    let lat_ep = rt.bind("probe", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring_with(RingOptions { sq_depth: 32, cq_depth: 32, credits: 32 });

    // Keep the bulk lane saturated; probe with a latency SQE each round.
    let mut out = Vec::new();
    let mut bulk_user = 0u64;
    let mut worst = Duration::ZERO;
    for _ in 0..12 {
        while ring.in_flight() < 25 {
            ring.submit(bulk_ep, [0; 8], bulk_user).unwrap();
            bulk_user += 1;
        }
        let t0 = Instant::now();
        ring.submit(lat_ep, [0; 8], u64::MAX).unwrap();
        ring.doorbell();
        'wait: loop {
            ring.reap(32, &mut out);
            for c in out.drain(..) {
                if c.ep == lat_ep {
                    break 'wait;
                }
            }
            std::hint::spin_loop();
        }
        worst = worst.max(t0.elapsed());
    }
    ring.drain(&mut out);
    assert!(
        worst < Duration::from_millis(40),
        "latency sojourn stayed near one bulk slice under flood, worst {worst:?} \
         (FIFO bound would be ~96 ms)"
    );
}

/// Hold-CD lifecycle under kill/exchange churn: the pinned CD is
/// recycled into the vCPU pool when the entry retires, so fifty
/// generations of bind → pin → kill → reclaim never create a single
/// new CD (the default pool holds exactly one warm slot — one leak per
/// generation would show up immediately). Exchanges mid-generation keep
/// the pin alive and the new handler visible.
#[test]
fn hold_cd_recycled_across_kill_and_exchange_churn() {
    watchdog(120);
    let rt = Runtime::new(1);
    let client = rt.client(0, 1);
    let before = rt.stats.snapshot();
    for generation in 0..50u64 {
        let ep = rt
            .bind(
                "churn-hold",
                EntryOptions { hold_cd: true, ..Default::default() },
                Arc::new(move |_| [generation; 8]),
            )
            .unwrap();
        assert_eq!(client.call(ep, [0; 8]).unwrap(), [generation; 8]);
        // Exchange keeps the worker (and its pinned CD) alive.
        rt.exchange(ep, Arc::new(move |_| [generation + 1000; 8]), 0).unwrap();
        assert_eq!(client.call(ep, [0; 8]).unwrap(), [generation + 1000; 8]);
        rt.hard_kill(ep, 0).unwrap();
        rt.reclaim_slot(ep, 0).unwrap();
    }
    let delta = rt.stats.snapshot().since(&before);
    assert_eq!(delta.cds_created, 0, "every pinned CD returned to the pool: {delta:?}");
    assert_eq!(delta.calls, 100);
}

/// Shrinking a hold-CD entry's worker pool recycles the pinned CD too:
/// the next call re-grows a worker and re-pins from the pool without
/// ever allocating a new slot.
#[test]
fn shrink_recycles_the_pinned_cd() {
    watchdog(60);
    let rt = Runtime::new(1);
    let ep = rt
        .bind("shrink-hold", EntryOptions { hold_cd: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);
    let before = rt.stats.snapshot();
    client.call(ep, [1; 8]).unwrap(); // grows a worker, pins the pool's slot
    // The worker re-pools itself *after* posting DONE; wait for it.
    while rt.idle_workers(ep).unwrap() == 0 {
        std::thread::yield_now();
    }
    assert_eq!(rt.shrink_workers(ep, 0, 0).unwrap(), 1, "the idle worker was reaped");
    client.call(ep, [2; 8]).unwrap(); // re-grows, re-pins the recycled slot
    let delta = rt.stats.snapshot().since(&before);
    assert_eq!(delta.cds_created, 0, "the shrunk worker's CD came back: {delta:?}");
    // Bind pre-grew the first worker; only the post-shrink re-grow
    // goes through Frank.
    assert_eq!(delta.workers_created, 1);
}

/// Trust-group gating: a caller outside the entry's trust group routes
/// through the CD pool and never touches the pinned scratch page. The
/// handler keeps a counter in scratch — the trusted caller's stream
/// accumulates across calls (the pin is real), the untrusted caller's
/// stream never intersects it (the isolation is real), and the trusted
/// stream continues unperturbed after the untrusted calls.
#[test]
fn trust_group_keeps_pinned_scratch_private() {
    watchdog(60);
    let rt = Runtime::new(1);
    rt.set_trust_group(1, 7);
    let ep = rt
        .bind(
            "vault",
            EntryOptions { hold_cd: true, trust_group: 7, ..Default::default() },
            Arc::new(|ctx| {
                let s = ctx.scratch();
                let v = u64::from_le_bytes(s[..8].try_into().unwrap());
                s[..8].copy_from_slice(&(v + 1).to_le_bytes());
                [v; 8]
            }),
        )
        .unwrap();
    let trusted = rt.client(0, 1);
    let untrusted = rt.client(0, 2);

    for i in 0..5 {
        assert_eq!(trusted.call(ep, [0; 8]).unwrap()[0], i, "pinned counter accumulates");
    }
    for _ in 0..3 {
        let v = untrusted.call(ep, [0; 8]).unwrap()[0];
        assert!(v < 5, "untrusted caller never reads the pinned page (saw {v})");
    }
    for i in 5..8 {
        assert_eq!(
            trusted.call(ep, [0; 8]).unwrap()[0],
            i,
            "untrusted calls left the pinned page untouched"
        );
    }
}

/// The default class is Latency: an entry that never opts in pays no
/// QoS tax and keeps the seed's fast-path behavior.
#[test]
fn default_class_is_latency() {
    assert_eq!(QosClass::default(), QosClass::Latency);
    assert_eq!(EntryOptions::default().qos, QosClass::Latency);
}
