//! Purity of the warm `call_bulk` path: the ISSUE-2 acceptance gate that
//! a warmed bulk call performs **no allocations** and stays off every
//! slow path (no lock acquisitions by construction — the fast path is
//! lock-free pools + epoch-stamped registry reads + `Relaxed` sharded
//! counters; the stats deltas below pin that no cold path was entered).
//!
//! The allocation half is proved directly: a counting `#[global_allocator]`
//! wraps `System`, armed only around the measured loop. This test binary
//! holds exactly one `#[test]` so no sibling test's allocations bleed
//! into the armed window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ppc_rt::{EntryOptions, Runtime};

/// `System`, plus a counter armed around the measured region.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(p, l, new)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_call_bulk_allocates_nothing_and_stays_on_the_fast_path() {
    let rt = Runtime::new(1);
    // Inline dispatch: the handler runs on the caller's thread — the
    // paper's same-processor fast path, and the mode `call_bulk` is
    // expected to ride in the common case.
    let inline_ep = rt
        .bind(
            "bulk-inline",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let n = ctx
                    .with_bulk_mut(desc, |bytes| {
                        // Touch one byte per cache line: real work, no
                        // allocation.
                        for i in (0..bytes.len()).step_by(64) {
                            bytes[i] = bytes[i].wrapping_add(1);
                        }
                        bytes.len()
                    })
                    .unwrap();
                [n as u64, 0, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    // Hand-off dispatch: same handler through the spin rendezvous — the
    // worker side must be allocation-free too once warm.
    let handoff_ep = rt
        .bind(
            "bulk-handoff",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let n = ctx.with_bulk(desc, |bytes| bytes.len()).unwrap();
                [n as u64, 0, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();

    let client = rt.client(0, 1);
    let region = client.bulk_register(4096).unwrap();
    region.fill(0, &[7u8; 4096]).unwrap();
    region.grant(inline_ep, true).unwrap();
    region.grant(handoff_ep, false).unwrap();

    // Warm both paths: worker spawned, CD pooled, pool buffer resident.
    for _ in 0..10 {
        assert_eq!(client.call_bulk(inline_ep, [0; 8], region.full_desc(true)).unwrap()[0], 4096);
        assert_eq!(client.call_bulk(handoff_ep, [0; 8], region.full_desc(false)).unwrap()[0], 4096);
    }

    let warm = rt.stats.snapshot();
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..500u64 {
        client.call_bulk(inline_ep, [0; 8], region.full_desc(true)).unwrap();
        client.call_bulk(handoff_ep, [0; 8], region.full_desc(false)).unwrap();
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);
    let delta = rt.stats.snapshot().since(&warm);

    assert_eq!(allocs, 0, "warm call_bulk allocated {allocs} times in 1000 calls");
    assert_eq!(delta.bulk_calls, 1000);
    assert_eq!(delta.calls, 1000);
    assert_eq!(delta.inline_calls, 500);
    assert_eq!(delta.bulk_denied, 0);
    assert_eq!(delta.bulk_pool_misses, 0, "warm path re-entered the buffer allocator");
    assert_eq!(delta.frank_redirects, 0, "warm path hit the Frank slow path");
    assert_eq!(delta.workers_created, 0);
    assert_eq!(delta.cds_created, 0);
}
