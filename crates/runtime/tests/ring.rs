//! Submission/completion ring semantics: wraparound, ordering, credit
//! backpressure, staged payload and async bulk delivery, fault
//! containment, and worker teardown. Everything runs against the public
//! `Client::ring()` surface; the SPSC index protocol's unit tests live
//! in `ring.rs` itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppc_rt::{Completion, EntryOptions, RingOptions, RtError, Runtime, SpinPolicy};

/// Abort the process if the binary wedges (ring bugs hang, not fail).
fn watchdog(secs: u64) {
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(secs));
        eprintln!("ring test watchdog fired after {secs}s");
        std::process::abort();
    });
}

/// Many laps around a tiny ring: cursors are monotonic u64s masked into
/// 8 slots, so 100 submissions exercise 12+ wraparounds of both queues,
/// and every completion arrives in submission order with its user tag.
#[test]
fn wraparound_preserves_order_across_many_laps() {
    watchdog(60);
    let rt = Runtime::new(1);
    let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|c| [c.args[0] + 1; 8])).unwrap();
    let client = rt.client(0, 1);
    let mut ring =
        client.ring_with(RingOptions { sq_depth: 8, cq_depth: 8, credits: 8 });
    assert_eq!(ring.sq_capacity(), 8);

    let mut out: Vec<Completion> = Vec::new();
    let mut next = 0u64;
    while next < 100 {
        // Fill the credit budget, then drain — each iteration is one
        // full lap of both rings.
        while next < 100 {
            match ring.submit(ep, [next; 8], next) {
                Ok(()) => next += 1,
                Err(RtError::RingFull) => break,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        ring.drain(&mut out);
    }
    assert_eq!(out.len(), 100);
    for (i, c) in out.iter().enumerate() {
        assert_eq!(c.user, i as u64, "completions in submission order");
        assert_eq!(c.ep, ep);
        assert_eq!(c.result, Ok([i as u64 + 1; 8]), "handler ran with the right args");
    }
    assert_eq!(ring.in_flight(), 0);
}

/// Credit exhaustion is a clean refusal, not a deadlock: with the
/// worker blocked inside a slow handler, submissions beyond the credit
/// budget return `RingFull` immediately, in-flight never exceeds the
/// budget (the bounded-memory invariant), and draining restores full
/// capacity.
#[test]
fn credit_exhaustion_refuses_without_deadlock() {
    watchdog(60);
    let rt = Runtime::new(1);
    let gate = Arc::new(AtomicU64::new(0));
    let g = Arc::clone(&gate);
    let ep = rt
        .bind(
            "slow",
            EntryOptions::default(),
            Arc::new(move |c| {
                // First call parks the ring worker here until released.
                if c.args[0] == 0 {
                    while g.load(Ordering::Acquire) == 0 {
                        std::thread::yield_now();
                    }
                }
                c.args
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let mut ring =
        client.ring_with(RingOptions { sq_depth: 16, cq_depth: 16, credits: 4 });
    assert_eq!(ring.credits(), 4);

    for i in 0..4u64 {
        ring.submit(ep, [i; 8], i).unwrap();
    }
    ring.doorbell();
    // The budget is spent; the 5th submission sheds immediately even
    // though the SQ itself has 12 free slots.
    assert_eq!(ring.submit(ep, [9; 8], 9), Err(RtError::RingFull));
    assert_eq!(ring.in_flight(), 4, "in-flight bounded by credits");
    // A credit shed counts into `ring_no_credit`, not `ring_full`: the
    // SQ has free slots, the client just has to reap.
    let snap = rt.stats.snapshot();
    assert!(snap.ring_no_credit >= 1, "the credit shed was counted");
    assert_eq!(snap.ring_full, 0, "SQ-full never happened");

    gate.store(1, Ordering::Release);
    let mut out = Vec::new();
    ring.drain(&mut out);
    assert_eq!(out.len(), 4);
    // Credits returned: the refused submission now succeeds.
    ring.submit(ep, [9; 8], 9).unwrap();
    ring.drain(&mut out);
    assert_eq!(out.last().unwrap().user, 9);
}

/// Staged payload delivery: the bytes handed to `submit_payload` arrive
/// as the handler's scratch prefix — one client-side memcpy into a pool
/// buffer, recycled after execution.
#[test]
fn payload_rides_as_handler_scratch() {
    watchdog(60);
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "sum",
            EntryOptions::default(),
            Arc::new(|c| {
                let n = c.args[0] as usize;
                let sum: u64 = c.scratch()[..n].iter().map(|b| *b as u64).sum();
                [sum; 8]
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring();
    let payload = vec![3u8; 1000];
    let mut args = [0u64; 8];
    args[0] = payload.len() as u64;
    ring.submit_payload(ep, args, 1, &payload).unwrap();
    let mut out = Vec::new();
    ring.drain(&mut out);
    assert_eq!(out[0].result, Ok([3_000; 8]), "payload visible in scratch");
}

/// The async copy engine: `submit_bulk` returns after staging locally;
/// the ring worker performs the grant-checked copy into the region
/// before the handler runs and packs the descriptor into `args[7]` —
/// the handler observes the payload in place, like `call_bulk`.
#[test]
fn submit_bulk_copies_into_region_before_handler() {
    watchdog(60);
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "check",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().expect("descriptor in args[7]");
                let ok = ctx
                    .with_bulk_mut(desc, |bytes| {
                        bytes.iter().all(|b| *b == 0xAB) as u64
                    })
                    .expect("granted access");
                [ok, desc.len as u64, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let client = rt.client(0, 7);
    let region = client.bulk_register(4096).unwrap();
    region.grant(ep, true).unwrap();
    let mut ring = client.ring();

    let payload = vec![0xABu8; 4096];
    ring.submit_bulk(ep, [0; 8], 1, region.full_desc(true), &payload).unwrap();
    let mut out = Vec::new();
    ring.drain(&mut out);
    let rets = out[0].result.clone().expect("bulk submission completes");
    assert_eq!(rets[0], 1, "handler saw the staged bytes in the region");
    assert_eq!(rets[1], 4096);
    assert!(rt.stats.bulk_bytes() >= 4096, "the worker-side copy was accounted");

    // A payload longer than the descriptor's span is refused up front.
    let long = vec![0u8; 8192];
    assert_eq!(
        ring.submit_bulk(ep, [0; 8], 2, region.full_desc(true), &long),
        Err(RtError::BadBulk)
    );
}

/// The worker-side copy is owner-checked: a ring whose program does not
/// own the region gets a `BulkDenied` completion — the handler never
/// runs — and the ring keeps serving.
#[test]
fn submit_bulk_denies_foreign_descriptors() {
    watchdog(60);
    let rt = Runtime::new(1);
    let calls = Arc::new(AtomicU64::new(0));
    let n = Arc::clone(&calls);
    let ep = rt
        .bind(
            "svc",
            EntryOptions::default(),
            Arc::new(move |c| {
                n.fetch_add(1, Ordering::Relaxed);
                c.args
            }),
        )
        .unwrap();
    let owner = rt.client(0, 7);
    let region = owner.bulk_register(4096).unwrap();
    region.grant(ep, true).unwrap();

    // Program 8 submits program 7's descriptor.
    let imposter = rt.client(0, 8);
    let mut ring = imposter.ring();
    ring.submit_bulk(ep, [0; 8], 1, region.full_desc(true), &[1, 2, 3]).unwrap();
    let mut out = Vec::new();
    ring.drain(&mut out);
    assert!(
        matches!(out[0].result, Err(RtError::BulkDenied(_))),
        "foreign copy refused: {:?}",
        out[0].result
    );
    assert_eq!(calls.load(Ordering::Relaxed), 0, "handler never ran on a denied copy");
    assert_eq!(rt.stats.snapshot().bulk_denied, 1);

    // The ring survives the refusal.
    ring.submit(ep, [5; 8], 2).unwrap();
    ring.drain(&mut out);
    assert_eq!(out[1].result, Ok([5; 8]));
}

/// Fault containment matches the dispatch paths: a panicking handler
/// produces a `ServerFault` completion, the ring worker survives, and
/// subsequent submissions on the same ring succeed.
#[test]
fn handler_fault_is_contained_to_its_completion() {
    watchdog(60);
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "flaky",
            EntryOptions::default(),
            Arc::new(|c| {
                if c.args[0] == 13 {
                    panic!("injected");
                }
                c.args
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring();
    ring.submit(ep, [1; 8], 1).unwrap();
    ring.submit(ep, [13; 8], 2).unwrap();
    ring.submit(ep, [3; 8], 3).unwrap();
    let mut out = Vec::new();
    ring.drain(&mut out);
    assert_eq!(out[0].result, Ok([1; 8]));
    assert_eq!(out[1].result, Err(RtError::ServerFault(ep)), "fault becomes its CQE");
    assert_eq!(out[2].result, Ok([3; 8]), "the queue keeps flowing past the fault");
    assert_eq!(rt.stats.snapshot().server_faults, 1);
}

/// Rings follow the runtime spin policy: a park-only ring still makes
/// progress (doorbell wakes it), and flipping the policy mid-flight
/// reaches already-running ring workers.
#[test]
fn park_only_ring_progresses_via_doorbell() {
    watchdog(60);
    let rt = Runtime::new(1);
    rt.set_spin_policy(SpinPolicy::ParkOnly);
    let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring();
    let mut out = Vec::new();
    for round in 0..20u64 {
        for i in 0..8u64 {
            ring.submit(ep, [round * 8 + i; 8], round * 8 + i).unwrap();
        }
        // One doorbell per batch of 8 — the amortization under test.
        ring.drain(&mut out);
    }
    assert_eq!(out.len(), 160);
    assert!(out.iter().enumerate().all(|(i, c)| c.user == i as u64));
    rt.set_spin_policy(SpinPolicy::Adaptive);
    ring.submit(ep, [0; 8], 999).unwrap();
    ring.drain(&mut out);
    assert_eq!(out.last().unwrap().user, 999);
}

/// Dropping a ring with unreaped completions and queued submissions
/// shuts down cleanly: the worker finishes the queue before exiting and
/// nothing leaks (the staged pool buffers recycle on the Drop path).
#[test]
fn drop_with_queued_work_shuts_down_cleanly() {
    watchdog(60);
    let rt = Runtime::new(1);
    let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring();
    for i in 0..8u64 {
        ring.submit_payload(ep, [i; 8], i, &[i as u8; 64]).unwrap();
    }
    // No doorbell, no reap: drop must still terminate the worker.
    drop(ring);
    // The runtime is intact; a fresh ring on the same vCPU serves.
    let mut ring = client.ring();
    ring.submit(ep, [1; 8], 1).unwrap();
    let mut out = Vec::new();
    ring.drain(&mut out);
    assert_eq!(out[0].result, Ok([1; 8]));
}
